type leaf = { ctor : string; param : string }

let registry : (string, unit) Hashtbl.t = Hashtbl.create 16

let register name = Hashtbl.replace registry name ()
let registered name = Hashtbl.mem registry name

let names () =
  Hashtbl.fold (fun name () acc -> name :: acc) registry [] |> List.sort String.compare

let reset () = Hashtbl.reset registry

let validate leaves =
  match List.find_opt (fun l -> not (registered l.ctor)) leaves with
  | None -> Ok ()
  | Some l -> Error (Printf.sprintf "unknown policy constructor %s" l.ctor)
