(** The policy-constructor registry recovery validates against.

    The WAL journals, next to every row, the provenance of the policies
    that govern it: the flattened list of policy-family constructor names
    and their rendered parameters. A recovered row may only enter the
    store if {e every} journaled constructor is registered here — an
    application registers its policy families before opening a durable
    store, so a log written by a newer (or different) application, or a
    corrupted constructor name that survived the CRC, fails recovery
    closed instead of loading a row whose policy cannot be
    reconstructed. *)

type leaf = { ctor : string; param : string }
(** One flattened policy conjunct: [ctor] is the stable family name
    (e.g. ["websubmit::answer-access"]), [param] its rendered
    parameters. *)

val register : string -> unit
(** Registers a constructor family name. Idempotent. *)

val registered : string -> bool
val names : unit -> string list
(** Registered names, sorted. *)

val reset : unit -> unit
(** Clears the registry (tests only). *)

val validate : leaf list -> (unit, string) result
(** [Error] names the first unregistered constructor. *)
