(** The durable policy store: a {!Sesame_db.Database} whose every
    accepted mutation is journaled — values {e and} policy provenance —
    and which recovers from checkpoint + WAL with fail-closed semantics.

    {2 Write path}

    {!open_store} installs a journal hook on the database: after the
    engine accepts an [INSERT]/[UPDATE]/[DELETE] (or a table
    create/drop), one record is appended to the WAL carrying the LSN,
    the statement, the table's schema hash, and — per bound column — the
    flattened policy provenance the [provenance] callback reports.
    Group-commit batching and the fsync mode come from {!config}. If the
    append (or its fsync) fails, the statement is never acknowledged and
    the in-memory store is poisoned (see {!Sesame_db.Database.poison}):
    memory and log have diverged, and only a reopen through recovery may
    serve data again.

    Checkpoints (periodic via [checkpoint_every], or manual via
    {!checkpoint}) snapshot the full store atomically and reset the WAL.
    A checkpoint failure is {e recoverable} — it is recorded but the old
    checkpoint + WAL stay authoritative, and traffic continues.

    {2 Recovery}

    Reopening a directory replays the checkpoint, then every WAL record
    with [lsn >] the checkpoint's. A torn {e final} record (any prefix
    of a frame, the residue of a crash mid-write) is truncated away —
    per fsync mode it was never an acknowledged durable write. Anything
    else fails closed with {!Recovery_failed} and quarantines the
    directory (a [QUARANTINE] marker makes subsequent opens refuse until
    an operator intervenes): a mid-log checksum mismatch, a frame that
    passes CRC but does not decode, a policy constructor not registered
    in {!Provenance}, a schema hash that drifted, or a replayed
    statement the engine rejects. A row is never loaded without its
    exact original policy. *)

type sync_mode =
  | No_sync  (** write-behind: OS page cache only; a crash may lose the tail *)
  | Fsync    (** [fsync] on every group-commit before acknowledging *)

type config = {
  sync : sync_mode;
  batch : int;  (** group-commit size, [>= 1] *)
  checkpoint_every : int option;
      (** checkpoint after this many journaled records; [None] = manual only *)
  window_ns : int64;
      (** group-commit time window ([0] = count-only): an append also
          flushes once the oldest buffered frame has waited this long,
          so frames from different tables and shards coalesce into one
          [fsync] without an unbounded unsynced tail *)
}

val default_config : config
(** [{ sync = Fsync; batch = 1; checkpoint_every = Some 256;
    window_ns = 0L }] — the strict mode: every acknowledged write
    survives any crash. *)

type reason =
  | Quarantined of string
      (** the directory carries a [QUARANTINE] marker from an earlier
          failed recovery *)
  | Corrupt_checkpoint of string
  | Corrupt_record of { offset : int; detail : string }
      (** mid-log checksum mismatch, or a CRC-valid frame that does not
          decode *)
  | Unknown_policy of { lsn : int64; table : string; ctor : string }
      (** journaled provenance names a constructor the application never
          registered — the row's policy cannot be reconstructed *)
  | Schema_drift of { lsn : int64; table : string; expected : int32; found : int32 }
  | Replay_failed of { lsn : int64; detail : string }
      (** a journaled (hence once-accepted) statement no longer replays *)

type error = Recovery_failed of { dir : string; reason : reason }

val reason_message : reason -> string
val error_message : error -> string

type t

type provenance_fn =
  table:string -> column:string -> row:Sesame_db.Row.t option -> Provenance.leaf list
(** Reports the flattened policy conjuncts governing [column] at journal
    time. [row] is the full inserted row when the statement binds one
    (an [INSERT]), letting row-dependent policy families render their
    exact parameters; [UPDATE]/[DELETE] journal family names without a
    row. Register every family name with {!Provenance.register} before
    opening. *)

val open_store :
  ?config:config -> provenance:provenance_fn -> dir:string -> unit -> (t, error) result

val db : t -> Sesame_db.Database.t
val dir : t -> string

val flush : t -> (unit, string) result
(** Force out buffered group-commit frames. *)

type commit_stats = {
  appended : int;  (** frames journaled since the WAL (re)opened *)
  flushes : int;  (** batched writes; coalescing ratio = appended/flushes *)
  fsyncs : int;  (** 0 under {!No_sync} *)
  max_coalesced_tables : int;
      (** most distinct tables whose frames shared one flush window —
          evidence that group commit coalesces across tables/shards *)
}

val commit_stats : t -> commit_stats

val checkpoint : t -> (unit, string) result
(** Snapshot now and reset the WAL. Failure is recoverable (the store
    keeps serving; see {!last_checkpoint_error}). *)

val close : t -> (unit, string) result
(** Flush and close the log. The journal hook stays installed, so any
    later mutation fails (and poisons) rather than silently running
    un-journaled. *)

val clear_quarantine : dir:string -> unit
(** Operator override: removes the [QUARANTINE] marker so the next
    {!open_store} re-attempts recovery. *)

val read_state : dir:string -> (Sesame_db.Database.t * int64 * int, error) result
(** Read-only snapshot recovery, for brownout serving: rebuilds the last
    consistent state (checkpoint + every intact WAL record) into a fresh
    in-memory database without touching the directory — no truncation,
    no quarantine marker, no writer. A torn tail is tolerated (the valid
    prefix is replayed); everything a real recovery would refuse is
    still refused. Returns [(db, last_lsn, replayed)]. The returned
    database has no journal hook: mutations against it succeed silently
    in memory only — callers must not expose it for writes. *)

(** {1 Introspection (tests, benchmarks)} *)

val next_lsn : t -> int64
val checkpoint_lsn : t -> int64
val replayed : t -> int
(** WAL records replayed by the recovery that produced this handle. *)

val last_checkpoint_error : t -> string option
