module Db = Sesame_db.Database
module Table = Sesame_db.Table
module Schema = Sesame_db.Schema
module Sql = Sesame_db.Sql
module B = Sesame_db.Bincodec

type sync_mode = No_sync | Fsync

type config = {
  sync : sync_mode;
  batch : int;
  checkpoint_every : int option;
  window_ns : int64;
      (* group-commit time window (0 = count-only): an append flushes
         once the oldest buffered frame has waited this long, so frames
         from different tables/shards coalesce into one fsync without
         an unbounded unsynced tail *)
}

let default_config =
  { sync = Fsync; batch = 1; checkpoint_every = Some 256; window_ns = 0L }

type reason =
  | Quarantined of string
  | Corrupt_checkpoint of string
  | Corrupt_record of { offset : int; detail : string }
  | Unknown_policy of { lsn : int64; table : string; ctor : string }
  | Schema_drift of { lsn : int64; table : string; expected : int32; found : int32 }
  | Replay_failed of { lsn : int64; detail : string }

type error = Recovery_failed of { dir : string; reason : reason }

let reason_message = function
  | Quarantined detail -> Printf.sprintf "directory is quarantined: %s" detail
  | Corrupt_checkpoint detail -> Printf.sprintf "corrupt checkpoint: %s" detail
  | Corrupt_record { offset; detail } ->
      Printf.sprintf "corrupt WAL record at offset %d: %s" offset detail
  | Unknown_policy { lsn; table; ctor } ->
      Printf.sprintf
        "record %Ld (table %s) journals policy constructor %s, which is not registered: \
         the row's policy cannot be reconstructed"
        lsn table ctor
  | Schema_drift { lsn; table; expected; found } ->
      Printf.sprintf
        "record %Ld journals schema hash %08lx for table %s but the recovered schema \
         hashes to %08lx"
        lsn expected table found
  | Replay_failed { lsn; detail } ->
      Printf.sprintf "record %Ld no longer replays: %s" lsn detail

let error_message (Recovery_failed { dir; reason }) =
  Printf.sprintf "recovery of %s failed closed: %s" dir (reason_message reason)

type provenance_fn =
  table:string -> column:string -> row:Sesame_db.Row.t option -> Provenance.leaf list

type t = {
  dir : string;
  db : Db.t;
  config : config;
  provenance : provenance_fn;
  mutable writer : Wal.writer option;
  mutable next_lsn : int64;
  mutable ckpt_lsn : int64;
  mutable since_ckpt : int;
  mutable replayed : int;
  mutable last_ckpt_error : string option;
  (* Distinct tables journaled into the current (unflushed) group-commit
     window, and the widest window seen — the coalescing evidence. *)
  mutable window_tables : string list;
  mutable max_coalesced_tables : int;
}

type commit_stats = {
  appended : int;  (* frames journaled *)
  flushes : int;  (* batched writes (each covers >= 1 frame) *)
  fsyncs : int;
  max_coalesced_tables : int;
      (* most distinct tables whose frames shared one flush window *)
}

let db t = t.db
let dir t = t.dir
let next_lsn t = t.next_lsn
let checkpoint_lsn t = t.ckpt_lsn
let replayed t = t.replayed
let last_checkpoint_error t = t.last_ckpt_error

let wal_path t = Filename.concat t.dir "wal"
let quarantine_path dir = Filename.concat dir "QUARANTINE"

let clear_quarantine ~dir =
  try Sys.remove (quarantine_path dir) with Sys_error _ -> ()

(* Best effort: the structured error is authoritative; the marker only
   has to make the *next* open refuse. *)
let write_quarantine dir reason =
  try
    let oc = open_out_bin (quarantine_path dir) in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (reason_message reason ^ "\n"))
  with Sys_error _ -> ()

(* {1 Record encoding}

   payload := i64 lsn | u8 kind | body
   kind 1, stmt:   body := table | u32 schema_hash | stmt
                           | u32 ncols | ncols x [column | u32 nleaves | nleaves x [ctor | param]]
   kind 2, create: body := schema
   kind 3, drop:   body := table name *)

let u32_of_hash h = Int32.to_int h land 0xFFFFFFFF

let encode_stmt_record ~lsn ~table ~schema_hash ~stmt ~prov =
  let w = B.writer () in
  B.put_i64 w lsn;
  B.put_u8 w 1;
  B.put_string w table;
  B.put_u32 w (u32_of_hash schema_hash);
  B.put_stmt w stmt;
  B.put_u32 w (List.length prov);
  List.iter
    (fun (column, leaves) ->
      B.put_string w column;
      B.put_u32 w (List.length leaves);
      List.iter
        (fun (l : Provenance.leaf) ->
          B.put_string w l.ctor;
          B.put_string w l.param)
        leaves)
    prov;
  B.contents w

let encode_create_record ~lsn schema =
  let w = B.writer () in
  B.put_i64 w lsn;
  B.put_u8 w 2;
  B.put_schema w schema;
  B.contents w

let encode_drop_record ~lsn name =
  let w = B.writer () in
  B.put_i64 w lsn;
  B.put_u8 w 3;
  B.put_string w name;
  B.contents w

type replay_record =
  | R_stmt of {
      table : string;
      schema_hash : int32;
      stmt : Sql.stmt;
      prov : (string * Provenance.leaf list) list;
    }
  | R_create of Schema.t
  | R_drop of string

let ( let* ) = Result.bind

let decode_record payload =
  let r = B.reader payload in
  let* lsn = B.get_i64 r in
  let* kind = B.get_u8 r in
  let* record =
    match kind with
    | 1 ->
        let* table = B.get_string r in
        let* hash = B.get_u32 r in
        let* stmt = B.get_stmt r in
        let* ncols = B.get_u32 r in
        let rec cols n acc =
          if n = 0 then Ok (List.rev acc)
          else
            let* column = B.get_string r in
            let* nleaves = B.get_u32 r in
            let rec leaves n acc =
              if n = 0 then Ok (List.rev acc)
              else
                let* ctor = B.get_string r in
                let* param = B.get_string r in
                leaves (n - 1) ({ Provenance.ctor; param } :: acc)
            in
            let* leaves = leaves nleaves [] in
            cols (n - 1) ((column, leaves) :: acc)
        in
        let* prov = cols ncols [] in
        Ok (R_stmt { table; schema_hash = Int32.of_int hash; stmt; prov })
    | 2 ->
        let* schema = B.get_schema r in
        Ok (R_create schema)
    | 3 ->
        let* name = B.get_string r in
        Ok (R_drop name)
    | k -> Error (Printf.sprintf "unknown record kind %d" k)
  in
  let* () = B.expect_end r in
  Ok (lsn, record)

(* {1 Write path} *)

(* Columns whose provenance a statement journals: the bound columns of
   an INSERT (all of them when the column list is elided) or the SET
   columns of an UPDATE; a DELETE binds none but still journals the
   schema hash. For an INSERT the full row is reconstructed so
   row-dependent policy families journal their exact parameters. *)
let stmt_provenance t ~table stmt =
  let schema =
    match Db.table t.db table with
    | Some tbl -> Some (Table.schema tbl)
    | None -> None
  in
  let columns, row =
    match (stmt, schema) with
    | Sql.Insert { columns; values; _ }, Some schema ->
        let cols =
          match columns with
          | Some cols -> cols
          | None -> List.map (fun (c : Schema.column) -> c.name) (Schema.columns schema)
        in
        let row =
          match columns with
          | None when List.length values = Schema.arity schema ->
              Some (Array.of_list values)
          | _ -> (
              match Sesame_db.Row.of_assoc schema (List.combine cols values) with
              | Ok row -> Some row
              | Error _ | (exception Invalid_argument _) -> None)
        in
        (cols, row)
    | Sql.Update { set; _ }, _ -> (List.map fst set, None)
    | (Sql.Insert _ | Sql.Delete _ | Sql.Select _ | Sql.Select_agg _), _ -> ([], None)
  in
  List.map (fun column -> (column, t.provenance ~table ~column ~row)) columns

let checkpoint t =
  match t.writer with
  | None -> Error "durable store closed"
  | Some w -> (
      let result =
        let* () = Wal.flush w in
        let tables =
          List.map
            (fun name ->
              let tbl = Db.table_exn t.db name in
              (Table.schema tbl, Table.to_list tbl))
            (Db.table_names t.db)
        in
        let lsn = Int64.pred t.next_lsn in
        let* () = Checkpoint.write ~dir:t.dir ~lsn tables in
        (* Published: the snapshot now covers everything up to [lsn], so
           the log restarts empty. A crash before this truncate is
           idempotent — replay skips records with lsn <= checkpoint. *)
        t.ckpt_lsn <- lsn;
        t.since_ckpt <- 0;
        let* () = Wal.close w in
        t.writer <- None;
        let* () = Wal.create (wal_path t) in
        let* w' =
          Wal.open_writer ~window_ns:t.config.window_ns ~sync:(t.config.sync = Fsync)
            ~batch:t.config.batch (wal_path t)
        in
        t.writer <- Some w';
        Ok ()
      in
      match result with
      | Ok () ->
          t.last_ckpt_error <- None;
          Ok ()
      | Error e ->
          t.last_ckpt_error <- Some e;
          if t.writer = None then
            (* The WAL writer was lost after the snapshot published; the
               checkpoint itself is intact, but nothing can journal — the
               hook's [writer = None] branch poisons on the next write. *)
            Error e
          else Error e)

let journal t event =
  match t.writer with
  | None -> Error "durable store closed"
  | Some w ->
      let lsn = t.next_lsn in
      let payload =
        match (event : Db.journal_event) with
        | Db.J_stmt stmt ->
            let table =
              match stmt with
              | Sql.Insert { table; _ } | Sql.Update { table; _ } | Sql.Delete { table; _ } ->
                  table
              | Sql.Select _ | Sql.Select_agg _ -> assert false
            in
            let schema_hash =
              match Db.table t.db table with
              | Some tbl -> B.schema_hash (Table.schema tbl)
              | None -> 0l
            in
            encode_stmt_record ~lsn ~table ~schema_hash ~stmt
              ~prov:(stmt_provenance t ~table stmt)
        | Db.J_create schema -> encode_create_record ~lsn schema
        | Db.J_drop name -> encode_drop_record ~lsn name
      in
      let event_table =
        match (event : Db.journal_event) with
        | Db.J_stmt (Sql.Insert { table; _ })
        | Db.J_stmt (Sql.Update { table; _ })
        | Db.J_stmt (Sql.Delete { table; _ }) ->
            Some table
        | Db.J_stmt (Sql.Select _ | Sql.Select_agg _) -> None
        | Db.J_create schema -> Some (Schema.name schema)
        | Db.J_drop name -> Some name
      in
      let flushes_before = Wal.flushes w in
      let* () = Wal.append w payload in
      (* Coalescing evidence: count the distinct tables whose frames
         shared this flush window. The append above may have closed the
         window (count or time trigger), in which case the set — this
         frame included — is complete. *)
      (match event_table with
      | Some name when not (List.mem name t.window_tables) ->
          t.window_tables <- name :: t.window_tables
      | _ -> ());
      if Wal.flushes w > flushes_before then begin
        t.max_coalesced_tables <-
          max t.max_coalesced_tables (List.length t.window_tables);
        t.window_tables <- []
      end;
      t.next_lsn <- Int64.succ lsn;
      t.since_ckpt <- t.since_ckpt + 1;
      (match t.config.checkpoint_every with
      | Some n when t.since_ckpt >= n ->
          (* Auto-checkpoint failure must not fail the statement — the
             record is already durable in the WAL. It is recorded in
             [last_checkpoint_error] and retried after the next write. *)
          ignore (checkpoint t : (unit, string) result)
      | _ -> ());
      Ok ()

let flush t =
  match t.writer with None -> Error "durable store closed" | Some w -> Wal.flush w

let commit_stats t =
  match t.writer with
  | None ->
      { appended = 0; flushes = 0; fsyncs = 0;
        max_coalesced_tables = t.max_coalesced_tables }
  | Some w ->
      { appended = Wal.appended w; flushes = Wal.flushes w; fsyncs = Wal.fsyncs w;
        max_coalesced_tables = t.max_coalesced_tables }

let close t =
  match t.writer with
  | None -> Ok ()
  | Some w ->
      let r = Wal.close w in
      t.writer <- None;
      r

(* {1 Recovery} *)

let fail dir reason = Error (Recovery_failed { dir; reason })

let replay_record db ~lsn record =
  match record with
  | R_create schema -> (
      match Db.create_table db schema with
      | Ok () -> Ok ()
      | Error detail -> Error (Replay_failed { lsn; detail }))
  | R_drop name -> (
      match Db.drop_table db name with
      | Ok () -> Ok ()
      | Error detail -> Error (Replay_failed { lsn; detail }))
  | R_stmt { table; schema_hash = expected; stmt; prov } -> (
      match Db.table db table with
      | None -> Error (Replay_failed { lsn; detail = Printf.sprintf "no table named %s" table })
      | Some tbl -> (
          let found = B.schema_hash (Table.schema tbl) in
          if not (Int32.equal found expected) then
            Error (Schema_drift { lsn; table; expected; found })
          else
            let bad_ctor =
              List.find_map
                (fun (_, leaves) ->
                  List.find_opt (fun (l : Provenance.leaf) -> not (Provenance.registered l.ctor)) leaves)
                prov
            in
            match bad_ctor with
            | Some l -> Error (Unknown_policy { lsn; table; ctor = l.ctor })
            | None -> (
                match Db.exec_stmt db stmt with
                | Ok _ -> Ok ()
                | Error detail -> Error (Replay_failed { lsn; detail }))))

let recover ~dir ~config =
  (* Recovery may run on a request-serving domain (a brownout exit
     reopens the store mid-traffic); its replay must not be abandoned by
     that request's budget. *)
  Sesame_deadline.unrestricted @@ fun () ->
  let wal_file = Filename.concat dir "wal" in
  (* A leftover temp file is a crash mid-checkpoint: the rename never
     happened, so the old checkpoint + WAL are authoritative. *)
  (try Sys.remove (Filename.concat dir Checkpoint.temp_file) with Sys_error _ -> ());
  let db = Db.create () in
  let* ckpt_lsn =
    match Checkpoint.load ~dir with
    | Error detail -> fail dir (Corrupt_checkpoint detail)
    | Ok None -> Ok 0L
    | Ok (Some (lsn, tables)) ->
        let rec install = function
          | [] -> Ok lsn
          | (schema, rows) :: rest -> (
              match Db.restore_table db schema rows with
              | Ok () -> install rest
              | Error detail -> fail dir (Corrupt_checkpoint detail))
        in
        install tables
  in
  let* records, valid_end, tail =
    if Sys.file_exists wal_file then
      match Wal.scan wal_file with
      | Ok v -> Ok v
      | Error detail -> fail dir (Corrupt_record { offset = 0; detail })
    else
      match Wal.create wal_file with
      | Ok () -> Ok ([], Wal.header_size, Wal.Clean)
      | Error detail -> fail dir (Corrupt_record { offset = 0; detail })
  in
  let rec replay last_lsn n = function
    | [] -> Ok (last_lsn, n)
    | ({ offset; payload } : Wal.record) :: rest -> (
        match decode_record payload with
        | Error detail -> fail dir (Corrupt_record { offset; detail })
        | Ok (lsn, record) ->
            if Int64.compare lsn ckpt_lsn <= 0 then
              (* Already inside the checkpoint (a crash landed between
                 checkpoint publication and WAL reset): CRC-validated but
                 not re-applied. *)
              replay last_lsn n rest
            else (
              match replay_record db ~lsn record with
              | Ok () -> replay lsn (n + 1) rest
              | Error reason -> fail dir reason))
  in
  let* last_lsn, replayed = replay ckpt_lsn 0 records in
  let* () =
    match tail with
    | Wal.Clean -> Ok ()
    | Wal.Torn { offset = _ } -> (
        (* The torn tail is a crash signature, not corruption: cut it off
           so the log ends on a frame boundary. A tail torn inside the
           magic header means creation itself crashed — start fresh. *)
        let repair =
          if valid_end < Wal.header_size then Wal.create wal_file
          else Wal.truncate wal_file valid_end
        in
        match repair with
        | Ok () -> Ok ()
        | Error detail -> fail dir (Corrupt_record { offset = valid_end; detail }))
  in
  let* writer =
    match
      Wal.open_writer ~window_ns:config.window_ns ~sync:(config.sync = Fsync)
        ~batch:config.batch wal_file
    with
    | Ok w -> Ok w
    | Error detail -> fail dir (Corrupt_record { offset = valid_end; detail })
  in
  Ok (db, writer, ckpt_lsn, last_lsn, replayed)

(* Read-only snapshot recovery: the brownout read path. When the live
   store poisons mid-flight (journal fault, quota quarantine), reads can
   continue from the last consistent on-disk state — checkpoint plus
   every intact WAL record. Strictly side-effect-free on the directory:
   no temp-file cleanup, no torn-tail truncation, no quarantine marker,
   no writer — so it can run while the (poisoned) writer still owns the
   files. A torn tail is tolerated, not repaired: the valid prefix is
   replayed and the tear is left for a real reopen to truncate. Replay
   runs with the ambient request deadline suspended: the snapshot build
   happens on whichever request's domain noticed the poisoning, and an
   aborted half-replayed snapshot would help nobody. *)
let read_state ~dir =
  Sesame_deadline.unrestricted @@ fun () ->
  let wal_file = Filename.concat dir "wal" in
  let db = Db.create () in
  let* ckpt_lsn =
    match Checkpoint.load ~dir with
    | Error detail -> fail dir (Corrupt_checkpoint detail)
    | Ok None -> Ok 0L
    | Ok (Some (lsn, tables)) ->
        let rec install = function
          | [] -> Ok lsn
          | (schema, rows) :: rest -> (
              match Db.restore_table db schema rows with
              | Ok () -> install rest
              | Error detail -> fail dir (Corrupt_checkpoint detail))
        in
        install tables
  in
  let* records =
    if Sys.file_exists wal_file then
      match Wal.scan wal_file with
      | Ok (records, _, _) -> Ok records
      | Error detail -> fail dir (Corrupt_record { offset = 0; detail })
    else Ok []
  in
  let rec replay last_lsn n = function
    | [] -> Ok (last_lsn, n)
    | ({ offset; payload } : Wal.record) :: rest -> (
        match decode_record payload with
        | Error detail -> fail dir (Corrupt_record { offset; detail })
        | Ok (lsn, record) ->
            if Int64.compare lsn ckpt_lsn <= 0 then replay last_lsn n rest
            else (
              match replay_record db ~lsn record with
              | Ok () -> replay lsn (n + 1) rest
              | Error reason -> fail dir reason))
  in
  let* last_lsn, replayed = replay ckpt_lsn 0 records in
  Ok (db, last_lsn, replayed)

let open_store ?(config = default_config) ~provenance ~dir () =
  let ensure_dir () =
    try
      (match Unix.mkdir dir 0o755 with
      | () -> ()
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Ok ()
    with Unix.Unix_error (e, _, _) ->
      fail dir (Corrupt_checkpoint (Printf.sprintf "cannot create %s: %s" dir (Unix.error_message e)))
  in
  let* () = ensure_dir () in
  let* () =
    if Sys.file_exists (quarantine_path dir) then begin
      let detail =
        try
          let ic = open_in_bin (quarantine_path dir) in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> String.trim (really_input_string ic (in_channel_length ic)))
        with Sys_error _ -> "unreadable marker"
      in
      fail dir (Quarantined detail)
    end
    else Ok ()
  in
  match recover ~dir ~config with
  | Error (Recovery_failed { reason; _ } as e) ->
      (match reason with Quarantined _ -> () | _ -> write_quarantine dir reason);
      Error e
  | Ok (db, writer, ckpt_lsn, last_lsn, replayed) ->
      let t =
        {
          dir;
          db;
          config;
          provenance;
          writer = Some writer;
          next_lsn = Int64.succ last_lsn;
          ckpt_lsn;
          since_ckpt = 0;
          replayed;
          last_ckpt_error = None;
          window_tables = [];
          max_coalesced_tables = 0;
        }
      in
      Db.set_journal db (Some (journal t));
      Ok t
