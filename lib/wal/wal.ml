module B = Sesame_db.Bincodec

let magic = "SSMWAL01"
let header_size = String.length magic

(* Frame header: u32 length + u32 crc, little-endian. *)
let frame_header = 8

let crc_of payload = Int32.to_int (B.crc32 payload) land 0xFFFFFFFF

let add_u32 buf n = Buffer.add_int32_le buf (Int32.of_int n)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let io_error what e = Error (Printf.sprintf "wal %s: %s" what (Unix.error_message e))

let create path =
  try
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        write_all fd magic 0 header_size;
        Unix.fsync fd);
    Ok ()
  with Unix.Unix_error (e, _, _) -> io_error "create" e

type writer = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable pending : int;
  mutable appended : int;
  mutable closed : bool;
  sync : bool;
  batch : int;
  window_ns : int64;  (* 0 = no time trigger *)
  mutable window_start : int64;  (* when the oldest pending frame buffered *)
  mutable flushes : int;
  mutable fsyncs : int;
}

let open_writer ?(window_ns = 0L) ~sync ~batch path =
  try
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
    Ok { fd; buf = Buffer.create 4096; pending = 0; appended = 0; closed = false;
         sync; batch = max 1 batch;
         window_ns = (if Int64.compare window_ns 0L > 0 then window_ns else 0L);
         window_start = 0L; flushes = 0; fsyncs = 0 }
  with Unix.Unix_error (e, _, _) -> io_error "open" e

let appended w = w.appended
let flushes w = w.flushes
let fsyncs w = w.fsyncs

let flush w =
  if w.closed then Error "wal flush: writer closed"
  else if Buffer.length w.buf = 0 then Ok ()
  else begin
    let s = Buffer.contents w.buf in
    match write_all w.fd s 0 (String.length s) with
    | exception Unix.Unix_error (e, _, _) -> io_error "write" e
    | () ->
        Buffer.clear w.buf;
        w.pending <- 0;
        w.flushes <- w.flushes + 1;
        if not w.sync then Ok ()
        else begin
          (* The seam sits between write and fsync: an injected fault here
             models a flush the disk never saw, so the batch must not be
             acknowledged. *)
          Sesame_faults.hit Sesame_faults.Db_wal_fsync;
          match Unix.fsync w.fd with
          | () ->
              w.fsyncs <- w.fsyncs + 1;
              Ok ()
          | exception Unix.Unix_error (e, _, _) -> io_error "fsync" e
        end
  end

let append w payload =
  if w.closed then Error "wal append: writer closed"
  else begin
    Sesame_faults.hit Sesame_faults.Db_wal_append;
    if w.pending = 0 then w.window_start <- Sesame_clock.now_ns ();
    add_u32 w.buf (String.length payload);
    add_u32 w.buf (crc_of payload);
    Buffer.add_string w.buf payload;
    w.pending <- w.pending + 1;
    w.appended <- w.appended + 1;
    (* Group commit coalesces frames — from any table, any shard — into
       one write+fsync: by count once [batch] frames are pending, or by
       time once the oldest pending frame has waited [window_ns]. The
       window lets a large batch keep its throughput without leaving a
       trickle of writes unsynced indefinitely. *)
    let window_expired =
      Int64.compare w.window_ns 0L > 0
      && Int64.compare
           (Int64.sub (Sesame_clock.now_ns ()) w.window_start)
           w.window_ns
         >= 0
    in
    if w.pending >= w.batch || window_expired then flush w else Ok ()
  end

let close w =
  if w.closed then Ok ()
  else begin
    let flushed = flush w in
    w.closed <- true;
    match Unix.close w.fd with
    | () -> flushed
    | exception Unix.Unix_error (e, _, _) -> (
        match flushed with Error _ as err -> err | Ok () -> io_error "close" e)
  end

type record = { offset : int; payload : string }
type tail = Clean | Torn of { offset : int }

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error e -> Error (Printf.sprintf "wal read: %s" e)

let u32_at s pos =
  Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF

let scan path =
  match read_file path with
  | Error _ as e -> e
  | Ok s ->
      let len = String.length s in
      if len < header_size then
        if String.equal s (String.sub magic 0 len) then
          (* A crash during initial creation left a partial header. *)
          Ok ([], 0, Torn { offset = 0 })
        else Error "wal: bad magic header"
      else if not (String.equal (String.sub s 0 header_size) magic) then
        Error "wal: bad magic header"
      else begin
        let rec go pos acc =
          let remaining = len - pos in
          if remaining = 0 then Ok (List.rev acc, pos, Clean)
          else if remaining < frame_header then Ok (List.rev acc, pos, Torn { offset = pos })
          else begin
            let plen = u32_at s pos in
            let crc = u32_at s (pos + 4) in
            if remaining - frame_header < plen then
              (* The frame claims more bytes than the file holds: the tail
                 of a crashed write (or a torn length field — either way
                 nothing after this point is recoverable framing). *)
              Ok (List.rev acc, pos, Torn { offset = pos })
            else begin
              let payload = String.sub s (pos + frame_header) plen in
              if crc_of payload <> crc then
                Error
                  (Printf.sprintf
                     "wal: checksum mismatch in record at offset %d (not a torn tail)" pos)
              else
                go (pos + frame_header + plen) ({ offset = pos; payload } :: acc)
            end
          end
        in
        go header_size []
      end

let truncate path offset =
  try
    Unix.truncate path offset;
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd);
    Ok ()
  with Unix.Unix_error (e, _, _) -> io_error "truncate" e
