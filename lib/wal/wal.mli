(** The physical write-ahead log: a file of length-prefixed, CRC-32
    checksummed frames behind a magic header.

    Frame layout (all little-endian):

    {v u32 length | u32 crc32(payload) | payload v}

    The payload bytes are opaque here — {!Durable} owns their meaning
    (LSN, record kind, statement, policy provenance). This module only
    guarantees the crash-consistency story of the {e framing}:

    - a frame that extends past end-of-file (including a partially
      written header) is a {e torn tail} — the expected residue of a
      crash mid-write, reported as {!Torn} so the caller can truncate
      back to the last whole frame;
    - a frame that is fully present but whose CRC does not match is
      {e corruption} — a partial write cannot produce it, so {!scan}
      fails closed with an error instead of guessing.

    Writers group-commit: appends accumulate in a buffer and are written
    (and optionally [fsync]ed) once [batch] frames are pending. The
    fault seams [Db_wal_append] and [Db_wal_fsync] fire on the append
    and flush paths respectively. *)

val magic : string
(** File header, ["SSMWAL01"]. *)

val header_size : int

(** {1 Writing} *)

type writer

val create : string -> (unit, string) result
(** Creates (or truncates to) a fresh log containing only the magic
    header, [fsync]ed. *)

val open_writer :
  ?window_ns:int64 -> sync:bool -> batch:int -> string -> (writer, string) result
(** Opens an existing log for appending. [batch] (clamped to [>= 1]) is
    the group-commit size: frames buffer in memory until that many are
    pending, then are written in one [write] and, when [sync], one
    [fsync]. With [batch = 1] and [sync = true] every acknowledged
    append is durable; larger batches trade a bounded tail of
    acknowledged-but-buffered frames for throughput.

    [window_ns] (default 0 = off) adds a time trigger: an append also
    flushes once the oldest pending frame has been buffered for at
    least that long, so group commit coalesces frames across tables and
    shards within one fsync window without an unbounded unsynced
    tail. *)

val append : writer -> string -> (unit, string) result
(** Frames [payload] and group-commits. An [Error] (or an injected
    fault's raise) means the frame was {e not} acknowledged — the caller
    must fail the statement and poison the store. *)

val flush : writer -> (unit, string) result
(** Forces out any buffered frames ([fsync]ing when the writer is
    [sync]). No-op when nothing is pending. *)

val close : writer -> (unit, string) result
(** {!flush} then close the descriptor. The writer is unusable after. *)

val appended : writer -> int
(** Frames appended since {!open_writer} (for checkpoint pacing/tests). *)

val flushes : writer -> int
(** Buffered-batch writes performed (each covers ≥ 1 frame); the
    group-commit coalescing ratio is [appended / flushes]. *)

val fsyncs : writer -> int
(** [fsync]s performed (0 when the writer is not [sync]). *)

(** {1 Scanning} *)

type record = { offset : int; payload : string }

type tail =
  | Clean  (** the file ends exactly on a frame boundary *)
  | Torn of { offset : int }
      (** a final, incomplete frame starts at [offset]; truncating the
          file back to [offset] yields a clean log *)

val scan : string -> (record list * int * tail, string) result
(** [scan path] is [Ok (records, valid_end, tail)] where [records] are
    the whole, CRC-valid frames in order and [valid_end] the byte offset
    just past the last of them. Fails closed ([Error]) on a bad magic
    header or on a complete frame whose CRC does not match — mid-log
    corruption, never the signature of a crash. *)

val truncate : string -> int -> (unit, string) result
(** Physically truncates the file to [offset] (the torn-tail repair),
    [fsync]ing the result. *)
