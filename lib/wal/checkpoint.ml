module B = Sesame_db.Bincodec

let file = "checkpoint"
let temp_file = "checkpoint.tmp"
let magic = "SSMCKPT1"
let magic_len = String.length magic

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let encode_body ~lsn tables =
  let w = B.writer () in
  B.put_i64 w lsn;
  B.put_u32 w (List.length tables);
  List.iter
    (fun (schema, rows) ->
      B.put_schema w schema;
      B.put_u32 w (List.length rows);
      List.iter (B.put_row w) rows)
    tables;
  B.contents w

let ( let* ) = Result.bind

let decode_body body =
  let r = B.reader body in
  let* lsn = B.get_i64 r in
  let* n_tables = B.get_u32 r in
  let rec tables n acc =
    if n = 0 then Ok (List.rev acc)
    else
      let* schema = B.get_schema r in
      let* n_rows = B.get_u32 r in
      let rec rows n acc =
        if n = 0 then Ok (List.rev acc)
        else
          let* row = B.get_row r in
          rows (n - 1) (row :: acc)
      in
      let* rows = rows n_rows [] in
      tables (n - 1) ((schema, rows) :: acc)
  in
  let* tables = tables n_tables [] in
  let* () = B.expect_end r in
  Ok (lsn, tables)

let fsync_dir dir =
  let fd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)

let write ~dir ~lsn tables =
  let body = encode_body ~lsn tables in
  let framed = Buffer.create (String.length body + 16) in
  Buffer.add_string framed magic;
  Buffer.add_int32_le framed (Int32.of_int (String.length body));
  Buffer.add_int32_le framed (B.crc32 body);
  Buffer.add_string framed body;
  let framed = Buffer.contents framed in
  let tmp = Filename.concat dir temp_file in
  try
    Sesame_faults.hit Sesame_faults.Db_checkpoint_write;
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        write_all fd framed 0 (String.length framed);
        Unix.fsync fd);
    Sesame_faults.hit Sesame_faults.Db_checkpoint_rename;
    Unix.rename tmp (Filename.concat dir file);
    fsync_dir dir;
    Ok ()
  with
  | Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "checkpoint write: %s" (Unix.error_message e))
  | Sesame_faults.Injected { point; action; transient } ->
      Error (Sesame_faults.injected_message point action ~transient)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error e -> Error (Printf.sprintf "checkpoint read: %s" e)

let load ~dir =
  let path = Filename.concat dir file in
  if not (Sys.file_exists path) then Ok None
  else
    let* s = read_file path in
    let len = String.length s in
    if len < magic_len + 8 then Error "checkpoint: truncated header"
    else if not (String.equal (String.sub s 0 magic_len) magic) then
      Error "checkpoint: bad magic"
    else begin
      let body_len = Int32.to_int (String.get_int32_le s magic_len) land 0xFFFFFFFF in
      let crc = String.get_int32_le s (magic_len + 4) in
      if len <> magic_len + 8 + body_len then
        Error
          (Printf.sprintf "checkpoint: size mismatch (header says %d body bytes, file has %d)"
             body_len (len - magic_len - 8))
      else begin
        let body = String.sub s (magic_len + 8) body_len in
        if not (Int32.equal (B.crc32 body) crc) then Error "checkpoint: checksum mismatch"
        else
          match decode_body body with
          | Ok v -> Ok (Some v)
          | Error e -> Error (Printf.sprintf "checkpoint: %s" e)
      end
    end
