(** Atomic full-store snapshots that bound WAL replay.

    A checkpoint is one file: magic, then a CRC-framed body holding the
    last LSN it covers and every table's schema and rows in the lossless
    {!Sesame_db.Bincodec} encoding. It is published atomically — written
    to a temp file, [fsync]ed, then [rename]d over the previous
    checkpoint (and the directory [fsync]ed) — so recovery only ever
    sees either the old complete snapshot or the new complete snapshot,
    never a partial one. A leftover temp file is the signature of a
    crash mid-checkpoint and is simply discarded.

    Replay skips WAL records with [lsn <= ] the checkpoint's LSN, which
    makes a crash {e between} checkpoint publication and WAL truncation
    idempotent.

    The fault seams [Db_checkpoint_write] and [Db_checkpoint_rename]
    fire before the temp-file write and the publishing rename. A failed
    checkpoint is {e recoverable} — the previous checkpoint plus the
    intact WAL remain authoritative — so {!write} reports [Error]
    without poisoning anything. *)

val file : string
(** ["checkpoint"], relative to the store directory. *)

val temp_file : string
(** ["checkpoint.tmp"]. *)

val write :
  dir:string ->
  lsn:int64 ->
  (Sesame_db.Schema.t * Sesame_db.Row.t list) list ->
  (unit, string) result

val load :
  dir:string ->
  ((int64 * (Sesame_db.Schema.t * Sesame_db.Row.t list) list) option, string) result
(** [Ok None] when no checkpoint exists (a fresh store). [Error] on a
    bad magic, size/CRC mismatch, or a body that does not decode — all
    corruption, all fail-closed. *)
