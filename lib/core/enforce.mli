(** The enforcement hot path: memoized, optionally domain-parallel policy
    checking.

    {!check_verbose} is a drop-in replacement for
    {!Policy.check_verbose} — same verdicts, byte-identical denial
    messages, same (left-to-right, first-denial) ordering — that caches
    leaf and conjunction verdicts per domain, keyed by (policy instance
    id, full structural context). The id is unique per instance and
    policies are immutable, so an id names one policy forever; the
    context key is the whole {!Context.t} compared structurally (its
    hash is only a fingerprint — equality decides, so hash collisions
    cost a probe, never a wrong verdict).

    What a cached verdict can depend on beyond (policy, context) is
    database state read by the policy's own check. Every table mutation
    bumps the process-wide {!Sesame_db.Table.generation}; policy
    (re-)binding bumps {!bump}. Caches compare the combined {!epoch}
    before every lookup and drop everything on a change — coarse, but
    sound: no verdict computed against old data survives any mutation.

    Checks of one conjunction's members fan out over a
    {!Sesame_parallel.t} pool when one is installed and the conjunction
    is wide enough; the deny scan over member results stays sequential
    and in member order, so the reported denial is the one the
    sequential reference reports. *)

val check : Policy.t -> Context.t -> bool
val check_verbose : Policy.t -> Context.t -> (unit, string) result

val epoch : unit -> int
(** The invalidation epoch: table generation + registration bumps. *)

val bump : unit -> unit
(** Invalidate every cached verdict (all domains observe it on their next
    lookup). Called on policy binding; also the test hook for "the world
    changed in a way the DB layer cannot see". *)

val set_memoization : bool -> unit
(** Default on. Off = every check recomputes (the sequential reference
    path, modulo parallelism). *)

val memoization : unit -> bool

val set_pool : Sesame_parallel.t option -> unit
(** Install (or remove) the pool used for wide conjunctions. Default:
    the process-wide {!Sesame_parallel.default} pool iff it has workers
    (i.e. [PARALLEL_DOMAINS > 1]). *)

val pool : unit -> Sesame_parallel.t option

val set_parallel_cutoff : int -> unit
(** Minimum conjunction width before checks fan out (default 64). *)

type stats = { hits : int; misses : int; parallel_fanouts : int }

val stats : unit -> stats
val reset_stats : unit -> unit
