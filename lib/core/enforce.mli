(** The enforcement hot path: memoized, optionally domain-parallel policy
    checking.

    {!check_verbose} is a drop-in replacement for
    {!Policy.check_verbose} — same verdicts, byte-identical denial
    messages, same (left-to-right, first-denial) ordering — that caches
    leaf and conjunction verdicts per domain, keyed by (policy instance
    id, full structural context). The id is unique per instance and
    policies are immutable, so an id names one policy forever; the
    context key is the whole {!Context.t} compared structurally (its
    hash is only a fingerprint — equality decides, so hash collisions
    cost a probe, never a wrong verdict).

    What a cached verdict can depend on beyond (policy, context) is
    database state read by the policy's own check. Two invalidation
    modes cover that:

    - {e Precise} (default): every check records the read footprint its
      computation touched — the set of (table, shard) generation slots,
      collected by {!Sesame_db.Footprint} through the table layer — and
      the cached verdict revalidates by comparing exactly those slots
      (plus {!bump}s and the structural schema epoch). A write to
      [users] shard 3 retires only verdicts that read it; verdicts over
      other tables, other shards, and pure (DB-free) policies stay
      warm.

    - {e Coarse} (the original scheme, kept for ablation via
      {!set_precise_invalidation}): every table mutation bumps the
      process-wide {!Sesame_db.Table.generation}; caches compare the
      combined {!epoch} before every lookup and drop everything on any
      change.

    Precise validity is a subset of coarse validity: row mutations land
    in recorded slots, schema events land in the structural epoch,
    re-binding lands in {!bump} — so precise mode never reuses a
    verdict coarse mode would have considered valid-to-drop for an
    actual dependency, and both modes return byte-identical verdicts.

    Checks of one conjunction's members fan out over a
    {!Sesame_parallel.t} pool when one is installed and the conjunction
    is wide enough; the deny scan over member results stays sequential
    and in member order, so the reported denial is the one the
    sequential reference reports. *)

val check : Policy.t -> Context.t -> bool
val check_verbose : Policy.t -> Context.t -> (unit, string) result

val epoch : unit -> int
(** The invalidation epoch: table generation + registration bumps. *)

val bump : unit -> unit
(** Invalidate every cached verdict (all domains observe it on their next
    lookup; in precise mode it moves every entry's base). Called on
    policy binding; also the test hook for "the world changed in a way
    the DB layer cannot see". *)

val set_precise_invalidation : bool -> unit
(** Default on: cached verdicts, certificates, and connector aggregate
    caches revalidate against their recorded per-shard footprints. Off
    restores the coarse global-epoch scheme (any write drops every
    cache) — the ablation baseline for the mixed-workload benchmarks.
    Flipping the flag drops existing entries (the two disciplines'
    tokens are not comparable). *)

val precise_invalidation : unit -> bool

val set_memoization : bool -> unit
(** Default on. Off = every check recomputes (the sequential reference
    path, modulo parallelism). *)

val memoization : unit -> bool

val set_pool : Sesame_parallel.t option -> unit
(** Install (or remove) the pool used for wide conjunctions. Default:
    the process-wide {!Sesame_parallel.default} pool iff it has workers
    (i.e. [PARALLEL_DOMAINS > 1]). *)

val pool : unit -> Sesame_parallel.t option

val set_parallel_cutoff : int -> unit
(** Minimum conjunction width before checks fan out (default 64). *)

val set_elision : bool -> unit
(** Default on. Off = certified checks run anyway (the ablation
    reference). With no plan installed this flag is a no-op. *)

val elision : unit -> bool

val set_pushdown : bool -> unit
(** Default on. Off = binding translations are ignored and every
    consumer falls back to post-hoc per-row checks. *)

val pushdown_enabled : unit -> bool

val note_pushdown : unit -> unit
(** Record one scan-predicate pushdown in {!stats} (called by the
    connector when a translated predicate replaces post-hoc checks). *)

val note_elision : unit -> unit
(** Record one certificate-discharged check in {!stats} (called by the
    connector when a plan certificate replaces a group conjunction). *)

(** The enforcement plan: elision certificates compiled from the static
    pass ({!Sesame_scrutinizer.Elision}). An installed entry asserts
    that every check of [family] at [sink] (under [endpoint], when
    given) whose context satisfies [guard] is identically [Ok].
    {!check_verbose} discharges a policy without running it when {e
    every} leaf of its conjunction tree is certified for the context.

    Certificate validity ⊆ footprint-vector validity ⊆ global-epoch
    validity: an entry validated under the current certificate epoch
    (binding {!bump}s + structural schema events; row traffic does not
    move it) is trusted until that epoch moves; after a re-binding or
    schema event its [revalidate] closure must re-approve it, and an
    entry that fails revalidation is dropped so the residual runtime
    check runs. *)
module Plan : sig
  type entry

  val entry :
    ?endpoint:string ->
    sink:string ->
    family:string ->
    guard:(Context.t -> bool) ->
    revalidate:(unit -> bool) ->
    witness:string ->
    unit ->
    entry
  (** [endpoint] matches exactly or as a ["/"-separated] path prefix
      (so ["/predict"] covers ["/predict/3"]); omitted = any endpoint.
      [witness] is the rendered static proof, kept for introspection. *)

  val install : entry -> unit
  val clear : unit -> unit
  val size : unit -> int
  val active : unit -> bool

  val covers : Policy.t -> Context.t -> bool
  (** Is every leaf family of the policy certified for this context?
      [false] when the context has no sink. *)

  val certified_leaf : sink:string -> family:string -> Context.t -> bool

  val declare_endpoint_sinks : endpoint:string -> string list -> unit
  (** Declare the release sinks of an endpoint: every value the endpoint
      releases is checked under one of these sinks with the request
      context. Lets data-wrapping sites (the connector's [query_agg])
      consult certificates for checks that only run later, at release
      time. Re-declaring an endpoint replaces its sink list; {!clear}
      forgets all declarations. *)

  val endpoint_sinks : Context.t -> string list option
  (** The declared release sinks covering this context's endpoint
      (exact or path-prefix match), if any. *)

  val guard_of_atoms : Sesame_scrutinizer.Elision.atom list -> Context.t -> bool
  (** Compile a satisfying clause from the static pass into a runtime
      guard that re-checks each atom against the concrete context. *)
end

type stats = {
  hits : int;
  misses : int;
  parallel_fanouts : int;
  elisions : int;  (** checks discharged by plan certificates *)
  pushdowns : int;  (** scans filtered by a translated predicate *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** Validity capture for caches outside this module (the connector's
    per-group aggregate cache): run a computation and obtain a token
    answering "may its result still be reused?" under whichever
    invalidation mode is active — footprint-based in precise mode,
    epoch-pinned in coarse mode. *)
module Validity : sig
  type t

  val capture : (unit -> 'a) -> 'a * t
  (** Runs the computation under a recording scope (precise mode) and
      returns its result plus the validity token. *)

  val valid : t -> bool
  (** May a value captured with this token still be reused? *)

  val merge_ambient : t -> unit
  (** On reuse: fold the token's recorded reads into the caller's open
      recording scope, so an enclosing capture inherits them. No-op in
      coarse mode or with no scope open. *)
end
