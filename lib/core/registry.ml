type kind = Verified | Sandboxed | Critical

let kind_name = function Verified -> "VR" | Sandboxed -> "SR" | Critical -> "CR"

type entry = {
  app : string;
  region : string;
  kind : kind;
  loc : int;
  review_loc : int;
}

(* The registry is a process-wide Hashtbl; apps may instantiate (and so
   register regions) from worker domains, and an unguarded Hashtbl can
   corrupt its buckets under concurrent writers. Every access goes
   through one mutex — registration is nowhere near any hot path. *)
let table : (string * string, entry) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register entry =
  with_lock (fun () -> Hashtbl.replace table (entry.app, entry.region) entry)

let entries ?app () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun _ entry acc ->
          match app with
          | Some a when a <> entry.app -> acc
          | Some _ | None -> entry :: acc)
        table [])
  |> List.sort (fun a b ->
         match String.compare a.app b.app with
         | 0 -> String.compare a.region b.region
         | c -> c)

let count ?app kind =
  entries ?app () |> List.filter (fun e -> e.kind = kind) |> List.length

let loc_range ~app kind =
  let locs =
    entries ~app () |> List.filter (fun e -> e.kind = kind) |> List.map (fun e -> e.loc)
  in
  match locs with
  | [] -> None
  | first :: rest ->
      Some (List.fold_left min first rest, List.fold_left max first rest)

let review_burden ~app =
  entries ~app ()
  |> List.filter (fun e -> e.kind = Critical)
  |> List.fold_left (fun acc e -> acc + e.review_loc) 0

let reset () = with_lock (fun () -> Hashtbl.reset table)
