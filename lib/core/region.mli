(** Privacy regions (§7): the three API levels of Fig. 4 above the
    built-ins.

    - {!Verified}: statically-verified leakage-free closures. Construction
      runs Scrutinizer over the region's IR model once (the paper's
      compile-time step); a rejected region cannot be constructed, forcing
      the developer to a sandboxed or critical region — the workflow of
      §3. Accepted regions run as-is with no per-invocation overhead.
    - {!Sandboxed}: closures executed under the {!Sesame_sandbox} runtime;
      inputs are copied in, outputs copied out and re-wrapped under the
      conjunction of the input policies.
    - {!Critical}: reviewed, signed closures that may externalize data.
      Running one checks the data's policy against a developer-provided
      context first, and (in release mode) validates the reviewer
      signature against the region's current code hash.

    Every region registers itself in {!Registry} for the developer-effort
    tables. *)

module Scrut = Sesame_scrutinizer
module Sbx = Sesame_sandbox
module Sign = Sesame_signing

type error =
  | Not_leakage_free of Scrut.Analysis.verdict
      (** Scrutinizer rejected the region's IR model *)
  | Policy_denied of { policy : string; context : string }
  | Unsigned of { region : string }
  | Signature_invalid of Sign.Keystore.error
  | Hashing_failed of string
  | Decode_failed of string  (** sandbox output did not decode *)
  | Sandbox_trapped of { region : string; trap : Sbx.Runtime.trap }
      (** the guest trapped or blew a budget; fail closed, arena
          quarantined by the runtime *)
  | Quota_denied of { region : string; state : string }
      (** the region exceeded its cumulative resource quota, or its
          usage could not be accounted; [state] names the breached
          limit, never guest data *)
  | Attest_failed of { region : string }
      (** the run's attestation manifest (or the region's installation
          approval) could not be appended; an unattested run is never
          served *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

module Verified : sig
  type ('a, 'b) t

  val make :
    app:string ->
    program:Scrut.Program.t ->
    ?allowlist:Scrut.Allowlist.t ->
    spec:Scrut.Spec.t ->
    f:('a -> 'b) ->
    unit ->
    (('a, 'b) t, error) result
  (** Runs Scrutinizer on [spec]; [Error (Not_leakage_free v)] on
      rejection. [f] is the executable closure whose behaviour [spec]
      models (see DESIGN.md on this substitution). *)

  val verdict : _ t -> Scrut.Analysis.verdict
  val name : _ t -> string

  val run : ('a, 'b) t -> 'a Pcon.t -> 'b Pcon.t
  (** Unwraps, applies [f], re-wraps under the same policy. *)

  val run2 : ('a * 'b, 'c) t -> 'a Pcon.t -> 'b Pcon.t -> 'c Pcon.t
  (** Conjunction of both policies on the output. *)

  val run_list : ('a list, 'b) t -> 'a Pcon.t list -> 'b Pcon.t
end

module Sandboxed : sig
  type ('a, 'b) t

  val make :
    app:string ->
    name:string ->
    ?config:Sbx.Runtime.config ->
    ?source:string ->
    ?quota:Sbx.Quota.t ->
    ?verdict:string ->
    loc:int ->
    encode:('a -> Sbx.Value.t) ->
    decode:(Sbx.Value.t -> ('b, string) result) ->
    f:(Sbx.Value.t -> Sbx.Value.t) ->
    unit ->
    ('a, 'b) t
  (** [loc] is the closure's size for Fig. 6 accounting. The default
      config is the module-wide pooled/swizzle/2× one.

      Hardening hooks: [source] is the region body text bound into the
      body hash (default: the [(app, name)] installation site);
      [quota] enrolls the region with a cumulative resource accountant
      — runs past the allowance degrade to {!error.Quota_denied};
      [verdict] (default ["sandboxed:delegated"]) is the verdict
      fingerprint recorded in attestation frames. When an ambient
      {!Sign.Attest} recorder is installed, [make] appends the region's
      approval frame; if that append fails, every later run of this
      region fails closed with {!error.Attest_failed}. *)

  val name : _ t -> string

  val body_hash : _ t -> Sign.Sha256.t
  (** The hash quota books and attestation frames are keyed by. *)

  val quota_counters : _ t -> Sbx.Quota.counters option
  (** This region's cumulative books, if it was enrolled with a quota. *)

  val run : ('a, 'b) t -> 'a Pcon.t -> ('b Pcon.t, error) result
  (** Copies the encoded input into the sandbox, runs [f] on the copy,
      decodes the copied-out result, and wraps it under the input's
      policy. With a [quota], the run is gated on the region's books
      first and its usage charged after; with an ambient attestation
      recorder, the signed run manifest is appended before the result
      (or trap) is surfaced — either failing closed. *)

  val run_list : ('a, 'b) t -> 'a Pcon.t list -> ('b Pcon.t, error) result
  (** Folds the inputs out first ([encode] then sees a ['a] per element via
      {!Sbx.Value.Vec}); requires [encode] to accept each element — use
      when the region consumes a batch. The output policy is the
      conjunction of all input policies. *)

  val last_timings : _ t -> Sbx.Runtime.timings option
  (** Boundary-cost breakdown of the most recent invocation. *)
end

module Critical : sig
  type ('a, 'b) t

  val make :
    app:string ->
    program:Scrut.Program.t ->
    ?allowlist:Scrut.Allowlist.t ->
    spec:Scrut.Spec.t ->
    lockfile:Sign.Lockfile.t ->
    keystore:Sign.Keystore.t ->
    ?quota:Sbx.Quota.t ->
    f:(context:Context.t -> 'a -> 'b) ->
    unit ->
    (('a, 'b) t, error) result
  (** Hashes the region (normalized sources of its call graph + pinned
      dependency versions, §7.3); fails if a reached external dependency is
      not in the lockfile. When [quota] is given, runs are admitted and
      accounted against it, keyed by the region digest — the raw-policy
      path is not exempt from the books. *)

  val name : _ t -> string
  val digest : _ t -> Sign.Sha256.t
  val review_burden_loc : _ t -> int

  val sign : _ t -> reviewer:string -> at:int -> (unit, error) result
  (** Asks the keystore to sign the current digest and attaches the
      signature. *)

  val attach_signature : _ t -> Sign.Signature.t -> unit
  (** For signatures produced out-of-band (e.g. in a review tool). *)

  val signature : _ t -> Sign.Signature.t option

  val validate_signature : _ t -> (unit, error) result
  (** The release-build check: a signature must be attached, must MAC-check
      under a registered, unrevoked reviewer key, and must cover the
      region's {e current} digest. *)

  val quota_counters : _ t -> Sbx.Quota.counters option

  val run : ('a, 'b) t -> context:Context.t -> 'a Pcon.t -> ('b, error) result
  (** Validates the signature (release mode only), admits the run against
      the quota (if any — refusals surface as [Quota_denied]), checks the
      input's policy against [context], then runs [f] on the raw data and
      charges the books (fuel/mem 0 — the body is unsandboxed — wall-clock
      and trap counts are real). The result is {e not} wrapped: critical
      regions may externalize. *)
end
