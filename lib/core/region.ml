module Scrut = Sesame_scrutinizer
module Sbx = Sesame_sandbox
module Sign = Sesame_signing

type error =
  | Not_leakage_free of Scrut.Analysis.verdict
  | Policy_denied of { policy : string; context : string }
  | Unsigned of { region : string }
  | Signature_invalid of Sign.Keystore.error
  | Hashing_failed of string
  | Decode_failed of string
  | Sandbox_trapped of { region : string; trap : Sbx.Runtime.trap }
  | Quota_denied of { region : string; state : string }
  | Attest_failed of { region : string }

let pp_error fmt = function
  | Not_leakage_free v ->
      Format.fprintf fmt "region is not leakage-free: %a" Scrut.Analysis.pp_verdict v
  | Policy_denied { policy; context } ->
      Format.fprintf fmt "policy check failed: %s against context [%s]" policy context
  | Unsigned { region } ->
      Format.fprintf fmt "critical region %s has no reviewer signature" region
  | Signature_invalid e ->
      Format.fprintf fmt "signature invalid: %a" Sign.Keystore.pp_error e
  | Hashing_failed msg -> Format.fprintf fmt "region hashing failed: %s" msg
  | Decode_failed msg -> Format.fprintf fmt "sandbox output decode failed: %s" msg
  | Sandbox_trapped { region; trap } ->
      Format.fprintf fmt "sandboxed region %s trapped: %a" region Sbx.Runtime.pp_trap trap
  | Quota_denied { region; state } ->
      Format.fprintf fmt "sandboxed region %s refused: %s" region state
  | Attest_failed { region } ->
      Format.fprintf fmt "region %s could not be attested; failing closed" region

let error_to_string e = Format.asprintf "%a" pp_error e

let check_policy policy context =
  match Policy.check_verbose policy context with
  | Ok () -> Ok ()
  | Error msg ->
      Error (Policy_denied { policy = msg; context = Context.describe context })

(* Attestation hooks. When an ambient recorder is installed
   (Sign.Attest.install — bench serve, the demo with --attest-log),
   every region installation appends an approval frame binding its body
   hash to the verdict it was installed under, and every sandboxed run
   appends a signed manifest. A frame that cannot be appended fails the
   region closed: an unattested run must not be served. *)

let record_approval ~kind ~body_hash ~verdict =
  match Sign.Attest.current () with
  | None -> Ok ()
  | Some recorder -> Sign.Attest.append_approval recorder ~kind ~body_hash ~verdict

module Verified = struct
  type ('a, 'b) t = {
    name : string;
    f : 'a -> 'b;
    verdict : Scrut.Analysis.verdict;
  }

  let make ~app ~program ?allowlist ~spec ~f () =
    let verdict = Scrut.Analysis.check ?allowlist program spec in
    if not verdict.Scrut.Analysis.accepted then Error (Not_leakage_free verdict)
    else begin
      let name = spec.Scrut.Spec.name in
      Registry.register
        {
          Registry.app;
          region = name;
          kind = Registry.Verified;
          loc = Scrut.Spec.loc spec;
          review_loc = 0;
        };
      let body_hash = Sign.Sha256.digest_list [ "sesame-vr-body-v1"; app; name ] in
      match record_approval ~kind:"verified" ~body_hash ~verdict:"scrutinizer:accepted" with
      | Error _ -> Error (Attest_failed { region = name })
      | Ok () -> Ok { name; f; verdict }
    end

  let verdict t = t.verdict
  let name t = t.name

  let run t pcon = Pcon.Internal.map t.f pcon
  let run2 t a b = Pcon.Internal.map2 (fun x y -> t.f (x, y)) a b

  let run_list t pcons =
    let folded = Fold.out_list pcons in
    Pcon.Internal.map t.f folded
end

module Sandboxed = struct
  type ('a, 'b) t = {
    name : string;
    config : Sbx.Runtime.config;
    encode : 'a -> Sbx.Value.t;
    decode : Sbx.Value.t -> ('b, string) result;
    f : Sbx.Value.t -> Sbx.Value.t;
    body_hash : Sign.Sha256.t;
    body_hex : string;
    verdict : string;
    quota : Sbx.Quota.t option;
    preflight_hex : string;
    budgets_str : string;
    attest_broken : bool;
    mutable last : Sbx.Runtime.timings option;
  }

  let budget_string (b : Sbx.Runtime.budget) =
    let parts =
      List.filter_map Fun.id
        [
          Option.map (Printf.sprintf "deadline=%.3fs") b.Sbx.Runtime.deadline_s;
          Option.map (Printf.sprintf "fuel=%d") b.Sbx.Runtime.fuel;
          Option.map (Printf.sprintf "mem=%d") b.Sbx.Runtime.mem_bytes;
        ]
    in
    if parts = [] then "unbounded" else String.concat " " parts

  (* Outcome classes only — never trap detail, which can carry a guest
     exception rendering. *)
  let trap_class = function
    | Sbx.Runtime.Guest_exception _ -> "trap:guest-exception"
    | Sbx.Runtime.Syscall_blocked _ -> "trap:syscall-blocked"
    | Sbx.Runtime.Sandbox_fault _ -> "trap:sandbox-fault"
    | Sbx.Runtime.Fault_injected _ -> "trap:fault-injected"
    | Sbx.Runtime.Deadline_exceeded _ -> "trap:deadline"
    | Sbx.Runtime.Fuel_exhausted _ -> "trap:fuel"
    | Sbx.Runtime.Memory_exceeded _ -> "trap:memory"

  let make ~app ~name ?(config = Sbx.Runtime.default_config) ?source ?quota
      ?(verdict = "sandboxed:delegated") ~loc ~encode ~decode ~f () =
    Registry.register
      { Registry.app; region = name; kind = Registry.Sandboxed; loc; review_loc = 0 };
    (* The body hash keys quota books and attestation frames. [source]
       lets apps bind the actual region body text; absent that, the
       (app, name) pair identifies the installation site. *)
    let source = Option.value source ~default:(app ^ "/" ^ name) in
    let body_hash = Sign.Sha256.digest_list [ "sesame-sbx-body-v1"; app; name; source ] in
    let preflight_hex =
      match config.Sbx.Runtime.mode with
      | Sbx.Runtime.Pooled pool -> (
          match Sbx.Pool.preflight_report pool with
          | Some r -> Sign.Sha256.to_hex (Sign.Sha256.digest_string (Sbx.Preflight.render r))
          | None -> "none")
      | Sbx.Runtime.Naive -> "none"
    in
    (* [make] cannot fail, so a broken approval append latches: every
       run of this region then fails closed with [Attest_failed]. *)
    let attest_broken =
      match record_approval ~kind:"sandboxed" ~body_hash ~verdict with
      | Ok () -> false
      | Error _ -> true
    in
    {
      name;
      config;
      encode;
      decode;
      f;
      body_hash;
      body_hex = Sign.Sha256.to_hex body_hash;
      verdict;
      quota;
      preflight_hex;
      budgets_str = budget_string config.Sbx.Runtime.budget;
      attest_broken;
      last = None;
    }

  let name t = t.name
  let body_hash t = t.body_hash
  let quota_counters t =
    Option.bind t.quota (fun q -> Sbx.Quota.counters_for q ~key:t.body_hex)

  let record_run t (outcome : Sbx.Runtime.outcome) =
    match Sign.Attest.current () with
    | None -> Ok ()
    | Some recorder ->
        let outcome_str =
          match outcome.Sbx.Runtime.status with
          | Sbx.Runtime.Ok _ -> "ok"
          | Sbx.Runtime.Trapped trap -> trap_class trap
        in
        let quota_str =
          match t.quota with
          | None -> "off"
          | Some q -> Sbx.Quota.state_string q ~key:t.body_hex
        in
        Sign.Attest.append_run recorder ~region:t.name ~body_hash:t.body_hash
          ~verdict:t.verdict ~budgets:t.budgets_str ~outcome:outcome_str ~quota:quota_str
          ~preflight:t.preflight_hex

  let run_value t policy value =
    let deny state = Error (Quota_denied { region = t.name; state }) in
    let admitted =
      match t.quota with
      | None -> Result.Ok ()
      | Some q -> (
          match Sbx.Quota.admit q ~key:t.body_hex with
          | Sbx.Quota.Admit -> Result.Ok ()
          | refused -> deny (Sbx.Quota.admission_message refused))
    in
    match admitted with
    | Error _ as e -> e
    | Ok () ->
        if t.attest_broken then Error (Attest_failed { region = t.name })
        else begin
          let outcome = Sbx.Runtime.run t.config ~input:value ~f:t.f in
          t.last <- Some outcome.Sbx.Runtime.timings;
          let trapped =
            match outcome.Sbx.Runtime.status with
            | Sbx.Runtime.Trapped _ -> true
            | Sbx.Runtime.Ok _ -> false
          in
          let accounted =
            match t.quota with
            | None -> Result.Ok ()
            | Some q -> (
                match
                  Sbx.Quota.account q ~key:t.body_hex ~trapped
                    ~fuel:outcome.Sbx.Runtime.usage.Sbx.Runtime.fuel_used
                    ~wall_s:(Sbx.Runtime.total_s outcome.Sbx.Runtime.timings)
                    ~mem_bytes:outcome.Sbx.Runtime.usage.Sbx.Runtime.mem_bytes
                with
                | () -> Result.Ok ()
                | exception Sesame_faults.Injected _ ->
                    (* The books could not be charged: the run must not
                       be served unaccounted. *)
                    deny "usage accounting failed; result withheld")
          in
          match accounted with
          | Error _ as e -> e
          | Ok () -> (
              match record_run t outcome with
              | Error _ -> Error (Attest_failed { region = t.name })
              | Ok () -> (
                  match outcome.Sbx.Runtime.status with
                  | Sbx.Runtime.Trapped trap ->
                      Error (Sandbox_trapped { region = t.name; trap })
                  | Sbx.Runtime.Ok value -> (
                      match t.decode value with
                      | Ok result -> Ok (Pcon.Internal.make policy result)
                      | Error msg -> Error (Decode_failed msg))))
        end

  let run t pcon =
    run_value t (Pcon.policy pcon) (t.encode (Pcon.Internal.unwrap pcon))

  let run_list t pcons =
    let folded = Fold.out_list pcons in
    let elems = List.map t.encode (Pcon.Internal.unwrap folded) in
    run_value t (Pcon.policy folded) (Sbx.Value.Vec elems)

  let last_timings t = t.last
end

module Critical = struct
  type ('a, 'b) t = {
    name : string;
    f : context:Context.t -> 'a -> 'b;
    digest : Sign.Sha256.t;
    digest_hex : string;  (* keys the quota books, like [Sandboxed.body_hex] *)
    review_loc : int;
    keystore : Sign.Keystore.t;
    quota : Sbx.Quota.t option;
    mutable signature : Sign.Signature.t option;
  }

  let make ~app ~program ?(allowlist = Scrut.Allowlist.default) ~spec ~lockfile ~keystore
      ?quota ~f () =
    let graph = Scrut.Callgraph.collect program ~allowlist spec in
    let input =
      {
        Sign.Region_hash.entry = spec.Scrut.Spec.name;
        functions = Scrut.Callgraph.in_crate_sources graph spec;
        external_deps = Scrut.Callgraph.external_packages graph;
        lockfile;
      }
    in
    match Sign.Region_hash.compute input with
    | Error msg -> Error (Hashing_failed msg)
    | Ok digest -> (
        let review_loc = Sign.Region_hash.review_burden_loc input in
        Registry.register
          {
            Registry.app;
            region = spec.Scrut.Spec.name;
            kind = Registry.Critical;
            loc = Scrut.Spec.loc spec;
            review_loc;
          };
        (* The critical region's body hash IS its review digest. *)
        match record_approval ~kind:"critical" ~body_hash:digest ~verdict:"critical:reviewed" with
        | Error _ -> Error (Attest_failed { region = spec.Scrut.Spec.name })
        | Ok () ->
            Ok
              {
                name = spec.Scrut.Spec.name;
                f;
                digest;
                digest_hex = Sign.Sha256.to_hex digest;
                review_loc;
                keystore;
                quota;
                signature = None;
              })

  let name t = t.name
  let digest t = t.digest
  let review_burden_loc t = t.review_loc

  let sign t ~reviewer ~at =
    match Sign.Keystore.sign t.keystore ~reviewer ~at t.digest with
    | Ok signature ->
        t.signature <- Some signature;
        Ok ()
    | Error e -> Error (Signature_invalid e)

  let attach_signature t signature = t.signature <- Some signature
  let signature t = t.signature

  let validate_signature t =
    match t.signature with
    | None -> Error (Unsigned { region = t.name })
    | Some signature -> (
        match Sign.Keystore.verify t.keystore signature ~digest:t.digest with
        | Ok () -> Ok ()
        | Error e -> Error (Signature_invalid e))

  let ( let* ) = Result.bind

  let quota_counters t =
    Option.bind t.quota (fun q -> Sbx.Quota.counters_for q ~key:t.digest_hex)

  (* Critical runs go through the same books as sandboxed ones: the
     raw-policy path is not exempt from admission. Fuel and memory are 0
     (the body runs unsandboxed, so only wall-clock and run counts are
     observable); an exception still charges a trap before re-raising. *)
  let run t ~context pcon =
    let deny state = Error (Quota_denied { region = t.name; state }) in
    let* () =
      if Build_mode.is_release () then validate_signature t else Ok ()
    in
    let* () =
      match t.quota with
      | None -> Ok ()
      | Some q -> (
          match Sbx.Quota.admit q ~key:t.digest_hex with
          | Sbx.Quota.Admit -> Ok ()
          | refused -> deny (Sbx.Quota.admission_message refused))
    in
    let* () = check_policy (Pcon.policy pcon) context in
    let started = Sesame_clock.now_s () in
    let account ~trapped =
      match t.quota with
      | None -> Ok ()
      | Some q -> (
          match
            Sbx.Quota.account q ~key:t.digest_hex ~trapped ~fuel:0
              ~wall_s:(Sesame_clock.now_s () -. started)
              ~mem_bytes:0
          with
          | () -> Ok ()
          | exception Sesame_faults.Injected _ ->
              (* The books could not be charged: the run must not be
                 served unaccounted. *)
              deny "usage accounting failed; result withheld")
    in
    match t.f ~context (Pcon.Internal.unwrap pcon) with
    | result ->
        let* () = account ~trapped:false in
        Ok result
    | exception exn ->
        (* Charge the trap even though the caller sees the exception —
           a region that always raises must still exhaust its quota. An
           injected accounting fault here is moot: the raise already
           withholds the result. *)
        (match account ~trapped:true with Ok () | Error _ -> ());
        raise exn
end
