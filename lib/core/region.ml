module Scrut = Sesame_scrutinizer
module Sbx = Sesame_sandbox
module Sign = Sesame_signing

type error =
  | Not_leakage_free of Scrut.Analysis.verdict
  | Policy_denied of { policy : string; context : string }
  | Unsigned of { region : string }
  | Signature_invalid of Sign.Keystore.error
  | Hashing_failed of string
  | Decode_failed of string
  | Sandbox_trapped of { region : string; trap : Sbx.Runtime.trap }

let pp_error fmt = function
  | Not_leakage_free v ->
      Format.fprintf fmt "region is not leakage-free: %a" Scrut.Analysis.pp_verdict v
  | Policy_denied { policy; context } ->
      Format.fprintf fmt "policy check failed: %s against context [%s]" policy context
  | Unsigned { region } ->
      Format.fprintf fmt "critical region %s has no reviewer signature" region
  | Signature_invalid e ->
      Format.fprintf fmt "signature invalid: %a" Sign.Keystore.pp_error e
  | Hashing_failed msg -> Format.fprintf fmt "region hashing failed: %s" msg
  | Decode_failed msg -> Format.fprintf fmt "sandbox output decode failed: %s" msg
  | Sandbox_trapped { region; trap } ->
      Format.fprintf fmt "sandboxed region %s trapped: %a" region Sbx.Runtime.pp_trap trap

let error_to_string e = Format.asprintf "%a" pp_error e

let check_policy policy context =
  match Policy.check_verbose policy context with
  | Ok () -> Ok ()
  | Error msg ->
      Error (Policy_denied { policy = msg; context = Context.describe context })

module Verified = struct
  type ('a, 'b) t = {
    name : string;
    f : 'a -> 'b;
    verdict : Scrut.Analysis.verdict;
  }

  let make ~app ~program ?allowlist ~spec ~f () =
    let verdict = Scrut.Analysis.check ?allowlist program spec in
    if not verdict.Scrut.Analysis.accepted then Error (Not_leakage_free verdict)
    else begin
      Registry.register
        {
          Registry.app;
          region = spec.Scrut.Spec.name;
          kind = Registry.Verified;
          loc = Scrut.Spec.loc spec;
          review_loc = 0;
        };
      Ok { name = spec.Scrut.Spec.name; f; verdict }
    end

  let verdict t = t.verdict
  let name t = t.name

  let run t pcon = Pcon.Internal.map t.f pcon
  let run2 t a b = Pcon.Internal.map2 (fun x y -> t.f (x, y)) a b

  let run_list t pcons =
    let folded = Fold.out_list pcons in
    Pcon.Internal.map t.f folded
end

module Sandboxed = struct
  type ('a, 'b) t = {
    name : string;
    config : Sbx.Runtime.config;
    encode : 'a -> Sbx.Value.t;
    decode : Sbx.Value.t -> ('b, string) result;
    f : Sbx.Value.t -> Sbx.Value.t;
    mutable last : Sbx.Runtime.timings option;
  }

  let make ~app ~name ?(config = Sbx.Runtime.default_config) ~loc ~encode ~decode ~f () =
    Registry.register
      { Registry.app; region = name; kind = Registry.Sandboxed; loc; review_loc = 0 };
    { name; config; encode; decode; f; last = None }

  let name t = t.name

  let run_value t policy value =
    let outcome = Sbx.Runtime.run t.config ~input:value ~f:t.f in
    t.last <- Some outcome.Sbx.Runtime.timings;
    match outcome.Sbx.Runtime.status with
    | Sbx.Runtime.Trapped trap -> Error (Sandbox_trapped { region = t.name; trap })
    | Sbx.Runtime.Ok value -> (
        match t.decode value with
        | Ok result -> Ok (Pcon.Internal.make policy result)
        | Error msg -> Error (Decode_failed msg))

  let run t pcon =
    run_value t (Pcon.policy pcon) (t.encode (Pcon.Internal.unwrap pcon))

  let run_list t pcons =
    let folded = Fold.out_list pcons in
    let elems = List.map t.encode (Pcon.Internal.unwrap folded) in
    run_value t (Pcon.policy folded) (Sbx.Value.Vec elems)

  let last_timings t = t.last
end

module Critical = struct
  type ('a, 'b) t = {
    name : string;
    f : context:Context.t -> 'a -> 'b;
    digest : Sign.Sha256.t;
    review_loc : int;
    keystore : Sign.Keystore.t;
    mutable signature : Sign.Signature.t option;
  }

  let make ~app ~program ?(allowlist = Scrut.Allowlist.default) ~spec ~lockfile ~keystore
      ~f () =
    let graph = Scrut.Callgraph.collect program ~allowlist spec in
    let input =
      {
        Sign.Region_hash.entry = spec.Scrut.Spec.name;
        functions = Scrut.Callgraph.in_crate_sources graph spec;
        external_deps = Scrut.Callgraph.external_packages graph;
        lockfile;
      }
    in
    match Sign.Region_hash.compute input with
    | Error msg -> Error (Hashing_failed msg)
    | Ok digest ->
        let review_loc = Sign.Region_hash.review_burden_loc input in
        Registry.register
          {
            Registry.app;
            region = spec.Scrut.Spec.name;
            kind = Registry.Critical;
            loc = Scrut.Spec.loc spec;
            review_loc;
          };
        Ok
          {
            name = spec.Scrut.Spec.name;
            f;
            digest;
            review_loc;
            keystore;
            signature = None;
          }

  let name t = t.name
  let digest t = t.digest
  let review_burden_loc t = t.review_loc

  let sign t ~reviewer ~at =
    match Sign.Keystore.sign t.keystore ~reviewer ~at t.digest with
    | Ok signature ->
        t.signature <- Some signature;
        Ok ()
    | Error e -> Error (Signature_invalid e)

  let attach_signature t signature = t.signature <- Some signature
  let signature t = t.signature

  let validate_signature t =
    match t.signature with
    | None -> Error (Unsigned { region = t.name })
    | Some signature -> (
        match Sign.Keystore.verify t.keystore signature ~digest:t.digest with
        | Ok () -> Ok ()
        | Error e -> Error (Signature_invalid e))

  let ( let* ) = Result.bind

  let run t ~context pcon =
    let* () =
      if Build_mode.is_release () then validate_signature t else Ok ()
    in
    let* () = check_policy (Pcon.policy pcon) context in
    Ok (t.f ~context (Pcon.Internal.unwrap pcon))
end
