(** The Sesame-enabled database connector (§4 "Sources"/"Sinks", §8).

    Wraps the relational engine so that (i) query results come back as
    {!Pcon_row.t}s whose cells carry the policies attached to their columns
    (the [#[db_policy(table, columns)]] bindings of Fig. 3, instantiated
    per row via the binding's [from_row] function); and (ii) PCon-wrapped
    parameters and inserts are policy-checked against a {e trusted} context
    before the data reaches the database.

    Aggregate queries return cells wrapped under the conjunction of the
    aggregated column's per-row policies, so released aggregates remain
    governed by every contributor's policy until a sink check passes.

    The connector is the single choke point where enforcement meets a
    fallible backend, so every failure path fails {e closed}: policy
    checks that raise deny; transient database errors are retried with
    capped exponential backoff and jitter; persistent failure trips a
    per-sink circuit breaker that short-circuits calls (as
    {!Breaker_open}) until a cooldown passes and a probe succeeds. *)

module Db = Sesame_db

type error =
  | Untrusted_context
      (** built-in sinks accept only Sesame-created contexts (§6) *)
  | Policy_denied of {
      policy : string;
      context : string;
      sink : string;  (** the sink whose check failed, e.g. ["db::query"] *)
      param_index : int option;  (** 0-based position of the denied parameter *)
    }
  | Db_error of { message : string; transient : bool }
      (** [transient] failures were retried and may succeed later;
          permanent ones (SQL errors, schema mismatches) never will *)
  | Breaker_open of { sink : string }
      (** the sink's circuit breaker is open: the call was rejected
          without touching the database *)
  | Deadline_exceeded of { sink : string; message : string }
      (** the request's deadline budget ran out at (or inside) this
          sink; never retried — the refusal is fast by design *)
  | Brownout_write_refused of { sink : string }
      (** the durable store is poisoned and serving read-only from its
          last consistent snapshot; writes refuse until recovery *)

val pp_error : Format.formatter -> error -> unit

val error_response : ?retry_after_s:int -> error -> Sesame_http.Response.t
(** The shared client-facing rendering: every variant maps to a generic
    body ("internal error", "policy check failed", …) so backend error
    strings — SQL messages, quarantine reasons, injected-fault
    descriptions — are never echoed to the requester. Applications
    should route connector errors through this instead of formatting
    their own bodies. Every 503 rendering ({!Breaker_open},
    {!Deadline_exceeded}, {!Brownout_write_refused}) carries a
    [Retry-After] header ([retry_after_s], default 1). *)

val is_transient_db_message : string -> bool
(** The transient/permanent classifier applied to backend error strings
    (matches the ["transient: "] prefix used by injected faults plus
    common timeout/connection markers). *)

type t

val create : Db.Database.t -> t
val database : t -> Db.Database.t
(** Escape hatch for schema setup and test fixtures; reading application
    data through it bypasses Sesame and is the moral equivalent of not
    using the mandated libraries. *)

val create_durable :
  ?config:Sesame_wal.Durable.config ->
  dir:string ->
  unit ->
  (t * Sesame_wal.Durable.t, Sesame_wal.Durable.error) result
(** A connector over a crash-consistent durable store rooted at [dir]
    (WAL + checkpoints; see {!Sesame_wal.Durable}). Every accepted write
    is journaled together with the policy provenance derived from this
    connector's {!attach_policy} bindings — instantiated on the inserted
    row, so row-dependent families record their exact parameters — and
    recovery refuses to load any row whose journaled policy constructors
    are not registered. Registers the built-in families; applications
    must {!Sesame_wal.Provenance.register} their own before calling
    (and before any reopen). Attach bindings before serving traffic so
    provenance is in place from the first write. *)

(** {1 Brownout (degraded read-only serving)}

    When the durable store poisons mid-flight (a journal fault, a quota
    quarantine), a durable connector does not go dark: the first read to
    notice rebuilds the last consistent on-disk state via
    {!Sesame_wal.Durable.read_state} and serves reads from it — under
    full policy enforcement — while marking each such response degraded
    ({!Sesame_http.Serving.mark_degraded}); writes refuse with
    {!Brownout_write_refused} until {!exit_brownout} recovers the
    store. In-memory connectors have no snapshot and keep the original
    whole-store fail-closed behavior. *)

val in_brownout : t -> bool
(** Is a brownout snapshot currently serving reads? *)

val brownout_entries : t -> int
(** Times this connector transitioned into brownout (monotone). *)

val exit_brownout : t -> (Sesame_wal.Durable.t, string) result
(** Close the poisoned store, recover a fresh writable one from disk,
    and swap it in; clears the snapshot. On failure (including an
    injected [brownout-exit] fault) the connector {e stays} degraded.
    Returns the new store handle so callers can rebind checkpoint and
    flush plumbing. Errors on connectors without a durable store. *)

(** {1 Resilience} *)

type retry_policy = {
  max_attempts : int;  (** total attempts, including the first *)
  base_delay_s : float;
  max_delay_s : float;  (** backoff cap *)
  jitter : float;  (** ± fraction applied to each delay *)
}

val default_retry : retry_policy
(** 3 attempts, 1 ms base, 50 ms cap, 20% jitter. *)

type breaker_config = {
  failure_threshold : int;
      (** consecutive exhausted (post-retry) transient failures before
          the breaker opens *)
  cooldown_s : float;  (** open → half-open delay *)
}

val default_breaker : breaker_config

type breaker_state = Closed | Open | Half_open

val breaker_state_name : breaker_state -> string

type sink_stats = {
  state : breaker_state;
  consecutive_failures : int;
  opens : int;  (** times the breaker tripped *)
  short_circuited : int;  (** calls rejected while open *)
  retries : int;
  attempts : int;
}

val configure_resilience :
  t ->
  ?retry:retry_policy ->
  ?breaker:breaker_config ->
  ?seed:int ->
  ?sleep:(float -> unit) ->
  ?now:(unit -> float) ->
  unit ->
  unit
(** [seed] reseeds the jitter RNG (the backoff sequence is a pure
    function of the seed); [sleep] and [now] replace the busy-wait sleep
    and {!Sesame_clock} reads so tests run the breaker script on a fake
    clock without waiting. *)

val sink_stats : t -> string -> sink_stats
(** Health of one sink's breaker (e.g. ["db::query"]); creates a fresh
    closed record if the sink was never used. *)

val breaker_state : t -> sink:string -> breaker_state

(** {1 Policy bindings} *)

type policy_source = Db.Schema.t -> Db.Row.t -> Policy.t
(** Instantiates a policy from the row it protects (Fig. 3's
    [from_row]). *)

val attach_policy :
  ?to_expr:(Context.t -> Db.Expr.t option) ->
  t ->
  table:string ->
  column:string ->
  policy_source ->
  unit
(** Later attachments to the same column replace earlier ones. Columns
    without a binding yield [NoPolicy] cells.

    [to_expr] is the binding's predicate-pushdown translation: for a
    given context it may return a row predicate admitting {e exactly}
    the rows whose bound policy admits that context (or [None] to
    decline). When present, {!query_filtered} and {!query_agg} can
    filter denied rows during the indexed scan instead of instantiating
    per-row policy objects post-hoc. Rebinding without [to_expr] drops
    any previous translation, and always drops {!certify_binding}
    claims and bumps the {!binding_version}. *)

val binding_version : t -> table:string -> column:string -> int
(** Monotone counter bumped by every {!attach_policy} on the binding
    (0 = never bound): the cheap revalidation handle for
    {!Enforce.Plan} certificates issued against the binding. *)

val certify_binding : t -> table:string -> column:string -> families:string list -> unit
(** App-supplied static claim: every policy this binding produces has
    conjunction leaves within [families]. Together with
    {!Enforce.Plan.declare_endpoint_sinks} and installed certificates,
    it lets {!query_agg} discharge a whole group conjunction without
    instantiating any per-row policy. Dropped on rebinding. *)

(** {1 Sinks} *)

val query :
  t ->
  context:Context.t ->
  string ->
  params:Db.Value.t Pcon.t list ->
  (Pcon_row.t list, error) result
(** A [SELECT *] statement. Each PCon parameter is policy-checked against
    [context] (the read is a sink for the parameter data) before the query
    runs; a denial names the parameter's 0-based index. *)

val query_filtered :
  t ->
  context:Context.t ->
  on:string ->
  string ->
  params:Db.Value.t Pcon.t list ->
  (Pcon_row.t list, error) result
(** {!query} restricted to the rows whose [on]-column policy admits
    [context] — the "fetch everything I may use" shape (e.g. training
    data selection). Reference semantics: run the query, then drop rows
    whose [on] cell policy denies. When pushdown is enabled and the
    [on] binding's [to_expr] speaks for this context, the predicate is
    conjoined into the scan instead; both paths return byte-identical
    rows, in scan order, with identical cell policies attached. *)

val query_agg :
  t ->
  context:Context.t ->
  string ->
  params:Db.Value.t Pcon.t list ->
  ((string * Db.Value.t Pcon.t) list list, error) result
(** An aggregate [SELECT]; each output row maps result columns to wrapped
    cells (group-by keys under the conjunction of their column's policies
    over the group, aggregates likewise). *)

val insert :
  t ->
  context:Context.t ->
  table:string ->
  (string * Db.Value.t Pcon.t) list ->
  (unit, error) result
(** Policy-checks every cell against [context] (sink ["db::insert"]),
    then inserts. *)

val execute :
  t ->
  context:Context.t ->
  string ->
  params:Db.Value.t Pcon.t list ->
  (int, error) result
(** UPDATE / DELETE with PCon parameters; returns the affected-row count. *)

val param : t -> Db.Value.t -> Db.Value.t Pcon.t
(** Wraps a literal the application itself produced (e.g. a constant) as a
    [NoPolicy] parameter. *)
