module Db = Sesame_db

type error =
  | Untrusted_context
  | Policy_denied of {
      policy : string;
      context : string;
      sink : string;
      param_index : int option;
    }
  | Db_error of { message : string; transient : bool }
  | Breaker_open of { sink : string }
  | Deadline_exceeded of { sink : string; message : string }
  | Brownout_write_refused of { sink : string }

let pp_error fmt = function
  | Untrusted_context ->
      Format.pp_print_string fmt "built-in sinks require a Sesame-created (trusted) context"
  | Policy_denied { policy; context; sink; param_index } ->
      Format.fprintf fmt "policy check failed at sink %s%s: %s against context [%s]" sink
        (match param_index with
        | Some i -> Printf.sprintf " (parameter %d)" i
        | None -> "")
        policy context
  | Db_error { message; transient } ->
      Format.fprintf fmt "database error (%s): %s"
        (if transient then "transient" else "permanent")
        message
  | Breaker_open { sink } ->
      Format.fprintf fmt "circuit breaker open for sink %s: failing closed" sink
  | Deadline_exceeded { sink; message } ->
      Format.fprintf fmt "request budget exhausted at sink %s: %s" sink message
  | Brownout_write_refused { sink } ->
      Format.fprintf fmt
        "durable store is in read-only brownout: write refused at sink %s" sink

(* Transient faults are worth retrying (contention, lost connections, the
   injector's Exhaust action); everything else — SQL errors, missing
   tables, type mismatches — is deterministic and must fail immediately. *)
let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let transient_markers =
  [ "transient:"; "timeout"; "timed out"; "unavailable"; "connection"; "deadlock" ]

let is_transient_db_message message =
  let lower = String.lowercase_ascii message in
  List.exists (contains_substring lower) transient_markers

(* Deadline refusals surface through the ordinary error channel as
   messages prefixed [Sesame_deadline.marker]; reclassify them so they
   are never mistaken for backend faults (and never retried — a request
   that is out of budget only gets further out of budget). *)
let db_error_at ~sink message =
  if Sesame_deadline.is_deadline_error message then Deadline_exceeded { sink; message }
  else Db_error { message; transient = is_transient_db_message message }

let db_error message = db_error_at ~sink:"db" message

(* The one client-facing rendering of connector errors. Bodies are
   generic on purpose: backend messages (SQL errors, quarantine reasons,
   injected-fault descriptions) carry schema and infrastructure detail
   that must never be echoed to the requester — the structured error and
   the server log keep it. Every 503 carries Retry-After: each of those
   states (open breaker, exhausted budget, brownout) is expected to
   clear, and honest load generators use the hint to back off. *)
let unavailable ~retry_after_s body =
  Sesame_http.Response.add_header
    (Sesame_http.Response.error (Sesame_http.Status.Code 503) body)
    "Retry-After"
    (string_of_int (max 0 retry_after_s))

let error_response ?(retry_after_s = 1) = function
  | Untrusted_context ->
      Sesame_http.Response.error Sesame_http.Status.Forbidden "untrusted context"
  | Policy_denied _ ->
      Sesame_http.Response.error Sesame_http.Status.Forbidden "policy check failed"
  | Breaker_open _ -> unavailable ~retry_after_s "service temporarily unavailable"
  | Deadline_exceeded _ -> unavailable ~retry_after_s "request deadline exceeded"
  | Brownout_write_refused _ ->
      unavailable ~retry_after_s "store is read-only while degraded"
  | Db_error _ ->
      Sesame_http.Response.error Sesame_http.Status.Internal_error "internal error"

(* ------------------------------------------------------------------ *)
(* Sink resilience: retry with capped exponential backoff + jitter, and a
   per-sink circuit breaker. Both are deterministic given a seeded RNG
   and injected clock/sleep (tests use a fake clock; production uses
   Sesame_clock and a busy-wait sleep). *)

type retry_policy = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  jitter : float;
}

let default_retry =
  { max_attempts = 3; base_delay_s = 0.001; max_delay_s = 0.050; jitter = 0.2 }

type breaker_config = { failure_threshold : int; cooldown_s : float }

let default_breaker = { failure_threshold = 5; cooldown_s = 1.0 }

type breaker_state = Closed | Open | Half_open

let breaker_state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type health = {
  mutable bstate : breaker_state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable opens : int;
  mutable short_circuited : int;
  mutable retries : int;
  mutable attempts : int;
}

type sink_stats = {
  state : breaker_state;
  consecutive_failures : int;
  opens : int;  (** times the breaker tripped *)
  short_circuited : int;  (** calls rejected while open *)
  retries : int;
  attempts : int;
}

type policy_source = Db.Schema.t -> Db.Row.t -> Policy.t

type t = {
  mutable db : Db.Database.t;
  (* [db] is mutable for one reason only: {!exit_brownout} swaps in the
     recovered store. Every request-path read goes through
     [with_brownout_read], which re-reads the field per attempt. *)
  bindings : (string * string, policy_source) Hashtbl.t;  (* (table, column) *)
  (* Optional binding-level row-predicate translations: the pushdown
     source. [f ctx] must admit exactly the rows whose bound policy
     admits [ctx]; [None] (or a [None] result) falls back to post-hoc
     per-row checks. *)
  translations : (string * string, Context.t -> Db.Expr.t option) Hashtbl.t;
  (* App-certified leaf-family universe of a binding: every policy the
     binding produces has its conjunction leaves within this list. Lets
     [query_agg] consult elision certificates without instantiating a
     single per-row policy. Cleared on rebinding. *)
  certified_families : (string * string, string list) Hashtbl.t;
  (* Monotone per-binding version, bumped by every [attach_policy]:
     the cheap revalidation handle for plan certificates. *)
  binding_versions : (string * string, int) Hashtbl.t;
  health : (string, health) Hashtbl.t;  (* per sink *)
  mutable retry : retry_policy;
  mutable breaker : breaker_config;
  mutable rng : Random.State.t;
  mutable sleep : float -> unit;
  mutable now : unit -> float;
  (* Aggregate group-policy cache: (table, column, WHERE, GROUP BY,
     group key) -> the conjunction of the group's per-row policies,
     stored with the validity token its build was captured under
     ({!Enforce.Validity}). Entries revalidate individually: in precise
     mode a write that touches none of an entry's recorded (table,
     shard) slots leaves that group warm — the old scheme reset the
     whole cache on any epoch move. Guarded by [agg_lock]: server
     domains share the connector. *)
  agg_cache :
    ( string * string * Db.Expr.t * string list * Db.Value.t list,
      Policy.t * Enforce.Validity.t )
    Hashtbl.t;
  agg_lock : Mutex.t;
  (* Brownout: installed by [create_durable]. [snapshot_load] rebuilds
     the last consistent on-disk state read-only; [reopen] closes the
     poisoned store and recovers a fresh writable one. *)
  mutable snapshot_load : (unit -> (Db.Database.t, string) result) option;
  mutable reopen : (unit -> (Sesame_wal.Durable.t, string) result) option;
  mutable brownout : Db.Database.t option;
  mutable brownout_entries : int;
}

(* Stale aggregate-cache entries are removed when probed; entries never
   probed again would otherwise accumulate, so a cap bounds the table.
   A reset is a cold start, never a wrong answer. *)
let agg_cache_max = 4096

let busy_sleep seconds =
  if seconds > 0.0 then begin
    let deadline = Sesame_clock.now_s () +. seconds in
    while Sesame_clock.now_s () < deadline do
      ignore (Sys.opaque_identity ())
    done
  end

let create db =
  {
    db;
    bindings = Hashtbl.create 16;
    translations = Hashtbl.create 16;
    certified_families = Hashtbl.create 16;
    binding_versions = Hashtbl.create 16;
    health = Hashtbl.create 8;
    retry = default_retry;
    breaker = default_breaker;
    rng = Random.State.make [| 0x5e5a; 0xe |];
    sleep = busy_sleep;
    now = Sesame_clock.now_s;
    agg_cache = Hashtbl.create 16;
    agg_lock = Mutex.create ();
    snapshot_load = None;
    reopen = None;
    brownout = None;
    brownout_entries = 0;
  }

let database t = t.db

(* ------------------------------------------------------------------ *)
(* Durable mode: the same connector over a crash-consistent store. The
   store's journal needs each row's policy provenance at write time;
   that is exactly what this connector's bindings know, so the
   provenance callback closes over the bindings table (shared with the
   connector built below) and instantiates the bound policy on the
   inserted row, flattening its conjuncts to (family name, parameters)
   pairs. Columns without a binding journal nothing — their cells are
   [NoPolicy] by construction and need no reconstruction. *)

let policy_leaves policy =
  Policy.conjuncts policy
  |> List.filter (fun leaf -> not (Policy.is_no_policy leaf))
  |> List.map (fun leaf ->
         { Sesame_wal.Provenance.ctor = Policy.name leaf; param = Policy.describe leaf })

let create_durable ?config ~dir () =
  Sesame_wal.Provenance.register (Policy.name Policy.no_policy);
  Sesame_wal.Provenance.register (Policy.name (Policy.deny_all ~reason:"builtin"));
  let bindings : (string * string, policy_source) Hashtbl.t = Hashtbl.create 16 in
  let store_ref = ref None in
  let provenance ~table ~column ~row =
    match Hashtbl.find_opt bindings (table, column) with
    | None -> []
    | Some source -> (
        let instantiated =
          match (row, !store_ref) with
          | Some row, Some store -> (
              match Db.Database.table (Sesame_wal.Durable.db store) table with
              | Some tbl -> ( try Some (source (Db.Table.schema tbl) row) with _ -> None)
              | None -> None)
          | _ -> None
        in
        match instantiated with Some p -> policy_leaves p | None -> [])
  in
  match Sesame_wal.Durable.open_store ?config ~provenance ~dir () with
  | Error _ as e -> e
  | Ok store ->
      store_ref := Some store;
      let snapshot_load () =
        match Sesame_wal.Durable.read_state ~dir with
        | Ok (db, _, _) -> Ok db
        | Error e -> Error (Sesame_wal.Durable.error_message e)
      in
      let reopen () =
        (match !store_ref with
        | Some old -> ignore (Sesame_wal.Durable.close old : (unit, string) result)
        | None -> ());
        match Sesame_wal.Durable.open_store ?config ~provenance ~dir () with
        | Error e -> Error (Sesame_wal.Durable.error_message e)
        | Ok store' ->
            store_ref := Some store';
            Ok store'
      in
      let t =
        {
          (create (Sesame_wal.Durable.db store)) with
          bindings;
          snapshot_load = Some snapshot_load;
          reopen = Some reopen;
        }
      in
      Ok (t, store)

let configure_resilience t ?retry ?breaker ?seed ?sleep ?now () =
  Option.iter (fun r -> t.retry <- r) retry;
  Option.iter (fun b -> t.breaker <- b) breaker;
  Option.iter (fun s -> t.rng <- Random.State.make [| s |]) seed;
  Option.iter (fun s -> t.sleep <- s) sleep;
  Option.iter (fun n -> t.now <- n) now

let health_for t sink =
  match Hashtbl.find_opt t.health sink with
  | Some h -> h
  | None ->
      let h =
        {
          bstate = Closed;
          consecutive_failures = 0;
          opened_at = 0.0;
          opens = 0;
          short_circuited = 0;
          retries = 0;
          attempts = 0;
        }
      in
      Hashtbl.add t.health sink h;
      h

(* An open breaker becomes half-open once the cooldown has elapsed; the
   next admitted call is the probe. *)
let refresh t h =
  if h.bstate = Open && t.now () -. h.opened_at >= t.breaker.cooldown_s then
    h.bstate <- Half_open

let trip t h =
  h.bstate <- Open;
  h.opened_at <- t.now ();
  h.opens <- h.opens + 1

let record_success (h : health) =
  h.consecutive_failures <- 0;
  h.bstate <- Closed

let record_failure t (h : health) =
  h.consecutive_failures <- h.consecutive_failures + 1;
  match h.bstate with
  | Half_open -> trip t h (* the probe failed: straight back to open *)
  | Closed -> if h.consecutive_failures >= t.breaker.failure_threshold then trip t h
  | Open -> ()

let sink_stats t sink : sink_stats =
  let h = health_for t sink in
  refresh t h;
  {
    state = h.bstate;
    consecutive_failures = h.consecutive_failures;
    opens = h.opens;
    short_circuited = h.short_circuited;
    retries = h.retries;
    attempts = h.attempts;
  }

let breaker_state t ~sink = (sink_stats t sink).state

(* Backoff before retry [k] (1-based): min(max, base·2^(k-1)), spread by
   ±jitter. The RNG is the connector's seeded state, so a fixed seed
   reproduces the exact delay sequence. *)
let backoff_delay t k =
  let exp = t.retry.base_delay_s *. (2.0 ** float_of_int (k - 1)) in
  let capped = Float.min t.retry.max_delay_s exp in
  let spread = 1.0 +. (t.retry.jitter *. ((2.0 *. Random.State.float t.rng 1.0) -. 1.0)) in
  Float.max 0.0 (capped *. spread)

(* Every built-in sink operation runs through this: short-circuit when the
   breaker is open, retry transient DB failures with backoff, and feed the
   breaker with the outcome. Policy denials and permanent errors pass
   through untouched — they are verdicts, not service-health signals. *)
let with_resilience t ~sink op =
  let h = health_for t sink in
  refresh t h;
  match h.bstate with
  | Open ->
      h.short_circuited <- h.short_circuited + 1;
      Error (Breaker_open { sink })
  | Closed | Half_open ->
      (* A deadline expiry raised mid-operation (e.g. from a scan
         checkpoint reached outside the statement executor) is a verdict
         on this request's budget, not a health signal: surface it
         structured, feed the breaker nothing, never retry. *)
      let op () =
        try op ()
        with Sesame_deadline.Expired what ->
          Error (Deadline_exceeded { sink; message = Sesame_deadline.error_message what })
      in
      let rec attempt k =
        h.attempts <- h.attempts + 1;
        match op () with
        | Ok _ as ok ->
            record_success h;
            ok
        | Error (Db_error { transient = true; _ }) as e ->
            if k < t.retry.max_attempts then begin
              h.retries <- h.retries + 1;
              t.sleep (backoff_delay t k);
              attempt (k + 1)
            end
            else begin
              record_failure t h;
              e
            end
        | Error _ as e -> e
      in
      attempt 1

(* ------------------------------------------------------------------ *)

let attach_policy ?to_expr t ~table ~column source =
  Hashtbl.replace t.bindings (table, column) source;
  (match to_expr with
  | Some f -> Hashtbl.replace t.translations (table, column) f
  | None -> Hashtbl.remove t.translations (table, column));
  (* Any family certification described the previous binding. *)
  Hashtbl.remove t.certified_families (table, column);
  let v = Option.value ~default:0 (Hashtbl.find_opt t.binding_versions (table, column)) in
  Hashtbl.replace t.binding_versions (table, column) (v + 1);
  (* Rebinding changes what a cell's policy means: retire every cached
     verdict and group conjunction. *)
  Enforce.bump ()

let binding_version t ~table ~column =
  Option.value ~default:0 (Hashtbl.find_opt t.binding_versions (table, column))

let certify_binding t ~table ~column ~families =
  Hashtbl.replace t.certified_families (table, column) families

let cell_policy t ~table schema row column =
  match Hashtbl.find_opt t.bindings (table, column) with
  | Some source -> source schema row
  | None -> Policy.no_policy

let ( let* ) = Result.bind

let require_trusted context =
  if Context.is_trusted context then Ok () else Error Untrusted_context

(* Sink handoff: a request that has already missed its budget is refused
   before any policy check or backend call runs. *)
let deadline_guard ~sink =
  match Sesame_deadline.guard ("sink " ^ sink) with
  | Ok () -> Ok ()
  | Error message -> Error (Deadline_exceeded { sink; message })

(* ------------------------------------------------------------------ *)
(* Brownout: read-only degraded serving over the last consistent on-disk
   snapshot while the live store is poisoned. *)

(* The poison guard's client-facing message (Sesame_db.Database.guard). *)
let is_quarantine_message msg = contains_substring msg "quarantined"

let in_brownout t = t.brownout <> None
let brownout_entries t = t.brownout_entries

(* Build (or reuse) the brownout snapshot. The Brownout_enter seam fires
   only on the transition; an injected fault there models the snapshot
   recovery itself failing, in which case reads keep failing closed
   exactly as they did before brownout existed. *)
let enter_brownout t =
  match t.brownout with
  | Some db -> Some db
  | None -> (
      match t.snapshot_load with
      | None -> None
      | Some load -> (
          match
            Sesame_faults.hit Sesame_faults.Brownout_enter;
            load ()
          with
          | Ok db ->
              t.brownout <- Some db;
              t.brownout_entries <- t.brownout_entries + 1;
              Some db
          | Error _ -> None
          | exception Sesame_faults.Injected _ -> None))

(* Run a read against the live store; when it refuses because the store
   is poisoned, fall back to the snapshot and mark the in-flight
   response degraded. Policy bindings are connector state, not database
   state, so snapshot rows are wrapped and checked exactly like live
   ones — brownout weakens freshness, never enforcement. *)
let with_brownout_read t op =
  match op t.db with
  | Error (Db_error { message; _ }) as e when is_quarantine_message message -> (
      match enter_brownout t with
      | None -> e
      | Some snap ->
          Sesame_http.Serving.mark_degraded "snapshot";
          op snap)
  | r -> r

(* A write against a poisoned-but-recoverable store is a structured
   read-only refusal (503 + Retry-After), not an opaque internal error:
   the client may retry after recovery. Stores without a snapshot path
   (purely in-memory fixtures) keep the old fail-closed rendering. *)
let classify_write_error t ~sink msg =
  if is_quarantine_message msg && t.snapshot_load <> None then
    Error (Brownout_write_refused { sink })
  else Error (db_error_at ~sink msg)

(* Leave brownout: close the poisoned store, recover a fresh writable
   one from disk, and swap it in. The Brownout_exit seam models a
   recovery that fails mid-exit — the connector then {e stays} degraded
   (snapshot reads, refused writes) rather than resuming on a
   half-recovered store. Returns the new store handle so callers can
   rebind checkpoint/flush plumbing. *)
let exit_brownout t =
  match t.reopen with
  | None -> Error "connector has no durable store to recover"
  | Some reopen -> (
      match
        Sesame_faults.hit Sesame_faults.Brownout_exit;
        reopen ()
      with
      | Ok store ->
          t.db <- Sesame_wal.Durable.db store;
          t.brownout <- None;
          Mutex.lock t.agg_lock;
          Hashtbl.reset t.agg_cache;
          Mutex.unlock t.agg_lock;
          Enforce.bump ();
          Ok store
      | Error _ as e -> e
      | exception Sesame_faults.Injected { point; action; transient } ->
          Error (Sesame_faults.injected_message point action ~transient))

(* Fail closed: a policy check that raises — from its own (trusted but
   fallible) code, or from an injected fault at the policy-check seam —
   is a denial, never an escape hatch. *)
let check_param context ~sink ~index pcon =
  let context = Context.with_sink context sink in
  let denied policy =
    Error
      (Policy_denied
         { policy; context = Context.describe context; sink; param_index = Some index })
  in
  match
    Sesame_faults.hit Sesame_faults.Policy_check;
    Enforce.check_verbose (Pcon.policy pcon) context
  with
  | Ok () -> Ok ()
  | Error msg when Sesame_deadline.is_deadline_error msg ->
      (* A check abandoned for budget is not a verdict on the policy:
         surface it as the budget refusal it is, not as a denial. *)
      Error (Deadline_exceeded { sink; message = msg })
  | Error msg -> denied msg
  | exception Sesame_faults.Injected _ -> denied "policy check aborted by injected fault"
  | exception exn ->
      denied (Printf.sprintf "policy check raised (%s)" (Printexc.to_string exn))

let check_params context ~sink params =
  let rec go index = function
    | [] -> Ok ()
    | p :: rest ->
        let* () = check_param context ~sink ~index p in
        go (index + 1) rest
  in
  go 0 params

let unwrap_params params = List.map Pcon.Internal.unwrap params

let wrap_select_rows t schema rows =
  let table = Db.Schema.name schema in
  let column_names =
    List.map (fun (c : Db.Schema.column) -> c.name) (Db.Schema.columns schema)
  in
  let wrap_row row =
    Pcon_row.Internal.make_lazy ~columns:column_names (fun column ->
        Option.map
          (fun i -> Pcon.Internal.make (cell_policy t ~table schema row column) row.(i))
          (Db.Schema.column_index schema column))
  in
  List.map wrap_row rows

let query t ~context sql ~params =
  let* () = require_trusted context in
  let sink = "db::query" in
  let* () = deadline_guard ~sink in
  let* () = check_params context ~sink params in
  with_resilience t ~sink @@ fun () ->
  with_brownout_read t @@ fun db ->
  match Db.Database.select_rows db sql ~params:(unwrap_params params) with
  | Error msg -> Error (db_error_at ~sink msg)
  | Ok (schema, rows) -> Ok (wrap_select_rows t schema rows)

(* [query] restricted to the rows whose [on]-column policy admits the
   caller's context — the retrain-style shape: fetch every row you are
   allowed to use. The reference path materializes all matching rows and
   checks each one's policy post-hoc. When pushdown is enabled and the
   [on] binding carries a translation that speaks for this context, the
   predicate is conjoined into the statement's WHERE instead, so the
   indexed scan never materializes denied rows and no per-row policy
   objects are instantiated. The translation admits exactly the rows the
   policy admits, so both paths return byte-identical rows (in scan
   order) with identical cell policies attached. *)
let query_filtered t ~context ~on sql ~params =
  let* () = require_trusted context in
  let sink = "db::query" in
  let* () = deadline_guard ~sink in
  let* () = check_params context ~sink params in
  with_resilience t ~sink @@ fun () ->
  with_brownout_read t @@ fun db ->
  let raw_params = unwrap_params params in
  let pushed =
    if not (Enforce.pushdown_enabled ()) then None
    else
      match Db.Sql.parse sql ~params:raw_params with
      | Ok (Db.Sql.Select { table; _ }) ->
          Option.bind (Hashtbl.find_opt t.translations (table, on)) (fun f -> f context)
      | _ -> None
  in
  match pushed with
  | Some pred -> (
      match Db.Database.select_rows_under db sql ~params:raw_params ~pred:(Some pred) with
      | Error msg -> Error (db_error_at ~sink msg)
      | Ok (schema, rows) ->
          Enforce.note_pushdown ();
          Ok (wrap_select_rows t schema rows))
  | None -> (
      match Db.Database.select_rows db sql ~params:raw_params with
      | Error msg -> Error (db_error_at ~sink msg)
      | Ok (schema, rows) ->
          let table = Db.Schema.name schema in
          let keep row = Enforce.check (cell_policy t ~table schema row on) context in
          Ok (wrap_select_rows t schema (List.filter keep rows)))

(* For aggregates we need the matching raw rows to build the conjunction of
   the aggregated column's per-row policies. The whole per-group build —
   re-running the match, grouping it, instantiating per-row policies, and
   conjoining them — happens only on an [agg_cache] miss; a warm request
   pays one hash lookup per output cell. The grouping pass itself fans out
   over the enforcement pool when one is installed (Row.get is pure;
   chunk-local tables merge in chunk order, so group order and member
   order match the sequential single pass). *)
let query_agg t ~context sql ~params =
  let* () = require_trusted context in
  let sink = "db::query" in
  let* () = deadline_guard ~sink in
  let* () = check_params context ~sink params in
  with_resilience t ~sink @@ fun () ->
  with_brownout_read t @@ fun db ->
  let raw_params = unwrap_params params in
  match Db.Sql.parse sql ~params:raw_params with
  | Error msg -> Error (db_error_at ~sink msg)
  | Ok (Db.Sql.Select_agg { table; aggregates; where; group_by } as stmt) -> (
      match Db.Database.table db table with
      | None -> Error (db_error_at ~sink (Printf.sprintf "no table named %s" table))
      | Some tbl -> (
          let schema = Db.Table.schema tbl in
          let agg_column = function
            | Db.Sql.Count_all -> None
            | Db.Sql.Count c | Db.Sql.Sum c | Db.Sql.Avg c | Db.Sql.Min c | Db.Sql.Max c ->
                Some c
          in
          match Db.Database.exec_stmt db stmt with
          | Error msg -> Error (db_error_at ~sink msg)
          | Ok (Db.Database.Affected _) -> Error (db_error "aggregate returned no rows")
          | Ok (Db.Database.Rows { columns; rows }) ->
              (* Matching rows grouped by their GROUP BY key; forced at
                 most once per request, and only when some cell misses
                 the group-policy cache. The member select is captured
                 under its own validity scope and the token is kept with
                 the result: every group build that consumes [grouped]
                 — not just the one that forced it — must inherit the
                 select's read footprint, or later groups would cache
                 with a footprint that omits the scan they depend on. *)
              let grouped =
                lazy
                  (Enforce.Validity.capture @@ fun () ->
                   let matching = Array.of_list (Db.Table.select tbl ~where) in
                   let groups : (Db.Value.t list, Db.Row.t list ref) Hashtbl.t =
                     Hashtbl.create 16
                   in
                   if group_by <> [] then begin
                     let chunk ~lo ~hi =
                       let local = Hashtbl.create 32 in
                       let order = ref [] in
                       for i = lo to hi - 1 do
                         let row = matching.(i) in
                         let key = List.map (Db.Row.get schema row) group_by in
                         match Hashtbl.find_opt local key with
                         | Some cell -> cell := row :: !cell
                         | None ->
                             Hashtbl.add local key (ref [ row ]);
                             order := key :: !order
                       done;
                       List.rev_map (fun k -> (k, List.rev !(Hashtbl.find local k))) !order
                     in
                     let merge () part =
                       List.iter
                         (fun (key, part_rows) ->
                           match Hashtbl.find_opt groups key with
                           | Some cell -> cell := !cell @ part_rows
                           | None -> Hashtbl.add groups key (ref part_rows))
                         part
                     in
                     let n = Array.length matching in
                     match Enforce.pool () with
                     | Some pool ->
                         Sesame_parallel.fold_range pool ~n ~chunk ~merge ~init:()
                     | None -> merge () (chunk ~lo:0 ~hi:n)
                   end;
                   (matching, groups))
              in
              let members_for key =
                let (matching, groups), select_validity = Lazy.force grouped in
                Enforce.Validity.merge_ambient select_validity;
                if group_by = [] then Array.to_list matching
                else
                  match Hashtbl.find_opt groups key with
                  | Some cell -> !cell
                  | None -> []
              in
              (* Elision fast path: the app certified the binding's leaf
                 families, declared the endpoint's release sinks, and a
                 plan certificate covers every (sink, family) pair under
                 this request's context — so every per-row policy the
                 group conjunction would contain is identically Ok at
                 release time. The whole build (grouping included) is
                 skipped; the certified checks could never deny, so the
                 cell's verdict at every declared sink is unchanged. *)
              let binding_certified column =
                Enforce.elision ()
                && Enforce.Plan.active ()
                &&
                match Hashtbl.find_opt t.certified_families (table, column) with
                | None -> false
                | Some families -> (
                    match Enforce.Plan.endpoint_sinks context with
                    | Some (_ :: _ as sinks) ->
                        List.for_all
                          (fun s ->
                            let rctx = Context.with_sink context s in
                            List.for_all
                              (fun f -> Enforce.Plan.certified_leaf ~sink:s ~family:f rctx)
                              families)
                          sinks
                    | Some [] | None -> false)
              in
              (* Pushdown fast path (on a cache miss, when not elided):
                 evaluate the binding's translated predicate over the
                 group's member rows for every declared release sink —
                 no per-row policy objects, no conjunction. All rows
                 admitted ⇒ the conjunction is identically Ok and
                 [no_policy] stands in for it; any row failing (or any
                 eval error) falls back to the reference build so denial
                 messages stay byte-identical. *)
              let pushdown_admits column members =
                if not (Enforce.pushdown_enabled ()) then None
                else
                  match Hashtbl.find_opt t.translations (table, column) with
                  | None -> None
                  | Some f -> (
                      match Enforce.Plan.endpoint_sinks context with
                      | Some (_ :: _ as sinks) ->
                          let exprs =
                            List.map (fun s -> f (Context.with_sink context s)) sinks
                          in
                          if List.for_all Option.is_some exprs then
                            Some
                              (List.for_all
                                 (fun row ->
                                   List.for_all
                                     (fun e ->
                                       match Db.Expr.eval schema row (Option.get e) with
                                       | Ok admitted -> admitted
                                       | Error _ -> false)
                                     exprs)
                                 members)
                          else None
                      | Some [] | None -> None)
              in
              let policy_for_group column key =
                if not (Hashtbl.mem t.bindings (table, column)) then Policy.no_policy
                else if binding_certified column then begin
                  Enforce.note_elision ();
                  Policy.no_policy
                end
                else begin
                  let cache_key = (table, column, where, group_by, key) in
                  (* Per-entry revalidation: probe under the lock, check
                     the stored token, and drop only the entries whose
                     own footprint went stale — warm groups survive
                     writes to other tables and other shards. The lock
                     covers lookups and inserts only, never the build. *)
                  let cached =
                    Mutex.lock t.agg_lock;
                    let found =
                      match Hashtbl.find_opt t.agg_cache cache_key with
                      | Some (_, v) as hit when Enforce.Validity.valid v -> hit
                      | Some _ ->
                          Hashtbl.remove t.agg_cache cache_key;
                          None
                      | None -> None
                    in
                    Mutex.unlock t.agg_lock;
                    found
                  in
                  match cached with
                  | Some (policy, v) ->
                      (* The reused conjunction's reads become this
                         request's reads (for any enclosing capture). *)
                      Enforce.Validity.merge_ambient v;
                      policy
                  | None ->
                      let policy, validity =
                        Enforce.Validity.capture @@ fun () ->
                        let members = members_for key in
                        match pushdown_admits column members with
                        | Some true ->
                            Enforce.note_pushdown ();
                            Policy.no_policy
                        | Some false | None ->
                            Policy.conjoin_distinct
                              (List.map
                                 (fun row -> cell_policy t ~table schema row column)
                                 members)
                      in
                      (* The member select is a read, so the token is
                         normally born valid; it can be stale only if a
                         writer raced the build, in which case caching
                         would be unsound and we skip it. *)
                      if Enforce.Validity.valid validity then begin
                        Mutex.lock t.agg_lock;
                        if Hashtbl.length t.agg_cache >= agg_cache_max then
                          Hashtbl.reset t.agg_cache;
                        Hashtbl.replace t.agg_cache cache_key (policy, validity);
                        Mutex.unlock t.agg_lock
                      end;
                      policy
                end
              in
              let group_count = List.length group_by in
              let group_cols = Array.of_list group_by in
              let agg_specs = Array.of_list aggregates in
              let wrap_row out_row =
                let key = List.init group_count (fun i -> out_row.(i)) in
                (* Several cells may aggregate the same column (e.g. AVG
                   and COUNT over grades); they share one conjunction. *)
                let column_policies = Hashtbl.create 4 in
                let policy_for col =
                  match Hashtbl.find_opt column_policies col with
                  | Some policy -> policy
                  | None ->
                      let policy = policy_for_group col key in
                      Hashtbl.add column_policies col policy;
                      policy
                in
                List.mapi
                  (fun i column_label ->
                    let policy =
                      if i < group_count then policy_for group_cols.(i)
                      else
                        match agg_column agg_specs.(i - group_count) with
                        | Some col -> policy_for col
                        | None -> Policy.no_policy
                    in
                    (column_label, Pcon.Internal.make policy out_row.(i)))
                  columns
              in
              Ok (List.map wrap_row rows)))
  | Ok (Db.Sql.Select _ | Db.Sql.Insert _ | Db.Sql.Update _ | Db.Sql.Delete _) ->
      Error (db_error "query_agg expects an aggregate SELECT")

let insert t ~context ~table cells =
  let* () = require_trusted context in
  let sink = "db::insert" in
  let* () = deadline_guard ~sink in
  let* () = check_params context ~sink (List.map snd cells) in
  (* Goes through the statement executor so it pays the same (possibly
     modeled) round-trip cost as any other write. *)
  let stmt =
    Db.Sql.Insert
      {
        table;
        columns = Some (List.map fst cells);
        values = List.map (fun (_, p) -> Pcon.Internal.unwrap p) cells;
      }
  in
  with_resilience t ~sink @@ fun () ->
  match Db.Database.exec_stmt t.db stmt with
  | Ok (Db.Database.Affected _) -> Ok ()
  | Ok (Db.Database.Rows _) -> Error (db_error "INSERT returned rows")
  | Error msg -> classify_write_error t ~sink msg

let execute t ~context sql ~params =
  let* () = require_trusted context in
  let sink = "db::execute" in
  let* () = deadline_guard ~sink in
  let* () = check_params context ~sink params in
  with_resilience t ~sink @@ fun () ->
  match Db.Database.exec t.db sql ~params:(unwrap_params params) with
  | Ok (Db.Database.Affected n) -> Ok n
  | Ok (Db.Database.Rows _) -> Error (db_error "execute expects UPDATE/DELETE/INSERT")
  | Error msg -> classify_write_error t ~sink msg

let param _t v = Pcon.wrap_no_policy v
