type state = ..

type t = {
  id : int;  (* unique per instance; physical-identity key for dedup *)
  name : string;
  state : state;
  family_check : state -> Context.t -> bool;
  family_join : (state -> state -> state option) option;
  family_no_folding : bool;
  family_describe : state -> string;
  (* Optional row-predicate translation for predicate pushdown: when
     [Some f], [f ctx] may return a DB expression admitting exactly the
     rows this policy's check admits under [ctx]. Semantics-preserving
     decoration only — never consulted by check/describe/join. *)
  translation : (Context.t -> Sesame_db.Expr.t option) option;
}

(* Instance ids must stay unique under parallel checks and registrations:
   a duplicated id would let dedup (and verdict caches keyed by id) treat
   two different policies as one — an unsoundness, not just a miscount. *)
let next_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1 + 1

let checks = Atomic.make 0
let check_count () = Atomic.get checks
let reset_check_count () = Atomic.set checks 0

(* ------------------------------------------------------------------ *)
(* Built-ins: NoPolicy, DenyAll, and the And stack. *)

type state += No_policy_state
type state += Deny_state of string
type state += And_state of t list

let rec leaf_check policy ctx =
  match policy.state with
  | And_state members -> List.for_all (fun p -> leaf_check p ctx) members
  | _ ->
      Atomic.incr checks;
      policy.family_check policy.state ctx

let no_policy =
  {
    id = 0;
    name = ".no-policy";
    state = No_policy_state;
    family_check = (fun _ _ -> true);
    family_join = Some (fun _ _ -> Some No_policy_state);
    family_no_folding = false;
    family_describe = (fun _ -> "NoPolicy");
    translation = None;
  }

let is_no_policy t = t.name = ".no-policy"

let deny_all ~reason =
  {
    id = next_id ();
    name = ".deny";
    state = Deny_state reason;
    family_check = (fun _ _ -> false);
    family_join =
      Some
        (fun a b ->
          match (a, b) with
          | Deny_state ra, Deny_state rb ->
              Some (Deny_state (if ra = rb then ra else ra ^ "; " ^ rb))
          | _ -> None);
    family_no_folding = true;
    family_describe =
      (function Deny_state reason -> "DenyAll(" ^ reason ^ ")" | _ -> "DenyAll");
    translation = None;
  }

let rec describe t =
  match t.state with
  | And_state members ->
      "(" ^ String.concat " AND " (List.map describe members) ^ ")"
  | st -> t.family_describe st

let rec no_folding t =
  match t.state with
  | And_state members -> List.exists no_folding members
  | _ -> t.family_no_folding

let name t = t.name
let check t ctx = leaf_check t ctx

let conjuncts t =
  match t.state with And_state members -> members | _ -> [ t ]

let check_verbose t ctx =
  let rec go t =
    match t.state with
    | And_state members ->
        List.fold_left
          (fun acc p -> match acc with Error _ -> acc | Ok () -> go p)
          (Ok ()) members
    | st ->
        Atomic.incr checks;
        if t.family_check st ctx then Ok ()
        else Error (Printf.sprintf "policy %s denied (%s)" t.name (t.family_describe st))
  in
  go t

let make_and members =
  {
    id = next_id ();
    name = ".and";
    state = And_state members;
    family_check = (fun _ _ -> assert false) (* leaf_check handles And *);
    family_join = None;
    family_no_folding = false (* computed structurally by no_folding *);
    family_describe = (fun _ -> "And");
    translation = None;
  }

let try_join a b =
  if a.name <> b.name then None
  else
    match a.family_join with
    | None -> None
    | Some join ->
        Option.map
          (* The joined state is new; any translation captured the old one. *)
          (fun st -> { a with id = next_id (); state = st; translation = None })
          (join a.state b.state)

(* Coalesce a conjunction's members (single pass, newest first): drop
   NoPolicy, drop duplicate instances (P AND P = P — common when memoized
   per-row policies repeat across a result set), and join adjacent
   same-family members. *)
let compact members =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc p ->
      if is_no_policy p || Hashtbl.mem seen p.id then acc
      else begin
        Hashtbl.add seen p.id ();
        match acc with
        | prev :: rest -> (
            match try_join prev p with
            | Some joined -> joined :: rest
            | None -> p :: acc)
        | [] -> [ p ]
      end)
    [] members
  |> List.rev

let of_members = function
  | [] -> no_policy
  | [ single ] -> single
  | members -> make_and members

let conjoin a b =
  if is_no_policy a then b
  else if is_no_policy b then a
  else if a.id = b.id then a
  else
    match try_join a b with
    | Some joined -> joined
    | None -> of_members (compact (conjuncts a @ conjuncts b))

(* Single pass over all leaves: O(total) as long as joins keep neighbours
   collapsed, unlike a fold of pairwise [conjoin] which re-walks the
   accumulated conjunction at every step. *)
let conjoin_all policies =
  of_members (compact (List.concat_map conjuncts policies))

(* Drop repeated instances before flattening: bulk folds over N rows
   typically see each (memoized, shared) policy object many times, and
   deduplicating by id first means [compact] walks the distinct policies'
   leaves instead of all N rows' worth. P AND P = P, so this changes
   nothing semantically. *)
let distinct policies =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun p ->
      if Hashtbl.mem seen p.id then false
      else begin
        Hashtbl.add seen p.id ();
        true
      end)
    policies

let conjoin_distinct policies = conjoin_all (distinct policies)

let members t = match t.state with And_state ms -> Some ms | _ -> None

(* ------------------------------------------------------------------ *)

module type FAMILY = sig
  type s

  val name : string
  val check : s -> Context.t -> bool
  val join : (s -> s -> s option) option
  val no_folding : bool
  val describe : s -> string
end

module Make (F : FAMILY) = struct
  type state += S of F.s

  let family_check st ctx =
    match st with S s -> F.check s ctx | _ -> false

  let family_join =
    Option.map
      (fun join a b ->
        match (a, b) with
        | S x, S y -> Option.map (fun s -> S s) (join x y)
        | _ -> None)
      F.join

  let family_describe = function S s -> F.describe s | _ -> F.name

  let make s =
    {
      id = next_id ();
      name = F.name;
      state = S s;
      family_check;
      family_join;
      family_no_folding = F.no_folding;
      family_describe;
      translation = None;
    }

  let state t = match t.state with S s when t.name = F.name -> Some s | _ -> None
end

let id t = t.id

(* ------------------------------------------------------------------ *)
(* Predicate pushdown decoration. A translation never changes what the
   policy admits — it only gives consumers a way to ask the same
   question of a scan predicate — so the decorated instance keeps its
   id: verdict caches and dedup may treat the two as one policy. *)

let translate t f = { t with translation = Some f }

let rec to_expr t ctx =
  match t.state with
  | No_policy_state -> Some Sesame_db.Expr.True
  | And_state members ->
      (* The conjunction translates iff every member does. *)
      List.fold_left
        (fun acc m ->
          match acc with
          | None -> None
          | Some a -> (
              match to_expr m ctx with
              | Some b -> Some (Sesame_db.Expr.And (a, b))
              | None -> None))
        (Some Sesame_db.Expr.True) members
  | _ -> ( match t.translation with None -> None | Some f -> f ctx)
