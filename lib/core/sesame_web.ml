module Http = Sesame_http

type error =
  | Untrusted_context
  | Policy_denied of { policy : string; context : string }
  | Render_error of string

let pp_error fmt = function
  | Untrusted_context ->
      Format.pp_print_string fmt "built-in sinks require a Sesame-created (trusted) context"
  | Policy_denied { policy; context } ->
      Format.fprintf fmt "policy check failed: %s against context [%s]" policy context
  | Render_error msg -> Format.fprintf fmt "render error: %s" msg

(* Client-facing bodies are generic on purpose: the structured error (and
   whatever the server logs) keeps the detail; the response must not echo
   internal render/DB state to the requester. *)
let error_response = function
  | Untrusted_context -> Http.Response.error Http.Status.Forbidden "untrusted context"
  | Policy_denied _ -> Http.Response.error Http.Status.Forbidden "policy check failed"
  | Render_error _ -> Http.Response.error Http.Status.Internal_error "internal error"

let context_for request ?user ?custom () =
  Context.Internal.trusted ~endpoint:request.Http.Request.path ?user ~source:"http"
    ?custom ()

let wrap_param policy = function
  | None -> None
  | Some raw -> Some (Pcon.Internal.make (policy raw) raw)

let query_param request name ~policy =
  wrap_param policy (Http.Request.query_param request name)

let path_param request name ~policy =
  wrap_param policy (Http.Request.path_param request name)

let form_param request name ~policy =
  wrap_param policy (Http.Request.form_param request name)

let cookie request name ~policy = wrap_param policy (Http.Request.cookie request name)

let body request ~policy =
  let raw = request.Http.Request.body in
  Pcon.Internal.make (policy raw) raw

type binding =
  | Public of Http.Template.value
  | Sensitive of string Pcon.t
  | Sensitive_list of (string * string Pcon.t) list list

let ( let* ) = Result.bind

let require_trusted context =
  if Context.is_trusted context then Ok () else Error Untrusted_context

(* Fail closed: a policy check that raises — from its own fallible code or
   from an injected fault at the policy-check seam — is a denial. The
   check itself goes through Enforce, so verdicts for a (policy, context)
   pair are cached across requests until any DB mutation or policy
   rebinding retires them; the fault seam stays outside the cache and
   fires on every call. *)
let check context pcon =
  match
    Sesame_faults.hit Sesame_faults.Policy_check;
    Enforce.check_verbose (Pcon.policy pcon) context
  with
  | Ok () -> Ok (Pcon.Internal.unwrap pcon)
  | Error msg ->
      Error (Policy_denied { policy = msg; context = Context.describe context })
  | exception Sesame_faults.Injected _ ->
      Error
        (Policy_denied
           {
             policy = "policy check aborted by injected fault";
             context = Context.describe context;
           })
  | exception exn ->
      Error
        (Policy_denied
           {
             policy = Printf.sprintf "policy check raised (%s)" (Printexc.to_string exn);
             context = Context.describe context;
           })

(* Within one render, bindings frequently share the very same (immutable)
   policy object — e.g. aggregate cells over one column. Re-checking the
   identical object against the identical context is pure recomputation,
   so cache verdicts by physical identity for the render's duration. *)
let memoized_check context =
  let seen : (int, (unit, error) result) Hashtbl.t = Hashtbl.create 16 in
  fun pcon ->
    let key = Policy.id (Pcon.policy pcon) in
    let verdict =
      match Hashtbl.find_opt seen key with
      | Some verdict -> verdict
      | None ->
          let verdict = Result.map (fun _ -> ()) (check context pcon) in
          Hashtbl.add seen key verdict;
          verdict
    in
    Result.map (fun () -> Pcon.Internal.unwrap pcon) verdict

let rec resolve_bindings checked = function
  | [] -> Ok []
  | (name, binding) :: rest -> (
      let* resolved = resolve_bindings checked rest in
      match binding with
      | Public value -> Ok ((name, value) :: resolved)
      | Sensitive pcon ->
          let* raw = checked pcon in
          Ok ((name, Http.Template.Str raw) :: resolved)
      | Sensitive_list rows ->
          let* scopes =
            List.fold_right
              (fun row acc ->
                let* scopes = acc in
                let* fields =
                  List.fold_right
                    (fun (field, pcon) acc ->
                      let* fields = acc in
                      let* raw = checked pcon in
                      Ok ((field, Http.Template.Str raw) :: fields))
                    row (Ok [])
                in
                Ok (fields :: scopes))
              rows (Ok [])
          in
          Ok ((name, Http.Template.List scopes) :: resolved))

let render ~context template bindings =
  let* () = require_trusted context in
  let context = Context.with_sink context "http::render" in
  let* resolved = resolve_bindings (memoized_check context) bindings in
  (* The render itself is a seam too: a template engine crash (or an
     injected fault) must not leak the resolved bindings — it becomes a
     structured render error whose client-facing body is generic. *)
  match
    Sesame_faults.hit Sesame_faults.Template_render;
    Http.Template.render template resolved
  with
  | html -> Ok (Http.Response.html html)
  | exception Sesame_faults.Injected _ ->
      Error (Render_error "render aborted by injected fault")
  | exception exn ->
      Error (Render_error (Printf.sprintf "template engine raised (%s)" (Printexc.to_string exn)))

let respond_text ~context pcon =
  let* () = require_trusted context in
  let context = Context.with_sink context "http::respond" in
  let* raw = check context pcon in
  Ok (Http.Response.text raw)

let set_cookie ~context response ~name ~value =
  let* () = require_trusted context in
  let context = Context.with_sink context "http::cookie" in
  let* raw = check context value in
  Ok (Http.Response.with_cookie response ~name ~value:raw)
