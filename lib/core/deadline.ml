(* Re-export so applications see the request budget as
   [Sesame_core.Deadline] next to the rest of the enforcement surface. *)
include Sesame_deadline
