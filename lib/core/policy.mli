(** Policies (§4.1).

    A policy is an arbitrary predicate over a {!Context.t}, carrying its
    own metadata (the paper's policy-struct fields), an optional same-type
    [join], and a [NoFolding] flag (§5). Policies are defined as
    {e families} via the {!Make} functor — the OCaml rendering of
    "developers express each policy type as a Rust struct and implement
    the Policy trait".

    Conjunction (§4.1 "Policy Conjunction"): {!conjoin} first tries the
    family [join] when both sides belong to the same family; otherwise it
    {e stacks} the two policies into an [And], whose check checks both.
    Joining and stacking must be semantically equivalent; joining just
    yields more compact policies that are faster to check (Fig. 9c). *)

type state = ..
(** Extensible carrier for per-family metadata. *)

type t

val name : t -> string
(** The family name ([.no-policy], [.and] for the built-ins). *)

val check : t -> Context.t -> bool
(** Evaluates the policy. Every {e leaf} check is counted (see
    {!check_count}); an [And] counts each conjunct. *)

val check_verbose : t -> Context.t -> (unit, string) result
(** Like {!check} but names the denying policy. *)

val no_folding : t -> bool
(** True if any constituent forbids folding in (§5 "Fold"). *)

val describe : t -> string

val no_policy : t
(** The explicit marker for intentionally insensitive data. Identity for
    {!conjoin}. Always allows. *)

val is_no_policy : t -> bool

val deny_all : reason:string -> t
(** Always denies — useful for tests and for quarantined data. *)

val conjoin : t -> t -> t
(** Join when possible, stack otherwise. Stacking flattens nested [And]s. *)

val conjoin_all : t list -> t
(** [no_policy] for the empty list. *)

val conjoin_distinct : t list -> t
(** {!conjoin_all} after dropping repeated instances (by {!id}): the bulk
    path for N rows sharing memoized policy objects, where it pays one
    leaf walk per distinct policy instead of one per row. Semantically
    identical to {!conjoin_all} ([P AND P = P]). *)

val conjuncts : t -> t list
(** The flattened leaves of an [And] (a singleton for leaf policies). *)

val members : t -> t list option
(** [Some ms] iff the policy is a conjunction with members [ms] (in check
    order); [None] for leaves. Enforcement caches use it to recurse
    without re-flattening. *)

val check_count : unit -> int
(** Global number of leaf policy checks executed — benchmarks and tests use
    it to observe how much checking composition saves (Fig. 9c). *)

val reset_check_count : unit -> unit

(** Family definition. *)
module type FAMILY = sig
  type s

  val name : string
  (** Must be unique per family; the built-in names start with a dot. *)

  val check : s -> Context.t -> bool

  val join : (s -> s -> s option) option
  (** Same-family join; [None] disables joining, [Some f] may still decline
      pairwise ([f a b = None]) in which case the pair is stacked. *)

  val no_folding : bool
  val describe : s -> string
end

module Make (F : FAMILY) : sig
  val make : F.s -> t
  val state : t -> F.s option
  (** [Some] iff the policy belongs to this family. *)
end

val id : t -> int
(** A unique instance identifier. Conjunction uses it to drop duplicate
    members ([P AND P = P]), and sinks use it to memoize check verdicts for
    a shared instance within one release operation. *)

val translate : t -> (Context.t -> Sesame_db.Expr.t option) -> t
(** Decorate the policy with an optional row-predicate translation for
    predicate pushdown: [f ctx] must return an expression admitting
    {e exactly} the rows [check _ ctx] admits (or [None] to decline for
    that context). A translation is semantics-preserving decoration —
    never consulted by {!check}/{!describe}/{!conjoin} — so the
    decorated instance keeps its {!id}. Joins drop translations (the
    joined state is new). *)

val to_expr : t -> Context.t -> Sesame_db.Expr.t option
(** The policy's scan predicate under [ctx], when it has one:
    [no_policy] is [True]; a conjunction translates iff every member
    does; an untranslated leaf is [None]. *)
