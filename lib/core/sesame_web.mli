(** The Sesame-enabled web framework layer (§4, §8): HTTP sources that
    return PCons, trusted per-request contexts, and template/response
    sinks that policy-check before externalizing.

    This mirrors how the paper's framework wraps Rocket: reading request
    data through these functions attaches the policy the application
    declares (unstructured sources, §4.1: "Applications declare the
    associated policies when they read data"), and rendering goes through
    a policy check per sensitive binding. *)

module Http = Sesame_http

type error =
  | Untrusted_context
  | Policy_denied of { policy : string; context : string }
  | Render_error of string

val pp_error : Format.formatter -> error -> unit
val error_response : error -> Http.Response.t
(** 403 for policy/trust failures, 500 for render errors. Bodies are
    generic ("policy check failed", "internal error"): the detail stays
    in the structured error and must not be echoed to the client. *)

val context_for :
  Http.Request.t -> ?user:string -> ?custom:(string * string) list -> unit -> Context.t
(** The trusted context for a request: endpoint from the request path,
    source ["http"], authenticated [user] supplied by the framework's
    authentication guard. *)

(** {1 Sources} *)

val query_param :
  Http.Request.t -> string -> policy:(string -> Policy.t) -> string Pcon.t option

val path_param :
  Http.Request.t -> string -> policy:(string -> Policy.t) -> string Pcon.t option

val form_param :
  Http.Request.t -> string -> policy:(string -> Policy.t) -> string Pcon.t option

val cookie :
  Http.Request.t -> string -> policy:(string -> Policy.t) -> string Pcon.t option

val body : Http.Request.t -> policy:(string -> Policy.t) -> string Pcon.t

(** {1 Sinks} *)

type binding =
  | Public of Http.Template.value  (** not policy-protected *)
  | Sensitive of string Pcon.t
  | Sensitive_list of (string * string Pcon.t) list list
      (** a template section: one scope per row, each field wrapped *)

val render :
  context:Context.t ->
  Http.Template.t ->
  (string * binding) list ->
  (Http.Response.t, error) result
(** Checks every wrapped binding's policy against the (trusted) context
    with sink ["http::render"], then renders 200 text/html. *)

val respond_text :
  context:Context.t -> string Pcon.t -> (Http.Response.t, error) result
(** Plain-text response sink. *)

val set_cookie :
  context:Context.t ->
  Http.Response.t ->
  name:string ->
  value:string Pcon.t ->
  (Http.Response.t, error) result
(** Cookie sink (sink name ["http::cookie"]): Portfolio releases private
    keys "in cookies to their respective owners" through this. *)
