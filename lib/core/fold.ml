type error = Folding_disabled of string

let pp_error fmt (Folding_disabled what) =
  Format.fprintf fmt "folding in is disabled by policy %s" what

(* Folding out N rows usually sees few distinct policy objects (rows
   share memoized instances), so dedup by identity before walking any
   leaves — the Fig. 9c collapse generalized from sinks to bulk folds. *)
let out_list pcons =
  let policy = Policy.conjoin_distinct (List.map Pcon.policy pcons) in
  Pcon.Internal.make policy (List.map Pcon.Internal.unwrap pcons)

let out_option = function
  | None -> Pcon.Internal.make Policy.no_policy None
  | Some pcon -> Pcon.Internal.make (Pcon.policy pcon) (Some (Pcon.Internal.unwrap pcon))

let out_pair (a, b) = Pcon.pair a b

let out_assoc bindings =
  let policy = Policy.conjoin_distinct (List.map (fun (_, p) -> Pcon.policy p) bindings) in
  Pcon.Internal.make policy
    (List.map (fun (k, p) -> (k, Pcon.Internal.unwrap p)) bindings)

let guard pcon =
  let policy = Pcon.policy pcon in
  if Policy.no_folding policy then Error (Folding_disabled (Policy.describe policy))
  else Ok policy

let ( let* ) = Result.bind

let in_list pcon =
  let* policy = guard pcon in
  Ok (List.map (Pcon.Internal.make policy) (Pcon.Internal.unwrap pcon))

let in_option pcon =
  let* policy = guard pcon in
  Ok (Option.map (Pcon.Internal.make policy) (Pcon.Internal.unwrap pcon))

let in_pair pcon =
  let* policy = guard pcon in
  let a, b = Pcon.Internal.unwrap pcon in
  Ok (Pcon.Internal.make policy a, Pcon.Internal.make policy b)

let in_result pcon =
  let* policy = guard pcon in
  match Pcon.Internal.unwrap pcon with
  | Ok v -> Ok (Ok (Pcon.Internal.make policy v))
  | Error e -> Ok (Error e)

let force_lazy pcon = Pcon.Internal.map Lazy.force pcon
