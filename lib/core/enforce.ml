module Parallel = Sesame_parallel

type stats = { hits : int; misses : int; parallel_fanouts : int }

let hits = Atomic.make 0
let misses = Atomic.make 0
let parallel_fanouts = Atomic.make 0

let stats () =
  {
    hits = Atomic.get hits;
    misses = Atomic.get misses;
    parallel_fanouts = Atomic.get parallel_fanouts;
  }

let reset_stats () =
  Atomic.set hits 0;
  Atomic.set misses 0;
  Atomic.set parallel_fanouts 0

(* ------------------------------------------------------------------ *)
(* Epoch: table generation + policy-binding bumps. A verdict may depend
   on database state its check read, so any accepted mutation anywhere
   must retire every cached verdict; rebinding a (table, column) policy
   changes what future rows mean, so it bumps too. *)

let bumps = Atomic.make 0
let bump () = Atomic.incr bumps
let epoch () = Atomic.get bumps + Sesame_db.Table.generation ()

let memoize = Atomic.make true
let set_memoization on = Atomic.set memoize on
let memoization () = Atomic.get memoize

let parallel_cutoff = Atomic.make 64
let set_parallel_cutoff n = Atomic.set parallel_cutoff (max 2 n)

(* The pool is resolved lazily so merely linking the library never spawns
   domains: first use consults PARALLEL_DOMAINS via the shared default
   pool, and a pool without workers is treated as "no pool". *)
type pool_setting = Unresolved | Pool of Parallel.t | No_pool

let pool_setting = ref Unresolved
let pool_lock = Mutex.create ()

let set_pool p =
  Mutex.lock pool_lock;
  pool_setting := (match p with Some p -> Pool p | None -> No_pool);
  Mutex.unlock pool_lock

let pool () =
  Mutex.lock pool_lock;
  let resolved =
    match !pool_setting with
    | Pool p -> Some p
    | No_pool -> None
    | Unresolved ->
        let d = Parallel.default () in
        let v = if Parallel.domains d > 1 then Pool d else No_pool in
        pool_setting := v;
        (match v with Pool p -> Some p | _ -> None)
  in
  Mutex.unlock pool_lock;
  resolved

(* ------------------------------------------------------------------ *)
(* Per-domain verdict cache. Domain-local on purpose: no lock on the hot
   path, and invalidation needs no cross-domain coordination — each
   domain notices the epoch moved at its next lookup and resets. The key
   pairs the policy instance id with the full context; equality is
   structural over the whole context, so the (Hashtbl.hash) fingerprint
   only routes to a bucket and can never alias two different contexts
   into one verdict. *)

type cache = {
  mutable at : int;  (* epoch the cached verdicts were computed under *)
  tbl : (int * Context.t, (unit, string) result) Hashtbl.t;
}

let caches : cache Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { at = min_int; tbl = Hashtbl.create 1024 })

(* Fresh policy instances (one-shot ids) leave dead entries behind; a cap
   bounds the table between epochs. Resetting forgets live entries too,
   but a reset is just a cold start, never a wrong answer. *)
let max_entries = 65536

let domain_cache () =
  let c = Domain.DLS.get caches in
  let e = epoch () in
  if c.at <> e then begin
    Hashtbl.reset c.tbl;
    c.at <- e
  end;
  c

(* ------------------------------------------------------------------ *)

let first_denial results =
  (* Member order = check order: the reported denial is the leftmost one,
     exactly as the sequential short-circuit reports it. *)
  let n = Array.length results in
  let rec scan i =
    if i = n then Ok ()
    else match results.(i) with Ok () -> scan (i + 1) | Error _ as e -> e
  in
  scan 0

let rec check_verbose policy ctx =
  if Policy.is_no_policy policy then Ok ()
  else if not (Atomic.get memoize) then compute policy ctx
  else begin
    let c = domain_cache () in
    let key = (Policy.id policy, ctx) in
    match Hashtbl.find_opt c.tbl key with
    | Some verdict ->
        Atomic.incr hits;
        verdict
    | None ->
        Atomic.incr misses;
        let verdict = compute policy ctx in
        (* A check that itself mutated the database moved the epoch; the
           verdict it produced belongs to the old world and must not be
           stored against the new one. *)
        if epoch () = c.at then begin
          if Hashtbl.length c.tbl >= max_entries then Hashtbl.reset c.tbl;
          Hashtbl.add c.tbl key verdict
        end;
        verdict
  end

and compute policy ctx =
  match Policy.members policy with
  | None -> Policy.check_verbose policy ctx
  | Some members -> (
      let arr = Array.of_list members in
      let n = Array.length arr in
      let wide = n >= Atomic.get parallel_cutoff in
      match (if wide then pool () else None) with
      | Some p ->
          Atomic.incr parallel_fanouts;
          (* Evaluate every member (no short-circuit), then report the
             leftmost denial: same verdict and message as the sequential
             walk, paid for with the tail checks the sequential walk
             would have skipped on a denial. *)
          first_denial (Parallel.map_array ~cutoff:1 p (fun m -> check_verbose m ctx) arr)
      | None ->
          let rec walk i =
            if i = n then Ok ()
            else
              match check_verbose arr.(i) ctx with
              | Ok () -> walk (i + 1)
              | Error _ as e -> e
          in
          walk 0)

let check policy ctx = Result.is_ok (check_verbose policy ctx)
