module Parallel = Sesame_parallel
module Elision = Sesame_scrutinizer.Elision

type stats = {
  hits : int;
  misses : int;
  parallel_fanouts : int;
  elisions : int;
  pushdowns : int;
}

let hits = Atomic.make 0
let misses = Atomic.make 0
let parallel_fanouts = Atomic.make 0
let elisions = Atomic.make 0
let pushdowns = Atomic.make 0

let stats () =
  {
    hits = Atomic.get hits;
    misses = Atomic.get misses;
    parallel_fanouts = Atomic.get parallel_fanouts;
    elisions = Atomic.get elisions;
    pushdowns = Atomic.get pushdowns;
  }

let reset_stats () =
  Atomic.set hits 0;
  Atomic.set misses 0;
  Atomic.set parallel_fanouts 0;
  Atomic.set elisions 0;
  Atomic.set pushdowns 0

let note_pushdown () = Atomic.incr pushdowns
let note_elision () = Atomic.incr elisions

(* ------------------------------------------------------------------ *)
(* Epoch: table generation + policy-binding bumps. A verdict may depend
   on database state its check read; rebinding a (table, column) policy
   changes what future rows mean, so it bumps too.

   Two invalidation modes share this counter:

   - Coarse (the original scheme): [epoch () = bumps + global table
     generation]; any accepted mutation anywhere retires every cached
     verdict. Sound, but a 10% write mix keeps every cache cold.

   - Precise (default): each cached verdict carries the read footprint
     its computation recorded (the (table, shard) generation slots it
     actually depended on — see {!Sesame_db.Footprint}) plus a [base]
     of [bumps + structural epoch]; it is reusable while those slots
     and the base are unchanged. A write to one shard of one table
     retires exactly the verdicts that read it. Validity in this mode
     is a subset of coarse validity: everything the coarse epoch counts
     either lands in a recorded slot (row mutations), in the structural
     epoch (create/drop/clear/touch), or in [bumps] — so a verdict the
     precise mode reuses is one the coarse mode would also have reused
     had nothing else moved. *)

let bumps = Atomic.make 0
let bump () = Atomic.incr bumps
let epoch () = Atomic.get bumps + Sesame_db.Table.generation ()

let precise = Atomic.make true
let set_precise_invalidation on = Atomic.set precise on
let precise_invalidation () = Atomic.get precise

(* The footprint-mode base: binding bumps plus schema-level events
   (create/drop/clear/restore/touch). Row mutations are excluded on
   purpose — they are covered per-slot by the footprints. *)
let base () = Atomic.get bumps + Sesame_db.Epoch.structure ()

(* Plan certificates revalidate against this instead of the per-row
   [epoch]: a certificate's meaning can only change when a binding is
   rebound ([bumps]) or the schema landscape moves ([structure]), never
   from row traffic. Certificate validity stays a subset of verdict
   validity, which stays a subset of the old global-epoch validity. *)
let cert_epoch () = Atomic.get bumps + Sesame_db.Epoch.structure ()

let memoize = Atomic.make true
let set_memoization on = Atomic.set memoize on
let memoization () = Atomic.get memoize

(* Elision and pushdown default on: with no plan installed and no
   binding translation registered they are exact no-ops, so the flags
   only matter once an app compiles its static verdicts in. *)
let elide = Atomic.make true
let set_elision on = Atomic.set elide on
let elision () = Atomic.get elide

let pushdown = Atomic.make true
let set_pushdown on = Atomic.set pushdown on
let pushdown_enabled () = Atomic.get pushdown

let parallel_cutoff = Atomic.make 64
let set_parallel_cutoff n = Atomic.set parallel_cutoff (max 2 n)

(* The pool is resolved lazily so merely linking the library never spawns
   domains: first use consults PARALLEL_DOMAINS via the shared default
   pool, and a pool without workers is treated as "no pool". *)
type pool_setting = Unresolved | Pool of Parallel.t | No_pool

let pool_setting = ref Unresolved
let pool_lock = Mutex.create ()

let set_pool p =
  Mutex.lock pool_lock;
  pool_setting := (match p with Some p -> Pool p | None -> No_pool);
  Mutex.unlock pool_lock

let pool () =
  Mutex.lock pool_lock;
  let resolved =
    match !pool_setting with
    | Pool p -> Some p
    | No_pool -> None
    | Unresolved ->
        let d = Parallel.default () in
        let v = if Parallel.domains d > 1 then Pool d else No_pool in
        pool_setting := v;
        (match v with Pool p -> Some p | _ -> None)
  in
  Mutex.unlock pool_lock;
  resolved

(* ------------------------------------------------------------------ *)
(* The enforcement plan: elision certificates compiled from the static
   pass. A certificate says "every check of family F at sink S (under
   endpoint E) whose context satisfies the guard is identically Ok".
   Certificates are keyed by [cert_epoch] (binding bumps + structural
   schema events): while the epoch an entry was last validated under is
   current, the fast path is one guard evaluation; when it moves, the
   entry's [revalidate] closure (supplied by the installer, typically
   checking policy-binding versions and table schemas) must re-approve
   it or the entry is dropped and the residual runtime check runs.
   Row mutations never move [cert_epoch] — a certificate's claim is
   about binding/schema state, which rows cannot change — so
   certificate validity is a subset of footprint-vector validity, which
   is a subset of the old global-epoch validity: a certificate can
   never outlive the verdicts it stands in for. *)

module Plan = struct
  type entry = {
    pe_endpoint : string option;  (* None = any endpoint *)
    pe_sink : string;
    pe_family : string;
    pe_guard : Context.t -> bool;
    pe_revalidate : unit -> bool;
    pe_witness : string;
    pe_checked_at : int Atomic.t;
  }

  let entry ?endpoint ~sink ~family ~guard ~revalidate ~witness () =
    {
      pe_endpoint = endpoint;
      pe_sink = sink;
      pe_family = family;
      pe_guard = guard;
      pe_revalidate = revalidate;
      pe_witness = witness;
      pe_checked_at = Atomic.make min_int;
    }

  (* An immutable snapshot list behind an Atomic: the hot path scans
     lock-free; installs and drops CAS-replace the list. The plan is
     tiny (one entry per certified (endpoint, sink, family) triple). *)
  let cell : entry list Atomic.t = Atomic.make []

  let rec install e =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (e :: cur)) then install e

  let size () = List.length (Atomic.get cell)
  let active () = Atomic.get cell <> []

  (* Endpoint release-sink declarations: "everything endpoint E releases
     is checked under one of these sinks (with the request context)".
     They let data-wrapping sites (query_agg) consult certificates for
     checks that will only run later, at release time. *)
  let decls : (string * string list) list Atomic.t = Atomic.make []

  let rec declare_endpoint_sinks ~endpoint sinks =
    let cur = Atomic.get decls in
    let next = (endpoint, sinks) :: List.remove_assoc endpoint cur in
    if not (Atomic.compare_and_set decls cur next) then declare_endpoint_sinks ~endpoint sinks

  let clear () =
    Atomic.set cell [];
    Atomic.set decls []

  let rec drop e =
    let cur = Atomic.get cell in
    let next = List.filter (fun x -> x != e) cur in
    if not (Atomic.compare_and_set cell cur next) then drop e

  let path_covers declared actual =
    String.equal declared actual || String.starts_with ~prefix:(declared ^ "/") actual

  let endpoint_matches entry ctx =
    match entry.pe_endpoint with
    | None -> true
    | Some e -> (
        match Context.endpoint ctx with Some ep -> path_covers e ep | None -> false)

  let endpoint_sinks ctx =
    match Context.endpoint ctx with
    | None -> None
    | Some ep ->
        List.find_map
          (fun (e, sinks) -> if path_covers e ep then Some sinks else None)
          (Atomic.get decls)

  (* Is this one entry usable right now? Entries current against the
     certificate epoch (binding bumps + structural events; row traffic
     does not move it) answer with a guard evaluation; stale ones must
     revalidate first. *)
  let entry_live entry =
    let e = cert_epoch () in
    if Atomic.get entry.pe_checked_at = e then true
    else if entry.pe_revalidate () then begin
      Atomic.set entry.pe_checked_at e;
      true
    end
    else begin
      drop entry;
      false
    end

  let certified_leaf ~sink ~family ctx =
    List.exists
      (fun entry ->
        String.equal entry.pe_sink sink
        && String.equal entry.pe_family family
        && endpoint_matches entry ctx
        && entry_live entry && entry.pe_guard ctx)
      (Atomic.get cell)

  (* A whole policy is covered iff every leaf of its conjunction tree is
     certified at this context's sink. *)
  let covers policy ctx =
    match Context.sink ctx with
    | None -> false
    | Some sink ->
        let rec walk policy =
          match Policy.members policy with
          | None -> certified_leaf ~sink ~family:(Policy.name policy) ctx
          | Some ms -> List.for_all walk ms
        in
        walk policy

  (* Compile the static pass's satisfying clause into a runtime guard.
     The guard re-checks each atom against the concrete context, so an
     over-claimed site model can only lose elisions, never verdicts.
     [Principal_in] mirrors the apps' acting-principal convention: the
     "recipient" custom field when present, the user otherwise. *)
  let principal ctx =
    match Context.custom ctx "recipient" with Some r -> Some r | None -> Context.user ctx

  let atom_holds ctx (a : Elision.atom) =
    match a with
    | Elision.Sink_is s -> ( match Context.sink ctx with Some s' -> String.equal s s' | None -> false)
    | Elision.Sink_not s -> (
        match Context.sink ctx with Some s' -> not (String.equal s s') | None -> false)
    | Elision.Custom_eq (k, v) -> (
        match Context.custom ctx k with Some v' -> String.equal v v' | None -> false)
    | Elision.Custom_not (k, v) -> (
        match Context.custom ctx k with Some v' -> not (String.equal v v') | None -> true)
    | Elision.Principal_in ps -> (
        match principal ctx with Some p -> List.exists (String.equal p) ps | None -> false)

  let guard_of_atoms atoms ctx = List.for_all (atom_holds ctx) atoms
end

(* ------------------------------------------------------------------ *)
(* Per-domain verdict cache. Domain-local on purpose: no lock on the hot
   path, and invalidation needs no cross-domain coordination — each
   domain validates entries against the live epochs at its next lookup.
   The key pairs the policy instance id with the full context; equality
   is structural over the whole context, so the (Hashtbl.hash)
   fingerprint only routes to a bucket and can never alias two different
   contexts into one verdict.

   In precise mode an entry carries the footprint its computation
   recorded and the [base] it was computed under, and is valid while
   both are unchanged — entries over untouched tables/shards survive
   writes elsewhere. In coarse mode the whole cache resets whenever the
   global epoch moves, exactly as before. *)

type entry = {
  e_verdict : (unit, string) result;
  e_base : int;  (* [base ()] at compute time (precise mode only) *)
  e_fp : Sesame_db.Footprint.snapshot;
}

type cache = {
  mutable at : int;  (* coarse mode: epoch the verdicts were computed under *)
  mutable precise_mode : bool;  (* the flag value the entries were stored under *)
  tbl : (int * Context.t, entry) Hashtbl.t;
}

let caches : cache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { at = min_int; precise_mode = Atomic.get precise; tbl = Hashtbl.create 1024 })

(* Fresh policy instances (one-shot ids) leave dead entries behind; a cap
   bounds the table between epochs. Resetting forgets live entries too,
   but a reset is just a cold start, never a wrong answer. *)
let max_entries = 65536

let domain_cache () =
  let c = Domain.DLS.get caches in
  let p = Atomic.get precise in
  if c.precise_mode <> p then begin
    (* Mode flip: entries stored under the other validity discipline
       are not comparable — drop them. *)
    Hashtbl.reset c.tbl;
    c.precise_mode <- p;
    c.at <- epoch ()
  end
  else if not p then begin
    let e = epoch () in
    if c.at <> e then begin
      Hashtbl.reset c.tbl;
      c.at <- e
    end
  end;
  c

(* ------------------------------------------------------------------ *)

let first_denial results =
  (* Member order = check order: the reported denial is the leftmost one,
     exactly as the sequential short-circuit reports it. *)
  let n = Array.length results in
  let rec scan i =
    if i = n then Ok ()
    else match results.(i) with Ok () -> scan (i + 1) | Error _ as e -> e
  in
  scan 0

let rec check_verbose policy ctx =
  if Policy.is_no_policy policy then Ok ()
  else if Atomic.get elide && Plan.active () && Plan.covers policy ctx then begin
    (* Every leaf of the conjunction is certified identically-Ok for
       this context: the whole check is discharged statically. Elision
       only ever stands in for an Ok, so verdicts and denial messages
       are byte-identical to the reference. *)
    Atomic.incr elisions;
    Ok ()
  end
  else if not (Atomic.get memoize) then compute policy ctx
  else begin
    let c = domain_cache () in
    let key = (Policy.id policy, ctx) in
    let live =
      match Hashtbl.find_opt c.tbl key with
      | None -> None
      | Some e when not c.precise_mode ->
          (* Coarse mode: [domain_cache] reset on any epoch move, so a
             present entry is current by construction. *)
          Some e
      | Some e ->
          if e.e_base = base () && Sesame_db.Footprint.valid e.e_fp then Some e
          else begin
            (* Something this verdict read has changed (or a binding was
               rebound): retire just this entry. *)
            Hashtbl.remove c.tbl key;
            None
          end
    in
    match live with
    | Some e ->
        Atomic.incr hits;
        (* The reused verdict's reads become the caller's reads — an
           enclosing recording (an aggregate-cache capture, an outer
           conjunction) must inherit them to stay sound. *)
        if c.precise_mode then Sesame_db.Footprint.merge_ambient e.e_fp;
        e.e_verdict
    | None ->
        Atomic.incr misses;
        if c.precise_mode then begin
          let b = base () in
          let verdict, fp = Sesame_db.Footprint.scope (fun () -> compute policy ctx) in
          (* A deadline expiry is never cached: it is a fact about this
             request's budget, not about the policy — the next request
             must recompute. A check that itself mutated the database
             bumped a shard its footprint recorded (or the structural
             epoch), so the store-time validity test below fails and the
             verdict — which belongs to the old world — is not stored. *)
          let budget_refusal =
            match verdict with
            | Error msg -> Sesame_deadline.is_deadline_error msg
            | Ok () -> false
          in
          if (not budget_refusal) && b = base () && Sesame_db.Footprint.valid fp
          then begin
            if Hashtbl.length c.tbl >= max_entries then Hashtbl.reset c.tbl;
            Hashtbl.replace c.tbl key { e_verdict = verdict; e_base = b; e_fp = fp }
          end;
          verdict
        end
        else begin
          let verdict = compute policy ctx in
          (* A check that itself mutated the database moved the epoch;
             the verdict it produced belongs to the old world and must
             not be stored against the new one. *)
          let budget_refusal =
            match verdict with
            | Error msg -> Sesame_deadline.is_deadline_error msg
            | Ok () -> false
          in
          if epoch () = c.at && not budget_refusal then begin
            if Hashtbl.length c.tbl >= max_entries then Hashtbl.reset c.tbl;
            Hashtbl.replace c.tbl key
              { e_verdict = verdict; e_base = 0; e_fp = Sesame_db.Footprint.empty }
          end;
          verdict
        end
  end

and compute policy ctx =
  match Policy.members policy with
  | None -> Policy.check_verbose policy ctx
  | Some members -> (
      let arr = Array.of_list members in
      let n = Array.length arr in
      let wide = n >= Atomic.get parallel_cutoff in
      match (if wide then pool () else None) with
      | Some p ->
          Atomic.incr parallel_fanouts;
          (* Evaluate every member (no short-circuit), then report the
             leftmost denial: same verdict and message as the sequential
             walk, paid for with the tail checks the sequential walk
             would have skipped on a denial.

             The ambient deadline is domain-local, so it is captured
             here and re-installed inside each pool task; a task whose
             budget is already gone refuses without computing, so a
             wide conjunction abandons in one sweep of cheap refusals
             rather than grinding through its tail over budget. *)
          let budget = Sesame_deadline.current () in
          let expired_verdict =
            lazy (Error (Sesame_deadline.error_message "policy fan-out"))
          in
          (* Footprint scopes are domain-local, so a member evaluated on
             a pool worker records into the worker's (empty) stack. Each
             task therefore runs under its own scope and ships its
             footprint back; merging them here makes the caller's
             ambient scope see everything any member read — exactly what
             the sequential walk's nested scopes would have recorded. *)
          let results =
            Parallel.map_array ~cutoff:1 p
              (fun m ->
                if Sesame_deadline.expired budget then
                  (Lazy.force expired_verdict, Sesame_db.Footprint.empty)
                else
                  Sesame_db.Footprint.scope (fun () ->
                      Sesame_deadline.with_deadline budget (fun () ->
                          check_verbose m ctx)))
              arr
          in
          Array.iter (fun (_, fp) -> Sesame_db.Footprint.merge_ambient fp) results;
          first_denial (Array.map fst results)
      | None ->
          let rec walk i =
            if i = n then Ok ()
            else
              match check_verbose arr.(i) ctx with
              | Ok () -> walk (i + 1)
              | Error _ as e -> e
          in
          walk 0)

let check policy ctx = Result.is_ok (check_verbose policy ctx)

(* ------------------------------------------------------------------ *)
(* Validity capture for external caches (Sesame_conn's per-group
   aggregate cache): run a computation, come back with a token that
   answers "may I still reuse its result?" under whichever invalidation
   mode is active. Precise tokens carry the computation's read
   footprint and stay valid across unrelated writes; coarse tokens pin
   the global epoch, reproducing the old reset-on-any-write behavior. *)

module Validity = struct
  type t =
    | Precise of { v_base : int; v_fp : Sesame_db.Footprint.snapshot }
    | Coarse of int

  let capture f =
    if Atomic.get precise then begin
      (* Sample the base before running: if a binding rebinds or a
         table drops mid-computation, the token is born stale —
         conservative, never wrong. *)
      let b = base () in
      let v, fp = Sesame_db.Footprint.scope f in
      (v, Precise { v_base = b; v_fp = fp })
    end
    else (f (), Coarse (epoch ()))

  let valid = function
    | Precise { v_base; v_fp } -> v_base = base () && Sesame_db.Footprint.valid v_fp
    | Coarse e -> e = epoch ()

  let merge_ambient = function
    | Precise { v_fp; _ } -> Sesame_db.Footprint.merge_ambient v_fp
    | Coarse _ -> ()
end
