module Parallel = Sesame_parallel
module Elision = Sesame_scrutinizer.Elision

type stats = {
  hits : int;
  misses : int;
  parallel_fanouts : int;
  elisions : int;
  pushdowns : int;
}

let hits = Atomic.make 0
let misses = Atomic.make 0
let parallel_fanouts = Atomic.make 0
let elisions = Atomic.make 0
let pushdowns = Atomic.make 0

let stats () =
  {
    hits = Atomic.get hits;
    misses = Atomic.get misses;
    parallel_fanouts = Atomic.get parallel_fanouts;
    elisions = Atomic.get elisions;
    pushdowns = Atomic.get pushdowns;
  }

let reset_stats () =
  Atomic.set hits 0;
  Atomic.set misses 0;
  Atomic.set parallel_fanouts 0;
  Atomic.set elisions 0;
  Atomic.set pushdowns 0

let note_pushdown () = Atomic.incr pushdowns
let note_elision () = Atomic.incr elisions

(* ------------------------------------------------------------------ *)
(* Epoch: table generation + policy-binding bumps. A verdict may depend
   on database state its check read, so any accepted mutation anywhere
   must retire every cached verdict; rebinding a (table, column) policy
   changes what future rows mean, so it bumps too. *)

let bumps = Atomic.make 0
let bump () = Atomic.incr bumps
let epoch () = Atomic.get bumps + Sesame_db.Table.generation ()

let memoize = Atomic.make true
let set_memoization on = Atomic.set memoize on
let memoization () = Atomic.get memoize

(* Elision and pushdown default on: with no plan installed and no
   binding translation registered they are exact no-ops, so the flags
   only matter once an app compiles its static verdicts in. *)
let elide = Atomic.make true
let set_elision on = Atomic.set elide on
let elision () = Atomic.get elide

let pushdown = Atomic.make true
let set_pushdown on = Atomic.set pushdown on
let pushdown_enabled () = Atomic.get pushdown

let parallel_cutoff = Atomic.make 64
let set_parallel_cutoff n = Atomic.set parallel_cutoff (max 2 n)

(* The pool is resolved lazily so merely linking the library never spawns
   domains: first use consults PARALLEL_DOMAINS via the shared default
   pool, and a pool without workers is treated as "no pool". *)
type pool_setting = Unresolved | Pool of Parallel.t | No_pool

let pool_setting = ref Unresolved
let pool_lock = Mutex.create ()

let set_pool p =
  Mutex.lock pool_lock;
  pool_setting := (match p with Some p -> Pool p | None -> No_pool);
  Mutex.unlock pool_lock

let pool () =
  Mutex.lock pool_lock;
  let resolved =
    match !pool_setting with
    | Pool p -> Some p
    | No_pool -> None
    | Unresolved ->
        let d = Parallel.default () in
        let v = if Parallel.domains d > 1 then Pool d else No_pool in
        pool_setting := v;
        (match v with Pool p -> Some p | _ -> None)
  in
  Mutex.unlock pool_lock;
  resolved

(* ------------------------------------------------------------------ *)
(* The enforcement plan: elision certificates compiled from the static
   pass. A certificate says "every check of family F at sink S (under
   endpoint E) whose context satisfies the guard is identically Ok".
   Certificates are keyed by the same epoch as the verdict cache: while
   the epoch an entry was last validated under is current, the fast path
   is one guard evaluation; when the epoch moves, the entry's
   [revalidate] closure (supplied by the installer, typically checking
   policy-binding versions and table schemas) must re-approve it or the
   entry is dropped and the residual runtime check runs. Certificate
   validity is therefore a subset of epoch validity — a certificate can
   never outlive the verdicts it stands in for. *)

module Plan = struct
  type entry = {
    pe_endpoint : string option;  (* None = any endpoint *)
    pe_sink : string;
    pe_family : string;
    pe_guard : Context.t -> bool;
    pe_revalidate : unit -> bool;
    pe_witness : string;
    pe_checked_at : int Atomic.t;
  }

  let entry ?endpoint ~sink ~family ~guard ~revalidate ~witness () =
    {
      pe_endpoint = endpoint;
      pe_sink = sink;
      pe_family = family;
      pe_guard = guard;
      pe_revalidate = revalidate;
      pe_witness = witness;
      pe_checked_at = Atomic.make min_int;
    }

  (* An immutable snapshot list behind an Atomic: the hot path scans
     lock-free; installs and drops CAS-replace the list. The plan is
     tiny (one entry per certified (endpoint, sink, family) triple). *)
  let cell : entry list Atomic.t = Atomic.make []

  let rec install e =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (e :: cur)) then install e

  let size () = List.length (Atomic.get cell)
  let active () = Atomic.get cell <> []

  (* Endpoint release-sink declarations: "everything endpoint E releases
     is checked under one of these sinks (with the request context)".
     They let data-wrapping sites (query_agg) consult certificates for
     checks that will only run later, at release time. *)
  let decls : (string * string list) list Atomic.t = Atomic.make []

  let rec declare_endpoint_sinks ~endpoint sinks =
    let cur = Atomic.get decls in
    let next = (endpoint, sinks) :: List.remove_assoc endpoint cur in
    if not (Atomic.compare_and_set decls cur next) then declare_endpoint_sinks ~endpoint sinks

  let clear () =
    Atomic.set cell [];
    Atomic.set decls []

  let rec drop e =
    let cur = Atomic.get cell in
    let next = List.filter (fun x -> x != e) cur in
    if not (Atomic.compare_and_set cell cur next) then drop e

  let path_covers declared actual =
    String.equal declared actual || String.starts_with ~prefix:(declared ^ "/") actual

  let endpoint_matches entry ctx =
    match entry.pe_endpoint with
    | None -> true
    | Some e -> (
        match Context.endpoint ctx with Some ep -> path_covers e ep | None -> false)

  let endpoint_sinks ctx =
    match Context.endpoint ctx with
    | None -> None
    | Some ep ->
        List.find_map
          (fun (e, sinks) -> if path_covers e ep then Some sinks else None)
          (Atomic.get decls)

  (* Is this one entry usable right now? Epoch-current entries answer
     with a guard evaluation; stale ones must revalidate first. *)
  let entry_live entry =
    let e = epoch () in
    if Atomic.get entry.pe_checked_at = e then true
    else if entry.pe_revalidate () then begin
      Atomic.set entry.pe_checked_at e;
      true
    end
    else begin
      drop entry;
      false
    end

  let certified_leaf ~sink ~family ctx =
    List.exists
      (fun entry ->
        String.equal entry.pe_sink sink
        && String.equal entry.pe_family family
        && endpoint_matches entry ctx
        && entry_live entry && entry.pe_guard ctx)
      (Atomic.get cell)

  (* A whole policy is covered iff every leaf of its conjunction tree is
     certified at this context's sink. *)
  let covers policy ctx =
    match Context.sink ctx with
    | None -> false
    | Some sink ->
        let rec walk policy =
          match Policy.members policy with
          | None -> certified_leaf ~sink ~family:(Policy.name policy) ctx
          | Some ms -> List.for_all walk ms
        in
        walk policy

  (* Compile the static pass's satisfying clause into a runtime guard.
     The guard re-checks each atom against the concrete context, so an
     over-claimed site model can only lose elisions, never verdicts.
     [Principal_in] mirrors the apps' acting-principal convention: the
     "recipient" custom field when present, the user otherwise. *)
  let principal ctx =
    match Context.custom ctx "recipient" with Some r -> Some r | None -> Context.user ctx

  let atom_holds ctx (a : Elision.atom) =
    match a with
    | Elision.Sink_is s -> ( match Context.sink ctx with Some s' -> String.equal s s' | None -> false)
    | Elision.Sink_not s -> (
        match Context.sink ctx with Some s' -> not (String.equal s s') | None -> false)
    | Elision.Custom_eq (k, v) -> (
        match Context.custom ctx k with Some v' -> String.equal v v' | None -> false)
    | Elision.Custom_not (k, v) -> (
        match Context.custom ctx k with Some v' -> not (String.equal v v') | None -> true)
    | Elision.Principal_in ps -> (
        match principal ctx with Some p -> List.exists (String.equal p) ps | None -> false)

  let guard_of_atoms atoms ctx = List.for_all (atom_holds ctx) atoms
end

(* ------------------------------------------------------------------ *)
(* Per-domain verdict cache. Domain-local on purpose: no lock on the hot
   path, and invalidation needs no cross-domain coordination — each
   domain notices the epoch moved at its next lookup and resets. The key
   pairs the policy instance id with the full context; equality is
   structural over the whole context, so the (Hashtbl.hash) fingerprint
   only routes to a bucket and can never alias two different contexts
   into one verdict. *)

type cache = {
  mutable at : int;  (* epoch the cached verdicts were computed under *)
  tbl : (int * Context.t, (unit, string) result) Hashtbl.t;
}

let caches : cache Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { at = min_int; tbl = Hashtbl.create 1024 })

(* Fresh policy instances (one-shot ids) leave dead entries behind; a cap
   bounds the table between epochs. Resetting forgets live entries too,
   but a reset is just a cold start, never a wrong answer. *)
let max_entries = 65536

let domain_cache () =
  let c = Domain.DLS.get caches in
  let e = epoch () in
  if c.at <> e then begin
    Hashtbl.reset c.tbl;
    c.at <- e
  end;
  c

(* ------------------------------------------------------------------ *)

let first_denial results =
  (* Member order = check order: the reported denial is the leftmost one,
     exactly as the sequential short-circuit reports it. *)
  let n = Array.length results in
  let rec scan i =
    if i = n then Ok ()
    else match results.(i) with Ok () -> scan (i + 1) | Error _ as e -> e
  in
  scan 0

let rec check_verbose policy ctx =
  if Policy.is_no_policy policy then Ok ()
  else if Atomic.get elide && Plan.active () && Plan.covers policy ctx then begin
    (* Every leaf of the conjunction is certified identically-Ok for
       this context: the whole check is discharged statically. Elision
       only ever stands in for an Ok, so verdicts and denial messages
       are byte-identical to the reference. *)
    Atomic.incr elisions;
    Ok ()
  end
  else if not (Atomic.get memoize) then compute policy ctx
  else begin
    let c = domain_cache () in
    let key = (Policy.id policy, ctx) in
    match Hashtbl.find_opt c.tbl key with
    | Some verdict ->
        Atomic.incr hits;
        verdict
    | None ->
        Atomic.incr misses;
        let verdict = compute policy ctx in
        (* A check that itself mutated the database moved the epoch; the
           verdict it produced belongs to the old world and must not be
           stored against the new one. A deadline expiry is likewise
           never cached: it is a fact about this request's budget, not
           about the policy — the next request must recompute. *)
        let budget_refusal =
          match verdict with
          | Error msg -> Sesame_deadline.is_deadline_error msg
          | Ok () -> false
        in
        if epoch () = c.at && not budget_refusal then begin
          if Hashtbl.length c.tbl >= max_entries then Hashtbl.reset c.tbl;
          Hashtbl.add c.tbl key verdict
        end;
        verdict
  end

and compute policy ctx =
  match Policy.members policy with
  | None -> Policy.check_verbose policy ctx
  | Some members -> (
      let arr = Array.of_list members in
      let n = Array.length arr in
      let wide = n >= Atomic.get parallel_cutoff in
      match (if wide then pool () else None) with
      | Some p ->
          Atomic.incr parallel_fanouts;
          (* Evaluate every member (no short-circuit), then report the
             leftmost denial: same verdict and message as the sequential
             walk, paid for with the tail checks the sequential walk
             would have skipped on a denial.

             The ambient deadline is domain-local, so it is captured
             here and re-installed inside each pool task; a task whose
             budget is already gone refuses without computing, so a
             wide conjunction abandons in one sweep of cheap refusals
             rather than grinding through its tail over budget. *)
          let budget = Sesame_deadline.current () in
          let expired_verdict =
            lazy (Error (Sesame_deadline.error_message "policy fan-out"))
          in
          first_denial
            (Parallel.map_array ~cutoff:1 p
               (fun m ->
                 if Sesame_deadline.expired budget then Lazy.force expired_verdict
                 else
                   Sesame_deadline.with_deadline budget (fun () -> check_verbose m ctx))
               arr)
      | None ->
          let rec walk i =
            if i = n then Ok ()
            else
              match check_verbose arr.(i) ctx with
              | Ok () -> walk (i + 1)
              | Error _ as e -> e
          in
          walk 0)

let check policy ctx = Result.is_ok (check_verbose policy ctx)
