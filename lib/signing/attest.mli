(** The signed run-attestation log.

    Closes the loop between static verdicts and runtime isolation
    (Harpocrates' fail-closed posture meets Data Capsule's auditable
    artifact trail): every region installation appends a signed
    {e approval} frame binding its body hash to the Scrutinizer verdict
    it passed, and every sandbox invocation appends a signed {e run}
    manifest binding {body hash, verdict fingerprint, budgets, outcome,
    quota state, preflight report hash}. Frames are CRC-framed
    ([u32 len | u32 crc | payload], little-endian, after an [SSMATT01]
    header) and individually MAC'd with {!Signature} under the
    attestor's secret; {!verify} replays the log and fails on any run
    whose body hash lacks an approving verdict, any CRC mismatch, and
    any signature that does not check out.

    Fail closed: the [attest-append] seam fires before anything is
    written and [attest-fsync] between write and flush; a run whose
    manifest cannot be appended must be denied, not served. *)

val default_secret : string
(** Symmetric test-fixture secret (the keystore analogue of the
    reviewer secrets baked into app fixtures); deployments supply their
    own via [create_recorder]/[verify]. *)

val default_signer : string

type approval = {
  kind : string;  (** [verified] / [sandboxed] / [critical] *)
  body_hash : Sha256.t;
  verdict : string;  (** Scrutinizer verdict fingerprint *)
  at : int;
}

type manifest = {
  seq : int;
  region : string;
  run_body_hash : Sha256.t;
  run_verdict : string;
  budgets : string;
  outcome : string;  (** ["ok"] or the trap/denial class — never guest data *)
  quota : string;  (** the region's quota books when this run was recorded *)
  preflight : string;  (** hex hash of the pool's preflight report, or ["none"] *)
  run_at : int;
}

type frame = Approval of approval | Run of manifest

(** {1 Recording} *)

type recorder

val create_recorder :
  ?fsync:bool -> ?secret:string -> ?signer:string -> string -> (recorder, string) result
(** Opens (appending) or creates the log at the given path, guarded by
    a {!Lockfile.File_lock} at [path ^ ".lock"] so two processes cannot
    interleave frames. [fsync] (default false) flushes every frame. *)

val append_approval :
  recorder -> kind:string -> body_hash:Sha256.t -> verdict:string -> (unit, string) result

val append_run :
  recorder ->
  region:string ->
  body_hash:Sha256.t ->
  verdict:string ->
  budgets:string ->
  outcome:string ->
  quota:string ->
  preflight:string ->
  (unit, string) result
(** Both appends are serialized under the recorder's mutex and hit the
    attestation fault seams; an [Error] means the frame is not durably
    bound and the caller must fail the run closed. *)

val close_recorder : recorder -> unit
(** Idempotent; releases the file lock. *)

(** {1 The ambient recorder}

    Installed once at boot (bench serve, demo [--attest-log]); regions
    consult it at installation and per run. [None] (the default) means
    attestation is off and regions run unrecorded. *)

val install : recorder -> unit
val uninstall : unit -> unit
val current : unit -> recorder option

(** {1 Verification} *)

type verify_summary = {
  approvals : int;
  runs : int;
  distinct_bodies : int;
  torn_tail : bool;  (** an incomplete trailing frame (crash mid-append) was ignored *)
}

val verify : ?secret:string -> string -> (verify_summary, string) result
(** Replays the log: checks magic, every frame's CRC and signature, and
    that every run's body hash carries an {e earlier} approving verdict
    (installation precedes execution). A torn {e trailing} frame is
    tolerated (and flagged); corruption anywhere else is an error. *)

val frames : ?secret:string -> string -> (frame list, string) result
(** The raw frames (CRC- and signature-checked), for tests and tooling. *)
