type package = { name : string; version : string; deps : string list }

module Smap = Map.Make (String)

type t = package Smap.t

let empty = Smap.empty
let add t p = Smap.add p.name p t
let of_packages ps = List.fold_left add empty ps
let find t name = Smap.find_opt name t
let packages t = Smap.bindings t |> List.map snd

let closure t roots =
  let visited = Hashtbl.create 16 in
  let acc = ref [] in
  let missing = ref None in
  let rec visit name =
    if (not (Hashtbl.mem visited name)) && !missing = None then (
      Hashtbl.add visited name ();
      match find t name with
      | None -> missing := Some name
      | Some p ->
          acc := (p.name, p.version) :: !acc;
          List.iter visit p.deps)
  in
  List.iter visit roots;
  match !missing with
  | Some name -> Error name
  | None -> Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) !acc)

let parse text =
  let parse_line acc line =
    match acc with
    | Error _ -> acc
    | Ok t -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [] -> Ok t
        | [ _only_name ] -> Error (Printf.sprintf "missing version in %S" line)
        | name :: version :: deps -> Ok (add t { name; version; deps }))
  in
  String.split_on_char '\n' text |> List.fold_left parse_line (Ok empty)

let render t =
  packages t
  |> List.map (fun p -> String.concat " " (p.name :: p.version :: p.deps))
  |> String.concat "\n"

let equal a b =
  Smap.equal
    (fun p q -> p.version = q.version && List.sort compare p.deps = List.sort compare q.deps)
    a b

(* ------------------------------------------------------------------ *)

module File_lock = struct
  type held = { path : string; mutable released : bool }

  type error =
    | Held of { pid : int; age_s : float }
    | Io of string

  let error_message = function
    | Held { pid; age_s } ->
        Printf.sprintf "lock held by live pid %d (age %.1fs)" pid age_s
    | Io msg -> msg

  (* [kill pid 0] probes liveness without signalling. EPERM means the
     process exists but belongs to someone else — alive. Only ESRCH
     proves death; anything unexpected is treated as alive so we never
     break a lock we can't reason about. *)
  let pid_alive pid =
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
    | exception _ -> true

  let read_owner path =
    match In_channel.with_open_bin path In_channel.input_all with
    | contents -> (
        match String.split_on_char ' ' (String.trim contents) with
        | [ pid; at ] -> (
            match (int_of_string_opt pid, float_of_string_opt at) with
            | Some pid, Some at -> Some (pid, at)
            | _ -> None)
        | _ -> None)
    | exception _ -> None

  let try_create path =
    match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
    | fd ->
        let line = Printf.sprintf "%d %.3f\n" (Unix.getpid ()) (Unix.gettimeofday ()) in
        let ok =
          try
            ignore (Unix.write_substring fd line 0 (String.length line));
            true
          with _ -> false
        in
        (try Unix.close fd with _ -> ());
        if ok then Ok { path; released = false }
        else begin
          (try Unix.unlink path with _ -> ());
          Error (Io (Printf.sprintf "could not write lock owner into %s" path))
        end
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Error (Held { pid = -1; age_s = 0.0 })
    | exception Unix.Unix_error (e, _, _) ->
        Error (Io (Printf.sprintf "%s: %s" path (Unix.error_message e)))

  let default_warn msg = prerr_endline ("sesame: " ^ msg)

  (* A lock left by a SIGKILL'd process must not wedge the system
     forever: a lock whose owner is dead, unparsable, or older than
     [stale_after_s] is broken with a logged warning and re-acquired.
     The break-then-retry loop is bounded — two waiters racing to break
     the same stale lock resolve in one round (unlink is idempotent;
     exactly one O_EXCL create wins). *)
  let acquire ?(stale_after_s = 600.0) ?(warn = default_warn) path =
    let rec go attempts =
      match try_create path with
      | Ok held -> Ok held
      | Error (Io _ as e) -> Error e
      | Error (Held _) when attempts > 0 -> (
          let stale reason =
            warn (Printf.sprintf "breaking stale lock %s (%s)" path reason);
            (try Unix.unlink path with _ -> ());
            go (attempts - 1)
          in
          match read_owner path with
          | None ->
              (* Unparsable or vanished: either a corrupt leftover or the
                 holder released between our create and read — retry
                 either way. *)
              if Sys.file_exists path then stale "unreadable owner" else go (attempts - 1)
          | Some (pid, at) ->
              let age_s = Unix.gettimeofday () -. at in
              if not (pid_alive pid) then stale (Printf.sprintf "pid %d is dead" pid)
              else if age_s > stale_after_s then
                stale (Printf.sprintf "held %.0fs by pid %d, past the %.0fs bound" age_s pid
                         stale_after_s)
              else Error (Held { pid; age_s }))
      | Error (Held _) -> (
          match read_owner path with
          | Some (pid, at) -> Error (Held { pid; age_s = Unix.gettimeofday () -. at })
          | None -> Error (Held { pid = -1; age_s = 0.0 }))
    in
    go 3

  let release held =
    if not held.released then begin
      held.released <- true;
      try Unix.unlink held.path with _ -> ()
    end

  let with_lock ?stale_after_s ?warn path f =
    match acquire ?stale_after_s ?warn path with
    | Error e -> Error e
    | Ok held -> Ok (Fun.protect ~finally:(fun () -> release held) f)
end
