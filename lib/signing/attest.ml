(* The signed run-attestation log.

   Append-only, CRC-framed (the WAL's framing idiom: magic header, then
   [u32 len | u32 crc | payload] little-endian frames), with every frame
   carrying an HMAC-style signature under the attestor's secret. Two
   frame kinds close the loop between static verdicts and runtime
   isolation: an [Approval] binds a region-body hash to the Scrutinizer
   verdict it was installed under, and a [Run] manifest binds one
   sandbox invocation to {body hash, verdict fingerprint, budgets,
   outcome, quota state, preflight report hash}. The verifier replays
   the log and fails on any run whose body hash has no approving
   verdict — or any frame whose CRC or signature does not check out. *)

let magic = "SSMATT01"
let header_size = String.length magic
let frame_header = 8

let default_secret = "sesame-attestor-secret"
let default_signer = "sesame-attestor"

(* Standard CRC-32 (IEEE), table-driven; kept local so [lib/signing]
   stays below the DB/WAL layers. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc_of s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.to_int (Int32.logxor !c 0xFFFFFFFFl) land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Frame payloads: tab-separated [key=value] pairs, values escaped so
   tabs/newlines cannot smuggle extra fields. The signature MAC covers
   the payload with its [mac=] field removed. *)

let escape s =
  if String.exists (fun c -> c = '%' || c = '\t' || c = '\n') s then begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '%' -> Buffer.add_string b "%25"
        | '\t' -> Buffer.add_string b "%09"
        | '\n' -> Buffer.add_string b "%0A"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end
  else s

let unescape s =
  if not (String.contains s '%') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n then begin
         (match String.sub s (!i + 1) 2 with
         | "25" -> Buffer.add_char b '%'
         | "09" -> Buffer.add_char b '\t'
         | "0A" -> Buffer.add_char b '\n'
         | other ->
             Buffer.add_char b '%';
             Buffer.add_string b other);
         i := !i + 2
       end
       else Buffer.add_char b s.[!i]);
      incr i
    done;
    Buffer.contents b
  end

let render_fields fields =
  String.concat "\t" (List.map (fun (k, v) -> k ^ "=" ^ escape v) fields)

let parse_fields payload =
  String.split_on_char '\t' payload
  |> List.filter_map (fun kv ->
         match String.index_opt kv '=' with
         | Some i ->
             Some
               ( String.sub kv 0 i,
                 unescape (String.sub kv (i + 1) (String.length kv - i - 1)) )
         | None -> None)

type approval = {
  kind : string;  (* verified | sandboxed | critical *)
  body_hash : Sha256.t;
  verdict : string;  (* Scrutinizer verdict fingerprint *)
  at : int;
}

type manifest = {
  seq : int;
  region : string;
  run_body_hash : Sha256.t;
  run_verdict : string;
  budgets : string;
  outcome : string;  (* "ok" or the trap/denial class — never guest data *)
  quota : string;  (* the region's quota books when this run was recorded *)
  preflight : string;  (* hex hash of the pool's preflight report, or "none" *)
  run_at : int;
}

type frame = Approval of approval | Run of manifest

let approval_fields a =
  [
    ("type", "approval");
    ("kind", a.kind);
    ("body", Sha256.to_hex a.body_hash);
    ("verdict", a.verdict);
    ("at", string_of_int a.at);
  ]

let run_fields m =
  [
    ("type", "run");
    ("seq", string_of_int m.seq);
    ("region", m.region);
    ("body", Sha256.to_hex m.run_body_hash);
    ("verdict", m.run_verdict);
    ("budgets", m.budgets);
    ("outcome", m.outcome);
    ("quota", m.quota);
    ("preflight", m.preflight);
    ("at", string_of_int m.run_at);
  ]

let signed_payload ~secret ~signer ~at fields =
  let body = render_fields (fields @ [ ("signer", signer) ]) in
  let signature = Signature.sign ~secret ~reviewer:signer ~at (Sha256.digest_string body) in
  body ^ "\tmac=" ^ Sha256.to_hex signature.Signature.mac

(* ------------------------------------------------------------------ *)
(* Recorder *)

type recorder = {
  path : string;
  secret : string;
  signer : string;
  fsync : bool;
  fd : Unix.file_descr;
  lock : Lockfile.File_lock.held;
  mutex : Mutex.t;
  seq : int Atomic.t;
  mutable closed : bool;
}

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let add_u32 buf n = Buffer.add_int32_le buf (Int32.of_int n)

let create_recorder ?(fsync = false) ?(secret = default_secret) ?(signer = default_signer) path =
  match Lockfile.File_lock.acquire (path ^ ".lock") with
  | Error e ->
      Error (Printf.sprintf "attest %s: %s" path (Lockfile.File_lock.error_message e))
  | Ok lock -> (
      match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 with
      | exception Unix.Unix_error (e, _, _) ->
          Lockfile.File_lock.release lock;
          Error (Printf.sprintf "attest %s: %s" path (Unix.error_message e))
      | fd -> (
          match
            let size = (Unix.fstat fd).Unix.st_size in
            if size = 0 then begin
              write_all fd magic 0 header_size;
              if fsync then Unix.fsync fd
            end;
            ()
          with
          | () ->
              Ok
                {
                  path;
                  secret;
                  signer;
                  fsync;
                  fd;
                  lock;
                  mutex = Mutex.create ();
                  seq = Atomic.make 0;
                  closed = false;
                }
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with _ -> ());
              Lockfile.File_lock.release lock;
              Error (Printf.sprintf "attest %s: %s" path (Unix.error_message e))))

let close_recorder r =
  Mutex.lock r.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock r.mutex)
    (fun () ->
      if not r.closed then begin
        r.closed <- true;
        (try Unix.close r.fd with _ -> ());
        Lockfile.File_lock.release r.lock
      end)

(* Every append hits the [attest-append] seam before anything is
   written, and [attest-fsync] between write and flush: an injected
   fault at either leaves the caller with an error it must convert into
   a denial — a run that cannot be attested must not be served. *)
let append_frame r fields ~at =
  Mutex.lock r.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock r.mutex)
    (fun () ->
      if r.closed then Error "attestation log is closed"
      else
        match
          Sesame_faults.hit Sesame_faults.Attest_append;
          let payload = signed_payload ~secret:r.secret ~signer:r.signer ~at fields in
          let buf = Buffer.create (String.length payload + frame_header) in
          add_u32 buf (String.length payload);
          add_u32 buf (crc_of payload);
          Buffer.add_string buf payload;
          let s = Buffer.contents buf in
          write_all r.fd s 0 (String.length s);
          if r.fsync then begin
            Sesame_faults.hit Sesame_faults.Attest_fsync;
            Unix.fsync r.fd
          end
        with
        | () -> Ok ()
        | exception Sesame_faults.Injected { point; action; transient } ->
            Error (Sesame_faults.injected_message point action ~transient)
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "attest append: %s" (Unix.error_message e)))

let now_unix () = int_of_float (Unix.gettimeofday ())

let append_approval r ~kind ~body_hash ~verdict =
  let at = now_unix () in
  append_frame r (approval_fields { kind; body_hash; verdict; at }) ~at

let append_run r ~region ~body_hash ~verdict ~budgets ~outcome ~quota ~preflight =
  let at = now_unix () in
  let seq = 1 + Atomic.fetch_and_add r.seq 1 in
  append_frame r
    (run_fields
       {
         seq;
         region;
         run_body_hash = body_hash;
         run_verdict = verdict;
         budgets;
         outcome;
         quota;
         preflight;
         run_at = at;
       })
    ~at

(* ------------------------------------------------------------------ *)
(* The ambient recorder: installed once at boot (bench serve, the demo
   with [--attest-log]); regions consult it at make and per run. *)

let ambient : recorder option Atomic.t = Atomic.make None

let install r = Atomic.set ambient (Some r)

let uninstall () = Atomic.set ambient None

let current () = Atomic.get ambient

(* ------------------------------------------------------------------ *)
(* Verifier *)

type verify_summary = {
  approvals : int;
  runs : int;
  distinct_bodies : int;
  torn_tail : bool;  (** an incomplete trailing frame was ignored *)
}

let field fields k = List.assoc_opt k fields

let u32_at s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let verify_payload ~secret ~offset payload =
  let fields = parse_fields payload in
  match (field fields "type", field fields "signer", field fields "at", field fields "mac") with
  | None, _, _, _ -> Error (Printf.sprintf "frame at %d: no type" offset)
  | _, None, _, _ | _, _, None, _ | _, _, _, None ->
      Error (Printf.sprintf "frame at %d: missing signature fields" offset)
  | Some ty, Some signer, Some at, Some mac -> (
      match (int_of_string_opt at, Sha256.of_hex mac) with
      | None, _ | _, None -> Error (Printf.sprintf "frame at %d: malformed signature fields" offset)
      | Some at, Some mac -> (
          match String.index_opt payload '\t' with
          | None -> Error (Printf.sprintf "frame at %d: malformed payload" offset)
          | Some _ -> (
              (* The MAC covers everything before the trailing "\tmac=…". *)
              let suffix = "\tmac=" in
              match
                let rec find i =
                  if i < 0 then None
                  else if
                    i + String.length suffix <= String.length payload
                    && String.sub payload i (String.length suffix) = suffix
                  then Some i
                  else find (i - 1)
                in
                find (String.length payload - 1)
              with
              | None -> Error (Printf.sprintf "frame at %d: unsigned" offset)
              | Some cut ->
                  let body = String.sub payload 0 cut in
                  let signature =
                    {
                      Signature.reviewer = signer;
                      signed_at = at;
                      digest = Sha256.digest_string body;
                      mac;
                    }
                  in
                  if Signature.verifies_with ~secret signature then Ok (ty, fields)
                  else Error (Printf.sprintf "frame at %d: signature does not verify" offset))))

let parse_frame ~secret ~offset payload =
  match verify_payload ~secret ~offset payload with
  | Error _ as e -> e
  | Ok (ty, fields) -> (
      let need k =
        match field fields k with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "frame at %d: missing %s" offset k)
      in
      let ( let* ) = Result.bind in
      match ty with
      | "approval" ->
          let* kind = need "kind" in
          let* body = need "body" in
          let* verdict = need "verdict" in
          let* at = need "at" in
          let* body_hash =
            Option.to_result ~none:(Printf.sprintf "frame at %d: bad body hash" offset)
              (Sha256.of_hex body)
          in
          let* at =
            Option.to_result ~none:(Printf.sprintf "frame at %d: bad at" offset)
              (int_of_string_opt at)
          in
          Ok (Approval { kind; body_hash; verdict; at })
      | "run" ->
          let* seq = need "seq" in
          let* region = need "region" in
          let* body = need "body" in
          let* verdict = need "verdict" in
          let* budgets = need "budgets" in
          let* outcome = need "outcome" in
          let* quota = need "quota" in
          let* preflight = need "preflight" in
          let* at = need "at" in
          let* run_body_hash =
            Option.to_result ~none:(Printf.sprintf "frame at %d: bad body hash" offset)
              (Sha256.of_hex body)
          in
          let* seq =
            Option.to_result ~none:(Printf.sprintf "frame at %d: bad seq" offset)
              (int_of_string_opt seq)
          in
          let* run_at =
            Option.to_result ~none:(Printf.sprintf "frame at %d: bad at" offset)
              (int_of_string_opt at)
          in
          Ok
            (Run
               {
                 seq;
                 region;
                 run_body_hash;
                 run_verdict = verdict;
                 budgets;
                 outcome;
                 quota;
                 preflight;
                 run_at;
               })
      | other -> Error (Printf.sprintf "frame at %d: unknown type %S" offset other))

let read_frames ~secret path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
      let n = String.length contents in
      if n < header_size || String.sub contents 0 header_size <> magic then
        Error (Printf.sprintf "%s: bad magic" path)
      else begin
        let frames = ref [] in
        let torn = ref false in
        let err = ref None in
        let pos = ref header_size in
        while !err = None && (not !torn) && !pos < n do
          if !pos + frame_header > n then torn := true
          else begin
            let len = u32_at contents !pos in
            let crc = u32_at contents (!pos + 4) in
            if !pos + frame_header + len > n then torn := true
            else begin
              let payload = String.sub contents (!pos + frame_header) len in
              if crc_of payload <> crc then
                err := Some (Printf.sprintf "frame at %d: CRC mismatch" !pos)
              else begin
                match parse_frame ~secret ~offset:!pos payload with
                | Error e -> err := Some e
                | Ok frame ->
                    frames := frame :: !frames;
                    pos := !pos + frame_header + len
              end
            end
          end
        done;
        match !err with
        | Some e -> Error e
        | None -> Ok (List.rev !frames, !torn)
      end

(* Replay: collect the approved body-hash set, then demand every run's
   body hash be in it. A torn trailing frame (crash mid-append) is
   tolerated and reported; a CRC or signature failure anywhere is not. *)
let verify ?(secret = default_secret) path =
  match read_frames ~secret path with
  | Error _ as e -> e
  | Ok (frames, torn_tail) ->
      let approved = Hashtbl.create 16 in
      let bodies = Hashtbl.create 16 in
      let approvals = ref 0 in
      let runs = ref 0 in
      let err = ref None in
      List.iter
        (fun frame ->
          if !err = None then
            match frame with
            | Approval a ->
                incr approvals;
                Hashtbl.replace approved (Sha256.to_hex a.body_hash) a.verdict
            | Run m ->
                incr runs;
                let hex = Sha256.to_hex m.run_body_hash in
                Hashtbl.replace bodies hex ();
                if not (Hashtbl.mem approved hex) then
                  err :=
                    Some
                      (Printf.sprintf
                         "run #%d (region %s) has no approving verdict for body %s" m.seq
                         m.region (String.sub hex 0 12)))
        frames;
      (match !err with
      | Some e -> Error e
      | None ->
          Ok
            {
              approvals = !approvals;
              runs = !runs;
              distinct_bodies = Hashtbl.length bodies;
              torn_tail;
            })

let frames ?(secret = default_secret) path =
  Result.map fst (read_frames ~secret path)
