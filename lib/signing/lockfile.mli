(** Dependency lockfile model (the Cargo.lock analogue).

    A lockfile pins every package of the application to an exact version
    and records each package's direct dependencies. Critical-region hashing
    "traverses the Cargo.lock file to find the exact versions of these
    dependencies and any transitive dependencies" (§7.3); {!closure}
    implements that traversal. *)

type package = {
  name : string;
  version : string;
  deps : string list;  (** names of direct dependencies *)
}

type t

val empty : t

val add : t -> package -> t
(** Adds or replaces a package entry (keyed by name). *)

val of_packages : package list -> t

val find : t -> string -> package option

val packages : t -> package list
(** All entries, sorted by name. *)

val closure : t -> string list -> ((string * string) list, string) result
(** [closure t roots] is the transitive dependency closure of [roots] as
    [(name, version)] pairs sorted by name, or [Error missing] naming the
    first package that the lockfile does not pin. Root packages themselves
    are included in the closure. Dependency cycles are tolerated (each
    package is visited once). *)

val parse : string -> (t, string) result
(** Parses the textual format written by {!render}: one [name version dep1
    dep2 ...] line per package; [#] starts a comment. *)

val render : t -> string

val equal : t -> t -> bool

(** Advisory filesystem locks with stale-lock recovery.

    Guards mutable signing artifacts (the attestation log) against
    concurrent writers from other processes. Acquisition is an atomic
    [O_CREAT|O_EXCL] create recording [pid start-time]; a lock left
    behind by a SIGKILL'd process is detected — owner pid dead
    ([ESRCH]), owner record unreadable, or the lock older than
    [stale_after_s] — and {e broken} with a logged warning instead of
    wedging every later writer forever. *)
module File_lock : sig
  type held

  type error =
    | Held of { pid : int; age_s : float }
        (** a live process holds the lock; [pid = -1] if unreadable *)
    | Io of string

  val error_message : error -> string

  val pid_alive : int -> bool
  (** Liveness probe via [kill pid 0]. [EPERM] counts as alive; only
      [ESRCH] proves death (never break a lock we can't reason about). *)

  val acquire : ?stale_after_s:float -> ?warn:(string -> unit) -> string -> (held, error) result
  (** [acquire path] takes the lock at [path]. [stale_after_s] defaults
      to 600; [warn] (default: stderr) receives one line per broken
      stale lock. Bounded retries, so two waiters racing to break the
      same stale lock resolve deterministically. *)

  val release : held -> unit
  (** Idempotent. *)

  val with_lock :
    ?stale_after_s:float -> ?warn:(string -> unit) -> string -> (unit -> 'a) -> ('a, error) result
end
