type failure =
  | Unresolvable_dispatch of { caller : string; method_name : string }
  | Fn_pointer_call of { caller : string }

let pp_failure fmt = function
  | Unresolvable_dispatch { caller; method_name } ->
      Format.fprintf fmt "%s: cannot resolve dynamic dispatch of %s" caller method_name
  | Fn_pointer_call { caller } ->
      Format.fprintf fmt "%s: call through an unresolved function pointer" caller

type t = {
  order : string list;  (* first-visit order, entry excluded *)
  entry : string;
  visited : (string, unit) Hashtbl.t;
  program : Program.t;
  failures : failure list;
}

let collect program ~allowlist (spec : Spec.t) =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let failures = ref [] in
  let failure_seen = Hashtbl.create 8 in
  let record_failure f =
    if not (Hashtbl.mem failure_seen f) then begin
      Hashtbl.add failure_seen f ();
      failures := f :: !failures
    end
  in
  let rec visit_callee name =
    if (not (Allowlist.mem allowlist name)) && not (Hashtbl.mem visited name) then begin
      Hashtbl.add visited name ();
      order := name :: !order;
      match Program.find program name with
      | None -> () (* unknown body: a leaf; the taint stage decides *)
      | Some f -> (
          match f.Ir.body with
          | Ir.Native | Ir.Unresolved_generic -> ()
          | Ir.Body stmts -> walk_stmts name stmts)
    end
  and walk_stmts fname stmts = List.iter (walk_stmt fname) stmts
  and walk_stmt fname = function
    | Ir.Let (_, e) | Ir.Expr_stmt e | Ir.Return (Some e) -> walk_expr fname e
    | Ir.Assign (lhs, e) | Ir.Unsafe_write (lhs, e) ->
        walk_lhs fname lhs;
        walk_expr fname e
    | Ir.If (c, a, b) ->
        walk_expr fname c;
        walk_stmts fname a;
        walk_stmts fname b
    | Ir.While (c, body) ->
        walk_expr fname c;
        walk_stmts fname body
    | Ir.For (_, e, body) ->
        walk_expr fname e;
        walk_stmts fname body
    | Ir.Return None -> ()
    | Ir.Opaque_unsafe args -> List.iter (walk_expr fname) args
  and walk_lhs fname = function
    | Ir.Lindex (_, e) -> walk_expr fname e
    | Ir.Lvar _ | Ir.Lfield _ | Ir.Lderef _ | Ir.Lglobal _ -> ()
  and walk_expr fname = function
    | Ir.Unit | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Str_lit _ | Ir.Bool_lit _
    | Ir.Var _ | Ir.Global _ | Ir.Ref _ | Ir.Ref_mut _ ->
        ()
    | Ir.Field (e, _) | Ir.Unop (_, e) | Ir.Deref e -> walk_expr fname e
    | Ir.Index (a, b) | Ir.Binop (_, a, b) ->
        walk_expr fname a;
        walk_expr fname b
    | Ir.Tuple es | Ir.Vec es -> List.iter (walk_expr fname) es
    | Ir.Call (callee, args) -> (
        List.iter (walk_expr fname) args;
        match callee with
        | Ir.Static name -> visit_callee name
        | Ir.Dynamic { method_name; receiver_hint } -> (
            match Program.resolve_dynamic program ~method_name ~receiver_hint with
            | None -> record_failure (Unresolvable_dispatch { caller = fname; method_name })
            | Some candidates -> List.iter visit_callee candidates)
        | Ir.Fn_ptr _ -> record_failure (Fn_pointer_call { caller = fname }))
  in
  walk_stmts spec.Spec.name spec.Spec.body;
  {
    order = List.rev !order;
    entry = spec.Spec.name;
    visited;
    program;
    failures = List.rev !failures;
  }

let failures t = t.failures
let order t = t.entry :: t.order
let functions_analyzed t = List.length (order t)
let reaches t name = Hashtbl.mem t.visited name

let in_crate_sources t (spec : Spec.t) =
  assert (t.entry = spec.Spec.name);
  let rest =
    List.filter_map
      (fun name ->
        match Program.find t.program name with
        | Some ({ Ir.kind = Ir.In_crate; _ } as f) -> Some (name, Ir.func_source f)
        | Some { Ir.kind = Ir.External _; _ } | None -> None)
      t.order
  in
  (spec.Spec.name, Spec.source spec) :: rest

let external_packages t =
  let packages =
    List.filter_map
      (fun name ->
        match Program.find t.program name with
        | Some { Ir.kind = Ir.External { package }; _ } -> Some package
        | Some { Ir.kind = Ir.In_crate; _ } -> None
        | None -> Some "unknown")
      t.order
  in
  List.sort_uniq String.compare packages
