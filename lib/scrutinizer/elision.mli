(** Check-elision analysis.

    Sesame pays for compliance at runtime even when the static phase
    already knows a check cannot deny. This pass consumes the analysis
    engine's per-parameter place-sensitive machinery and, per
    (endpoint, sink, policy-family) triple, classifies each runtime
    policy check:

    - {b Redundant} — provably a no-op at this site, by one of two
      rules. {e Field disjointness}: the region feeding the sink
      provably never releases any field the policy's verdict depends on
      ({!Analysis.param_exposures}). {e Context satisfaction}: the
      atoms every context at this site is known to satisfy entail a
      clause under which the family's check is identically true.
    - {b Pushable} — the family exposes a row-predicate translation
      ([to_expr]), so the check can run inside the DB scan instead of
      instantiating per-row policy objects post-hoc.
    - {b Residual} — the runtime check stands, with the reason.

    Every Redundant verdict carries a replayable proof witness in the
    same step vocabulary as the engine's rejection witnesses: {!replay}
    re-derives the certificate from the models and the program and
    confirms (or refutes) it byte-for-byte. The pass never trusts a
    certificate at runtime without a context guard: the satisfying
    clause is re-evaluated against each concrete context by the
    enforcement layer, so a site model that over-claims its facts can
    only lose elisions, never verdicts. *)

(** One fact about every context reaching a site, in the vocabulary the
    enforcement layer can re-check at runtime. [Principal_in] speaks
    about the acting principal: the ["recipient"] custom field when
    present, the authenticated user otherwise. *)
type atom =
  | Sink_is of string
  | Sink_not of string
  | Custom_eq of string * string
  | Custom_not of string * string  (** absent counts as "not" *)
  | Principal_in of string list

val pp_atom : Format.formatter -> atom -> unit
val atom_to_string : atom -> string

(** Static model of one policy family. [inspects] lists the
    [(table, column-path)] places whose contents the check's verdict can
    depend on (empty for purely contextual families); [satisfied_when]
    is a DNF — any clause whose atoms all hold makes the check
    identically true for every instance of the family; [pushable] marks
    families whose bindings translate to a row predicate. *)
type family = {
  family : string;
  inspects : (string * string list) list;
  satisfied_when : atom list list;
  pushable : bool;
}

(** Static model of one endpoint: the sinks its released data can reach,
    the atoms guaranteed for every context it builds, and — when the
    released data flows out of a privacy region — the region spec plus
    which region parameters carry rows of which table. *)
type site = {
  endpoint : string;
  sinks : string list;
  facts : atom list;
  region : Spec.t option;
  row_params : (string * string) list;  (** region param -> table *)
}

type proof =
  | Field_disjoint of { param : string; path : string list }
      (** the region never releases the inspected place *)
  | Context_satisfies of { clause : atom list }
      (** the site's facts entail this satisfying clause *)

type verdict =
  | Redundant of proof
  | Pushable
  | Residual of string  (** why the runtime check stands *)

type certificate = {
  cert_endpoint : string;
  cert_sink : string;
  cert_family : string;
  cert_verdict : verdict;
  cert_witness : Analysis.step list;  (** replayable proof witness *)
}

val entails : atom list -> atom -> bool
(** [entails facts a]: does every context satisfying all of [facts]
    satisfy [a]? Purely syntactic, sound, incomplete. *)

val classify :
  ?allowlist:Allowlist.t ->
  ?cache:Analysis.Summary_cache.t ->
  program:Program.t ->
  families:family list ->
  sites:site list ->
  unit ->
  certificate list
(** One certificate per (site, sink, family) triple, in model order.
    Context satisfaction is tried first (it is sink-local and needs no
    region), then field disjointness via {!Analysis.param_exposures},
    then pushability. *)

val replay :
  ?allowlist:Allowlist.t ->
  ?cache:Analysis.Summary_cache.t ->
  program:Program.t ->
  families:family list ->
  sites:site list ->
  certificate ->
  bool
(** Re-derive the certificate's triple from scratch and compare: [true]
    iff classification still produces the same verdict. A replay that
    fails means the models or the program drifted under the
    certificate. *)

val pp_certificate : Format.formatter -> certificate -> unit
(** Verdict line plus the indented proof witness. *)

val verdict_name : verdict -> string
(** ["redundant"], ["pushable"], or ["residual"]. *)
