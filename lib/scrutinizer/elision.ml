type atom =
  | Sink_is of string
  | Sink_not of string
  | Custom_eq of string * string
  | Custom_not of string * string
  | Principal_in of string list

let atom_to_string = function
  | Sink_is s -> Printf.sprintf "sink = %s" s
  | Sink_not s -> Printf.sprintf "sink <> %s" s
  | Custom_eq (k, v) -> Printf.sprintf "%s = %s" k v
  | Custom_not (k, v) -> Printf.sprintf "%s <> %s" k v
  | Principal_in ps -> Printf.sprintf "principal in {%s}" (String.concat ", " ps)

let pp_atom fmt a = Format.pp_print_string fmt (atom_to_string a)

type family = {
  family : string;
  inspects : (string * string list) list;
  satisfied_when : atom list list;
  pushable : bool;
}

type site = {
  endpoint : string;
  sinks : string list;
  facts : atom list;
  region : Spec.t option;
  row_params : (string * string) list;
}

type proof =
  | Field_disjoint of { param : string; path : string list }
  | Context_satisfies of { clause : atom list }

type verdict = Redundant of proof | Pushable | Residual of string

type certificate = {
  cert_endpoint : string;
  cert_sink : string;
  cert_family : string;
  cert_verdict : verdict;
  cert_witness : Analysis.step list;
}

(* ------------------------------------------------------------------ *)
(* Entailment over context atoms. Sound and syntactic: a fact list
   entails an atom only when some fact forces it for every context, so
   an incomplete model can only lose elisions. *)

let subset a b = List.for_all (fun x -> List.mem x b) a

let fact_implies fact atom =
  match (fact, atom) with
  | Sink_is s, Sink_is s' -> String.equal s s'
  | Sink_is s, Sink_not s' -> not (String.equal s s')
  | Sink_not s, Sink_not s' -> String.equal s s'
  | Custom_eq (k, v), Custom_eq (k', v') -> String.equal k k' && String.equal v v'
  | Custom_eq (k, v), Custom_not (k', v') -> String.equal k k' && not (String.equal v v')
  | Custom_not (k, v), Custom_not (k', v') -> String.equal k k' && String.equal v v'
  | Principal_in ps, Principal_in ps' -> subset ps ps'
  | _ -> false

let entails facts atom = List.exists (fun f -> fact_implies f atom) facts

(* ------------------------------------------------------------------ *)

let step kind fn detail = { Analysis.step_kind = kind; step_fn = fn; step_detail = detail }
let render_path path = String.concat "" (List.map (fun f -> "." ^ f) path)

(* R2: some satisfying clause of the family is entailed by the site's
   facts under the given sink. The sink itself is a fact at the sink. *)
let context_satisfaction (site : site) ~sink (fam : family) =
  let facts = Sink_is sink :: site.facts in
  List.find_opt (fun clause -> List.for_all (entails facts) clause) fam.satisfied_when

(* R1: every place the family's verdict can depend on is either not
   carried by any region parameter at this site, or provably never
   released by the region. Returns the witness probe list on success. *)
let field_disjointness ?allowlist ?cache ~program (site : site) (fam : family) =
  match (site.region, fam.inspects) with
  | None, _ | _, [] -> None
  | Some spec, inspects ->
      (* Places to probe: inspected columns carried into the region by a
         row parameter. A family inspecting a table no region parameter
         carries is trivially disjoint for that table. *)
      let places =
        List.concat_map
          (fun (table, path) ->
            List.filter_map
              (fun (param, ptable) ->
                if String.equal table ptable then Some (param, path) else None)
              site.row_params)
          inspects
      in
      if places = [] then
        Some
          ( [],
            [
              step Analysis.Branch site.endpoint
                "no region parameter carries a row of an inspected table";
            ] )
      else
        let exposures = Analysis.param_exposures ?allowlist ?cache program spec ~places in
        if List.exists (fun (e : Analysis.exposure) -> e.exp_released) exposures then None
        else
          let steps =
            List.map
              (fun (e : Analysis.exposure) ->
                step Analysis.Branch spec.Spec.name
                  (Printf.sprintf "place %s%s never reaches the region's output or a sink"
                     e.exp_param (render_path e.exp_path)))
              exposures
          in
          Some (exposures, steps)

let classify_triple ?allowlist ?cache ~program (site : site) ~sink (fam : family) =
  let base kind =
    {
      cert_endpoint = site.endpoint;
      cert_sink = sink;
      cert_family = fam.family;
      cert_verdict = kind;
      cert_witness = [];
    }
  in
  match context_satisfaction site ~sink fam with
  | Some clause ->
      let witness =
        step Analysis.Source site.endpoint
          (Printf.sprintf "site facts: %s"
             (String.concat "; " (List.map atom_to_string (Sink_is sink :: site.facts))))
        :: List.map
             (fun a ->
               step Analysis.Branch fam.family ("entailed satisfying atom: " ^ atom_to_string a))
             clause
        @ [
            step Analysis.Sink site.endpoint
              (Printf.sprintf "%s is identically true at sink %s: check elided" fam.family sink);
          ]
      in
      { (base (Redundant (Context_satisfies { clause }))) with cert_witness = witness }
  | None -> (
      match field_disjointness ?allowlist ?cache ~program site fam with
      | Some (exposures, steps) ->
          let proof =
            match exposures with
            | e :: _ -> Field_disjoint { param = e.Analysis.exp_param; path = e.Analysis.exp_path }
            | [] -> Field_disjoint { param = "-"; path = [] }
          in
          let region_name =
            match site.region with Some s -> s.Spec.name | None -> site.endpoint
          in
          let witness =
            step Analysis.Source site.endpoint
              (Printf.sprintf "region %s feeds sink %s" region_name sink)
            :: steps
            @ [
                step Analysis.Sink site.endpoint
                  (Printf.sprintf
                     "%s inspects only fields the region never releases: check elided" fam.family);
              ]
          in
          { (base (Redundant proof)) with cert_witness = witness }
      | None ->
          if fam.pushable then
            let witness =
              [
                step Analysis.Source site.endpoint
                  (Printf.sprintf "%s exposes a row-predicate translation" fam.family);
                step Analysis.Sink site.endpoint
                  "check compiled into the scan predicate: no per-row policy objects";
              ]
            in
            { (base Pushable) with cert_witness = witness }
          else
            base
              (Residual
                 (Printf.sprintf
                    "no satisfying clause entailed at sink %s and no disjointness proof" sink))
      )

let classify ?allowlist ?cache ~program ~families ~sites () =
  List.concat_map
    (fun site ->
      List.concat_map
        (fun sink ->
          List.map (fun fam -> classify_triple ?allowlist ?cache ~program site ~sink fam) families)
        site.sinks)
    sites

let verdict_equal a b =
  match (a, b) with
  | ( Redundant (Field_disjoint { param = p; path = q }),
      Redundant (Field_disjoint { param = p'; path = q' }) ) ->
      String.equal p p' && q = q'
  | ( Redundant (Context_satisfies { clause = c }),
      Redundant (Context_satisfies { clause = c' }) ) ->
      c = c'
  | Pushable, Pushable -> true
  | Residual x, Residual y -> String.equal x y
  | _ -> false

let replay ?allowlist ?cache ~program ~families ~sites cert =
  match
    ( List.find_opt (fun s -> String.equal s.endpoint cert.cert_endpoint) sites,
      List.find_opt (fun f -> String.equal f.family cert.cert_family) families )
  with
  | Some site, Some fam when List.mem cert.cert_sink site.sinks ->
      let fresh = classify_triple ?allowlist ?cache ~program site ~sink:cert.cert_sink fam in
      verdict_equal fresh.cert_verdict cert.cert_verdict
      && List.equal
           (fun (a : Analysis.step) b -> a = b)
           fresh.cert_witness cert.cert_witness
  | _ -> false

let verdict_name = function
  | Redundant _ -> "redundant"
  | Pushable -> "pushable"
  | Residual _ -> "residual"

let pp_certificate fmt c =
  let verdict_detail =
    match c.cert_verdict with
    | Redundant (Field_disjoint { param; path }) ->
        Printf.sprintf "redundant (field-disjoint: %s%s)" param (render_path path)
    | Redundant (Context_satisfies { clause }) ->
        Printf.sprintf "redundant (context: %s)"
          (String.concat " & " (List.map atom_to_string clause))
    | Pushable -> "pushable"
    | Residual why -> Printf.sprintf "residual (%s)" why
  in
  Format.fprintf fmt "@[<v 2>%s @ %s :: %s -> %s@,%a@]" c.cert_endpoint c.cert_sink
    c.cert_family verdict_detail Analysis.pp_trace c.cert_witness
