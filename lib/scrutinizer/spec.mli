(** A privacy-region specification: the top-level closure Scrutinizer
    analyzes. Its parameters are the sensitive inputs (the unwrapped PCon
    data); captured variables are not sensitive but must not be leaked
    into (§7.1). *)

type t = {
  name : string;
  params : Ir.var list;  (** sensitive arguments *)
  captures : Ir.capture list;
  body : Ir.stmt list;
}

val make :
  name:string -> params:Ir.var list -> ?captures:Ir.capture list -> Ir.stmt list -> t

val signature : t -> string
(** The closure header only — parameters and capture modes, no body
    (e.g. ["|q| /* captures: &cache */"]). Used by diagnostics such as
    the CLI's [--explain] output. *)

val source : t -> string
(** Pseudo-Rust rendering of the closure, used for signing and LoC. *)

val loc : t -> int
(** Non-empty lines of the closure body (the unit of Fig. 6's "Size"). *)

val by_ref_captures : t -> Ir.var list
(** Variables captured by shared reference — the analysis treats these as
    the region's protected "capture roots". *)

val by_mut_ref_captures : t -> Ir.var list
(** Variables captured by mutable reference — rejected up front by the
    analysis, whether or not they are written. *)

val to_func : t -> Ir.func
(** The closure viewed as an in-crate function (captures become trailing
    parameters for rendering purposes only). *)
