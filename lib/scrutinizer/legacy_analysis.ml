(* The seed analysis engine, frozen verbatim for differential testing.

   This module is the fixpoint engine exactly as it shipped before the
   worklist rework, INCLUDING its two known convergence bugs:

   - [fixpoint] reads the rejection count after running the body, so the
     rejection-growth re-iteration condition can never fire;
   - [env_snapshot] summarizes root-sets by cardinality, so an aliasing
     change that preserves set size looks like convergence.

   It also keeps the blanket "taint every bare Var/Ref argument of any
   tainted call" write-back model that the new engine replaces with
   per-parameter summaries. Do NOT fix bugs here: the differential test
   suite uses this engine as the floor ("everything the seed rejected must
   still be rejected") and as the witness for inputs the seed wrongly
   accepted. *)

[@@@warning "-32"]

type rejection =
  | Mutable_capture of { var : string }
  | Capture_mutation of { func : string; var : string }
  | Unsafe_mutation of { func : string }
  | Tainted_native_call of { func : string; callee : string }
  | Unknown_body_call of { func : string; callee : string }
  | Unresolvable_dispatch of { func : string; method_name : string }
  | Fn_pointer_call of { func : string }
  | Tainted_global_write of { func : string; global : string }

let pp_rejection fmt = function
  | Mutable_capture { var } -> Format.fprintf fmt "captures %s by mutable reference" var
  | Capture_mutation { func; var } ->
      Format.fprintf fmt "%s: may mutate captured variable %s" func var
  | Unsafe_mutation { func } ->
      Format.fprintf fmt "%s: uses an unsafe mutation primitive" func
  | Tainted_native_call { func; callee } ->
      Format.fprintf fmt "%s: sensitive data flows into native code %s" func callee
  | Unknown_body_call { func; callee } ->
      Format.fprintf fmt "%s: sensitive data flows into unknown function %s" func callee
  | Unresolvable_dispatch { func; method_name } ->
      Format.fprintf fmt "%s: cannot resolve dynamic dispatch of %s" func method_name
  | Fn_pointer_call { func } ->
      Format.fprintf fmt "%s: call through an unresolved function pointer" func
  | Tainted_global_write { func; global } ->
      Format.fprintf fmt "%s: sensitive data flows into global %s" func global

let rejection_to_string r = Format.asprintf "%a" pp_rejection r

type stats = { functions_analyzed : int; duration_s : float }
type verdict = { accepted : bool; rejections : rejection list; stats : stats }

(* ------------------------------------------------------------------ *)

module Sset = Set.Make (String)

type info = { taint : bool; roots : Sset.t }

let untainted = { taint = false; roots = Sset.empty }

type ctx = {
  program : Program.t;
  allowlist : Allowlist.t;
  capture_roots : Sset.t;  (* by-ref captures of the top-level region *)
  mutable rejections : rejection list;
  (* Summaries: (fname, arg-taint bits, pc) -> return taint. An entry of
     [None] marks an in-progress computation (recursion): assume tainted. *)
  summaries : (string * bool list * bool, bool option) Hashtbl.t;
}

let reject ctx r = if not (List.mem r ctx.rejections) then ctx.rejections <- r :: ctx.rejections

type env = (string, info) Hashtbl.t

let env_get (env : env) v = Option.value (Hashtbl.find_opt env v) ~default:untainted
let env_set (env : env) v info = Hashtbl.replace env v info

let env_taint (env : env) v =
  let old = env_get env v in
  if not old.taint then env_set env v { old with taint = true }

(* Snapshot of the mutable parts of an env, for loop fixpoints. *)
let env_snapshot (env : env) =
  Hashtbl.fold (fun v i acc -> (v, i.taint, Sset.cardinal i.roots) :: acc) env []
  |> List.sort compare

let rec eval ctx (env : env) ~fname ~pc (e : Ir.expr) : info =
  match e with
  | Ir.Unit | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Str_lit _ | Ir.Bool_lit _ -> untainted
  | Ir.Global _ -> untainted
  | Ir.Var v ->
      let i = env_get env v in
      { i with roots = Sset.add v i.roots }
  | Ir.Ref v | Ir.Ref_mut v ->
      let i = env_get env v in
      { i with roots = Sset.add v i.roots }
  | Ir.Field (e, _) | Ir.Unop (_, e) | Ir.Deref e -> eval ctx env ~fname ~pc e
  | Ir.Index (a, b) | Ir.Binop (_, a, b) ->
      let ia = eval ctx env ~fname ~pc a and ib = eval ctx env ~fname ~pc b in
      { taint = ia.taint || ib.taint; roots = Sset.union ia.roots ib.roots }
  | Ir.Tuple es | Ir.Vec es ->
      List.fold_left
        (fun acc e ->
          let i = eval ctx env ~fname ~pc e in
          { taint = acc.taint || i.taint; roots = Sset.union acc.roots i.roots })
        untainted es
  | Ir.Call (callee, args) -> eval_call ctx env ~fname ~pc callee args

and eval_call ctx env ~fname ~pc callee args : info =
  let arg_infos = List.map (eval ctx env ~fname ~pc) args in
  let any_tainted = pc || List.exists (fun i -> i.taint) arg_infos in
  (* A mutable reference to capture-derived data escaping into any call is a
     potential mutation of the capture (§7.1 case 1/2). *)
  List.iter
    (fun arg ->
      match arg with
      | Ir.Ref_mut v ->
          let roots = Sset.add v (env_get env v).roots in
          let hit = Sset.inter roots ctx.capture_roots in
          Sset.iter (fun var -> reject ctx (Capture_mutation { func = fname; var })) hit
      | _ -> ())
    args;
  (* Conservatively, a call may write tainted data through any by-reference
     argument (we keep no per-parameter summaries). *)
  if any_tainted then
    List.iter
      (fun arg ->
        match arg with
        | Ir.Ref v | Ir.Ref_mut v | Ir.Var v -> env_taint env v
        | _ -> ())
      args;
  let arg_roots =
    List.fold_left (fun acc i -> Sset.union acc i.roots) Sset.empty arg_infos
  in
  let arg_taints = List.map (fun (i : info) -> i.taint) arg_infos in
  let call_one name =
    if Allowlist.mem ctx.allowlist name then any_tainted
    else
      match Program.find ctx.program name with
      | None ->
          if any_tainted then reject ctx (Unknown_body_call { func = fname; callee = name });
          any_tainted
      | Some f -> (
          match f.Ir.body with
          | Ir.Native | Ir.Unresolved_generic ->
              if any_tainted then
                reject ctx (Tainted_native_call { func = fname; callee = name });
              any_tainted
          | Ir.Body stmts ->
              if not any_tainted then false
              else analyze_function ctx f ~arg_taints ~pc stmts)
  in
  let taint =
    match callee with
    | Ir.Static name -> call_one name
    | Ir.Dynamic { method_name; receiver_hint } -> (
        match Program.resolve_dynamic ctx.program ~method_name ~receiver_hint with
        | None ->
            reject ctx (Unresolvable_dispatch { func = fname; method_name });
            true
        | Some candidates -> List.fold_left (fun acc c -> call_one c || acc) false candidates)
    | Ir.Fn_ptr _ ->
        reject ctx (Fn_pointer_call { func = fname });
        true
  in
  { taint; roots = arg_roots }

and analyze_function ctx (f : Ir.func) ~arg_taints ~pc stmts : bool =
  (* Normalize the taint signature to the parameter count. *)
  let n = List.length f.Ir.params in
  let taints = List.filteri (fun i _ -> i < n) arg_taints in
  let taints = taints @ List.init (max 0 (n - List.length taints)) (fun _ -> false) in
  let key = (f.Ir.fname, taints, pc) in
  match Hashtbl.find_opt ctx.summaries key with
  | Some (Some result) -> result
  | Some None -> true (* recursion: conservatively tainted *)
  | None ->
      Hashtbl.add ctx.summaries key None;
      let env : env = Hashtbl.create 16 in
      List.iter2
        (fun param taint -> env_set env param { taint; roots = Sset.empty })
        f.Ir.params taints;
      let return_taint = ref false in
      exec_stmts ctx env ~fname:f.Ir.fname ~pc ~return_taint stmts;
      Hashtbl.replace ctx.summaries key (Some !return_taint);
      !return_taint

and exec_stmts ctx env ~fname ~pc ~return_taint stmts =
  List.iter (exec_stmt ctx env ~fname ~pc ~return_taint) stmts

and exec_stmt ctx env ~fname ~pc ~return_taint (stmt : Ir.stmt) =
  match stmt with
  | Ir.Let (v, e) ->
      let i = eval ctx env ~fname ~pc e in
      env_set env v { taint = i.taint || pc; roots = i.roots }
  | Ir.Assign (lhs, e) ->
      let i = eval ctx env ~fname ~pc e in
      assign ctx env ~fname ~pc lhs { i with taint = i.taint || pc }
  | Ir.Unsafe_write (lhs, e) ->
      (* A known-target unsafe write: analyzed like an assignment, except
         that touching capture-derived data violates case 2 regardless of
         the written value. *)
      (match Ir.lhs_base lhs with
      | Some v ->
          let roots = Sset.add v (env_get env v).roots in
          if not (Sset.is_empty (Sset.inter roots ctx.capture_roots)) then
            reject ctx (Unsafe_mutation { func = fname })
      | None -> ());
      let i = eval ctx env ~fname ~pc e in
      assign ctx env ~fname ~pc lhs { i with taint = i.taint || pc }
  | Ir.Opaque_unsafe args ->
      (* Unresolvable raw-pointer mutation: conservatively rejected. *)
      reject ctx (Unsafe_mutation { func = fname });
      List.iter (fun e -> ignore (eval ctx env ~fname ~pc e)) args
  | Ir.If (c, then_, else_) ->
      let ci = eval ctx env ~fname ~pc c in
      let pc' = pc || ci.taint in
      exec_stmts ctx env ~fname ~pc:pc' ~return_taint then_;
      exec_stmts ctx env ~fname ~pc:pc' ~return_taint else_
  | Ir.While (c, body) ->
      fixpoint ctx env (fun () ->
          let ci = eval ctx env ~fname ~pc c in
          let pc' = pc || ci.taint in
          exec_stmts ctx env ~fname ~pc:pc' ~return_taint body)
  | Ir.For (v, e, body) ->
      fixpoint ctx env (fun () ->
          let ei = eval ctx env ~fname ~pc e in
          (* The element is derived from the collection; the trip count
             leaks the collection's shape, so the body runs under a pc
             raised by the collection's taint. *)
          env_set env v { taint = ei.taint || pc; roots = ei.roots };
          let pc' = pc || ei.taint in
          exec_stmts ctx env ~fname ~pc:pc' ~return_taint body)
  | Ir.Return None -> if pc then return_taint := true
  | Ir.Return (Some e) ->
      let i = eval ctx env ~fname ~pc e in
      if i.taint || pc then return_taint := true
  | Ir.Expr_stmt e -> ignore (eval ctx env ~fname ~pc e)

and assign ctx env ~fname ~pc:_ lhs (value : info) =
  match lhs with
  | Ir.Lvar v -> env_set env v value
  | Ir.Lfield (v, _) | Ir.Lindex (v, _) ->
      let base = env_get env v in
      let roots = Sset.add v base.roots in
      let hit = Sset.inter roots ctx.capture_roots in
      Sset.iter (fun var -> reject ctx (Capture_mutation { func = fname; var })) hit;
      env_set env v
        { taint = base.taint || value.taint; roots = Sset.union base.roots value.roots }
  | Ir.Lderef v ->
      (* Write through a reference: affects everything it may point at. *)
      let base = env_get env v in
      let targets = Sset.add v base.roots in
      let hit = Sset.inter targets ctx.capture_roots in
      Sset.iter (fun var -> reject ctx (Capture_mutation { func = fname; var })) hit;
      if value.taint then Sset.iter (fun target -> env_taint env target) targets
  | Ir.Lglobal g ->
      if value.taint then reject ctx (Tainted_global_write { func = fname; global = g })

and fixpoint ctx env body =
  (* Taint only grows, so iterate to a fixed point (bounded as a safety
     net against pathological alias growth). *)
  let rec go n =
    let before = env_snapshot env in
    body ();
    let rejections_before = List.length ctx.rejections in
    if env_snapshot env <> before || List.length ctx.rejections <> rejections_before
    then (if n < 64 then go (n + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)

let check ?(allowlist = Allowlist.default) program (spec : Spec.t) =
  let started = Sys.time () in
  let graph = Callgraph.collect program ~allowlist spec in
  let collection_rejections =
    List.map
      (function
        | Callgraph.Unresolvable_dispatch { caller; method_name } ->
            Unresolvable_dispatch { func = caller; method_name }
        | Callgraph.Fn_pointer_call { caller } -> Fn_pointer_call { func = caller })
      (Callgraph.failures graph)
  in
  let capture_rejections =
    List.filter_map
      (fun (c : Ir.capture) ->
        match c.mode with
        | Ir.By_mut_ref -> Some (Mutable_capture { var = c.cap_var })
        | Ir.By_value | Ir.By_ref -> None)
      spec.Spec.captures
  in
  let capture_roots =
    List.filter_map
      (fun (c : Ir.capture) ->
        match c.mode with
        | Ir.By_ref -> Some c.cap_var
        | Ir.By_value | Ir.By_mut_ref -> None)
      spec.Spec.captures
    |> Sset.of_list
  in
  let ctx =
    { program; allowlist; capture_roots; rejections = []; summaries = Hashtbl.create 64 }
  in
  let env : env = Hashtbl.create 16 in
  List.iter (fun p -> env_set env p { taint = true; roots = Sset.empty }) spec.Spec.params;
  List.iter
    (fun (c : Ir.capture) -> env_set env c.cap_var { taint = false; roots = Sset.empty })
    spec.Spec.captures;
  let return_taint = ref false in
  exec_stmts ctx env ~fname:spec.Spec.name ~pc:false ~return_taint spec.Spec.body;
  let rejections =
    capture_rejections @ collection_rejections @ List.rev ctx.rejections
  in
  (* Dedup while keeping order. *)
  let rejections =
    List.fold_left (fun acc r -> if List.mem r acc then acc else acc @ [ r ]) [] rejections
  in
  let stats =
    {
      functions_analyzed = Callgraph.functions_analyzed graph;
      duration_s = Sys.time () -. started;
    }
  in
  { accepted = rejections = []; rejections; stats }

let pp_verdict fmt v =
  if v.accepted then
    Format.fprintf fmt "ACCEPTED (%d functions, %.3fs)" v.stats.functions_analyzed
      v.stats.duration_s
  else
    Format.fprintf fmt "@[<v 2>REJECTED (%d functions, %.3fs):@,%a@]"
      v.stats.functions_analyzed v.stats.duration_s
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rejection)
      v.rejections
