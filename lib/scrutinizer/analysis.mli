(** Scrutinizer's leakage-freedom analysis (§7.1, Appendix A stage two).

    Given a program and a region spec, decides whether the region can leak
    its sensitive arguments (or data derived from them, directly or via
    control flow) outside the region. The analysis is sound but incomplete:
    it rejects on the paper's three cases, using the strengthened
    easier-to-detect variants the paper describes —

    + any mutable capture is rejected up front, whether or not it is
      written;
    + unsafe mutation of capture-derived data is rejected regardless of
      mutability, and unsafe mutation through pointers whose target cannot
      be resolved ({!Ir.Opaque_unsafe}) is rejected unconditionally —
      known-target unsafe writes into locals and parameters are analyzed
      like ordinary assignments, which is what lets most std-collection
      methods pass the §10.3 study;
    + calls into bodies the analyzer cannot see (native code, unknown
      functions) are rejected when sensitive data flows into them or when
      they execute under sensitive control flow; unresolvable dynamic
      dispatch and function-pointer calls are rejected unconditionally at
      collection time.

    Writes to globals, and writes through references that may alias a
    captured variable, are rejected when the written value or the ambient
    control flow is sensitive. Calls whose arguments are all insensitive
    (under insensitive control flow) are skipped, as in the paper.

    The engine is a worklist-based fixpoint solver over per-function
    summaries. A summary maps a calling context (function, argument taint
    signature, pc) to the function's {e effect}: return-value taint,
    the set of parameters through which sensitive data may be written back
    to the caller, and the rejections raised in the function's subtree.
    Effects form a finite join-semilattice and only ever grow, so the
    solver terminates; recursive cycles start from bottom and are
    re-iterated until stable rather than pessimistically assumed tainted. *)

type rejection =
  | Mutable_capture of { var : string }
  | Capture_mutation of { func : string; var : string }
  | Unsafe_mutation of { func : string }
  | Tainted_native_call of { func : string; callee : string }
  | Unknown_body_call of { func : string; callee : string }
  | Unresolvable_dispatch of { func : string; method_name : string }
  | Fn_pointer_call of { func : string }
  | Tainted_global_write of { func : string; global : string }

val pp_rejection : Format.formatter -> rejection -> unit
val rejection_to_string : rejection -> string

type stats = {
  functions_analyzed : int;  (** distinct functions in the call tree *)
  duration_s : float;  (** monotonic wall-clock seconds *)
  summary_cache_hits : int;  (** cross-check cache hits during this check *)
  summary_cache_misses : int;  (** cross-check cache misses during this check *)
}

type verdict = {
  accepted : bool;
  rejections : rejection list;  (** empty iff [accepted] *)
  stats : stats;
}

(** Cross-check summary cache.

    Checking a corpus of regions against one program re-analyzes the same
    library functions under the same calling contexts over and over. A
    [Summary_cache.t] shared across {!check} calls persists each computed
    fixpoint, keyed by the program's content fingerprint
    ({!Program.fingerprint}), a SHA-256 of the callee's normalized source,
    the argument taint signature, and the pc — so entries are reused
    across specs (and across structurally identical rebuilt programs) but
    can never be confused between different function bodies. Cached
    effects carry their subtree rejections, which are replayed at every
    use site: a cache hit yields the same verdict a fresh analysis would. *)
module Summary_cache : sig
  type t

  val create : unit -> t

  val hits : t -> int
  (** Lifetime hits across all checks. *)

  val misses : t -> int
  (** Lifetime misses across all checks. *)

  val entries : t -> int
  (** Number of stored summaries. *)

  val hit_rate : t -> float
  (** [hits / (hits + misses)]; [0.] if the cache was never consulted. *)
end

val check :
  ?allowlist:Allowlist.t -> ?cache:Summary_cache.t -> Program.t -> Spec.t -> verdict
(** Analyze one privacy region. Defaults to {!Allowlist.default} and no
    summary cache. Passing [~cache] reuses function summaries computed by
    earlier checks against a program with the same fingerprint and
    publishes this check's summaries for later ones; the verdict is
    unchanged by caching. *)

val pp_verdict : Format.formatter -> verdict -> unit
