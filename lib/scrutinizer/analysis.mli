(** Scrutinizer's leakage-freedom analysis (§7.1, Appendix A stage two).

    Given a program and a region spec, decides whether the region can leak
    its sensitive arguments (or data derived from them, directly or via
    control flow) outside the region. The analysis is sound but incomplete:
    it rejects on the paper's three cases, using the strengthened
    easier-to-detect variants the paper describes —

    + any mutable capture is rejected up front, whether or not it is
      written;
    + unsafe mutation of capture-derived data is rejected regardless of
      mutability, and unsafe mutation through pointers whose target cannot
      be resolved ({!Ir.Opaque_unsafe}) is rejected unconditionally —
      known-target unsafe writes into locals and parameters are analyzed
      like ordinary assignments, which is what lets most std-collection
      methods pass the §10.3 study;
    + calls into bodies the analyzer cannot see (native code, unknown
      functions) are rejected when sensitive data flows into them or when
      they execute under sensitive control flow; unresolvable dynamic
      dispatch and function-pointer calls are rejected unconditionally at
      collection time.

    Writes to globals, and writes through references that may alias a
    captured variable, are rejected when the written value or the ambient
    control flow is sensitive. Calls whose arguments are all insensitive
    (under insensitive control flow) are skipped, as in the paper.

    {2 Place sensitivity}

    The abstract domain tracks {e places} — bounded access paths
    [v], [v.f], [v.f.g] up to depth 2, widening to the depth-2 prefix
    beyond (see {!Ir.place}) — rather than whole variables, mirroring the
    paper's analysis of rustc-MIR places. Whole-variable bindings update
    strongly; field writes and writes through references join weakly at
    their path. A read of a place sees exactly the entries whose path
    overlaps its own (prefixes and extensions), so a tainted [rec.secret]
    no longer poisons a read of [rec.public]. Function summaries carry
    per-parameter {e per-path} write-back sets, keeping the precision
    across call boundaries. Index projections are modeled at the base
    (index-insensitive).

    {2 Witness provenance}

    Every rejection carries a non-empty witness {!type:trace}: the path
    sensitive data took from a source binding through intermediate flows,
    branches, and call boundaries to the rejected sink, spliced across
    calls from the callee-relative traces stored in summaries. Traces are
    decoration — they never influence verdicts or termination — and are
    deterministic: cached and uncached runs produce byte-identical
    rejections.

    The engine is a worklist-based fixpoint solver over per-function
    summaries. A summary maps a calling context (function, argument taint
    signature, pc) to the function's {e effect}: return-value taint,
    the parameter places through which sensitive data may be written back
    to the caller, and the rejections raised in the function's subtree.
    Effects form a finite join-semilattice and only ever grow, so the
    solver terminates; recursive cycles start from bottom and are
    re-iterated until stable rather than pessimistically assumed tainted.
    Verdict rejections are published by one final deterministic walk of
    the spec body after the fixpoint is reached, so their order and
    traces are independent of worklist scheduling and caching. *)

type reason =
  | Mutable_capture of { var : string }
  | Capture_mutation of { func : string; var : string }
  | Unsafe_mutation of { func : string }
  | Tainted_native_call of { func : string; callee : string }
  | Unknown_body_call of { func : string; callee : string }
  | Unresolvable_dispatch of { func : string; method_name : string }
  | Fn_pointer_call of { func : string }
  | Tainted_global_write of { func : string; global : string }

val pp_reason : Format.formatter -> reason -> unit
val reason_to_string : reason -> string

(** One hop of a witness path. [Source] is the sensitive binding the flow
    starts from; [Flow] a value assignment; [Branch] control-flow
    dependence; [Call]/[Return]/[Writeback] movement across a call
    boundary; [Sink] the rejected operation itself. *)
type step_kind = Source | Flow | Branch | Call | Return | Writeback | Sink

type step = {
  step_kind : step_kind;
  step_fn : string;  (** the function the step occurs in *)
  step_detail : string;  (** human-readable description of the hop *)
}

val pp_step : Format.formatter -> step -> unit
val step_to_string : step -> string

val pp_trace : Format.formatter -> step list -> unit
(** One step per line. *)

type rejection = {
  reason : reason;
  trace : step list;  (** non-empty witness path ending at the sink *)
}

val pp_rejection : Format.formatter -> rejection -> unit
(** The reason only; use {!pp_trace} (or {!pp_verdict}) for the witness. *)

val rejection_to_string : rejection -> string

type stats = {
  functions_analyzed : int;  (** distinct functions in the call tree *)
  duration_s : float;  (** monotonic wall-clock seconds *)
  summary_cache_hits : int;  (** cross-check cache hits during this check *)
  summary_cache_misses : int;  (** cross-check cache misses during this check *)
}

type verdict = {
  accepted : bool;
  rejections : rejection list;  (** empty iff [accepted] *)
  stats : stats;
}

(** Cross-check summary cache.

    Checking a corpus of regions against one program re-analyzes the same
    library functions under the same calling contexts over and over. A
    [Summary_cache.t] shared across {!check} calls persists each computed
    fixpoint, keyed by the program's content fingerprint
    ({!Program.fingerprint}), a SHA-256 of the callee's normalized source
    under the [sesame-summary-v2] digest tag, the argument taint
    signature, and the pc — so entries are reused across specs (and
    across structurally identical rebuilt programs) but can never be
    confused between different function bodies or summary generations.
    Cached effects carry their subtree rejections and witness traces,
    which are replayed at every use site: a cache hit yields byte-for-byte
    the same verdict a fresh analysis would. *)
module Summary_cache : sig
  type t

  val version_tag : string
  (** The digest tag versioning entry keys: ["sesame-summary-v2"]. *)

  val create : unit -> t

  val hits : t -> int
  (** Lifetime hits across all checks. *)

  val misses : t -> int
  (** Lifetime misses across all checks. *)

  val entries : t -> int
  (** Number of stored summaries. *)

  val hit_rate : t -> float
  (** [hits / (hits + misses)]; [0.] if the cache was never consulted. *)
end

val check :
  ?allowlist:Allowlist.t -> ?cache:Summary_cache.t -> Program.t -> Spec.t -> verdict
(** Analyze one privacy region. Defaults to {!Allowlist.default} and no
    summary cache. Passing [~cache] reuses function summaries computed by
    earlier checks against a program with the same fingerprint and
    publishes this check's summaries for later ones; the verdict —
    including witness traces — is unchanged by caching. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** Renders each rejection with its witness trace indented beneath it. *)

(** {2 Place-exposure probes}

    The check-elision pass ({!Elision}) asks a finer question than
    {!check}: can one specific {e place} — parameter [p] at access path
    [path] — reach the region's output or any sink? A probe re-runs the
    fixpoint with every parameter untainted except the probed place, and
    reports the place released iff the final deterministic walk taints
    the return value or publishes any rejection. Probes share the
    summary machinery (and [?cache]) with {!check}, so results replay
    byte-identically from cached summaries. A region whose call graph is
    incomplete (unresolvable dispatch, function pointers, mutable
    captures) proves nothing about any place: every probe on it reports
    released, conservatively. *)

type exposure = {
  exp_param : string;  (** the probed region parameter *)
  exp_path : string list;  (** the probed access path, depth-truncated *)
  exp_released : bool;  (** can the place escape the region? *)
  exp_trace : step list;  (** witness when released; empty otherwise *)
}

val param_exposures :
  ?allowlist:Allowlist.t ->
  ?cache:Summary_cache.t ->
  Program.t ->
  Spec.t ->
  places:(string * string list) list ->
  exposure list
(** One exposure per requested [(param, path)] place, in input order.
    Paths deeper than the analysis depth are truncated to their tracked
    prefix (which can only over-approximate the release). *)
