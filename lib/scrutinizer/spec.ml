type t = {
  name : string;
  params : Ir.var list;
  captures : Ir.capture list;
  body : Ir.stmt list;
}

let make ~name ~params ?(captures = []) body = { name; params; captures; body }

let capture_decl (c : Ir.capture) =
  match c.mode with
  | Ir.By_value -> c.cap_var
  | Ir.By_ref -> "&" ^ c.cap_var
  | Ir.By_mut_ref -> "&mut " ^ c.cap_var

let signature t =
  let params = String.concat ", " t.params in
  let captures =
    match t.captures with
    | [] -> ""
    | cs -> Printf.sprintf " /* captures: %s */" (String.concat ", " (List.map capture_decl cs))
  in
  Printf.sprintf "|%s|%s" params captures

let source t = Printf.sprintf "%s {\n%s\n}" (signature t) (Ir.stmts_source t.body)

let loc t =
  Ir.stmts_source t.body
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let captures_with_mode t mode =
  List.filter_map
    (fun (c : Ir.capture) -> if c.mode = mode then Some c.cap_var else None)
    t.captures

let by_ref_captures t = captures_with_mode t Ir.By_ref
let by_mut_ref_captures t = captures_with_mode t Ir.By_mut_ref

let to_func t =
  Ir.func ~name:t.name
    ~params:(t.params @ List.map (fun (c : Ir.capture) -> c.cap_var) t.captures)
    t.body
