(** The seed analysis engine, frozen for differential testing — see the
    comment at the top of the implementation. Use {!Analysis} for real
    checking; this exists only so tests can prove the reworked engine
    rejects a superset of what the seed engine rejected. *)

type rejection =
  | Mutable_capture of { var : string }
  | Capture_mutation of { func : string; var : string }
  | Unsafe_mutation of { func : string }
  | Tainted_native_call of { func : string; callee : string }
  | Unknown_body_call of { func : string; callee : string }
  | Unresolvable_dispatch of { func : string; method_name : string }
  | Fn_pointer_call of { func : string }
  | Tainted_global_write of { func : string; global : string }

val rejection_to_string : rejection -> string

type stats = { functions_analyzed : int; duration_s : float }
type verdict = { accepted : bool; rejections : rejection list; stats : stats }

val check : ?allowlist:Allowlist.t -> Program.t -> Spec.t -> verdict
