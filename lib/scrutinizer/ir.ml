type var = string

type binop =
  | Add | Sub | Mul | Div | Rem
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type unop = Not | Neg

type capture_mode = By_value | By_ref | By_mut_ref

type capture = { cap_var : var; mode : capture_mode }

type callee =
  | Static of string
  | Dynamic of { method_name : string; receiver_hint : string option }
  | Fn_ptr of var option

type expr =
  | Unit
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | Var of var
  | Global of string
  | Field of expr * string
  | Index of expr * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Tuple of expr list
  | Vec of expr list
  | Call of callee * expr list
  | Ref of var
  | Ref_mut of var
  | Deref of expr

and lhs =
  | Lvar of var
  | Lfield of var * string
  | Lindex of var * expr
  | Lderef of var
  | Lglobal of string

and stmt =
  | Let of var * expr
  | Assign of lhs * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of var * expr * stmt list
  | Return of expr option
  | Expr_stmt of expr
  | Unsafe_write of lhs * expr
  | Opaque_unsafe of expr list

type body =
  | Body of stmt list
  | Native
  | Unresolved_generic

type func_kind = In_crate | External of { package : string }

type func = {
  fname : string;
  params : var list;
  body : body;
  kind : func_kind;
}

let func ?(kind = In_crate) ~name ~params body =
  { fname = name; params; body = Body body; kind }

let native ?(package = "native") ~name ~params () =
  { fname = name; params; body = Native; kind = External { package } }

let external_fn ~package ~name ~params body =
  { fname = name; params; body = Body body; kind = External { package } }

let lhs_base = function
  | Lvar v | Lfield (v, _) | Lindex (v, _) | Lderef v -> Some v
  | Lglobal _ -> None

(* ------------------------------------------------------------------ *)
(* Places: bounded access paths, the unit of the place-sensitive taint
   domain. A place names a storage location as a base variable plus a
   chain of field projections ([path] = ["contact"; "email"] for
   [prof.contact.email]). Index projections are not places — element
   positions are runtime values, so the analysis stays index-insensitive
   and models them at the base. *)

type place = { base : var; path : string list }

let place_of_var v = { base = v; path = [] }

let rec place_of_expr = function
  | Var v | Ref v | Ref_mut v -> Some { base = v; path = [] }
  | Field (e, f) -> (
      match place_of_expr e with
      | Some p -> Some { base = p.base; path = p.path @ [ f ] }
      | None -> None)
  (* A deref reaches whatever the reference models, which the taint
     domain already folds into the variable holding it. *)
  | Deref e -> place_of_expr e
  | Unit | Int_lit _ | Float_lit _ | Str_lit _ | Bool_lit _ | Global _
  | Index _ | Unop _ | Binop _ | Tuple _ | Vec _ | Call _ ->
      None

let place_of_lhs = function
  | Lvar v | Lderef v -> Some { base = v; path = [] }
  | Lfield (v, f) -> Some { base = v; path = [ f ] }
  | Lindex (v, _) -> Some { base = v; path = [] }
  | Lglobal _ -> None

let pp_place fmt p =
  Format.pp_print_string fmt p.base;
  List.iter (fun f -> Format.fprintf fmt ".%s" f) p.path

let place_to_string p = Format.asprintf "%a" pp_place p

(* ------------------------------------------------------------------ *)
(* Pseudo-Rust rendering *)

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  | Concat -> "++"

let unop_symbol = function Not -> "!" | Neg -> "-"

let rec pp_expr fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Int_lit i -> Format.pp_print_int fmt i
  | Float_lit f -> Format.fprintf fmt "%g" f
  | Str_lit s -> Format.fprintf fmt "%S" s
  | Bool_lit b -> Format.pp_print_bool fmt b
  | Var v -> Format.pp_print_string fmt v
  | Global g -> Format.fprintf fmt "GLOBAL.%s" g
  | Field (e, f) -> Format.fprintf fmt "%a.%s" pp_expr e f
  | Index (e, i) -> Format.fprintf fmt "%a[%a]" pp_expr e pp_expr i
  | Unop (op, e) -> Format.fprintf fmt "%s%a" (unop_symbol op) pp_expr e
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Tuple es -> Format.fprintf fmt "(%a)" pp_exprs es
  | Vec es -> Format.fprintf fmt "vec![%a]" pp_exprs es
  | Call (Static f, args) -> Format.fprintf fmt "%s(%a)" f pp_exprs args
  | Call (Dynamic { method_name; receiver_hint }, args) ->
      let hint = match receiver_hint with Some h -> "<" ^ h ^ ">" | None -> "<dyn>" in
      Format.fprintf fmt "%s::%s(%a)" hint method_name pp_exprs args
  | Call (Fn_ptr v, args) ->
      Format.fprintf fmt "(%s)(%a)" (Option.value v ~default:"?fnptr") pp_exprs args
  | Ref v -> Format.fprintf fmt "&%s" v
  | Ref_mut v -> Format.fprintf fmt "&mut %s" v
  | Deref e -> Format.fprintf fmt "*%a" pp_expr e

and pp_exprs fmt es =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_expr fmt es

let pp_lhs fmt = function
  | Lvar v -> Format.pp_print_string fmt v
  | Lfield (v, f) -> Format.fprintf fmt "%s.%s" v f
  | Lindex (v, i) -> Format.fprintf fmt "%s[%a]" v pp_expr i
  | Lderef v -> Format.fprintf fmt "*%s" v
  | Lglobal g -> Format.fprintf fmt "GLOBAL.%s" g

let rec pp_stmt fmt = function
  | Let (v, e) -> Format.fprintf fmt "@[<h>let %s = %a;@]" v pp_expr e
  | Assign (l, e) -> Format.fprintf fmt "@[<h>%a = %a;@]" pp_lhs l pp_expr e
  | If (cond, then_, else_) ->
      Format.fprintf fmt "@[<v 2>if %a {@,%a@]@,}" pp_expr cond pp_stmts then_;
      if else_ <> [] then Format.fprintf fmt "@[<v 2> else {@,%a@]@,}" pp_stmts else_
  | While (cond, body) ->
      Format.fprintf fmt "@[<v 2>while %a {@,%a@]@,}" pp_expr cond pp_stmts body
  | For (v, e, body) ->
      Format.fprintf fmt "@[<v 2>for %s in %a {@,%a@]@,}" v pp_expr e pp_stmts body
  | Return None -> Format.pp_print_string fmt "return;"
  | Return (Some e) -> Format.fprintf fmt "@[<h>return %a;@]" pp_expr e
  | Expr_stmt e -> Format.fprintf fmt "@[<h>%a;@]" pp_expr e
  | Unsafe_write (l, e) ->
      Format.fprintf fmt "@[<h>unsafe { *(%a as *mut _) = %a; }@]" pp_lhs l pp_expr e
  | Opaque_unsafe args ->
      Format.fprintf fmt "@[<h>unsafe { ptr::write(ptr.offset(..), (%a)); }@]" pp_exprs args

and pp_stmts fmt stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt stmts

let pp_func fmt f =
  let params = String.concat ", " f.params in
  match f.body with
  | Body stmts ->
      Format.fprintf fmt "@[<v 2>fn %s(%s) {@,%a@]@,}" f.fname params pp_stmts stmts
  | Native -> Format.fprintf fmt "extern \"C\" fn %s(%s);" f.fname params
  | Unresolved_generic -> Format.fprintf fmt "fn %s<T>(%s);" f.fname params

let func_source f = Format.asprintf "%a" pp_func f

let func_loc f =
  func_source f
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let stmts_source stmts = Format.asprintf "@[<v>%a@]" pp_stmts stmts
let expr_source e = Format.asprintf "%a" pp_expr e
let lhs_source l = Format.asprintf "%a" pp_lhs l
