(** The Region IR: the analysis subject for Scrutinizer.

    The paper's Scrutinizer consumes rustc's MIR; no MIR exists here, so
    privacy regions carry a model of their body in this IR (see DESIGN.md's
    substitution table). The IR keeps exactly the features the analysis is
    defined over (§7.1, Appendix A):

    - calls: statically-known, dynamic dispatch (trait-object style, with a
      receiver hint that may or may not resolve), and function pointers;
    - captures with modes (by value / by reference / by mutable reference);
    - global variables (reads and writes);
    - unsafe mutation primitives (raw-pointer writes / transmute);
    - data-dependent control flow (if / while / for);
    - bodies that are unavailable: native code and unresolvable generics.

    {!pp_func} renders functions as pseudo-Rust; that rendering is the
    "source" that critical-region signing normalizes and hashes, and the
    unit in which region sizes (Fig. 6/7) are counted. *)

type var = string

type binop =
  | Add | Sub | Mul | Div | Rem
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type unop = Not | Neg

type capture_mode = By_value | By_ref | By_mut_ref

type capture = { cap_var : var; mode : capture_mode }

type callee =
  | Static of string  (** direct call to a named function *)
  | Dynamic of { method_name : string; receiver_hint : string option }
      (** trait-object call: resolved against the program's impl registry,
          narrowed to one impl when [receiver_hint] names a type *)
  | Fn_ptr of var option
      (** call through a function pointer; [Some v] names the variable
          holding it (still unresolvable — Scrutinizer rejects) *)

type expr =
  | Unit
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | Var of var
  | Global of string  (** read of a global/static *)
  | Field of expr * string
  | Index of expr * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Tuple of expr list
  | Vec of expr list
  | Call of callee * expr list
  | Ref of var  (** immutable borrow *)
  | Ref_mut of var  (** mutable borrow *)
  | Deref of expr

and lhs =
  | Lvar of var
  | Lfield of var * string
  | Lindex of var * expr
  | Lderef of var  (** write through a reference held in [var] *)
  | Lglobal of string

and stmt =
  | Let of var * expr
  | Assign of lhs * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of var * expr * stmt list
      (** [For (x, e, body)]: iterate the collection [e] binding [x] *)
  | Return of expr option
  | Expr_stmt of expr
  | Unsafe_write of lhs * expr
      (** unsafe mutation with a statically-known target (e.g. a raw-pointer
          write into [self]'s buffer, as std collections do): analyzed like
          an ordinary assignment, but mutating capture-derived data is
          rejected regardless of mutability (§7.1 case 2) *)
  | Opaque_unsafe of expr list
      (** unsafe mutation whose target Scrutinizer cannot resolve (pointer
          arithmetic, transmute tricks): always rejected — this is what
          fells the crypto/CSV crates of §10.3 and the two std-collection
          false positives *)

type body =
  | Body of stmt list
  | Native  (** extern / native code: no body available *)
  | Unresolved_generic  (** monomorphization unavailable *)

type func_kind = In_crate | External of { package : string }

type func = {
  fname : string;
  params : var list;
  body : body;
  kind : func_kind;
}

val func :
  ?kind:func_kind -> name:string -> params:var list -> stmt list -> func
(** In-crate function with a real body. *)

val native : ?package:string -> name:string -> params:var list -> unit -> func
(** A function whose body Scrutinizer cannot see. Default package
    ["native"]. *)

val external_fn : package:string -> name:string -> params:var list -> stmt list -> func
(** A library function with an analyzable body (source available). *)

val lhs_base : lhs -> var option
(** The variable an assignment ultimately writes through ([None] for
    globals). *)

type place = { base : var; path : string list }
(** A bounded access path: a base variable plus a chain of field
    projections — the storage-location syntax of the place-sensitive
    taint domain (rustc-MIR places, modulo index projections, which the
    analysis models at the base). *)

val place_of_var : var -> place
(** The whole-variable place (empty path). *)

val place_of_expr : expr -> place option
(** The place an expression reads, when it is one: [Var]/[Ref]/[Ref_mut]
    bases, [Field] chains, and [Deref] (transparent — the reference
    models its target). [None] for computed expressions, indexing,
    literals, and calls. *)

val place_of_lhs : lhs -> place option
(** The place an assignment writes. [Lindex] maps to the base place
    (index-insensitive); [Lglobal] is [None]. *)

val pp_place : Format.formatter -> place -> unit
val place_to_string : place -> string

val pp_func : Format.formatter -> func -> unit
val func_source : func -> string
(** Pseudo-Rust rendering used for signing and LoC accounting. *)

val func_loc : func -> int
(** Non-empty source lines of {!func_source}. *)

val stmts_source : stmt list -> string
(** Rendering of a bare statement list (used for region closures). *)

val expr_source : expr -> string
(** One-line pseudo-Rust rendering of an expression (witness traces). *)

val lhs_source : lhs -> string
(** One-line pseudo-Rust rendering of an assignment target. *)
