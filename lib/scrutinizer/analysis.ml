type rejection =
  | Mutable_capture of { var : string }
  | Capture_mutation of { func : string; var : string }
  | Unsafe_mutation of { func : string }
  | Tainted_native_call of { func : string; callee : string }
  | Unknown_body_call of { func : string; callee : string }
  | Unresolvable_dispatch of { func : string; method_name : string }
  | Fn_pointer_call of { func : string }
  | Tainted_global_write of { func : string; global : string }

let pp_rejection fmt = function
  | Mutable_capture { var } -> Format.fprintf fmt "captures %s by mutable reference" var
  | Capture_mutation { func; var } ->
      Format.fprintf fmt "%s: may mutate captured variable %s" func var
  | Unsafe_mutation { func } ->
      Format.fprintf fmt "%s: uses an unsafe mutation primitive" func
  | Tainted_native_call { func; callee } ->
      Format.fprintf fmt "%s: sensitive data flows into native code %s" func callee
  | Unknown_body_call { func; callee } ->
      Format.fprintf fmt "%s: sensitive data flows into unknown function %s" func callee
  | Unresolvable_dispatch { func; method_name } ->
      Format.fprintf fmt "%s: cannot resolve dynamic dispatch of %s" func method_name
  | Fn_pointer_call { func } ->
      Format.fprintf fmt "%s: call through an unresolved function pointer" func
  | Tainted_global_write { func; global } ->
      Format.fprintf fmt "%s: sensitive data flows into global %s" func global

let rejection_to_string r = Format.asprintf "%a" pp_rejection r

type stats = {
  functions_analyzed : int;
  duration_s : float;
  summary_cache_hits : int;
  summary_cache_misses : int;
}

type verdict = { accepted : bool; rejections : rejection list; stats : stats }

(* ------------------------------------------------------------------ *)

module Sset = Set.Make (String)
module Rset = Set.Make (struct
  type t = rejection

  let compare = compare
end)

type info = { taint : bool; roots : Sset.t }

let untainted = { taint = false; roots = Sset.empty }
let info_equal a b = a.taint = b.taint && Sset.equal a.roots b.roots
let info_join a b = { taint = a.taint || b.taint; roots = Sset.union a.roots b.roots }

(* A function's analysis effect under one calling context (its summary):
   whether the return value may carry sensitive data, through which
   parameters a sensitive value may be written back to the caller, and the
   rejections arising anywhere in the function's subtree. Effects form a
   finite join-semilattice; the worklist engine only ever grows them, which
   is what guarantees termination. *)
type fn_effect = { ret : bool; writes : Sset.t; rejs : Rset.t }

let bottom_effect = { ret = false; writes = Sset.empty; rejs = Rset.empty }

let effect_join a b =
  { ret = a.ret || b.ret; writes = Sset.union a.writes b.writes; rejs = Rset.union a.rejs b.rejs }

let effect_equal a b =
  a.ret = b.ret && Sset.equal a.writes b.writes && Rset.equal a.rejs b.rejs

(* Summary key: one analysis context of one function. *)
type skey = { kfn : string; ktaints : bool list; kpc : bool }

(* ------------------------------------------------------------------ *)
(* Cross-check summary cache.

   Summaries are pure facts about a function body *within a fixed program*
   (callee names resolve through the program), so an entry is keyed by the
   program fingerprint plus a hash of the function's normalized source —
   reusing the signing pipeline's normalizer and SHA-256. Keying on content
   rather than name means two structurally identical bodies share one
   entry, and a rebuilt program with identical content (the common corpus
   pattern: every app registers many specs against one program) hits
   without any invalidation protocol. *)

module Summary_cache = struct
  module Sha256 = Sesame_signing.Sha256
  module Normalize = Sesame_signing.Normalize

  type t = {
    entries : (string, fn_effect) Hashtbl.t;
    body_hashes : (string, string) Hashtbl.t;
        (* (fingerprint, fname) -> body-hash hex, memoized because the same
           function is looked up once per calling context per check *)
    mutable hits : int;
    mutable misses : int;
  }

  let create () =
    { entries = Hashtbl.create 256; body_hashes = Hashtbl.create 256; hits = 0; misses = 0 }

  let hits t = t.hits
  let misses t = t.misses
  let entries t = Hashtbl.length t.entries

  let hit_rate t =
    let total = t.hits + t.misses in
    if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

  let body_hash t ~program (f : Ir.func) =
    let fp = Sha256.to_hex (Program.fingerprint program) in
    let memo_key = fp ^ "\x00" ^ f.Ir.fname in
    match Hashtbl.find_opt t.body_hashes memo_key with
    | Some h -> h
    | None ->
        let h =
          Sha256.to_hex
            (Sha256.digest_list [ "sesame-summary-v1"; Normalize.source (Ir.func_source f) ])
        in
        Hashtbl.add t.body_hashes memo_key h;
        h

  let entry_key t ~program ~f ~taints ~pc =
    let fp = Sha256.to_hex (Program.fingerprint program) in
    let bh = body_hash t ~program f in
    Printf.sprintf "%s|%s|%s|%c" fp bh
      (String.concat "" (List.map (fun b -> if b then "1" else "0") taints))
      (if pc then '1' else '0')

  let find t ~program ~f ~taints ~pc =
    Hashtbl.find_opt t.entries (entry_key t ~program ~f ~taints ~pc)

  let store t ~program ~f ~taints ~pc eff =
    Hashtbl.replace t.entries (entry_key t ~program ~f ~taints ~pc) eff
end

(* ------------------------------------------------------------------ *)
(* Worklist engine state. *)

type item = Spec_body | Fn of skey

type summary = {
  mutable eff : fn_effect;
  mutable dependents : item list;  (* items to re-run when [eff] grows *)
  from_cache : bool;  (* cache entries are final fixpoints: never re-run *)
}

type ctx = {
  program : Program.t;
  allowlist : Allowlist.t;
  spec : Spec.t;
  capture_roots : Sset.t;  (* by-ref captures of the top-level region *)
  (* Verdict accumulation: first-occurrence order with an O(1) dedup set. *)
  mutable rejections : rejection list;  (* reversed *)
  rejection_seen : (rejection, unit) Hashtbl.t;
  (* Worklist state. *)
  summaries : (skey, summary) Hashtbl.t;
  queue : item Queue.t;
  queued : (item, unit) Hashtbl.t;
  (* Cross-check cache. *)
  cache : Summary_cache.t option;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

(* The per-run mutable state of the item being analyzed: its name, its
   parameter set (empty for the spec body), and the effect accumulated by
   this run. *)
type frame = {
  fname : string;
  params : Sset.t;
  item : item;
  mutable fr_ret : bool;
  mutable fr_writes : Sset.t;
  mutable fr_rejs : Rset.t;
}

let reject ctx frame r =
  frame.fr_rejs <- Rset.add r frame.fr_rejs;
  if not (Hashtbl.mem ctx.rejection_seen r) then begin
    Hashtbl.add ctx.rejection_seen r ();
    ctx.rejections <- r :: ctx.rejections
  end

let rejection_count ctx = Hashtbl.length ctx.rejection_seen

type env = (string, info) Hashtbl.t

let env_get (env : env) v = Option.value (Hashtbl.find_opt env v) ~default:untainted
let env_set (env : env) v info = Hashtbl.replace env v info

(* Taint [v] as the target of a write through a reference. A tainted write
   into memory reachable through one of the current function's parameters
   is a caller-visible write-back, recorded in the frame's effect whether
   or not [v] was already tainted locally. *)
let env_taint frame (env : env) v =
  let old = env_get env v in
  if not old.taint then env_set env v { old with taint = true };
  if Sset.mem v frame.params then frame.fr_writes <- Sset.add v frame.fr_writes

let enqueue ctx item =
  if not (Hashtbl.mem ctx.queued item) then begin
    Hashtbl.add ctx.queued item ();
    Queue.add item ctx.queue
  end

(* Normalize a call's argument taints to the callee's parameter count. *)
let normalize_taints (f : Ir.func) arg_taints =
  let n = List.length f.Ir.params in
  let taints = List.filteri (fun i _ -> i < n) arg_taints in
  taints @ List.init (max 0 (n - List.length taints)) (fun _ -> false)

let rec eval ctx frame (env : env) ~pc (e : Ir.expr) : info =
  match e with
  | Ir.Unit | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Str_lit _ | Ir.Bool_lit _ -> untainted
  | Ir.Global _ -> untainted
  | Ir.Var v ->
      let i = env_get env v in
      { i with roots = Sset.add v i.roots }
  | Ir.Ref v | Ir.Ref_mut v ->
      let i = env_get env v in
      { i with roots = Sset.add v i.roots }
  | Ir.Field (e, _) | Ir.Unop (_, e) | Ir.Deref e -> eval ctx frame env ~pc e
  | Ir.Index (a, b) | Ir.Binop (_, a, b) ->
      let ia = eval ctx frame env ~pc a and ib = eval ctx frame env ~pc b in
      { taint = ia.taint || ib.taint; roots = Sset.union ia.roots ib.roots }
  | Ir.Tuple es | Ir.Vec es ->
      List.fold_left
        (fun acc e ->
          let i = eval ctx frame env ~pc e in
          { taint = acc.taint || i.taint; roots = Sset.union acc.roots i.roots })
        untainted es
  | Ir.Call (callee, args) -> eval_call ctx frame env ~pc callee args

and eval_call ctx frame env ~pc callee args : info =
  let arg_infos = List.map (eval ctx frame env ~pc) args in
  let any_tainted = pc || List.exists (fun i -> i.taint) arg_infos in
  (* A mutable reference to capture-derived data escaping into any call is a
     potential mutation of the capture (§7.1 case 1/2). *)
  List.iter
    (fun arg ->
      match arg with
      | Ir.Ref_mut v ->
          let roots = Sset.add v (env_get env v).roots in
          let hit = Sset.inter roots ctx.capture_roots in
          Sset.iter (fun var -> reject ctx frame (Capture_mutation { func = frame.fname; var })) hit
      | _ -> ())
    args;
  let arg_taints = List.map (fun (i : info) -> i.taint) arg_infos in
  (* Taint every variable an argument expression can reach: the write-back
     model for callees. Root-based, so non-variable arguments (f(s.field))
     are covered too — the seed engine only tainted bare Var/Ref args. *)
  let taint_arg_targets (i : info) = Sset.iter (fun v -> env_taint frame env v) i.roots in
  (* For callees whose body the analyzer cannot see (native, unknown,
     allow-listed leaves), conservatively assume a tainted call may write
     through every argument. Known bodies get precise per-parameter
     write-back effects from their summaries instead. *)
  let blanket_writeback () = if any_tainted then List.iter taint_arg_targets arg_infos in
  let apply_effect (f : Ir.func) (eff : fn_effect) =
    (* Replay the callee subtree's rejections (a no-op unless the summary
       came from the cross-check cache or an earlier spec), and apply its
       write-back effects to the reachable set of each actual argument. *)
    Rset.iter (fun r -> reject ctx frame r) eff.rejs;
    let infos = Array.of_list arg_infos in
    List.iteri
      (fun idx p ->
        if Sset.mem p eff.writes && idx < Array.length infos then
          taint_arg_targets infos.(idx))
      f.Ir.params;
    eff.ret
  in
  let call_one name =
    if Allowlist.mem ctx.allowlist name then begin
      blanket_writeback ();
      any_tainted
    end
    else
      match Program.find ctx.program name with
      | None ->
          blanket_writeback ();
          if any_tainted then reject ctx frame (Unknown_body_call { func = frame.fname; callee = name });
          any_tainted
      | Some f -> (
          match f.Ir.body with
          | Ir.Native | Ir.Unresolved_generic ->
              blanket_writeback ();
              if any_tainted then
                reject ctx frame (Tainted_native_call { func = frame.fname; callee = name });
              any_tainted
          | Ir.Body _ ->
              (* Calls whose arguments are all insensitive under insensitive
                 control flow cannot move sensitive data: skipped, as in the
                 paper. *)
              if not any_tainted then false
              else
                let key = { kfn = f.Ir.fname; ktaints = normalize_taints f arg_taints; kpc = pc } in
                apply_effect f (request_summary ctx ~dependent:frame.item key f))
    in
  let taint =
    match callee with
    | Ir.Static name -> call_one name
    | Ir.Dynamic { method_name; receiver_hint } -> (
        match Program.resolve_dynamic ctx.program ~method_name ~receiver_hint with
        | None ->
            blanket_writeback ();
            reject ctx frame (Unresolvable_dispatch { func = frame.fname; method_name });
            true
        | Some candidates -> List.fold_left (fun acc c -> call_one c || acc) false candidates)
    | Ir.Fn_ptr _ ->
        blanket_writeback ();
        reject ctx frame (Fn_pointer_call { func = frame.fname });
        true
  in
  let arg_roots =
    List.fold_left (fun acc (i : info) -> Sset.union acc i.roots) Sset.empty arg_infos
  in
  { taint; roots = arg_roots }

(* Look up (or start computing) the summary for [key]. New keys are first
   sought in the cross-check cache; on a miss they are seeded at bottom and
   analyzed eagerly (depth-first, like the seed engine's memoized descent),
   with the worklist only re-running items whose dependencies grow — which
   happens on recursive cycles. The requesting item is recorded as a
   dependent either way. *)
and request_summary ctx ~dependent key f : fn_effect =
  match Hashtbl.find_opt ctx.summaries key with
  | Some s ->
      if not (List.mem dependent s.dependents) then s.dependents <- dependent :: s.dependents;
      s.eff
  | None -> (
      let cached =
        match ctx.cache with
        | None -> None
        | Some cache ->
            Summary_cache.find cache ~program:ctx.program ~f ~taints:key.ktaints ~pc:key.kpc
      in
      match cached with
      | Some eff ->
          ctx.cache_hits <- ctx.cache_hits + 1;
          (match ctx.cache with Some c -> c.Summary_cache.hits <- c.Summary_cache.hits + 1 | None -> ());
          Hashtbl.add ctx.summaries key { eff; dependents = [ dependent ]; from_cache = true };
          eff
      | None ->
          if Option.is_some ctx.cache then begin
            ctx.cache_misses <- ctx.cache_misses + 1;
            match ctx.cache with
            | Some c -> c.Summary_cache.misses <- c.Summary_cache.misses + 1
            | None -> ()
          end;
          let s = { eff = bottom_effect; dependents = [ dependent ]; from_cache = false } in
          Hashtbl.add ctx.summaries key s;
          run_fn ctx key;
          s.eff)

(* Analyze one function body under one calling context and join the result
   into its summary; if the summary grew, every dependent is re-queued. *)
and run_fn ctx key =
  let s = Hashtbl.find ctx.summaries key in
  match Program.find ctx.program key.kfn with
  | None -> ()
  | Some f -> (
      match f.Ir.body with
      | Ir.Native | Ir.Unresolved_generic -> ()
      | Ir.Body stmts ->
          let frame =
            {
              fname = f.Ir.fname;
              params = Sset.of_list f.Ir.params;
              item = Fn key;
              fr_ret = false;
              fr_writes = Sset.empty;
              fr_rejs = Rset.empty;
            }
          in
          let env : env = Hashtbl.create 16 in
          List.iter2
            (fun param taint -> env_set env param { taint; roots = Sset.empty })
            f.Ir.params key.ktaints;
          exec_stmts ctx frame env ~pc:key.kpc stmts;
          let eff = { ret = frame.fr_ret; writes = frame.fr_writes; rejs = frame.fr_rejs } in
          let joined = effect_join s.eff eff in
          if not (effect_equal joined s.eff) then begin
            s.eff <- joined;
            List.iter (enqueue ctx) s.dependents
          end)

and exec_stmts ctx frame env ~pc stmts = List.iter (exec_stmt ctx frame env ~pc) stmts

and exec_stmt ctx frame env ~pc (stmt : Ir.stmt) =
  match stmt with
  | Ir.Let (v, e) ->
      let i = eval ctx frame env ~pc e in
      env_set env v { taint = i.taint || pc; roots = i.roots }
  | Ir.Assign (lhs, e) ->
      let i = eval ctx frame env ~pc e in
      assign ctx frame env lhs { i with taint = i.taint || pc }
  | Ir.Unsafe_write (lhs, e) ->
      (* A known-target unsafe write: analyzed like an assignment, except
         that touching capture-derived data violates case 2 regardless of
         the written value. *)
      (match Ir.lhs_base lhs with
      | Some v ->
          let roots = Sset.add v (env_get env v).roots in
          if not (Sset.is_empty (Sset.inter roots ctx.capture_roots)) then
            reject ctx frame (Unsafe_mutation { func = frame.fname })
      | None -> ());
      let i = eval ctx frame env ~pc e in
      assign ctx frame env lhs { i with taint = i.taint || pc }
  | Ir.Opaque_unsafe args ->
      (* Unresolvable raw-pointer mutation: conservatively rejected. *)
      reject ctx frame (Unsafe_mutation { func = frame.fname });
      List.iter (fun e -> ignore (eval ctx frame env ~pc e)) args
  | Ir.If (c, then_, else_) ->
      let ci = eval ctx frame env ~pc c in
      let pc' = pc || ci.taint in
      exec_stmts ctx frame env ~pc:pc' then_;
      exec_stmts ctx frame env ~pc:pc' else_
  | Ir.While (c, body) ->
      fixpoint ctx frame env (fun () ->
          let ci = eval ctx frame env ~pc c in
          let pc' = pc || ci.taint in
          exec_stmts ctx frame env ~pc:pc' body)
  | Ir.For (v, e, body) ->
      fixpoint ctx frame env (fun () ->
          let ei = eval ctx frame env ~pc e in
          (* The element is derived from the collection; the trip count
             leaks the collection's shape, so the body runs under a pc
             raised by the collection's taint. *)
          env_set env v { taint = ei.taint || pc; roots = ei.roots };
          let pc' = pc || ei.taint in
          exec_stmts ctx frame env ~pc:pc' body)
  | Ir.Return None -> if pc then frame.fr_ret <- true
  | Ir.Return (Some e) ->
      let i = eval ctx frame env ~pc e in
      if i.taint || pc then frame.fr_ret <- true
  | Ir.Expr_stmt e -> ignore (eval ctx frame env ~pc e)

and assign ctx frame env lhs (value : info) =
  match lhs with
  | Ir.Lvar v -> env_set env v value
  | Ir.Lfield (v, _) | Ir.Lindex (v, _) ->
      let base = env_get env v in
      let targets = Sset.add v base.roots in
      let hit = Sset.inter targets ctx.capture_roots in
      Sset.iter (fun var -> reject ctx frame (Capture_mutation { func = frame.fname; var })) hit;
      (* A tainted store into a projection of a parameter (or of anything
         that may alias one) is caller-visible. *)
      if value.taint then
        Sset.iter
          (fun t -> if Sset.mem t frame.params then frame.fr_writes <- Sset.add t frame.fr_writes)
          targets;
      env_set env v
        { taint = base.taint || value.taint; roots = Sset.union base.roots value.roots }
  | Ir.Lderef v ->
      (* Write through a reference: affects everything it may point at. *)
      let base = env_get env v in
      let targets = Sset.add v base.roots in
      let hit = Sset.inter targets ctx.capture_roots in
      Sset.iter (fun var -> reject ctx frame (Capture_mutation { func = frame.fname; var })) hit;
      if value.taint then Sset.iter (fun target -> env_taint frame env target) targets
  | Ir.Lglobal g ->
      if value.taint then reject ctx frame (Tainted_global_write { func = frame.fname; global = g })

(* Loop fixpoint: run the body, then join the loop-head state back in (the
   loop may execute zero times, and the join makes the head state grow
   monotonically, which guarantees convergence — taint and root sets only
   range over finitely many program variables). Re-iterate while the head
   state grew or a new rejection appeared. The seed engine compared root
   sets by cardinality and read the rejection count only after running the
   body, so same-size aliasing changes and rejection growth both looked
   like convergence; here the comparison is structural ([Sset.equal]) and
   the count is taken before the body runs. The iteration bound is a
   safety net only — monotone growth cannot cycle. *)
and fixpoint ctx _frame env body =
  let max_iterations = 64 in
  let rec go n =
    let head = Hashtbl.copy env in
    let rejections_before = rejection_count ctx in
    body ();
    Hashtbl.iter
      (fun v i ->
        let cur = env_get env v in
        let joined = info_join cur i in
        if not (info_equal cur joined) then env_set env v joined)
      head;
    let grew =
      Hashtbl.length env <> Hashtbl.length head
      || Hashtbl.fold (fun v i acc -> acc || not (info_equal i (env_get env v))) head false
    in
    if (grew || rejection_count ctx <> rejections_before) && n < max_iterations then go (n + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)

let run_spec ctx =
  let spec = ctx.spec in
  let frame =
    {
      fname = spec.Spec.name;
      params = Sset.empty;
      item = Spec_body;
      fr_ret = false;
      fr_writes = Sset.empty;
      fr_rejs = Rset.empty;
    }
  in
  let env : env = Hashtbl.create 16 in
  List.iter (fun p -> env_set env p { taint = true; roots = Sset.empty }) spec.Spec.params;
  List.iter
    (fun (c : Ir.capture) -> env_set env c.cap_var { taint = false; roots = Sset.empty })
    spec.Spec.captures;
  exec_stmts ctx frame env ~pc:false spec.Spec.body

(* Drain the worklist: re-run every item one of whose dependency summaries
   grew since it last ran. Monotone effects over finite lattices make this
   terminate; when the queue is empty every summary is a fixpoint. *)
let solve ctx =
  run_spec ctx;
  let rec drain () =
    match Queue.take_opt ctx.queue with
    | None -> ()
    | Some item ->
        Hashtbl.remove ctx.queued item;
        (match item with Spec_body -> run_spec ctx | Fn key -> run_fn ctx key);
        drain ()
  in
  drain ()

let check ?(allowlist = Allowlist.default) ?cache program (spec : Spec.t) =
  let started = Sesame_clock.now_ns () in
  let graph = Callgraph.collect program ~allowlist spec in
  let collection_rejections =
    List.map
      (function
        | Callgraph.Unresolvable_dispatch { caller; method_name } ->
            Unresolvable_dispatch { func = caller; method_name }
        | Callgraph.Fn_pointer_call { caller } -> Fn_pointer_call { func = caller })
      (Callgraph.failures graph)
  in
  let capture_rejections =
    List.map (fun var -> Mutable_capture { var }) (Spec.by_mut_ref_captures spec)
  in
  let capture_roots = Sset.of_list (Spec.by_ref_captures spec) in
  let ctx =
    {
      program;
      allowlist;
      spec;
      capture_roots;
      rejections = [];
      rejection_seen = Hashtbl.create 16;
      summaries = Hashtbl.create 64;
      queue = Queue.create ();
      queued = Hashtbl.create 16;
      cache;
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  solve ctx;
  (* Publish every freshly computed fixpoint for reuse by later checks. *)
  (match cache with
  | None -> ()
  | Some c ->
      Hashtbl.iter
        (fun key s ->
          if not s.from_cache then
            match Program.find program key.kfn with
            | Some f ->
                Summary_cache.store c ~program ~f ~taints:key.ktaints ~pc:key.kpc s.eff
            | None -> ())
        ctx.summaries);
  let rejections =
    capture_rejections @ collection_rejections @ List.rev ctx.rejections
  in
  (* Dedup preserving first-occurrence order, linear in the number of
     rejections. *)
  let rejections =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun r ->
        if Hashtbl.mem seen r then false
        else begin
          Hashtbl.add seen r ();
          true
        end)
      rejections
  in
  let stats =
    {
      functions_analyzed = Callgraph.functions_analyzed graph;
      duration_s = Sesame_clock.elapsed_s ~since:started;
      summary_cache_hits = ctx.cache_hits;
      summary_cache_misses = ctx.cache_misses;
    }
  in
  { accepted = rejections = []; rejections; stats }

let pp_verdict fmt v =
  if v.accepted then
    Format.fprintf fmt "ACCEPTED (%d functions, %.3fs)" v.stats.functions_analyzed
      v.stats.duration_s
  else
    Format.fprintf fmt "@[<v 2>REJECTED (%d functions, %.3fs):@,%a@]"
      v.stats.functions_analyzed v.stats.duration_s
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rejection)
      v.rejections
