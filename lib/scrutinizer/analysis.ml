(* Scrutinizer's leakage-freedom analysis over a place-sensitive taint
   domain with witness-path provenance. See analysis.mli for the
   user-facing contract and DESIGN.md for the domain write-up. *)

type reason =
  | Mutable_capture of { var : string }
  | Capture_mutation of { func : string; var : string }
  | Unsafe_mutation of { func : string }
  | Tainted_native_call of { func : string; callee : string }
  | Unknown_body_call of { func : string; callee : string }
  | Unresolvable_dispatch of { func : string; method_name : string }
  | Fn_pointer_call of { func : string }
  | Tainted_global_write of { func : string; global : string }

let pp_reason fmt = function
  | Mutable_capture { var } -> Format.fprintf fmt "captures %s by mutable reference" var
  | Capture_mutation { func; var } ->
      Format.fprintf fmt "%s: may mutate captured variable %s" func var
  | Unsafe_mutation { func } ->
      Format.fprintf fmt "%s: uses an unsafe mutation primitive" func
  | Tainted_native_call { func; callee } ->
      Format.fprintf fmt "%s: sensitive data flows into native code %s" func callee
  | Unknown_body_call { func; callee } ->
      Format.fprintf fmt "%s: sensitive data flows into unknown function %s" func callee
  | Unresolvable_dispatch { func; method_name } ->
      Format.fprintf fmt "%s: cannot resolve dynamic dispatch of %s" func method_name
  | Fn_pointer_call { func } ->
      Format.fprintf fmt "%s: call through an unresolved function pointer" func
  | Tainted_global_write { func; global } ->
      Format.fprintf fmt "%s: sensitive data flows into global %s" func global

let reason_to_string r = Format.asprintf "%a" pp_reason r

(* A witness step: one hop of the path sensitive data takes from a source
   binding to the rejected sink. Traces are decoration on the lattice —
   they never participate in equality, so they cannot affect termination
   or verdicts, only explanations. *)
type step_kind = Source | Flow | Branch | Call | Return | Writeback | Sink

type step = { step_kind : step_kind; step_fn : string; step_detail : string }

let step_kind_label = function
  | Source -> "source"
  | Flow -> "flow"
  | Branch -> "branch"
  | Call -> "call"
  | Return -> "return"
  | Writeback -> "writeback"
  | Sink -> "sink"

let pp_step fmt s =
  Format.fprintf fmt "[%s] %s: %s" (step_kind_label s.step_kind) s.step_fn s.step_detail

let step_to_string s = Format.asprintf "%a" pp_step s

let pp_trace fmt trace =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_step fmt trace

type rejection = { reason : reason; trace : step list }

let pp_rejection fmt r = pp_reason fmt r.reason
let rejection_to_string r = Format.asprintf "%a" pp_rejection r

type stats = {
  functions_analyzed : int;
  duration_s : float;
  summary_cache_hits : int;
  summary_cache_misses : int;
}

type verdict = { accepted : bool; rejections : rejection list; stats : stats }

(* ------------------------------------------------------------------ *)

module Sset = Set.Make (String)

(* Cells map bounded access paths (field chains rooted at one variable)
   to abstract values. Paths longer than [max_path_depth] widen to their
   depth-k prefix, which keeps the domain finite per program. *)
module Pathmap = Map.Make (struct
  type t = string list

  let compare = compare
end)

module Rmap = Map.Make (struct
  type t = reason

  let compare = compare
end)

(* Per-parameter per-path write-back sets: (param, path) -> provenance. *)
module Wmap = Map.Make (struct
  type t = string * string list

  let compare = compare
end)

let max_path_depth = 2
let truncate_path p = List.filteri (fun i _ -> i < max_path_depth) p

let trace_limit = 24

(* Truncation keeps the head (the source end) and the final step (the
   sink end), so even a widened trace still spans source-to-sink. *)
let cap tr =
  if List.compare_length_with tr trace_limit <= 0 then tr
  else
    let last = List.nth tr (List.length tr - 1) in
    List.filteri (fun i _ -> i < trace_limit - 1) tr @ [ last ]

let shorten s = if String.length s <= 48 then s else String.sub s 0 45 ^ "..."
let step kind fn detail = { step_kind = kind; step_fn = fn; step_detail = detail }

type info = { taint : bool; roots : Sset.t; trace : step list }

let untainted = { taint = false; roots = Sset.empty; trace = [] }

(* Traces are excluded: they are explanations, not lattice content. *)
let info_equal a b = a.taint = b.taint && Sset.equal a.roots b.roots

(* Keep-first trace joins pin each cell's explanation to the first flow
   that tainted it, so fixpoint re-iteration cannot oscillate traces. *)
let info_join a b =
  {
    taint = a.taint || b.taint;
    roots = Sset.union a.roots b.roots;
    trace = (if a.taint then a.trace else b.trace);
  }

(* A function's analysis effect under one calling context (its summary):
   whether the return value may carry sensitive data (and how it got
   there), through which parameter *places* sensitive data may be written
   back to the caller, and the rejections arising anywhere in the
   function's subtree, each with a callee-relative witness trace. Modulo
   the trace decoration, effects form a finite join-semilattice; the
   worklist engine only ever grows them, which guarantees termination. *)
type fn_effect = {
  ret : bool;
  ret_trace : step list;
  writes : step list Wmap.t;
  rejs : step list Rmap.t;
}

let bottom_effect = { ret = false; ret_trace = []; writes = Wmap.empty; rejs = Rmap.empty }

let effect_join a b =
  {
    ret = a.ret || b.ret;
    ret_trace = (if a.ret then a.ret_trace else b.ret_trace);
    writes = Wmap.union (fun _ x _ -> Some x) a.writes b.writes;
    rejs = Rmap.union (fun _ x _ -> Some x) a.rejs b.rejs;
  }

let effect_equal a b =
  a.ret = b.ret
  && Wmap.equal (fun _ _ -> true) a.writes b.writes
  && Rmap.equal (fun _ _ -> true) a.rejs b.rejs

(* Summary key: one analysis context of one function. *)
type skey = { kfn : string; ktaints : bool list; kpc : bool }

(* ------------------------------------------------------------------ *)
(* Cross-check summary cache.

   Summaries are pure facts about a function body *within a fixed program*
   (callee names resolve through the program), so an entry is keyed by the
   program fingerprint plus a hash of the function's normalized source —
   reusing the signing pipeline's normalizer and SHA-256. Keying on content
   rather than name means two structurally identical bodies share one
   entry, and a rebuilt program with identical content (the common corpus
   pattern: every app registers many specs against one program) hits
   without any invalidation protocol. The digest tag is versioned; v2
   entries carry per-path write-back sets and witness traces, which v1
   consumers could not replay, so the tag bump keeps the generations
   disjoint. *)

module Summary_cache = struct
  module Sha256 = Sesame_signing.Sha256
  module Normalize = Sesame_signing.Normalize

  let version_tag = "sesame-summary-v2"

  type t = {
    entries : (string, fn_effect) Hashtbl.t;
    body_hashes : (string, string) Hashtbl.t;
        (* (fingerprint, fname) -> body-hash hex, memoized because the same
           function is looked up once per calling context per check *)
    (* Atomics: a shared cross-spec cache may serve checks running on
       several domains; the counters must not lose increments. *)
    hits : int Atomic.t;
    misses : int Atomic.t;
  }

  let create () =
    {
      entries = Hashtbl.create 256;
      body_hashes = Hashtbl.create 256;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
    }

  let hits t = Atomic.get t.hits
  let misses t = Atomic.get t.misses
  let entries t = Hashtbl.length t.entries

  let hit_rate t =
    let total = Atomic.get t.hits + Atomic.get t.misses in
    if total = 0 then 0.0 else float_of_int (Atomic.get t.hits) /. float_of_int total

  let body_hash t ~program (f : Ir.func) =
    let fp = Sha256.to_hex (Program.fingerprint program) in
    let memo_key = fp ^ "\x00" ^ f.Ir.fname in
    match Hashtbl.find_opt t.body_hashes memo_key with
    | Some h -> h
    | None ->
        let h =
          Sha256.to_hex
            (Sha256.digest_list [ version_tag; Normalize.source (Ir.func_source f) ])
        in
        Hashtbl.add t.body_hashes memo_key h;
        h

  let entry_key t ~program ~f ~taints ~pc =
    let fp = Sha256.to_hex (Program.fingerprint program) in
    let bh = body_hash t ~program f in
    Printf.sprintf "%s|%s|%s|%c" fp bh
      (String.concat "" (List.map (fun b -> if b then "1" else "0") taints))
      (if pc then '1' else '0')

  let find t ~program ~f ~taints ~pc =
    Hashtbl.find_opt t.entries (entry_key t ~program ~f ~taints ~pc)

  let store t ~program ~f ~taints ~pc eff =
    Hashtbl.replace t.entries (entry_key t ~program ~f ~taints ~pc) eff
end

(* ------------------------------------------------------------------ *)
(* Worklist engine state. *)

type item = Spec_body | Fn of skey

module Iset = Set.Make (struct
  type t = item

  let compare = compare
end)

type summary = {
  mutable eff : fn_effect;
  mutable dependents : Iset.t;  (* items to re-run when [eff] grows *)
  from_cache : bool;  (* cache entries are final fixpoints: never re-run *)
}

type ctx = {
  program : Program.t;
  allowlist : Allowlist.t;
  spec : Spec.t;
  capture_roots : Sset.t;  (* by-ref captures of the top-level region *)
  (* Rejections are published to the verdict only during the final
     deterministic witness pass (see [check]); until then they live in
     the analyzing frame's effect. First-occurrence order, O(1) dedup. *)
  mutable publishing : bool;
  mutable rejections : rejection list;  (* reversed *)
  rejection_seen : (reason, unit) Hashtbl.t;
  (* Worklist state. *)
  summaries : (skey, summary) Hashtbl.t;
  queue : item Queue.t;
  queued : (item, unit) Hashtbl.t;
  (* Cross-check cache. *)
  cache : Summary_cache.t option;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

(* The per-run mutable state of the item being analyzed: its name, its
   parameter set (empty for the spec body), and the effect accumulated by
   this run. *)
type frame = {
  fname : string;
  params : Sset.t;
  item : item;
  mutable fr_ret : bool;
  mutable fr_ret_trace : step list;
  mutable fr_writes : step list Wmap.t;
  mutable fr_rejs : step list Rmap.t;
}

let reject ctx frame ~trace reason =
  if not (Rmap.mem reason frame.fr_rejs) then
    frame.fr_rejs <- Rmap.add reason trace frame.fr_rejs;
  if ctx.publishing && not (Hashtbl.mem ctx.rejection_seen reason) then begin
    Hashtbl.add ctx.rejection_seen reason ();
    ctx.rejections <- { reason; trace } :: ctx.rejections
  end

(* Sensitive control flow carries its own provenance: [None] is an
   insensitive pc, [Some trace] a sensitive one with the witness path of
   the branch condition that raised it. *)
type pc = step list option

let pc_on (pc : pc) = Option.is_some pc
let pc_trace (pc : pc) = Option.value pc ~default:[]

type env = (string, info Pathmap.t) Hashtbl.t

let is_prefix a b =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> x = y && go a' b'
  in
  go a b

(* The whole-variable aliasing view: roots are tracked per cell entry but
   aliasing stays variable-granular (a reference to any part of [v] can
   reach [v]), exactly as in the var-level domain. *)
let env_roots (env : env) v =
  match Hashtbl.find_opt env v with
  | None -> Sset.empty
  | Some cell -> Pathmap.fold (fun _ i acc -> Sset.union acc i.roots) cell Sset.empty

(* Read a place: join every entry whose path is a prefix of the read path
   (a write to [v.f] is visible through [v.f.g]) or an extension of it (a
   read of [v] or [v.f] sees taint stored at [v.f.g]). Disjoint sibling
   fields do not overlap — that is the precision the place domain buys. *)
let env_read (env : env) (pl : Ir.place) : info =
  let i =
    match Hashtbl.find_opt env pl.Ir.base with
    | None -> untainted
    | Some cell ->
        Pathmap.fold
          (fun p entry acc ->
            if is_prefix p pl.Ir.path || is_prefix pl.Ir.path p then info_join acc entry
            else acc)
          cell untainted
  in
  { i with roots = env_roots env pl.Ir.base }

(* Strong update: the variable is wholly overwritten, so every stale
   field entry dies with the old cell. Only whole-variable writes
   ([Let], [Assign (Lvar _)], loop bindings) may do this. *)
let env_strong (env : env) v info = Hashtbl.replace env v (Pathmap.singleton [] info)

(* Weak update at a path: join, never untaint — field writes and writes
   through references may alias, so they can only add facts. *)
let env_weak (env : env) v path info =
  let path = truncate_path path in
  let cell = Option.value (Hashtbl.find_opt env v) ~default:Pathmap.empty in
  let cur = Option.value (Pathmap.find_opt path cell) ~default:untainted in
  Hashtbl.replace env v (Pathmap.add path (info_join cur info) cell)

let record_write frame v path ~trace =
  let key = (v, truncate_path path) in
  if not (Wmap.mem key frame.fr_writes) then frame.fr_writes <- Wmap.add key trace frame.fr_writes

(* Taint [pl] as the target of a write through a reference or a call
   write-back. A write into memory reachable through one of the current
   function's parameters is a caller-visible write-back, recorded in the
   frame's effect at the written path whether or not the place was
   already tainted locally. *)
let env_taint_place frame (env : env) (pl : Ir.place) ~trace =
  env_weak env pl.Ir.base pl.Ir.path { taint = true; roots = Sset.empty; trace };
  if Sset.mem pl.Ir.base frame.params then record_write frame pl.Ir.base pl.Ir.path ~trace

let enqueue ctx item =
  if not (Hashtbl.mem ctx.queued item) then begin
    Hashtbl.add ctx.queued item ();
    Queue.add item ctx.queue
  end

(* Normalize a call's argument taints to the callee's parameter count.
   Surplus arguments (arity mismatch) have no parameter of their own, so
   their taint is joined onto the last parameter rather than silently
   dropped — conservative, never unsound. *)
let normalize_taints (f : Ir.func) arg_taints =
  let n = List.length f.Ir.params in
  let kept = List.filteri (fun i _ -> i < n) arg_taints in
  let kept = kept @ List.init (max 0 (n - List.length kept)) (fun _ -> false) in
  let surplus_tainted =
    List.exists Fun.id (List.filteri (fun i _ -> i >= n) arg_taints)
  in
  if n > 0 && surplus_tainted then
    List.mapi (fun i t -> if i = n - 1 then true else t) kept
  else kept

let set_ret frame trace =
  frame.fr_ret <- true;
  if frame.fr_ret_trace = [] then frame.fr_ret_trace <- trace

let rec eval ctx frame (env : env) ~pc (e : Ir.expr) : info =
  match e with
  | Ir.Unit | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Str_lit _ | Ir.Bool_lit _ -> untainted
  | Ir.Global _ -> untainted
  | Ir.Var v | Ir.Ref v | Ir.Ref_mut v ->
      let i = env_read env (Ir.place_of_var v) in
      { i with roots = Sset.add v i.roots }
  | Ir.Field (inner, _) -> (
      match Ir.place_of_expr e with
      | Some pl ->
          let i = env_read env pl in
          { i with roots = Sset.add pl.Ir.base i.roots }
      | None -> eval ctx frame env ~pc inner)
  | Ir.Unop (_, inner) | Ir.Deref inner -> eval ctx frame env ~pc inner
  | Ir.Index (a, b) | Ir.Binop (_, a, b) ->
      info_join (eval ctx frame env ~pc a) (eval ctx frame env ~pc b)
  | Ir.Tuple es | Ir.Vec es ->
      List.fold_left (fun acc e -> info_join acc (eval ctx frame env ~pc e)) untainted es
  | Ir.Call (callee, args) -> eval_call ctx frame env ~pc callee args

and eval_call ctx frame env ~pc callee args : info =
  let arg_infos = List.map (eval ctx frame env ~pc) args in
  let any_tainted = pc_on pc || List.exists (fun (i : info) -> i.taint) arg_infos in
  (* A mutable reference to capture-derived data escaping into any call is a
     potential mutation of the capture (§7.1 case 1/2). *)
  List.iter
    (fun arg ->
      match arg with
      | Ir.Ref_mut v ->
          let roots = Sset.add v (env_roots env v) in
          let hit = Sset.inter roots ctx.capture_roots in
          Sset.iter
            (fun var ->
              reject ctx frame
                ~trace:[ step Sink frame.fname ("&mut " ^ var ^ " escapes into a call") ]
                (Capture_mutation { func = frame.fname; var }))
            hit
      | _ -> ())
    args;
  let arg_taints = List.map (fun (i : info) -> i.taint) arg_infos in
  (* The splice prefix: how sensitive data reached this call site — the
     first tainted argument's provenance, else the pc's. *)
  let prefix =
    match List.find_opt (fun (i : info) -> i.taint) arg_infos with
    | Some i -> i.trace
    | None -> pc_trace pc
  in
  let arg_trace (i : info) = if i.taint then i.trace else prefix in
  (* Taint every variable an argument expression can reach: the write-back
     model for callees whose body the analyzer cannot see. Known bodies
     get precise per-parameter per-path write-back effects from their
     summaries instead. *)
  let taint_arg_targets ~via (i : info) =
    let tr = cap (arg_trace i @ [ step Writeback frame.fname ("written back by " ^ via) ]) in
    Sset.iter (fun v -> env_taint_place frame env (Ir.place_of_var v) ~trace:tr) i.roots
  in
  let blanket_writeback ~via () =
    if any_tainted then List.iter (taint_arg_targets ~via) arg_infos
  in
  let sink_trace name what = cap (prefix @ [ step Sink frame.fname (what ^ " " ^ name) ]) in
  let apply_effect name (f : Ir.func) (eff : fn_effect) =
    (* Replay the callee subtree's rejections with the caller's provenance
       spliced in front of the callee-relative trace, and apply its
       write-back effects: each written (param, path) lands on the actual
       argument's place extended by that path, with the argument's aliases
       written at their base. *)
    let call_step = step Call frame.fname ("calls " ^ name) in
    Rmap.iter
      (fun reason tr -> reject ctx frame ~trace:(cap (prefix @ (call_step :: tr))) reason)
      eff.rejs;
    let infos = Array.of_list arg_infos in
    let arg_exprs = Array.of_list args in
    List.iteri
      (fun idx p ->
        if idx < Array.length infos then
          Wmap.iter
            (fun (wp, wpath) tr ->
              if wp = p then begin
                let i = infos.(idx) in
                let spliced =
                  cap
                    (arg_trace i
                    @ (call_step :: tr)
                    @ [ step Writeback frame.fname ("written back from " ^ name) ])
                in
                match Ir.place_of_expr arg_exprs.(idx) with
                | Some apl ->
                    env_taint_place frame env
                      { Ir.base = apl.Ir.base; path = apl.Ir.path @ wpath }
                      ~trace:spliced;
                    Sset.iter
                      (fun v ->
                        if v <> apl.Ir.base then
                          env_taint_place frame env (Ir.place_of_var v) ~trace:spliced)
                      i.roots
                | None ->
                    Sset.iter
                      (fun v -> env_taint_place frame env (Ir.place_of_var v) ~trace:spliced)
                      i.roots
              end)
            eff.writes)
      f.Ir.params;
    if eff.ret then Some (cap (prefix @ (call_step :: eff.ret_trace))) else None
  in
  let call_one name : step list option =
    if Allowlist.mem ctx.allowlist name then begin
      blanket_writeback ~via:name ();
      if any_tainted then
        Some (cap (prefix @ [ step Return frame.fname ("result of allow-listed " ^ name) ]))
      else None
    end
    else
      match Program.find ctx.program name with
      | None ->
          blanket_writeback ~via:name ();
          if any_tainted then begin
            reject ctx frame
              ~trace:(sink_trace name "sensitive data flows into unknown function")
              (Unknown_body_call { func = frame.fname; callee = name });
            Some (cap (prefix @ [ step Return frame.fname ("result of unknown " ^ name) ]))
          end
          else None
      | Some f -> (
          match f.Ir.body with
          | Ir.Native | Ir.Unresolved_generic ->
              blanket_writeback ~via:name ();
              if any_tainted then begin
                reject ctx frame
                  ~trace:(sink_trace name "sensitive data flows into native code")
                  (Tainted_native_call { func = frame.fname; callee = name });
                Some (cap (prefix @ [ step Return frame.fname ("result of native " ^ name) ]))
              end
              else None
          | Ir.Body _ ->
              (* Calls whose arguments are all insensitive under insensitive
                 control flow cannot move sensitive data: skipped, as in the
                 paper. *)
              if not any_tainted then None
              else
                let key =
                  { kfn = f.Ir.fname; ktaints = normalize_taints f arg_taints; kpc = pc_on pc }
                in
                apply_effect name f (request_summary ctx ~dependent:frame.item key f))
  in
  let ret_trace =
    match callee with
    | Ir.Static name -> call_one name
    | Ir.Dynamic { method_name; receiver_hint } -> (
        match Program.resolve_dynamic ctx.program ~method_name ~receiver_hint with
        | None ->
            blanket_writeback ~via:("dyn " ^ method_name) ();
            reject ctx frame
              ~trace:
                (cap
                   (prefix
                   @ [ step Sink frame.fname ("unresolvable dynamic dispatch of " ^ method_name) ]))
              (Unresolvable_dispatch { func = frame.fname; method_name });
            Some (cap (prefix @ [ step Return frame.fname ("result of unresolved " ^ method_name) ]))
        | Some candidates ->
            List.fold_left
              (fun acc c ->
                match call_one c with
                | None -> acc
                | Some tr -> ( match acc with None -> Some tr | Some _ -> acc))
              None candidates)
    | Ir.Fn_ptr _ ->
        blanket_writeback ~via:"a function pointer" ();
        reject ctx frame
          ~trace:
            (cap (prefix @ [ step Sink frame.fname "call through an unresolved function pointer" ]))
          (Fn_pointer_call { func = frame.fname });
        Some (cap (prefix @ [ step Return frame.fname "result of function-pointer call" ]))
  in
  let arg_roots =
    List.fold_left (fun acc (i : info) -> Sset.union acc i.roots) Sset.empty arg_infos
  in
  match ret_trace with
  | Some tr -> { taint = true; roots = arg_roots; trace = tr }
  | None -> { taint = false; roots = arg_roots; trace = [] }

(* Look up (or start computing) the summary for [key]. New keys are first
   sought in the cross-check cache; on a miss they are seeded at bottom and
   analyzed eagerly (depth-first, like the seed engine's memoized descent),
   with the worklist only re-running items whose dependencies grow — which
   happens on recursive cycles. The requesting item is recorded as a
   dependent either way; the registry is a set, so re-requests are O(log n)
   instead of a linear membership scan. *)
and request_summary ctx ~dependent key f : fn_effect =
  match Hashtbl.find_opt ctx.summaries key with
  | Some s ->
      s.dependents <- Iset.add dependent s.dependents;
      s.eff
  | None -> (
      let cached =
        match ctx.cache with
        | None -> None
        | Some cache ->
            Summary_cache.find cache ~program:ctx.program ~f ~taints:key.ktaints ~pc:key.kpc
      in
      match cached with
      | Some eff ->
          ctx.cache_hits <- ctx.cache_hits + 1;
          (match ctx.cache with
          | Some c -> Atomic.incr c.Summary_cache.hits
          | None -> ());
          Hashtbl.add ctx.summaries key
            { eff; dependents = Iset.singleton dependent; from_cache = true };
          eff
      | None ->
          if Option.is_some ctx.cache then begin
            ctx.cache_misses <- ctx.cache_misses + 1;
            match ctx.cache with
            | Some c -> Atomic.incr c.Summary_cache.misses
            | None -> ()
          end;
          let s = { eff = bottom_effect; dependents = Iset.singleton dependent; from_cache = false } in
          Hashtbl.add ctx.summaries key s;
          run_fn ctx key;
          s.eff)

(* Analyze one function body under one calling context and join the result
   into its summary; if the summary grew, every dependent is re-queued. *)
and run_fn ctx key =
  let s = Hashtbl.find ctx.summaries key in
  match Program.find ctx.program key.kfn with
  | None -> ()
  | Some f -> (
      match f.Ir.body with
      | Ir.Native | Ir.Unresolved_generic -> ()
      | Ir.Body stmts ->
          let frame =
            {
              fname = f.Ir.fname;
              params = Sset.of_list f.Ir.params;
              item = Fn key;
              fr_ret = false;
              fr_ret_trace = [];
              fr_writes = Wmap.empty;
              fr_rejs = Rmap.empty;
            }
          in
          let env : env = Hashtbl.create 16 in
          List.iter2
            (fun param taint ->
              env_strong env param
                {
                  taint;
                  roots = Sset.empty;
                  trace =
                    (if taint then
                       [ step Source f.Ir.fname ("sensitive data enters through parameter " ^ param) ]
                     else []);
                })
            f.Ir.params key.ktaints;
          let pc =
            if key.kpc then Some [ step Branch f.Ir.fname "called under sensitive control flow" ]
            else None
          in
          exec_stmts ctx frame env ~pc stmts;
          let eff =
            {
              ret = frame.fr_ret;
              ret_trace = frame.fr_ret_trace;
              writes = frame.fr_writes;
              rejs = frame.fr_rejs;
            }
          in
          let joined = effect_join s.eff eff in
          if not (effect_equal joined s.eff) then begin
            s.eff <- joined;
            Iset.iter (enqueue ctx) s.dependents
          end)

and exec_stmts ctx frame env ~pc stmts = List.iter (exec_stmt ctx frame env ~pc) stmts

and raise_pc frame ~pc cond (ci : info) : pc =
  if pc_on pc then pc
  else if ci.taint then
    Some (cap (ci.trace @ [ step Branch frame.fname ("branches on " ^ shorten (Ir.expr_source cond)) ]))
  else None

(* The [Lindex] index expression is a real subexpression of the statement:
   it is evaluated for its effects (embedded calls and their rejections)
   and its taint joins the written value — an index derived from sensitive
   data makes the write position sensitive-dependent. *)
and eval_lhs_index ctx frame env ~pc = function
  | Ir.Lindex (_, idx) -> eval ctx frame env ~pc idx
  | Ir.Lvar _ | Ir.Lfield _ | Ir.Lderef _ | Ir.Lglobal _ -> untainted

and exec_stmt ctx frame env ~pc (stmt : Ir.stmt) =
  match stmt with
  | Ir.Let (v, e) ->
      let i = eval ctx frame env ~pc e in
      let taint = i.taint || pc_on pc in
      let trace =
        if not taint then []
        else
          let src = if i.taint then i.trace else pc_trace pc in
          cap (src @ [ step Flow frame.fname ("let " ^ v ^ " = " ^ shorten (Ir.expr_source e)) ])
      in
      env_strong env v { taint; roots = i.roots; trace }
  | Ir.Assign (lhs, e) ->
      let idx = eval_lhs_index ctx frame env ~pc lhs in
      let i = info_join (eval ctx frame env ~pc e) idx in
      let i = if pc_on pc && not i.taint then { i with taint = true; trace = pc_trace pc } else i in
      assign ctx frame env lhs i
  | Ir.Unsafe_write (lhs, e) ->
      (* A known-target unsafe write: analyzed like an assignment, except
         that touching capture-derived data violates case 2 regardless of
         the written value. *)
      (match Ir.lhs_base lhs with
      | Some v ->
          let roots = Sset.add v (env_roots env v) in
          if not (Sset.is_empty (Sset.inter roots ctx.capture_roots)) then
            reject ctx frame
              ~trace:[ step Sink frame.fname ("unsafe mutation of " ^ Ir.lhs_source lhs) ]
              (Unsafe_mutation { func = frame.fname })
      | None -> ());
      let idx = eval_lhs_index ctx frame env ~pc lhs in
      let i = info_join (eval ctx frame env ~pc e) idx in
      let i = if pc_on pc && not i.taint then { i with taint = true; trace = pc_trace pc } else i in
      assign ctx frame env lhs i
  | Ir.Opaque_unsafe args ->
      (* Unresolvable raw-pointer mutation: conservatively rejected. *)
      reject ctx frame
        ~trace:[ step Sink frame.fname "opaque unsafe mutation (unresolvable pointer target)" ]
        (Unsafe_mutation { func = frame.fname });
      List.iter (fun e -> ignore (eval ctx frame env ~pc e)) args
  | Ir.If (c, then_, else_) ->
      let ci = eval ctx frame env ~pc c in
      let pc' = raise_pc frame ~pc c ci in
      exec_stmts ctx frame env ~pc:pc' then_;
      exec_stmts ctx frame env ~pc:pc' else_
  | Ir.While (c, body) ->
      fixpoint ctx frame env (fun () ->
          let ci = eval ctx frame env ~pc c in
          exec_stmts ctx frame env ~pc:(raise_pc frame ~pc c ci) body)
  | Ir.For (v, e, body) ->
      fixpoint ctx frame env (fun () ->
          let ei = eval ctx frame env ~pc e in
          (* The element is derived from the collection; the trip count
             leaks the collection's shape, so the body runs under a pc
             raised by the collection's taint. *)
          let taint = ei.taint || pc_on pc in
          let trace =
            if not taint then []
            else if ei.taint then
              cap (ei.trace @ [ step Flow frame.fname ("iterates " ^ shorten (Ir.expr_source e) ^ " as " ^ v) ])
            else pc_trace pc
          in
          env_strong env v { taint; roots = ei.roots; trace };
          let pc' = raise_pc frame ~pc e ei in
          exec_stmts ctx frame env ~pc:pc' body)
  | Ir.Return None -> if pc_on pc then set_ret frame (pc_trace pc)
  | Ir.Return (Some e) ->
      let i = eval ctx frame env ~pc e in
      if i.taint then set_ret frame (cap (i.trace @ [ step Return frame.fname "returned to caller" ]))
      else if pc_on pc then
        set_ret frame (cap (pc_trace pc @ [ step Return frame.fname "return under sensitive control flow" ]))
  | Ir.Expr_stmt e -> ignore (eval ctx frame env ~pc e)

and assign ctx frame env lhs (value : info) =
  let value =
    if value.taint then
      { value with trace = cap (value.trace @ [ step Flow frame.fname ("assigned to " ^ Ir.lhs_source lhs) ]) }
    else value
  in
  let capture_hit targets =
    let hit = Sset.inter targets ctx.capture_roots in
    Sset.iter
      (fun var ->
        let sink = step Sink frame.fname ("mutates capture-derived " ^ Ir.lhs_source lhs) in
        let trace = if value.taint then cap (value.trace @ [ sink ]) else [ sink ] in
        reject ctx frame ~trace (Capture_mutation { func = frame.fname; var }))
      hit
  in
  match lhs with
  | Ir.Lvar v -> env_strong env v value
  | Ir.Lfield (v, f) ->
      let targets = Sset.add v (env_roots env v) in
      capture_hit targets;
      (* A tainted store into a projection of a parameter (or of anything
         that may alias one) is caller-visible — at the written path for
         the base itself, at the whole variable for its aliases. *)
      if value.taint then
        Sset.iter
          (fun t ->
            if Sset.mem t frame.params then
              record_write frame t (if t = v then [ f ] else []) ~trace:value.trace)
          targets;
      env_weak env v [ f ] value
  | Ir.Lindex (v, _) ->
      let targets = Sset.add v (env_roots env v) in
      capture_hit targets;
      if value.taint then
        Sset.iter
          (fun t -> if Sset.mem t frame.params then record_write frame t [] ~trace:value.trace)
          targets;
      env_weak env v [] value
  | Ir.Lderef v ->
      (* Write through a reference: affects everything it may point at. *)
      let targets = Sset.add v (env_roots env v) in
      capture_hit targets;
      if value.taint then
        Sset.iter
          (fun target -> env_taint_place frame env (Ir.place_of_var target) ~trace:value.trace)
          targets
  | Ir.Lglobal g ->
      if value.taint then
        reject ctx frame
          ~trace:(cap (value.trace @ [ step Sink frame.fname ("written to global " ^ g) ]))
          (Tainted_global_write { func = frame.fname; global = g })

(* Loop fixpoint: run the body, then join the loop-head state back in (the
   loop may execute zero times, and the join makes the head state grow
   monotonically, which guarantees convergence — taint, root sets, and
   path keys only range over finitely many program variables and fields at
   bounded depth). Re-iterate while the head state grew or this frame
   raised a new rejection; the comparison is structural and trace-blind.
   The iteration bound is a safety net only — monotone growth cannot
   cycle. *)
and fixpoint ctx frame env body =
  ignore ctx;
  let max_iterations = 64 in
  let cell_equal = Pathmap.equal info_equal in
  let rec go n =
    let head = Hashtbl.copy env in
    let rejections_before = Rmap.cardinal frame.fr_rejs in
    body ();
    Hashtbl.iter
      (fun v head_cell ->
        let cur_cell = Option.value (Hashtbl.find_opt env v) ~default:Pathmap.empty in
        let joined = Pathmap.union (fun _ cur hd -> Some (info_join cur hd)) cur_cell head_cell in
        if not (cell_equal joined cur_cell) then Hashtbl.replace env v joined)
      head;
    let grew =
      Hashtbl.length env <> Hashtbl.length head
      || Hashtbl.fold
           (fun v cell acc ->
             acc
             ||
             match Hashtbl.find_opt head v with
             | None -> true
             | Some head_cell -> not (cell_equal cell head_cell))
           env false
    in
    if (grew || Rmap.cardinal frame.fr_rejs <> rejections_before) && n < max_iterations then
      go (n + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)

let run_spec ctx =
  let spec = ctx.spec in
  let frame =
    {
      fname = spec.Spec.name;
      params = Sset.empty;
      item = Spec_body;
      fr_ret = false;
      fr_ret_trace = [];
      fr_writes = Wmap.empty;
      fr_rejs = Rmap.empty;
    }
  in
  let env : env = Hashtbl.create 16 in
  List.iter
    (fun p ->
      env_strong env p
        {
          taint = true;
          roots = Sset.empty;
          trace = [ step Source spec.Spec.name ("sensitive region argument " ^ p) ];
        })
    spec.Spec.params;
  List.iter (fun (c : Ir.capture) -> env_strong env c.cap_var untainted) spec.Spec.captures;
  exec_stmts ctx frame env ~pc:None spec.Spec.body

(* Drain the worklist: re-run every item one of whose dependency summaries
   grew since it last ran. Monotone effects over finite lattices make this
   terminate; when the queue is empty every summary is a fixpoint. *)
let solve ctx =
  run_spec ctx;
  let rec drain () =
    match Queue.take_opt ctx.queue with
    | None -> ()
    | Some item ->
        Hashtbl.remove ctx.queued item;
        (match item with Spec_body -> run_spec ctx | Fn key -> run_fn ctx key);
        drain ()
  in
  drain ()

let check ?(allowlist = Allowlist.default) ?cache program (spec : Spec.t) =
  let started = Sesame_clock.now_ns () in
  let graph = Callgraph.collect program ~allowlist spec in
  let collection_rejections =
    List.map
      (function
        | Callgraph.Unresolvable_dispatch { caller; method_name } ->
            {
              reason = Unresolvable_dispatch { func = caller; method_name };
              trace = [ step Sink caller ("cannot resolve dynamic dispatch of " ^ method_name) ];
            }
        | Callgraph.Fn_pointer_call { caller } ->
            {
              reason = Fn_pointer_call { func = caller };
              trace = [ step Sink caller "call through an unresolved function pointer" ];
            })
      (Callgraph.failures graph)
  in
  let capture_rejections =
    List.map
      (fun var ->
        {
          reason = Mutable_capture { var };
          trace = [ step Sink spec.Spec.name ("captures " ^ var ^ " by mutable reference") ];
        })
      (Spec.by_mut_ref_captures spec)
  in
  let capture_roots = Sset.of_list (Spec.by_ref_captures spec) in
  let ctx =
    {
      program;
      allowlist;
      spec;
      capture_roots;
      publishing = false;
      rejections = [];
      rejection_seen = Hashtbl.create 16;
      summaries = Hashtbl.create 64;
      queue = Queue.create ();
      queued = Hashtbl.create 16;
      cache;
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  solve ctx;
  (* The witness pass: with every summary at its fixpoint, one final
     program-order walk of the spec body publishes the verdict's
     rejections with fully spliced traces. Publication is deferred to
     this pass so rejection order and traces depend only on the program
     text and the (deterministic) fixpoint effects — not on worklist
     scheduling, and not on whether summaries were computed here or
     loaded from the cross-check cache. *)
  ctx.publishing <- true;
  run_spec ctx;
  (* Publish every freshly computed fixpoint for reuse by later checks. *)
  (match cache with
  | None -> ()
  | Some c ->
      Hashtbl.iter
        (fun key s ->
          if not s.from_cache then
            match Program.find program key.kfn with
            | Some f -> Summary_cache.store c ~program ~f ~taints:key.ktaints ~pc:key.kpc s.eff
            | None -> ())
        ctx.summaries);
  let rejections = capture_rejections @ collection_rejections @ List.rev ctx.rejections in
  (* Dedup by reason preserving first-occurrence order (and so each
     reason's first witness trace), linear in the number of rejections. *)
  let rejections =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun r ->
        if Hashtbl.mem seen r.reason then false
        else begin
          Hashtbl.add seen r.reason ();
          true
        end)
      rejections
  in
  let stats =
    {
      functions_analyzed = Callgraph.functions_analyzed graph;
      duration_s = Sesame_clock.elapsed_s ~since:started;
      summary_cache_hits = ctx.cache_hits;
      summary_cache_misses = ctx.cache_misses;
    }
  in
  { accepted = rejections = []; rejections; stats }

(* ------------------------------------------------------------------ *)
(* Place-exposure probes.

   [check] answers "can the region leak its arguments at all?". The
   elision pass asks a finer question: "can this one *place* — parameter
   [p] at access path [path] — reach the region's output or any sink?".
   A probe re-runs the same fixpoint with a custom seeding: every
   parameter starts untainted and only the probed place carries taint.
   The place escapes iff the final deterministic walk taints the return
   value or publishes any rejection. Everything else — summaries, the
   worklist, the witness pass, the cross-check cache — is shared with
   [check], so probe results replay byte-identically from cached
   summaries. *)

type exposure = {
  exp_param : string;
  exp_path : string list;
  exp_released : bool;
  exp_trace : step list;  (** witness when released; empty otherwise *)
}

let render_path path = String.concat "" (List.map (fun f -> "." ^ f) path)

let param_exposures ?(allowlist = Allowlist.default) ?cache program (spec : Spec.t) ~places =
  let graph = Callgraph.collect program ~allowlist spec in
  let structural_block =
    (* A region the whole-region analysis cannot even walk (unresolvable
       dispatch, function-pointer calls, mutable captures) proves nothing
       about any place: report every probe released, conservatively. *)
    match (Callgraph.failures graph, Spec.by_mut_ref_captures spec) with
    | [], [] -> None
    | _ :: _, _ ->
        Some [ step Sink spec.Spec.name "call graph incomplete: place exposure unprovable" ]
    | _, var :: _ ->
        Some
          [
            step Sink spec.Spec.name
              ("captures " ^ var ^ " by mutable reference: place exposure unprovable");
          ]
  in
  let probe (param, path) =
    match structural_block with
    | Some trace -> { exp_param = param; exp_path = path; exp_released = true; exp_trace = trace }
    | None ->
        let ctx =
          {
            program;
            allowlist;
            spec;
            capture_roots = Sset.of_list (Spec.by_ref_captures spec);
            publishing = false;
            rejections = [];
            rejection_seen = Hashtbl.create 16;
            summaries = Hashtbl.create 64;
            queue = Queue.create ();
            queued = Hashtbl.create 16;
            cache;
            cache_hits = 0;
            cache_misses = 0;
          }
        in
        let run_seeded () =
          let frame =
            {
              fname = spec.Spec.name;
              params = Sset.empty;
              item = Spec_body;
              fr_ret = false;
              fr_ret_trace = [];
              fr_writes = Wmap.empty;
              fr_rejs = Rmap.empty;
            }
          in
          let env : env = Hashtbl.create 16 in
          List.iter (fun p -> env_strong env p untainted) spec.Spec.params;
          let seed =
            {
              taint = true;
              roots = Sset.empty;
              trace =
                [
                  step Source spec.Spec.name
                    (Printf.sprintf "probed place %s%s of sensitive region argument" param
                       (render_path path));
                ];
            }
          in
          if path = [] then env_strong env param seed else env_weak env param path seed;
          List.iter
            (fun (c : Ir.capture) -> env_strong env c.cap_var untainted)
            spec.Spec.captures;
          exec_stmts ctx frame env ~pc:None spec.Spec.body;
          frame
        in
        ignore (run_seeded ());
        let rec drain () =
          match Queue.take_opt ctx.queue with
          | None -> ()
          | Some item ->
              Hashtbl.remove ctx.queued item;
              (match item with Spec_body -> ignore (run_seeded ()) | Fn key -> run_fn ctx key);
              drain ()
        in
        drain ();
        (* Deterministic witness pass, as in [check]. *)
        ctx.publishing <- true;
        let frame = run_seeded () in
        (match cache with
        | None -> ()
        | Some c ->
            Hashtbl.iter
              (fun key s ->
                if not s.from_cache then
                  match Program.find program key.kfn with
                  | Some f ->
                      Summary_cache.store c ~program ~f ~taints:key.ktaints ~pc:key.kpc s.eff
                  | None -> ())
              ctx.summaries);
        let rejections = List.rev ctx.rejections in
        if frame.fr_ret then
          {
            exp_param = param;
            exp_path = path;
            exp_released = true;
            exp_trace = frame.fr_ret_trace;
          }
        else if rejections <> [] then
          {
            exp_param = param;
            exp_path = path;
            exp_released = true;
            exp_trace = (List.hd rejections).trace;
          }
        else { exp_param = param; exp_path = path; exp_released = false; exp_trace = [] }
  in
  List.map (fun (param, path) -> probe (param, truncate_path path)) places

let pp_verdict fmt v =
  if v.accepted then
    Format.fprintf fmt "ACCEPTED (%d functions, %.3fs)" v.stats.functions_analyzed
      v.stats.duration_s
  else
    Format.fprintf fmt "@[<v 2>REJECTED (%d functions, %.3fs):@,%a@]"
      v.stats.functions_analyzed v.stats.duration_s
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt r ->
           Format.fprintf fmt "@[<v 2>%a@,%a@]" pp_reason r.reason pp_trace r.trace))
      v.rejections
