type t = {
  functions : (string, Ir.func) Hashtbl.t;
  impls : (string, string list ref) Hashtbl.t;  (* method -> impl names *)
  (* Content fingerprint, memoized between mutations. Summary caching keys
     on it so that analysis results are never reused against a program
     that resolves names differently. *)
  mutable fingerprint : Sesame_signing.Sha256.t option;
}

let create () =
  { functions = Hashtbl.create 64; impls = Hashtbl.create 16; fingerprint = None }

let define t (f : Ir.func) =
  if Hashtbl.mem t.functions f.fname then
    invalid_arg (Printf.sprintf "function %s is already defined" f.fname);
  t.fingerprint <- None;
  Hashtbl.add t.functions f.fname f

let define_all t fs = List.iter (define t) fs
let find t name = Hashtbl.find_opt t.functions name

let functions t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.functions []
  |> List.sort (fun (a : Ir.func) b -> String.compare a.fname b.fname)

let size t = Hashtbl.length t.functions

let register_impl t ~method_name ~impl =
  match Hashtbl.find_opt t.impls method_name with
  | Some cell ->
      if not (List.mem impl !cell) then begin
        t.fingerprint <- None;
        cell := impl :: !cell
      end
  | None ->
      t.fingerprint <- None;
      Hashtbl.add t.impls method_name (ref [ impl ])

let impls t method_name =
  match Hashtbl.find_opt t.impls method_name with
  | Some cell -> List.rev !cell
  | None -> []

let resolve_dynamic t ~method_name ~receiver_hint =
  match receiver_hint with
  | Some ty ->
      let qualified = ty ^ "::" ^ method_name in
      if Hashtbl.mem t.functions qualified then Some [ qualified ] else None
  | None -> (
      match impls t method_name with
      | [] -> None
      | candidates -> Some candidates)

let fingerprint t =
  match t.fingerprint with
  | Some d -> d
  | None ->
      let function_parts =
        List.concat_map (fun (f : Ir.func) -> [ f.Ir.fname; Ir.func_source f ]) (functions t)
      in
      let impl_parts =
        Hashtbl.fold (fun m cell acc -> (m, List.sort compare !cell) :: acc) t.impls []
        |> List.sort compare
        |> List.concat_map (fun (m, is) -> m :: is)
      in
      let d =
        Sesame_signing.Sha256.digest_list
          (("sesame-program-v1" :: function_parts) @ impl_parts)
      in
      t.fingerprint <- Some d;
      d
