(** The analyzed program: a registry of function bodies plus a trait-impl
    registry used to resolve dynamic dispatch.

    Mirrors the MIR collection of Appendix A: "Scrutinizer first collects
    Rust's MIR representation of all available function bodies ...
    including all possible variants for dynamic dispatch." *)

type t

val create : unit -> t

val define : t -> Ir.func -> unit
(** Raises [Invalid_argument] on a duplicate function name. *)

val define_all : t -> Ir.func list -> unit
val find : t -> string -> Ir.func option
val functions : t -> Ir.func list
(** Sorted by name. *)

val size : t -> int

val register_impl : t -> method_name:string -> impl:string -> unit
(** Declares that the function named [impl] is one implementation of the
    trait method [method_name]. *)

val impls : t -> string -> string list
(** All registered implementations of a method (empty when unknown —
    an unresolvable dispatch). *)

val resolve_dynamic :
  t -> method_name:string -> receiver_hint:string option -> string list option
(** The candidate set for a dynamic call: with a receiver hint ["Type"],
    the single impl named ["Type::method"] if registered; otherwise every
    registered impl. [None] when the set cannot be constructed. *)

val fingerprint : t -> Sesame_signing.Sha256.t
(** Digest of every function source plus the impl registry, memoized until
    the next {!define} or {!register_impl}. Two programs with equal
    fingerprints resolve every call identically, which is what makes
    cross-program reuse of analysis summaries sound. *)
