(** Per-request serving annotations (domain-local).

    A layer below the handler can mark the in-flight response as served
    in a degraded mode (e.g. brownout snapshot reads while the durable
    store is poisoned); the server clears the mark before each request
    and, when set, stamps {!header_name} on the response so clients can
    tell a fresh answer from a last-known-good one. *)

val reset : unit -> unit
(** Clear the mark. Called by the server before invoking the handler. *)

val mark_degraded : string -> unit
(** Mark the in-flight request as degraded, with a short reason token
    (e.g. ["snapshot"]). Later marks overwrite earlier ones. *)

val degraded_reason : unit -> string option

val header_name : string
(** ["X-Sesame-Degraded"]. *)
