(** Cookies: parsing of [Cookie:] request headers and rendering of
    [Set-Cookie:] response headers. *)

type attributes = {
  path : string option;
  max_age : int option;
  http_only : bool;
  secure : bool;
}

val default_attributes : attributes
(** [http_only = true], [secure = true], no path or max-age — the safe
    default for session cookies. *)

val parse_header : string -> (string * string) list
(** Parses a [Cookie:] header value ("a=1; b=2") into pairs. Malformed
    fragments are skipped. *)

val render_set_cookie : ?attributes:attributes -> name:string -> string -> string
(** Renders a [Set-Cookie:] header value. Raises [Invalid_argument] when
    the name, value, or path attribute contains control characters or a
    character ([';'], and for names also ['='], [','], or space) that
    would let a value derived from user input forge additional cookie
    attributes or split the header on the wire. *)

val valid_cookie_name : string -> bool
val valid_cookie_value : string -> bool

val expire : name:string -> string
(** A [Set-Cookie:] value that deletes the cookie (Max-Age=0). *)
