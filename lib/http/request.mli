(** HTTP requests.

    Requests are plain values: handlers are driven either in-process (the
    figure benchmarks) or from real sockets via {!Wire} and
    [Sesame_server] (see DESIGN.md "Serving"). *)

type t = {
  meth : Meth.t;
  path : string;
      (** path only, no query string; kept as received (still
          percent-encoded). Decoding happens once, per segment, during
          route matching — see {!Route.matches} — so an encoded ['/']
          ([%2F]) inside a segment binds into a parameter value instead
          of splitting the path. *)
  query : (string * string) list;  (** decoded query parameters *)
  headers : Headers.t;
  body : string;
  path_params : (string * string) list;  (** filled in by the router *)
}

val make :
  ?query:(string * string) list ->
  ?headers:Headers.t ->
  ?body:string ->
  Meth.t ->
  string ->
  t
(** [make meth target] builds a request. If [target] contains a [?], its
    query string is percent-decoded and merged with [query]. *)

val query_param : t -> string -> string option
val path_param : t -> string -> string option
val path_param_exn : t -> string -> string
val header : t -> string -> string option
val cookie : t -> string -> string option
val cookies : t -> (string * string) list

val form_params : t -> (string * string) list
(** Decodes an [application/x-www-form-urlencoded] body; empty list for
    other content types. *)

val form_param : t -> string -> string option

val with_path_params : t -> (string * string) list -> t

val percent_decode : string -> string
(** Decodes [%XX] escapes and [+] as space (the form-encoding rule, for
    query strings and urlencoded bodies); malformed escapes pass through
    verbatim. *)

val percent_decode_path : string -> string
(** Decodes [%XX] escapes only — ['+'] stays a literal plus, which is
    the correct rule for path segments. Malformed or truncated escapes
    pass through verbatim. *)

val percent_encode : string -> string
(** Encodes everything except unreserved characters. *)

val pp : Format.formatter -> t -> unit
