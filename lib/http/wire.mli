(** HTTP/1.1 wire protocol: request parsing and response serialization.

    Pure over a pull {!source}, so Sesame_server drives it from sockets
    and the test suite drives it from strings split at arbitrary read
    boundaries. Framing is Content-Length only; [Transfer-Encoding] is
    rejected rather than ignored (ignoring it would desync the
    connection). *)

type source

val source_of_fun : (unit -> string) -> source
(** [source_of_fun next] pulls chunks from [next]; [next () = ""] means
    EOF. Exceptions from [next] (e.g. a socket read timeout) propagate
    out of the parser. *)

val source_of_string : string -> source

val source_of_strings : string list -> source
(** One chunk per call, in order — each list element is one "read()"
    result, for split-read torture tests. *)

type limits = {
  max_request_line : int;
  max_header_bytes : int;  (** cumulative bytes across all header lines *)
  max_headers : int;
  max_body : int;
}

val default_limits : limits
(** 8 KiB request line, 32 KiB / 128 headers, 1 MiB body. *)

type error =
  | Malformed of string  (** maps to 400 *)
  | Request_line_too_long  (** maps to 431 *)
  | Headers_too_large  (** maps to 431 *)
  | Body_too_large  (** maps to 413 *)

val error_message : error -> string
val error_status : error -> Status.t

type version = Http_1_0 | Http_1_1

type incoming = {
  request : Request.t;
  version : version;
  keep_alive : bool;
      (** what the peer asked for: HTTP/1.1 defaults to persistent unless
          [Connection: close]; HTTP/1.0 defaults to close unless
          [Connection: keep-alive]. *)
}

val read_request :
  ?limits:limits -> source -> [ `Request of incoming | `Eof | `Error of error ]
(** Reads one request (request line, headers, Content-Length body).
    [`Eof] means the peer closed cleanly before sending any byte of a
    new request — the normal end of a keep-alive connection. EOF
    mid-request is [`Error (Malformed _)]. HTTP/1.1 requests must carry
    a [Host] header. *)

val write_response : ?head_only:bool -> keep_alive:bool -> Response.t -> string
(** Serializes with [HTTP/1.1] status line, the response's headers
    (already CR/LF-safe by {!Headers} construction), an authoritative
    [Content-Length], and a [Connection] header. [head_only] omits the
    body bytes (HEAD) while keeping Content-Length. *)

val write_request :
  ?headers:Headers.t -> ?body:string -> host:string -> Meth.t -> string -> string
(** Client-side request serializer (load generator, tests). *)

val read_response :
  source -> [ `Response of int * Headers.t * string | `Eof | `Error of error ]
(** Client-side response reader: status code, headers, Content-Length
    framed body. *)
