(** HTTP responses. *)

type t = { status : Status.t; headers : Headers.t; body : string }

val make : ?headers:Headers.t -> ?body:string -> Status.t -> t
val text : ?status:Status.t -> string -> t
val html : ?status:Status.t -> string -> t
val redirect : string -> t
(** 303 See Other with a Location header. *)

val error : Status.t -> string -> t
(** Plain-text error body. *)

val with_cookie :
  ?attributes:Cookie.attributes -> t -> name:string -> value:string -> t
(** Appends a Set-Cookie header. *)

val header : t -> string -> string option

val add_header : t -> string -> string -> t
(** [add_header t name value] appends one header (duplicates allowed,
    as for [Set-Cookie]). *)

val pp : Format.formatter -> t -> unit
