(** HTTP response statuses. *)

type t =
  | Ok
  | Created
  | No_content
  | See_other
  | Bad_request
  | Unauthorized
  | Forbidden
  | Not_found
  | Method_not_allowed
  | Request_timeout
  | Payload_too_large
  | Unprocessable
  | Headers_too_large
  | Internal_error
  | Service_unavailable
  | Code of int

val to_int : t -> int
val of_int : int -> t
val reason : t -> string
val is_success : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
