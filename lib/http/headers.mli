(** HTTP header collections. Names are case-insensitive; insertion order is
    preserved for rendering.

    Construction validates both parts so a header set is serializable
    onto a socket by construction: names must be RFC 7230 tokens and
    values must be free of CR, LF, NUL and other control characters
    (horizontal tab excepted). [add], [replace] and [of_list] raise
    [Invalid_argument] otherwise — a [Location] or [Set-Cookie] value
    derived from user input cannot smuggle a header split past the
    serializer. *)

type t

val empty : t
val of_list : (string * string) list -> t
val to_list : t -> (string * string) list
(** Names are returned in their original spelling. *)

val add : t -> string -> string -> t
(** Appends in O(1); multiple values for one name are allowed (e.g.
    Set-Cookie). Raises [Invalid_argument] on a non-token name or a
    value containing control characters. *)

val replace : t -> string -> string -> t
(** Removes existing values for the name, then adds. *)

val valid_name : string -> bool
(** True iff the string is a non-empty RFC 7230 token. *)

val valid_value : string -> bool
(** True iff the string contains no CR/LF/NUL or other control
    characters (tab allowed). *)

val get : t -> string -> string option
(** First value, case-insensitive lookup. *)

val get_all : t -> string -> string list
val remove : t -> string -> t
val mem : t -> string -> bool
val length : t -> int
val pp : Format.formatter -> t -> unit
