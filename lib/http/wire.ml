(* HTTP/1.1 on the wire: an incremental request parser and a response
   serializer, pure over a pull [source] so the same code path is driven
   by sockets in Sesame_server and by split-read torture tests without
   any I/O. The request/response client half (write_request,
   read_response) exists for the load generator and the test suite. *)

type source = {
  next : unit -> string;  (* "" means EOF; may return any chunk size *)
  mutable pending : string;
  mutable pos : int;
}

let source_of_fun next = { next; pending = ""; pos = 0 }

let source_of_strings chunks =
  let rest = ref chunks in
  source_of_fun (fun () ->
      match !rest with
      | [] -> ""
      | c :: tl ->
          rest := tl;
          c)

let source_of_string s = source_of_strings [ s ]

(* Refill [pending]; false at EOF. Raises whatever [next] raises (e.g.
   [Unix_error] on a socket read timeout) — the server maps that to a
   connection close. *)
let refill src =
  if src.pos < String.length src.pending then true
  else begin
    let chunk = src.next () in
    src.pending <- chunk;
    src.pos <- 0;
    chunk <> ""
  end

let peek_available src = String.length src.pending - src.pos

type limits = {
  max_request_line : int;
  max_header_bytes : int;  (* cumulative bytes across all header lines *)
  max_headers : int;
  max_body : int;
}

let default_limits =
  { max_request_line = 8192; max_header_bytes = 32768; max_headers = 128; max_body = 1 lsl 20 }

type error =
  | Malformed of string  (** 400: unparseable request line / headers / framing *)
  | Request_line_too_long  (** 431 *)
  | Headers_too_large  (** 431 *)
  | Body_too_large  (** 413 *)

let error_message = function
  | Malformed msg -> msg
  | Request_line_too_long -> "request line too long"
  | Headers_too_large -> "header section too large"
  | Body_too_large -> "body too large"

let error_status = function
  | Malformed _ -> Status.Bad_request
  | Request_line_too_long | Headers_too_large -> Status.Headers_too_large
  | Body_too_large -> Status.Payload_too_large

type version = Http_1_0 | Http_1_1

type incoming = { request : Request.t; version : version; keep_alive : bool }

exception Parse of error
exception Clean_eof  (* EOF with no bytes consumed: peer closed between requests *)

(* Reads up to and including LF, tolerating both CRLF and bare LF line
   endings; returns the line without the terminator. [limit_error] is
   raised when the line exceeds [max] bytes — different callers map that
   to 431 (request line) or 431 (headers) with distinct error values. *)
let read_line src ~max ~limit_error ~first =
  let buf = Buffer.create 128 in
  let rec go () =
    if not (refill src) then
      if first && Buffer.length buf = 0 then raise Clean_eof
      else raise (Parse (Malformed "unexpected end of stream"))
    else begin
      let chunk = src.pending in
      let n = String.length chunk in
      match String.index_from_opt chunk src.pos '\n' with
      | Some i ->
          Buffer.add_substring buf chunk src.pos (i - src.pos);
          src.pos <- i + 1;
          if Buffer.length buf > max then raise (Parse limit_error);
          let line = Buffer.contents buf in
          let len = String.length line in
          if len > 0 && line.[len - 1] = '\r' then String.sub line 0 (len - 1) else line
      | None ->
          Buffer.add_substring buf chunk src.pos (n - src.pos);
          src.pos <- n;
          if Buffer.length buf > max then raise (Parse limit_error);
          go ()
    end
  in
  go ()

let read_exact src n =
  let buf = Buffer.create n in
  let rec go remaining =
    if remaining = 0 then Buffer.contents buf
    else if not (refill src) then raise (Parse (Malformed "unexpected end of stream"))
    else begin
      let take = min remaining (peek_available src) in
      Buffer.add_substring buf src.pending src.pos take;
      src.pos <- src.pos + take;
      go (remaining - take)
    end
  in
  go n

let split_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] when meth <> "" && target <> "" -> Some (meth, target, version)
  | _ -> None

let parse_version = function
  | "HTTP/1.1" -> Some Http_1_1
  | "HTTP/1.0" -> Some Http_1_0
  | _ -> None

let rec read_headers src ~limits ~count ~bytes acc =
  let line =
    read_line src ~max:limits.max_header_bytes ~limit_error:Headers_too_large ~first:false
  in
  if line = "" then acc
  else begin
    let bytes = bytes + String.length line in
    if bytes > limits.max_header_bytes then raise (Parse Headers_too_large);
    if count + 1 > limits.max_headers then raise (Parse Headers_too_large);
    if line.[0] = ' ' || line.[0] = '\t' then
      (* obs-fold continuation lines are obsolete (RFC 7230 §3.2.4) and a
         smuggling vector; reject instead of guessing. *)
      raise (Parse (Malformed "obsolete header folding"));
    match String.index_opt line ':' with
    | None -> raise (Parse (Malformed "header line without ':'"))
    | Some i ->
        let name = String.sub line 0 i in
        let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        let acc =
          try Headers.add acc name value
          with Invalid_argument _ -> raise (Parse (Malformed "invalid header field"))
        in
        read_headers src ~limits ~count:(count + 1) ~bytes acc
  end

let token_list value =
  String.split_on_char ',' value
  |> List.map (fun s -> String.lowercase_ascii (String.trim s))

let connection_has headers token =
  List.exists
    (fun v -> List.mem token (token_list v))
    (Headers.get_all headers "Connection")

let content_length headers =
  match Headers.get headers "Content-Length" with
  | None -> Ok 0
  | Some v -> (
      (* All Content-Length values must agree; a smuggled second value is
         how request-smuggling desyncs front- and back-ends. *)
      let all = Headers.get_all headers "Content-Length" in
      if List.exists (fun x -> x <> v) all then Error (Malformed "conflicting Content-Length")
      else
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 -> Ok n
        | Some _ | None -> Error (Malformed "invalid Content-Length"))

let read_request ?(limits = default_limits) src =
  match
    let line =
      read_line src ~max:limits.max_request_line ~limit_error:Request_line_too_long
        ~first:true
    in
    (* A peer is allowed a stray blank line before the request line. *)
    let line =
      if line = "" then
        read_line src ~max:limits.max_request_line ~limit_error:Request_line_too_long
          ~first:false
      else line
    in
    let meth, target, version_str =
      match split_request_line line with
      | Some parts -> parts
      | None -> raise (Parse (Malformed "malformed request line"))
    in
    let meth =
      match Meth.of_string meth with
      | Some m -> m
      | None -> raise (Parse (Malformed "unknown method"))
    in
    let version =
      match parse_version version_str with
      | Some v -> v
      | None -> raise (Parse (Malformed "unsupported HTTP version"))
    in
    if String.length target = 0 || target.[0] <> '/' then
      raise (Parse (Malformed "target must be origin-form"));
    let headers = read_headers src ~limits ~count:0 ~bytes:0 Headers.empty in
    if version = Http_1_1 && not (Headers.mem headers "Host") then
      raise (Parse (Malformed "missing Host header"));
    if Headers.mem headers "Transfer-Encoding" then
      (* Content-Length framing only; a Transfer-Encoding we silently
         ignored would desync the connection. *)
      raise (Parse (Malformed "Transfer-Encoding not supported"));
    let body_len =
      match content_length headers with Ok n -> n | Error e -> raise (Parse e)
    in
    if body_len > limits.max_body then raise (Parse Body_too_large);
    let body = if body_len = 0 then "" else read_exact src body_len in
    let keep_alive =
      match version with
      | Http_1_1 -> not (connection_has headers "close")
      | Http_1_0 -> connection_has headers "keep-alive"
    in
    { request = Request.make ~headers ~body meth target; version; keep_alive }
  with
  | incoming -> `Request incoming
  | exception Clean_eof -> `Eof
  | exception Parse e -> `Error e

(* ------------------------------------------------------------------ *)
(* Serialization. *)

let no_body_status status =
  match Status.to_int status with 204 | 304 -> true | c -> 100 <= c && c < 200

let write_response ?(head_only = false) ~keep_alive (response : Response.t) =
  let buf = Buffer.create 256 in
  let status = response.Response.status in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" (Status.to_int status) (Status.reason status));
  let headers =
    List.fold_left Headers.remove response.Response.headers
      [ "Content-Length"; "Connection"; "Transfer-Encoding" ]
  in
  List.iter
    (fun (name, value) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" name value))
    (Headers.to_list headers);
  let body = response.Response.body in
  if not (no_body_status status) then
    Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string buf
    (if keep_alive then "Connection: keep-alive\r\n" else "Connection: close\r\n");
  Buffer.add_string buf "\r\n";
  if (not head_only) && not (no_body_status status) then Buffer.add_string buf body;
  Buffer.contents buf

let write_request ?(headers = Headers.empty) ?(body = "") ~host meth target =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" (Meth.to_string meth) target);
  Buffer.add_string buf (Printf.sprintf "Host: %s\r\n" host);
  List.iter
    (fun (name, value) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" name value))
    (Headers.to_list headers);
  if body <> "" || meth = Meth.POST || meth = Meth.PUT || meth = Meth.PATCH then
    Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  Buffer.contents buf

(* Client-side response reader, for the load generator and tests.
   Responses are Content-Length framed (which is all [write_response]
   emits); a missing Content-Length on a body-bearing status is an
   error rather than a read-to-close. *)
let read_response src =
  match
    let line =
      read_line src ~max:default_limits.max_request_line ~limit_error:Request_line_too_long
        ~first:true
    in
    let status =
      match String.split_on_char ' ' line with
      | version :: code :: _
        when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
          match int_of_string_opt code with
          | Some c when 100 <= c && c <= 599 -> c
          | Some _ | None -> raise (Parse (Malformed "bad status code")))
      | _ -> raise (Parse (Malformed "malformed status line"))
    in
    let headers =
      read_headers src ~limits:default_limits ~count:0 ~bytes:0 Headers.empty
    in
    let body =
      if no_body_status (Status.of_int status) then ""
      else
        match content_length headers with
        | Ok n -> if n = 0 then "" else read_exact src n
        | Error e -> raise (Parse e)
    in
    (status, headers, body)
  with
  | response -> `Response response
  | exception Clean_eof -> `Eof
  | exception Parse e -> `Error e
