type handler = Request.t -> Response.t
type middleware = handler -> handler

type entry = { meth : Meth.t; route : Route.t; handler : handler; order : int }

type t = {
  (* Kept sorted by (specificity desc, registration order asc) at
     registration time, so dispatch is a single scan: the first entry
     whose route and method both match is the winner. *)
  mutable entries : entry list;
  mutable middlewares : middleware list;  (* innermost first *)
  mutable next_order : int;
  mutable on_error : string -> unit;
}

let default_error_logger msg = prerr_endline ("[router] " ^ msg)

let create () =
  { entries = []; middlewares = []; next_order = 0; on_error = default_error_logger }

let on_error t log = t.on_error <- log

let entry_precedes a b =
  match compare (Route.specificity b.route) (Route.specificity a.route) with
  | 0 -> a.order <= b.order
  | c -> c < 0

let add t meth pattern handler =
  let route = Route.parse_exn pattern in
  let duplicate =
    List.exists
      (fun e -> Meth.equal e.meth meth && Route.pattern e.route = pattern)
      t.entries
  in
  if duplicate then
    invalid_arg (Printf.sprintf "duplicate route %s %s" (Meth.to_string meth) pattern);
  let entry = { meth; route; handler; order = t.next_order } in
  t.next_order <- t.next_order + 1;
  let rec insert = function
    | [] -> [ entry ]
    | e :: rest -> if entry_precedes entry e then entry :: e :: rest else e :: insert rest
  in
  t.entries <- insert t.entries

let get t pattern handler = add t Meth.GET pattern handler
let post t pattern handler = add t Meth.POST pattern handler
let delete t pattern handler = add t Meth.DELETE pattern handler

let use t middleware = t.middlewares <- middleware :: t.middlewares

let apply_middleware t handler =
  (* middlewares is newest-first; fold so the newest wraps outermost. *)
  List.fold_right (fun mw acc -> mw acc) (List.rev t.middlewares) handler

let run t entry bindings request =
  let request = Request.with_path_params request bindings in
  let handler = apply_middleware t entry.handler in
  try handler request
  with exn ->
    (* The body must not echo exception internals to the client (they
       routinely carry row contents, file paths, or policy state); the
       detail goes to the server-side log instead. *)
    t.on_error
      (Printf.sprintf "%s %s: handler raised %s"
         (Meth.to_string request.Request.meth)
         request.Request.path (Printexc.to_string exn));
    Response.error Status.Internal_error "internal error"

let dispatch t request =
  let path = request.Request.path in
  (* Single scan over the pre-sorted entries: the first (method, path)
     match has the highest specificity among matching routes, ties
     already broken by registration order. *)
  let rec scan entries ~path_matched =
    match entries with
    | [] ->
        if path_matched then Response.error Status.Method_not_allowed "method not allowed"
        else Response.error Status.Not_found "not found"
    | e :: rest -> (
        match Route.matches e.route path with
        | None -> scan rest ~path_matched
        | Some bindings ->
            if Meth.equal e.meth request.Request.meth then run t e bindings request
            else scan rest ~path_matched:true)
  in
  scan t.entries ~path_matched:false

let routes t =
  List.sort (fun (_, _, a) (_, _, b) -> compare a b)
    (List.map (fun e -> (e.meth, Route.pattern e.route, e.order)) t.entries)
  |> List.map (fun (m, p, _) -> (m, p))
