(* Per-request serving annotations, carried in domain-local storage.

   The connection worker clears the slot before invoking the handler;
   any layer underneath (today: the connector's brownout read path) can
   mark the in-flight response as degraded, and the server surfaces the
   mark as an [X-Sesame-Degraded] header. DLS is safe here because a
   worker domain serves one request at a time. *)

let degraded : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let reset () = Domain.DLS.set degraded None
let mark_degraded reason = Domain.DLS.set degraded (Some reason)
let degraded_reason () = Domain.DLS.get degraded

let header_name = "X-Sesame-Degraded"
