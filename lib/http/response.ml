type t = { status : Status.t; headers : Headers.t; body : string }

let make ?(headers = Headers.empty) ?(body = "") status = { status; headers; body }

let with_content_type body ct status =
  { status; headers = Headers.of_list [ ("Content-Type", ct) ]; body }

let text ?(status = Status.Ok) body = with_content_type body "text/plain; charset=utf-8" status
let html ?(status = Status.Ok) body = with_content_type body "text/html; charset=utf-8" status

let redirect location =
  { status = Status.See_other;
    headers = Headers.of_list [ ("Location", location) ];
    body = "" }

let error status message = text ~status message

let with_cookie ?attributes t ~name ~value =
  let header = Cookie.render_set_cookie ?attributes ~name value in
  { t with headers = Headers.add t.headers "Set-Cookie" header }

let header t name = Headers.get t.headers name
let add_header t name value = { t with headers = Headers.add t.headers name value }

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@,%a%s@]" Status.pp t.status Headers.pp t.headers t.body
