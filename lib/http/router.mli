(** Request routing with middleware, dispatched in-process. *)

type handler = Request.t -> Response.t
type middleware = handler -> handler

type t

val create : unit -> t

val add : t -> Meth.t -> string -> handler -> unit
(** [add t meth pattern handler] registers a route; raises
    [Invalid_argument] on a malformed pattern or an exact duplicate
    (same method and pattern). *)

val get : t -> string -> handler -> unit
val post : t -> string -> handler -> unit
val delete : t -> string -> handler -> unit

val use : t -> middleware -> unit
(** Middleware wraps every handler; the earliest added runs outermost
    (first registered sees the request first). *)

val dispatch : t -> Request.t -> Response.t
(** Picks the most specific matching route (ties broken by registration
    order) in a single scan over entries pre-sorted at registration; 404
    when no pattern matches the path, 405 when patterns match but not
    the method. Handler exceptions become 500s whose body is the fixed
    string ["internal error"] — the exception text is passed to the
    {!on_error} logger, never to the client. *)

val on_error : t -> (string -> unit) -> unit
(** Replaces the server-side log sink for handler exceptions (default:
    stderr). The message carries the method, path, and exception text. *)

val routes : t -> (Meth.t * string) list
(** Registered routes, for diagnostics. *)
