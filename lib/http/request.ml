type t = {
  meth : Meth.t;
  path : string;
  query : (string * string) list;
  headers : Headers.t;
  body : string;
  path_params : (string * string) list;
}

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* [plus_as_space] is the form-encoding rule only: '+' means space in
   query strings and urlencoded bodies, but in a path segment '+' is a
   literal plus — decoding it there corrupts values like "c++". *)
let decode ~plus_as_space s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | '+' when plus_as_space ->
          Buffer.add_char buf ' ';
          go (i + 1)
      | '%' when i + 2 < n -> (
          match (hex_digit s.[i + 1], hex_digit s.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
              go (i + 3)
          | _ ->
              Buffer.add_char buf '%';
              go (i + 1))
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0;
  Buffer.contents buf

let percent_decode s = decode ~plus_as_space:true s
let percent_decode_path s = decode ~plus_as_space:false s

let is_unreserved c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '-' || c = '.' || c = '_' || c = '~'

let percent_encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if is_unreserved c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let parse_urlencoded s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun pair ->
           if pair = "" then None
           else
             match String.index_opt pair '=' with
             | None -> Some (percent_decode pair, "")
             | Some i ->
                 let name = percent_decode (String.sub pair 0 i) in
                 let value =
                   percent_decode (String.sub pair (i + 1) (String.length pair - i - 1))
                 in
                 Some (name, value))

let make ?(query = []) ?(headers = Headers.empty) ?(body = "") meth target =
  let path, target_query =
    match String.index_opt target '?' with
    | None -> (target, [])
    | Some i ->
        ( String.sub target 0 i,
          parse_urlencoded (String.sub target (i + 1) (String.length target - i - 1)) )
  in
  { meth; path; query = target_query @ query; headers; body; path_params = [] }

let query_param t name = List.assoc_opt name t.query
let path_param t name = List.assoc_opt name t.path_params

let path_param_exn t name =
  match path_param t name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "request has no path parameter %s" name)

let header t name = Headers.get t.headers name

let cookies t =
  match header t "Cookie" with
  | Some value -> Cookie.parse_header value
  | None -> []

let cookie t name = List.assoc_opt name (cookies t)

let is_urlencoded t =
  match header t "Content-Type" with
  | Some ct ->
      (* Ignore any ;charset=... suffix. *)
      let base = List.hd (String.split_on_char ';' ct) in
      String.trim base = "application/x-www-form-urlencoded"
  | None -> false

let form_params t = if is_urlencoded t then parse_urlencoded t.body else []
let form_param t name = List.assoc_opt name (form_params t)
let with_path_params t params = { t with path_params = params }

let pp fmt t =
  Format.fprintf fmt "@[<h>%a %s" Meth.pp t.meth t.path;
  if t.query <> [] then begin
    Format.pp_print_string fmt "?";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.pp_print_string fmt "&";
        Format.fprintf fmt "%s=%s" k v)
      t.query
  end;
  Format.fprintf fmt "@]"
