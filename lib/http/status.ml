type t =
  | Ok
  | Created
  | No_content
  | See_other
  | Bad_request
  | Unauthorized
  | Forbidden
  | Not_found
  | Method_not_allowed
  | Request_timeout
  | Payload_too_large
  | Unprocessable
  | Headers_too_large
  | Internal_error
  | Service_unavailable
  | Code of int

let to_int = function
  | Ok -> 200
  | Created -> 201
  | No_content -> 204
  | See_other -> 303
  | Bad_request -> 400
  | Unauthorized -> 401
  | Forbidden -> 403
  | Not_found -> 404
  | Method_not_allowed -> 405
  | Request_timeout -> 408
  | Payload_too_large -> 413
  | Unprocessable -> 422
  | Headers_too_large -> 431
  | Internal_error -> 500
  | Service_unavailable -> 503
  | Code c -> c

let of_int = function
  | 200 -> Ok
  | 201 -> Created
  | 204 -> No_content
  | 303 -> See_other
  | 400 -> Bad_request
  | 401 -> Unauthorized
  | 403 -> Forbidden
  | 404 -> Not_found
  | 405 -> Method_not_allowed
  | 408 -> Request_timeout
  | 413 -> Payload_too_large
  | 422 -> Unprocessable
  | 431 -> Headers_too_large
  | 500 -> Internal_error
  | 503 -> Service_unavailable
  | c -> Code c

let reason t =
  match t with
  | Ok -> "OK"
  | Created -> "Created"
  | No_content -> "No Content"
  | See_other -> "See Other"
  | Bad_request -> "Bad Request"
  | Unauthorized -> "Unauthorized"
  | Forbidden -> "Forbidden"
  | Not_found -> "Not Found"
  | Method_not_allowed -> "Method Not Allowed"
  | Request_timeout -> "Request Timeout"
  | Payload_too_large -> "Payload Too Large"
  | Unprocessable -> "Unprocessable Entity"
  | Headers_too_large -> "Request Header Fields Too Large"
  | Internal_error -> "Internal Server Error"
  | Service_unavailable -> "Service Unavailable"
  | Code c -> Printf.sprintf "Status %d" c

let is_success t =
  let c = to_int t in
  c >= 200 && c < 300

let equal a b = to_int a = to_int b
let pp fmt t = Format.fprintf fmt "%d %s" (to_int t) (reason t)
