type segment = Literal of string | Param of string | Rest of string

type t = { pattern : string; segments : segment list }

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let parse pattern =
  if pattern = "" || pattern.[0] <> '/' then
    Error (Printf.sprintf "route %S must start with /" pattern)
  else
    let parse_segment s =
      let n = String.length s in
      if n >= 2 && s.[0] = '<' && s.[n - 1] = '>' then
        let inner = String.sub s 1 (n - 2) in
        let ni = String.length inner in
        if ni > 2 && String.sub inner (ni - 2) 2 = ".." then
          Ok (Rest (String.sub inner 0 (ni - 2)))
        else if inner = "" then Error (Printf.sprintf "route %S: empty parameter" pattern)
        else Ok (Param inner)
      else if String.contains s '<' || String.contains s '>' then
        Error (Printf.sprintf "route %S: malformed segment %S" pattern s)
      else Ok (Literal s)
    in
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> (
          match parse_segment s with
          | Error _ as e -> e
          | Ok (Rest _ as seg) ->
              if rest = [] then Ok (List.rev (seg :: acc))
              else Error (Printf.sprintf "route %S: <..> must be the last segment" pattern)
          | Ok seg -> build (seg :: acc) rest)
    in
    match build [] (split_path pattern) with
    | Error _ as e -> e
    | Ok segments ->
        let names =
          List.filter_map
            (function Param p | Rest p -> Some p | Literal _ -> None)
            segments
        in
        let rec has_dup = function
          | [] -> None
          | x :: rest -> if List.mem x rest then Some x else has_dup rest
        in
        (match has_dup names with
        | Some name ->
            Error (Printf.sprintf "route %S: duplicate parameter %s" pattern name)
        | None -> Ok { pattern; segments })

let parse_exn pattern =
  match parse pattern with Ok t -> t | Error msg -> invalid_arg msg

let pattern t = t.pattern

let params t =
  List.filter_map
    (function Param p | Rest p -> Some p | Literal _ -> None)
    t.segments

let matches t path =
  (* Each raw segment is decoded exactly once, here: literals compare
     against the decoded segment (so /profile/alice%40example.com hits a
     route registered for the decoded spelling) and parameters bind the
     decoded value. The form-only '+'-as-space rule does not apply to
     paths, and because decoding is per raw segment an encoded '/'
     (%2F) binds into the value without changing the path's shape. *)
  let rec go segments parts acc =
    match (segments, parts) with
    | [], [] -> Some (List.rev acc)
    | [ Rest name ], parts ->
        Some
          (List.rev
             ((name, String.concat "/" (List.map Request.percent_decode_path parts))
             :: acc))
    | Literal lit :: segs, part :: rest when lit = Request.percent_decode_path part ->
        go segs rest acc
    | Param name :: segs, part :: rest ->
        go segs rest ((name, Request.percent_decode_path part) :: acc)
    | _, _ -> None
  in
  go t.segments (split_path path) []

let specificity t =
  List.length (List.filter (function Literal _ -> true | Param _ | Rest _ -> false) t.segments)
