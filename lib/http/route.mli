(** Route patterns with typed parameter segments, in the style of the
    paper's [#[sesame::get("/view/<answer_id>")]] attributes (Fig. 2).

    A pattern is a [/]-separated path where a segment of the form [<name>]
    captures one path segment, and a trailing [<name..>] captures the rest
    of the path (including [/]s). *)

type t

val parse : string -> (t, string) result
(** Fails on empty patterns, duplicate parameter names, non-leading [/],
    or a rest-parameter that is not last. *)

val parse_exn : string -> t

val pattern : t -> string
(** The original pattern text. *)

val params : t -> string list
(** Parameter names in order of appearance. *)

val matches : t -> string -> (string * string) list option
(** [matches t path] is [Some bindings] when [path] matches the pattern.
    Each raw path segment is percent-decoded exactly once (without the
    form-only ['+']-as-space rule) before literal comparison and
    parameter binding, so encoded segments match routes and bound values
    come back decoded. *)

val specificity : t -> int
(** Number of literal segments; routers prefer more-specific routes. *)
