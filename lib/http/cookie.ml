type attributes = {
  path : string option;
  max_age : int option;
  http_only : bool;
  secure : bool;
}

let default_attributes = { path = None; max_age = None; http_only = true; secure = true }

let trim = String.trim

let parse_header value =
  String.split_on_char ';' value
  |> List.filter_map (fun fragment ->
         match String.index_opt fragment '=' with
         | None -> None
         | Some i ->
             let name = trim (String.sub fragment 0 i) in
             let v = trim (String.sub fragment (i + 1) (String.length fragment - i - 1)) in
             if name = "" then None else Some (name, v))

(* Set-Cookie is the classic header-splitting vector: the rendered value
   is pasted into a response header, so a name or value containing CR/LF
   starts a forged header and one containing ';' or '=' (names) / ';'
   (values) forges extra cookies or attributes. Reject at render time —
   fail closed rather than emit a splittable header. *)
let is_control c = Char.code c < 0x20 || c = '\x7f'

let valid_cookie_name name =
  name <> ""
  && String.for_all
       (fun c -> (not (is_control c)) && c <> '=' && c <> ';' && c <> ',' && c <> ' ')
       name

let valid_cookie_value value =
  String.for_all (fun c -> (not (is_control c)) && c <> ';') value

let valid_path path =
  String.for_all (fun c -> (not (is_control c)) && c <> ';') path

let render_set_cookie ?(attributes = default_attributes) ~name value =
  if not (valid_cookie_name name) then
    invalid_arg (Printf.sprintf "invalid cookie name %S" name);
  if not (valid_cookie_value value) then
    invalid_arg (Printf.sprintf "cookie %s: value contains ';' or control characters" name);
  (match attributes.path with
  | Some p when not (valid_path p) ->
      invalid_arg (Printf.sprintf "cookie %s: path contains ';' or control characters" name)
  | _ -> ());
  let buf = Buffer.create 64 in
  Buffer.add_string buf name;
  Buffer.add_char buf '=';
  Buffer.add_string buf value;
  Option.iter (fun p -> Buffer.add_string buf ("; Path=" ^ p)) attributes.path;
  Option.iter
    (fun age -> Buffer.add_string buf ("; Max-Age=" ^ string_of_int age))
    attributes.max_age;
  if attributes.http_only then Buffer.add_string buf "; HttpOnly";
  if attributes.secure then Buffer.add_string buf "; Secure";
  Buffer.contents buf

let expire ~name =
  render_set_cookie
    ~attributes:{ default_attributes with max_age = Some 0 }
    ~name ""
