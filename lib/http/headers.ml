(* Stored newest-first so [add] is a cons, not an O(n) append (building a
   response with n headers was O(n^2)); [to_list]/[get_all] reverse back
   to insertion order. [count] makes [length] O(1). *)
type t = { rev : (string * string) list; count : int }

let canon = String.lowercase_ascii

(* RFC 7230 token characters — the only bytes legal in a field name. *)
let is_tchar = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_' | '`'
  | '|' | '~' ->
      true
  | _ -> false

let valid_name name = name <> "" && String.for_all is_tchar name

(* No CR/LF/NUL anywhere in a value: a value spliced from user input must
   not be able to terminate the field and start a new header (response
   splitting) once the response is serialized onto a socket. Other C0
   controls are rejected too, except horizontal tab which RFC 7230
   permits inside field content. *)
let valid_value value =
  String.for_all
    (fun c -> not (Char.code c < 0x20 && c <> '\t') && c <> '\x7f')
    value

let check_pair name value =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "invalid header name %S" name);
  if not (valid_value value) then
    invalid_arg (Printf.sprintf "header %s: value contains control characters" name)

let empty = { rev = []; count = 0 }

let add t name value =
  check_pair name value;
  { rev = (name, value) :: t.rev; count = t.count + 1 }

let of_list l = List.fold_left (fun t (n, v) -> add t n v) empty l
let to_list t = List.rev t.rev

let remove t name =
  let key = canon name in
  let rev = List.filter (fun (n, _) -> canon n <> key) t.rev in
  { rev; count = List.length rev }

let replace t name value = add (remove t name) name value

let get t name =
  let key = canon name in
  (* rev is newest-first; keep folding so the oldest (first-inserted)
     match wins, preserving the original first-value semantics. *)
  List.fold_left
    (fun acc (n, v) -> if canon n = key then Some v else acc)
    None t.rev

let get_all t name =
  let key = canon name in
  List.rev
    (List.filter_map (fun (n, v) -> if canon n = key then Some v else None) t.rev)

let mem t name = Option.is_some (get t name)
let length t = t.count

let pp fmt t =
  List.iter (fun (n, v) -> Format.fprintf fmt "%s: %s@." n v) (to_list t)
