exception Forbidden_syscall of string

type mode = Naive | Pooled of Pool.t

type config = {
  mode : mode;
  strategy : Copier.strategy;
  slowdown : float;
  arena_size : int;
}

let config ?mode ?(strategy = Copier.Swizzle) ?(slowdown = 2.0) ?(arena_size = 4 * 1024 * 1024)
    () =
  let mode = match mode with Some m -> m | None -> Pooled (Pool.create ~arena_size ()) in
  { mode; strategy; slowdown; arena_size }

let default_config = config ()

type timings = {
  setup_s : float;
  copy_in_s : float;
  exec_s : float;
  copy_out_s : float;
  teardown_s : float;
}

let total_s t = t.setup_s +. t.copy_in_s +. t.exec_s +. t.copy_out_s +. t.teardown_s

type outcome = { result : Value.t; timings : timings }

let depth = ref 0

let in_sandbox () = !depth > 0

let guard_syscall what =
  if in_sandbox () then
    raise (Forbidden_syscall (Printf.sprintf "%s is forbidden inside a sandbox" what))

let now () = Sesame_clock.now_s ()

(* Busy-wait to model the guest's slower code. *)
let simulate_slowdown elapsed slowdown =
  if slowdown > 1.0 && elapsed > 0.0 then begin
    let extra = elapsed *. (slowdown -. 1.0) in
    let deadline = now () +. extra in
    while now () < deadline do
      ignore (Sys.opaque_identity ())
    done
  end

let run config ~input ~f =
  let t0 = now () in
  let arena =
    match config.mode with
    | Naive -> Arena.create ~size:config.arena_size ()
    | Pooled pool -> Pool.acquire pool
  in
  let t1 = now () in
  let teardown () =
    match config.mode with
    | Naive -> ()  (* dropped; the GC reclaims it *)
    | Pooled pool -> Pool.release pool arena
  in
  match
    let addr_in = Copier.copy_in config.strategy arena input in
    let guest_input = Copier.copy_out config.strategy arena addr_in in
    let t2 = now () in
    incr depth;
    let guest_result =
      Fun.protect ~finally:(fun () -> decr depth) (fun () ->
          let e0 = now () in
          let r = f guest_input in
          simulate_slowdown (now () -. e0) config.slowdown;
          r)
    in
    let t3 = now () in
    let addr_out = Copier.copy_in config.strategy arena guest_result in
    let result = Copier.copy_out config.strategy arena addr_out in
    let t4 = now () in
    (result, t2, t3, t4)
  with
  | result, t2, t3, t4 ->
      teardown ();
      let t5 = now () in
      {
        result;
        timings =
          {
            setup_s = t1 -. t0;
            copy_in_s = t2 -. t1;
            exec_s = t3 -. t2;
            copy_out_s = t4 -. t3;
            teardown_s = t5 -. t4;
          };
      }
  | exception exn ->
      teardown ();
      raise exn
