exception Forbidden_syscall of string

type mode = Naive | Pooled of Pool.t

type budget = {
  deadline_s : float option;
  fuel : int option;
  mem_bytes : int option;
}

let no_budget = { deadline_s = None; fuel = None; mem_bytes = None }

let budget ?deadline_s ?fuel ?mem_bytes () = { deadline_s; fuel; mem_bytes }

type config = {
  mode : mode;
  strategy : Copier.strategy;
  slowdown : float;
  arena_size : int;
  budget : budget;
}

let config ?mode ?(strategy = Copier.Swizzle) ?(slowdown = 2.0) ?(arena_size = 4 * 1024 * 1024)
    ?(budget = no_budget) () =
  let mode = match mode with Some m -> m | None -> Pooled (Pool.create ~arena_size ()) in
  { mode; strategy; slowdown; arena_size; budget }

let default_config = config ()

type timings = {
  setup_s : float;
  copy_in_s : float;
  exec_s : float;
  copy_out_s : float;
  teardown_s : float;
}

let total_s t = t.setup_s +. t.copy_in_s +. t.exec_s +. t.copy_out_s +. t.teardown_s

type trap =
  | Guest_exception of string
  | Syscall_blocked of string
  | Sandbox_fault of string
  | Fault_injected of string
  | Deadline_exceeded of { limit_s : float }
  | Fuel_exhausted of { limit : int }
  | Memory_exceeded of { used_bytes : int; limit_bytes : int }

let trap_message = function
  | Guest_exception exn -> Printf.sprintf "guest raised: %s" exn
  | Syscall_blocked what -> Printf.sprintf "guest attempted a forbidden syscall: %s" what
  | Sandbox_fault msg -> Printf.sprintf "sandbox fault: %s" msg
  | Fault_injected msg -> Printf.sprintf "sandbox fault: %s" msg
  | Deadline_exceeded { limit_s } ->
      Printf.sprintf "guest exceeded its %.3fs deadline" limit_s
  | Fuel_exhausted { limit } -> Printf.sprintf "guest exhausted its fuel budget (%d ticks)" limit
  | Memory_exceeded { used_bytes; limit_bytes } ->
      Printf.sprintf "guest exceeded its memory budget (%d > %d bytes)" used_bytes
        limit_bytes

let pp_trap fmt t = Format.pp_print_string fmt (trap_message t)

type status = Ok of Value.t | Trapped of trap

(** What the run actually consumed — the quota layer charges these
    against the region's cumulative allowance. *)
type usage = { fuel_used : int; mem_bytes : int }

type outcome = { status : status; timings : timings; usage : usage }

(* Per-domain sandbox state: the nesting depth that backs [guard_syscall]
   plus the active budget, so concurrent domains neither observe each
   other's sandboxes nor share fuel. *)
type dstate = {
  mutable depth : int;
  mutable fuel_left : int;  (* < 0: unlimited *)
  mutable fuel_limit : int;
  mutable deadline : float;  (* absolute, [infinity]: none *)
  mutable deadline_limit_s : float;
  mutable ticks : int;  (* monotone tick count — usage metering, never restored *)
}

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        depth = 0;
        fuel_left = -1;
        fuel_limit = 0;
        deadline = infinity;
        deadline_limit_s = 0.0;
        ticks = 0;
      })

let state () = Domain.DLS.get dls

let in_sandbox () = (state ()).depth > 0

let guard_syscall what =
  if in_sandbox () then
    raise (Forbidden_syscall (Printf.sprintf "%s is forbidden inside a sandbox" what))

let now () = Sesame_clock.now_s ()

exception Out_of_fuel of int
exception Past_deadline of float
exception Mem_exceeded of int * int

(* The WASM engine's interruption points, modelled as an explicit callback:
   guest code is expected to tick on loop back-edges. A guest that never
   ticks still hits the post-execution deadline check in [run]. *)
let tick () =
  let st = state () in
  if st.depth > 0 then begin
    st.ticks <- st.ticks + 1;
    if st.fuel_left >= 0 then begin
      if st.fuel_left = 0 then raise (Out_of_fuel st.fuel_limit);
      st.fuel_left <- st.fuel_left - 1
    end;
    if now () > st.deadline then raise (Past_deadline st.deadline_limit_s)
  end

(* Busy-wait to model the guest's slower code. *)
let simulate_slowdown elapsed slowdown =
  if slowdown > 1.0 && elapsed > 0.0 then begin
    let extra = elapsed *. (slowdown -. 1.0) in
    let deadline = now () +. extra in
    while now () < deadline do
      ignore (Sys.opaque_identity ())
    done
  end

let trap_of_exn = function
  | Forbidden_syscall msg -> Syscall_blocked msg
  | Arena.Sandbox_trap msg -> Sandbox_fault msg
  | Sesame_faults.Injected { point; action; transient } ->
      Fault_injected (Sesame_faults.injected_message point action ~transient)
  | Out_of_fuel limit -> Fuel_exhausted { limit }
  | Past_deadline limit_s -> Deadline_exceeded { limit_s }
  | Mem_exceeded (used_bytes, limit_bytes) -> Memory_exceeded { used_bytes; limit_bytes }
  | exn -> Guest_exception (Printexc.to_string exn)

let run config ~input ~f =
  let budget = config.budget in
  (* The region's wall budget is capped by the ambient request deadline
     (Sesame_deadline): a region can never outlive the request that
     spawned it, even when its configured budget is looser or absent. An
     already-expired request yields a zero budget, trapped on the first
     tick or at the post-execution check. *)
  let wall_budget_s =
    let ambient = Sesame_deadline.current () in
    let remaining =
      if Sesame_deadline.is_none ambient then None
      else Some (Float.max 0.0 (Sesame_deadline.remaining_s ambient))
    in
    match (budget.deadline_s, remaining) with
    | Some d, Some r -> Some (Float.min d r)
    | Some d, None -> Some d
    | None, r -> r
  in
  let t0 = now () in
  let arena =
    match config.mode with
    | Naive -> Arena.create ~size:config.arena_size ()
    | Pooled pool -> Pool.acquire pool
  in
  let t1 = now () in
  let st = state () in
  let ticks0 = st.ticks in
  (* Exactly one of these runs, exactly once: a clean arena is wiped and
     pooled; a trapped one is quarantined (dropped and replaced), never
     returned to reuse. Usage is sampled first: release wipes the arena
     and resets its high-water mark. *)
  let finish status t2 t3 t4 =
    let usage = { fuel_used = st.ticks - ticks0; mem_bytes = Arena.high_water arena } in
    (match config.mode with
    | Naive -> ()
    | Pooled pool -> (
        match status with
        | Ok _ -> Pool.release pool arena
        | Trapped _ -> Pool.quarantine pool arena));
    let t5 = now () in
    {
      status;
      timings =
        {
          setup_s = t1 -. t0;
          copy_in_s = t2 -. t1;
          exec_s = t3 -. t2;
          copy_out_s = t4 -. t3;
          teardown_s = t5 -. t4;
        };
      usage;
    }
  in
  let check_mem () =
    match budget.mem_bytes with
    | Some cap ->
        let used = Arena.high_water arena in
        if used > cap then raise (Mem_exceeded (used, cap))
    | None -> ()
  in
  let saved = (st.fuel_left, st.fuel_limit, st.deadline, st.deadline_limit_s) in
  match
    let addr_in = Copier.copy_in config.strategy arena input in
    let guest_input = Copier.copy_out config.strategy arena addr_in in
    check_mem ();
    let t2 = now () in
    st.depth <- st.depth + 1;
    (match budget.fuel with
    | Some fuel ->
        st.fuel_left <- fuel;
        st.fuel_limit <- fuel
    | None -> ());
    (match wall_budget_s with
    | Some d ->
        (* A nested sandbox may tighten, never extend, the deadline. *)
        if t2 +. d < st.deadline then begin
          st.deadline <- t2 +. d;
          st.deadline_limit_s <- d
        end
    | None -> ());
    let guest_result =
      Fun.protect
        ~finally:(fun () ->
          st.depth <- st.depth - 1;
          let fuel_left, fuel_limit, deadline, deadline_limit_s = saved in
          st.fuel_left <- fuel_left;
          st.fuel_limit <- fuel_limit;
          st.deadline <- deadline;
          st.deadline_limit_s <- deadline_limit_s)
        (fun () ->
          let e0 = now () in
          Sesame_faults.hit Sesame_faults.Guest_body;
          let r = f guest_input in
          simulate_slowdown (now () -. e0) config.slowdown;
          r)
    in
    (* A guest that never ticked but overran its deadline is still caught
       before its result is copied out. *)
    (match wall_budget_s with
    | Some d when now () -. t2 > d -> raise (Past_deadline d)
    | _ -> ());
    let t3 = now () in
    let addr_out = Copier.copy_in config.strategy arena guest_result in
    let result = Copier.copy_out config.strategy arena addr_out in
    check_mem ();
    let t4 = now () in
    (result, t2, t3, t4)
  with
  | result, t2, t3, t4 -> finish (Ok result) t2 t3 t4
  | exception Fun.Finally_raised exn ->
      let t = now () in
      finish (Trapped (trap_of_exn exn)) t t t
  | exception exn ->
      let t = now () in
      finish (Trapped (trap_of_exn exn)) t t t
