(* A rate allowance over a sliding window, alongside the cumulative
   books: at most [max_runs] admissions in any [window_s]-second span.
   Admission timestamps are kept per entry and pruned at the leading
   edge, so memory is bounded by [max_runs] per region. *)
type window = { max_runs : int; window_s : float }

type limits = {
  max_runs : int option;
  max_traps : int option;
  max_fuel : int option;
  max_wall_s : float option;
  max_mem_bytes : int option;
  runs_per_window : window option;
}

let no_limits =
  {
    max_runs = None;
    max_traps = None;
    max_fuel = None;
    max_wall_s = None;
    max_mem_bytes = None;
    runs_per_window = None;
  }

let limits ?max_runs ?max_traps ?max_fuel ?max_wall_s ?max_mem_bytes ?runs_per_window () =
  { max_runs; max_traps; max_fuel; max_wall_s; max_mem_bytes; runs_per_window }

type policy =
  | Deny
  | Throttle of { initial_backoff_s : float; max_backoff_s : float }
  | Quarantine

let policy_name = function
  | Deny -> "deny"
  | Throttle _ -> "throttle"
  | Quarantine -> "quarantine"

type counters = {
  runs : int;
  traps : int;
  fuel : int;
  wall_s : float;
  peak_mem_bytes : int;
  denied : int;
  throttled : int;
  quarantine_events : int;
}

let zero_counters =
  {
    runs = 0;
    traps = 0;
    fuel = 0;
    wall_s = 0.0;
    peak_mem_bytes = 0;
    denied = 0;
    throttled = 0;
    quarantine_events = 0;
  }

type entry = {
  mutable runs : int;
  mutable traps : int;
  mutable fuel : int;
  mutable wall_s : float;
  mutable peak_mem_bytes : int;
  mutable denied : int;
  mutable throttled : int;
  mutable quarantined : bool;
  mutable quarantine_events : int;
  mutable backoff_s : float;  (* current throttle window; 0 = not backing off *)
  mutable next_admit_at : float;
  window_admits : float Queue.t;  (* admission times inside the sliding window *)
}

(* One mutex over the whole table: admissions and accounting from worker
   domains must observe exact counters (a lost increment under-charges a
   region; a double quarantine event breaks the exactly-once contract). *)
type t = {
  limits : limits;
  policy : policy;
  now : unit -> float;
  lock : Mutex.t;
  entries : (string, entry) Hashtbl.t;
}

let create ?(now = Sesame_clock.now_s) ?(limits = no_limits) ?(policy = Deny) () =
  { limits; policy; now; lock = Mutex.create (); entries = Hashtbl.create 16 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let entry_of t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e =
        {
          runs = 0;
          traps = 0;
          fuel = 0;
          wall_s = 0.0;
          peak_mem_bytes = 0;
          denied = 0;
          throttled = 0;
          quarantined = false;
          quarantine_events = 0;
          backoff_s = 0.0;
          next_admit_at = neg_infinity;
          window_admits = Queue.create ();
        }
      in
      Hashtbl.add t.entries key e;
      e

(* First limit the cumulative counters have already breached, if any.
   [max_runs] counts admissible runs, so the (n+1)th is the breach. *)
let breach_of limits (e : entry) =
  let over_int limit v = match limit with Some l -> v >= l | None -> false in
  let over_float limit v = match limit with Some l -> v >= l | None -> false in
  if over_int limits.max_runs e.runs then Some "runs"
  else if over_int limits.max_traps e.traps then Some "traps"
  else if over_int limits.max_fuel e.fuel then Some "fuel"
  else if over_float limits.max_wall_s e.wall_s then Some "wall-clock"
  else if over_int limits.max_mem_bytes e.peak_mem_bytes then Some "memory"
  else None

type admission =
  | Admit
  | Deny_quota of { breached : string }
  | Backoff of { retry_in_s : float; breached : string }
  | Quarantined of { breached : string }

let admission_message = function
  | Admit -> "admitted"
  | Deny_quota { breached } -> Printf.sprintf "region exceeded its %s quota" breached
  | Backoff { retry_in_s; breached } ->
      Printf.sprintf "region exceeded its %s quota; throttled (retry in %.3fs)" breached
        retry_in_s
  | Quarantined { breached } ->
      Printf.sprintf "region quarantined after exceeding its %s quota" breached

(* Drop admission timestamps that have slid out of the window. *)
let prune_window w (e : entry) ~now =
  while
    (not (Queue.is_empty e.window_admits)) && Queue.peek e.window_admits <= now -. w.window_s
  do
    ignore (Queue.pop e.window_admits)
  done

let admit t ~key =
  with_lock t (fun () ->
      let e = entry_of t key in
      let now = t.now () in
      if e.quarantined then begin
        e.denied <- e.denied + 1;
        Quarantined { breached = "quota" }
      end
      else begin
        (* Windowed rate check, after pruning the leading edge. Unlike
           the cumulative books it self-heals: once enough admissions
           slide out of the window, runs admit again with no operator
           action. The throttle decision therefore lands exactly on the
           window boundary — retry when the oldest admission expires —
           rather than on an exponential backoff. *)
        let window_breach =
          match t.limits.runs_per_window with
          | Some w ->
              prune_window w e ~now;
              if Queue.length e.window_admits >= w.max_runs then
                Some (w, "runs-per-window")
              else None
          | None -> None
        in
        let record_admission () =
          if t.limits.runs_per_window <> None then Queue.push now e.window_admits;
          Admit
        in
        match window_breach with
        | Some (w, breached) -> (
            match t.policy with
            | Deny ->
                e.denied <- e.denied + 1;
                Deny_quota { breached }
            | Quarantine ->
                e.quarantined <- true;
                e.quarantine_events <- e.quarantine_events + 1;
                e.denied <- e.denied + 1;
                Quarantined { breached }
            | Throttle _ ->
                let retry_in_s =
                  Float.max 0.0 (Queue.peek e.window_admits +. w.window_s -. now)
                in
                e.throttled <- e.throttled + 1;
                Backoff { retry_in_s; breached })
        | None -> (
            match breach_of t.limits e with
            | None ->
                (* Back under quota (e.g. a wall-clock window policy upstream
                   reset the entry): stop backing off. *)
                e.backoff_s <- 0.0;
                record_admission ()
            | Some breached -> (
                match t.policy with
                | Deny ->
                    e.denied <- e.denied + 1;
                    Deny_quota { breached }
                | Quarantine ->
                    (* The transition happens exactly once, under the lock. *)
                    e.quarantined <- true;
                    e.quarantine_events <- e.quarantine_events + 1;
                    e.denied <- e.denied + 1;
                    Quarantined { breached }
                | Throttle { initial_backoff_s; max_backoff_s } ->
                    if now >= e.next_admit_at then begin
                      (* Admit one probe run, then exponentially widen the gap. *)
                      e.backoff_s <-
                        (if e.backoff_s <= 0.0 then initial_backoff_s
                         else Float.min max_backoff_s (e.backoff_s *. 2.0));
                      e.next_admit_at <- now +. e.backoff_s;
                      record_admission ()
                    end
                    else begin
                      e.throttled <- e.throttled + 1;
                      Backoff { retry_in_s = e.next_admit_at -. now; breached }
                    end))
      end)

let account t ~key ~trapped ~fuel ~wall_s ~mem_bytes =
  (* The seam fires before any counter moves: an injected accounting
     fault must leave the books untouched and the caller must deny the
     response rather than serve it unaccounted. Hit outside the lock so
     the raise cannot wedge other domains. *)
  Sesame_faults.hit Sesame_faults.Quota_account;
  with_lock t (fun () ->
      let e = entry_of t key in
      e.runs <- e.runs + 1;
      if trapped then e.traps <- e.traps + 1;
      e.fuel <- e.fuel + fuel;
      e.wall_s <- e.wall_s +. wall_s;
      if mem_bytes > e.peak_mem_bytes then e.peak_mem_bytes <- mem_bytes)

let counters_of (e : entry) =
  {
    runs = e.runs;
    traps = e.traps;
    fuel = e.fuel;
    wall_s = e.wall_s;
    peak_mem_bytes = e.peak_mem_bytes;
    denied = e.denied;
    throttled = e.throttled;
    quarantine_events = e.quarantine_events;
  }

let counters_for t ~key =
  with_lock t (fun () -> Option.map counters_of (Hashtbl.find_opt t.entries key))

let quarantined t ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.entries key with Some e -> e.quarantined | None -> false)

let snapshot t =
  with_lock t (fun () ->
      Hashtbl.fold (fun key e acc -> (key, counters_of e) :: acc) t.entries []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let totals t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun _ (e : entry) (acc : counters) : counters ->
          {
            runs = acc.runs + e.runs;
            traps = acc.traps + e.traps;
            fuel = acc.fuel + e.fuel;
            wall_s = acc.wall_s +. e.wall_s;
            peak_mem_bytes = max acc.peak_mem_bytes e.peak_mem_bytes;
            denied = acc.denied + e.denied;
            throttled = acc.throttled + e.throttled;
            quarantine_events = acc.quarantine_events + e.quarantine_events;
          })
        t.entries zero_counters)

let describe_counters (c : counters) =
  Printf.sprintf
    "runs=%d traps=%d fuel=%d wall=%.3fs peak-mem=%d denied=%d throttled=%d quarantines=%d"
    c.runs c.traps c.fuel c.wall_s c.peak_mem_bytes c.denied c.throttled c.quarantine_events

(* Compact state string for the attestation manifest — what the region's
   books said when this run was recorded. *)
let state_string t ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.entries key with
      | None -> "fresh"
      | Some e ->
          Printf.sprintf "runs=%d traps=%d fuel=%d denied=%d%s" e.runs e.traps e.fuel e.denied
            (if e.quarantined then " quarantined" else ""))
