(* The boot-time SFI preflight battery.

   Each check provokes one deliberate violation — out-of-bounds access,
   heap exhaustion, fuel burn, deadline overrun, memory breach, a
   forbidden syscall — on a scratch capacity-1 pool and confirms the trap
   was caught AND the hosting arena quarantined. A build on which any
   check misses must not run regions: [create_pool] fails closed, like a
   container launcher that can't get seccomp. *)

let now () = Sesame_clock.now_s ()

(* Hard wall on any single check: a build whose deadline machinery is
   broken must surface as Missed, never as a hung boot. *)
let check_wall_s = 0.5

type verdict = Confirmed | Failed of string

let confirmed_if cond why = if cond then Confirmed else Failed why

(* Run one guest under [budget] on its own capacity-1 pool and hand the
   outcome plus pool stats to [judge]. *)
let probe ~arena_size ?budget ~input ~f judge =
  let pool = Pool.create ~capacity:1 ~arena_size () in
  let config = Runtime.config ~mode:(Runtime.Pooled pool) ~slowdown:1.0 ~arena_size ?budget () in
  let outcome = Runtime.run config ~input ~f in
  judge outcome (Pool.stats pool)

let quarantined (s : Pool.stats) why =
  if s.poisoned = 1 && s.replaced = 1 then Confirmed
  else Failed (Printf.sprintf "%s, but the arena was not quarantined" why)

let expect_trap ~name outcome (stats : Pool.stats) ~matches =
  match (outcome : Runtime.outcome).status with
  | Runtime.Ok _ -> Failed (Printf.sprintf "%s completed instead of trapping" name)
  | Runtime.Trapped trap ->
      if matches trap then quarantined stats "trapped"
      else Failed (Printf.sprintf "wrong trap: %s" (Runtime.trap_message trap))

(* --- the battery ------------------------------------------------------- *)

let check_oob_read ~arena_size () =
  let arena = Arena.create ~size:arena_size () in
  match Arena.read_u8 arena (arena_size + 64) with
  | (_ : int) -> Failed "out-of-bounds read returned data"
  | exception Arena.Sandbox_trap _ -> Confirmed
  | exception exn -> Failed (Printf.sprintf "wrong exception: %s" (Printexc.to_string exn))

let check_oob_write ~arena_size () =
  let arena = Arena.create ~size:arena_size () in
  match Arena.write_u8 arena (arena_size + 64) 0xAA with
  | () -> Failed "out-of-bounds write succeeded"
  | exception Arena.Sandbox_trap _ -> Confirmed
  | exception exn -> Failed (Printf.sprintf "wrong exception: %s" (Printexc.to_string exn))

let check_heap_exhaustion ~arena_size:_ () =
  (* A deliberately tiny arena (8 KiB leaves 4 KiB of heap after the
     globals segment): the guest's output cannot fit, so the copy-out
     allocation must trap as SFI heap exhaustion. *)
  probe ~arena_size:8192 ~input:Value.Unit
    ~f:(fun _ -> Value.Str (String.make 16384 'x'))
    (fun outcome stats ->
      expect_trap ~name:"heap exhaustion" outcome stats ~matches:(function
        | Runtime.Sandbox_fault _ -> true
        | _ -> false))

let check_fuel_exhaustion ~arena_size () =
  probe ~arena_size
    ~budget:(Runtime.budget ~fuel:4 ())
    ~input:Value.Unit
    ~f:(fun _ ->
      for _ = 1 to 64 do
        Runtime.tick ()
      done;
      Value.Unit)
    (fun outcome stats ->
      expect_trap ~name:"fuel exhaustion" outcome stats ~matches:(function
        | Runtime.Fuel_exhausted _ -> true
        | _ -> false))

let check_deadline_overrun ~arena_size () =
  probe ~arena_size
    ~budget:(Runtime.budget ~deadline_s:0.002 ())
    ~input:Value.Unit
    ~f:(fun _ ->
      (* Spin past the deadline, ticking so the runtime can interrupt;
         bail on wall-clock so a broken build fails the check rather
         than hanging the boot. *)
      let bail = now () +. check_wall_s in
      while now () < bail do
        Runtime.tick ()
      done;
      Value.Unit)
    (fun outcome stats ->
      expect_trap ~name:"deadline overrun" outcome stats ~matches:(function
        | Runtime.Deadline_exceeded _ -> true
        | _ -> false))

let check_memory_breach ~arena_size () =
  probe ~arena_size
    ~budget:(Runtime.budget ~mem_bytes:1024 ())
    ~input:(Value.Str (String.make 8192 'm'))
    ~f:(fun v -> v)
    (fun outcome stats ->
      expect_trap ~name:"memory breach" outcome stats ~matches:(function
        | Runtime.Memory_exceeded _ -> true
        | _ -> false))

let check_blocked_syscall ~arena_size () =
  probe ~arena_size ~input:Value.Unit
    ~f:(fun _ ->
      Runtime.guard_syscall "preflight-syscall-stub";
      Value.Unit)
    (fun outcome stats ->
      expect_trap ~name:"blocked syscall" outcome stats ~matches:(function
        | Runtime.Syscall_blocked _ -> true
        | _ -> false))

let check_wipe_hygiene ~arena_size () =
  (* A secret written by one invocation must be unreadable by the next
     user of the same pooled arena. *)
  let pool = Pool.create ~capacity:1 ~arena_size () in
  let secret = "PREFLIGHT-SECRET-0xS3" in
  let a = Pool.acquire pool in
  let addr = Arena.alloc a (String.length secret) in
  Arena.write_bytes a addr secret;
  Pool.release pool a;
  let b = Pool.acquire pool in
  let addr' = Arena.alloc b (String.length secret) in
  let residue = Arena.read_bytes b addr' (String.length secret) in
  confirmed_if
    (addr' = addr && residue <> secret && String.for_all (fun c -> c = '\000') residue)
    "released arena still held guest residue"

let check_quarantine_replacement ~arena_size () =
  probe ~arena_size ~input:Value.Unit
    ~f:(fun _ -> failwith "deliberate preflight trap")
    (fun outcome stats ->
      match (outcome : Runtime.outcome).status with
      | Runtime.Trapped (Runtime.Guest_exception _) ->
          if stats.poisoned = 1 && stats.replaced = 1 && stats.free = 1 then Confirmed
          else Failed "trapped arena was not replaced by a clean one"
      | Runtime.Trapped trap -> Failed (Printf.sprintf "wrong trap: %s" (Runtime.trap_message trap))
      | Runtime.Ok _ -> Failed "guest exception did not trap")

let battery =
  [
    ("sfi-oob-read", "out-of-bounds arena read raises Sandbox_trap", check_oob_read);
    ("sfi-oob-write", "out-of-bounds arena write raises Sandbox_trap", check_oob_write);
    ("heap-exhaustion", "oversized guest output traps and quarantines", check_heap_exhaustion);
    ("fuel-exhaustion", "guest past its fuel budget traps and quarantines", check_fuel_exhaustion);
    ( "deadline-overrun",
      "guest past its wall-clock deadline traps and quarantines",
      check_deadline_overrun );
    ("memory-breach", "arena high-water past the budget traps and quarantines", check_memory_breach);
    ("blocked-syscall", "syscall stub inside the guest traps and quarantines", check_blocked_syscall);
    ("wipe-hygiene", "pooled arena reuse exposes no prior guest residue", check_wipe_hygiene);
    ( "quarantine-replacement",
      "poisoned arena is dropped and replaced, pool stays healthy",
      check_quarantine_replacement );
  ]

let run_check ~arena_size (name, detail, f) =
  let t0 = now () in
  let outcome =
    match
      let verdict = f ~arena_size () in
      (* The confirmation seam: a fault here models a build on which the
         deliberate trap was not actually observed. *)
      Sesame_faults.hit Sesame_faults.Preflight_trap_miss;
      verdict
    with
    | Confirmed -> Preflight.Caught
    | Failed why -> Preflight.Missed why
    | exception Sesame_faults.Injected _ ->
        Preflight.Missed "trap confirmation failed (injected)"
    | exception exn ->
        Preflight.Missed (Printf.sprintf "check crashed: %s" (Printexc.to_string exn))
  in
  { Preflight.name; detail; outcome; elapsed_s = now () -. t0 }

let run ?(arena_size = 64 * 1024) () =
  let at_s = now () in
  let checks = List.map (run_check ~arena_size) battery in
  { Preflight.checks; arena_size; at_s; total_s = now () -. at_s }

let create_pool ?capacity ?min_capacity ?max_capacity ?arena_size () =
  let report = run ?arena_size () in
  if Preflight.passed report then begin
    let pool = Pool.create ?capacity ?min_capacity ?max_capacity ?arena_size () in
    Pool.attach_preflight pool report;
    Ok (pool, report)
  end
  else Error report
