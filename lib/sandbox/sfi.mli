(** Boot-time SFI preflight: trap tests, fail closed.

    Before a pool serves regions, this battery provokes one deliberate
    violation per isolation invariant — out-of-bounds arena access (read
    and write), heap exhaustion, fuel exhaustion, deadline overrun,
    memory high-water breach, a blocked-syscall stub, wipe hygiene, and
    quarantine-with-replacement — each on its own scratch capacity-1
    pool, and confirms the trap was caught and the hosting arena
    quarantined. The posture is a container launcher's: if the host
    can't prove seccomp binds, nothing launches.

    Determinism hook: the [preflight-trap-miss] fault seam fires once
    per check at trap confirmation, so tests can force any single check
    (via [nth]) or every check to read as missed and assert the
    fail-closed refusal. *)

val run : ?arena_size:int -> unit -> Preflight.report
(** Runs the battery (default 64 KiB probe arenas) and reports. Never
    raises and never hangs: each check is bounded by an internal wall
    clock, and a check that crashes reads as [Missed]. *)

val create_pool :
  ?capacity:int ->
  ?min_capacity:int ->
  ?max_capacity:int ->
  ?arena_size:int ->
  unit ->
  (Pool.t * Preflight.report, Preflight.report) result
(** Preflight-gated {!Pool.create}: runs the battery first and refuses
    to construct the pool — [Error report] — unless every check caught
    its trap. On success the report is attached to the pool
    ({!Pool.preflight_report}). *)
