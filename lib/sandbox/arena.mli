(** The sandbox memory arena: the software-fault-isolation region.

    Models RLBox's dedicated memory region: a fixed-size 32-bit address
    space allocated at sandbox creation. All guest data lives here; every
    access is bounds-checked and an out-of-range address raises
    {!Sandbox_trap} (the SFI check). A small prefix is reserved for guest
    globals, checkpointed at creation so {!wipe} can restore it — the
    paper's "zeroing out the sandbox stack and heap, and restoring global
    data ... from a checkpoint". *)

exception Sandbox_trap of string

type t

val create : ?size:int -> ?globals_size:int -> unit -> t
(** Default 4 MiB arena with a 4 KiB globals segment. Creation cost is
    dominated by allocating and zeroing the region, as in RLBox. *)

val size : t -> int
val high_water : t -> int
(** Highest address ever allocated (wiped region bound). *)

val poison : t -> unit
(** Marks the arena as having hosted a trapped/over-budget guest. A
    poisoned arena must never be reused: {!Pool.release} drops it instead
    of returning it to the free list. *)

val poisoned : t -> bool

val alloc : t -> int -> int
(** [alloc t n] bump-allocates [n] bytes (8-byte aligned) and returns the
    guest address; raises {!Sandbox_trap} when the arena is exhausted. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit
val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit
val read_bytes : t -> int -> int -> string
val write_bytes : t -> int -> string -> unit

val write_global_u32 : t -> int -> int -> unit
(** Offset within the globals segment. *)

val read_global_u32 : t -> int -> int

val wipe : t -> unit
(** Zeroes the used heap (up to the high-water mark), restores globals
    from the creation checkpoint, and resets the allocator — isolation
    across pooled invocations. *)

val reset_allocator : t -> unit
(** Resets the bump pointer {e without} wiping — deliberately unsafe reuse,
    used by tests to demonstrate why wiping is necessary. *)

val swizzle_offset : t -> int
(** The host-address offset applied to guest pointers ("pointer
    swizzling"): an opaque constant that distinguishes guest addresses from
    host ones in tests. *)
