(** The sandbox pool (§7.2 "Optimizations").

    Firefox reuses one sandbox per trust domain; that would be unsafe for
    Sesame because a later invocation over weakly-policied data could
    observe residue of an earlier one. Sesame instead keeps a pool of
    preallocated sandboxes and {e wipes} each one's memory after use.

    Fault containment: an arena whose guest trapped or blew its budget is
    {e quarantined} — poisoned, dropped, and replaced by a fresh arena —
    rather than wiped and reused, so a fault can never seed residue (or a
    corrupted allocator) into a later invocation. *)

type t

type stats = {
  created : int;  (** arenas allocated (preallocation + overflow + replacements) *)
  acquired : int;
  reused : int;  (** acquisitions served from the pool *)
  wiped : int;  (** wipes of arenas actually returned to the pool *)
  dropped : int;  (** arenas discarded (pool full or quarantined) *)
  poisoned : int;  (** arenas quarantined after a trap/budget overrun *)
  replaced : int;  (** fresh arenas preallocated to replace quarantined ones *)
}

val create : ?capacity:int -> ?arena_size:int -> unit -> t
(** Preallocates [capacity] (default 2) arenas of [arena_size] bytes. *)

val acquire : t -> Arena.t
(** Pops a clean arena, or allocates a fresh one when the pool is empty. *)

val release : t -> Arena.t -> unit
(** Wipes the arena and returns it to the pool; dropped without wiping if
    the pool is at capacity, quarantined if the arena is poisoned. *)

val quarantine : t -> Arena.t -> unit
(** Poisons and drops the arena, preallocating a clean replacement when
    the pool has room. Never returns a poisoned arena to the free list. *)

val stats : t -> stats
val available : t -> int
(** O(1). *)

val healthy : t -> bool
(** The free list is within capacity and contains no poisoned arena. *)
