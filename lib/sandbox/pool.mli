(** The sandbox pool (§7.2 "Optimizations").

    Firefox reuses one sandbox per trust domain; that would be unsafe for
    Sesame because a later invocation over weakly-policied data could
    observe residue of an earlier one. Sesame instead keeps a pool of
    preallocated sandboxes and {e wipes} each one's memory after use.

    Fault containment: an arena whose guest trapped or blew its budget is
    {e quarantined} — poisoned, dropped, and replaced by a fresh arena —
    rather than wiped and reused, so a fault can never seed residue (or a
    corrupted allocator) into a later invocation.

    Capacity is {e mutable} between [min_capacity] and [max_capacity]:
    the server's autoscaler ({!Sesame_server}) converts sustained queue
    depth / shed rate into {!set_capacity} calls so load spikes become
    scaling before they become 503s. By default both bounds equal the
    initial capacity, so nothing scales unless explicitly enabled. *)

type t

type stats = {
  created : int;  (** arenas allocated (preallocation + overflow + replacements) *)
  acquired : int;
  reused : int;  (** acquisitions served from the pool *)
  wiped : int;  (** wipes of arenas actually returned to the pool *)
  dropped : int;  (** arenas discarded (pool full, quarantined, or shrunk away) *)
  poisoned : int;  (** arenas quarantined after a trap/budget overrun *)
  replaced : int;  (** fresh arenas preallocated to replace quarantined ones *)
  free : int;  (** arenas currently idle in the pool *)
  capacity : int;  (** current (possibly scaled) capacity *)
  grown : int;  (** capacity increases applied via {!set_capacity} *)
  shrunk : int;  (** capacity decreases applied via {!set_capacity} *)
}

val create :
  ?capacity:int -> ?min_capacity:int -> ?max_capacity:int -> ?arena_size:int -> unit -> t
(** Preallocates [capacity] (default 2) arenas of [arena_size] bytes.
    [min_capacity]/[max_capacity] (both default [capacity]) bound later
    {!set_capacity} calls; the initial capacity is clamped into them. *)

val acquire : t -> Arena.t
(** Pops a clean arena, or allocates a fresh one when the pool is empty. *)

val release : t -> Arena.t -> unit
(** Wipes the arena and returns it to the pool; dropped without wiping if
    the pool is at capacity, quarantined if the arena is poisoned. *)

val quarantine : t -> Arena.t -> unit
(** Poisons and drops the arena, preallocating a clean replacement when
    the pool has room. Never returns a poisoned arena to the free list. *)

val set_capacity : t -> int -> int
(** Clamps the target into [min,max] and applies it, returning the new
    capacity. Growing preallocates arenas up to the new capacity;
    shrinking drops surplus {e free} arenas (in-flight arenas are simply
    not readmitted past the new bound). *)

val scale_up : t -> int
val scale_down : t -> int
(** [set_capacity (capacity ± 1)]; both return the resulting capacity. *)

val capacity : t -> int
val bounds : t -> int * int
(** [(min_capacity, max_capacity)]. *)

val attach_preflight : t -> Preflight.report -> unit
(** Records the preflight report this pool was constructed under — set by
    {!Sfi.create_pool}, which refuses to build the pool unless the report
    passed. *)

val preflight_report : t -> Preflight.report option

val stats : t -> stats
val available : t -> int
(** O(1). *)

val healthy : t -> bool
(** The free list is within capacity and contains no poisoned arena. *)
