(** Boot-time SFI preflight report.

    Like a container launcher probing that seccomp/AppArmor actually bind
    before starting workloads, {!Sfi} runs a battery of deliberate trap
    tests against this build's arena/runtime and records whether each
    deliberate violation was caught and quarantined. This module holds
    only the report shape and its canonical rendering; the battery itself
    lives in {!Sfi} (which needs {!Runtime}), so {!Pool} can carry a
    report without a dependency cycle. *)

type check_outcome =
  | Caught  (** the deliberate violation trapped and was quarantined *)
  | Missed of string  (** why the build failed the check — fail closed *)

type check = {
  name : string;  (** stable kebab-case check id, e.g. ["sfi-oob-read"] *)
  detail : string;
  outcome : check_outcome;
  elapsed_s : float;
}

type report = {
  checks : check list;
  arena_size : int;  (** arena size the battery probed *)
  at_s : float;  (** wall-clock start of the battery *)
  total_s : float;
}

val check_passed : check -> bool

val passed : report -> bool
(** True iff every check caught its trap (an empty battery fails). *)

val missed : report -> check list

val render : report -> string
(** Canonical line-per-check text. Stable across runs of a passing build
    (timings excluded), so its hash serves as the attestation manifest's
    preflight fingerprint. *)

val summary : report -> string
(** One-line verdict for logs and CLI output. *)

val pp : Format.formatter -> report -> unit
