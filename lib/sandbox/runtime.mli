(** The sandboxed-region runtime.

    Runs a closure with RLBox-style isolation semantics: inputs are copied
    into the sandbox arena and the closure sees only the copy; the result
    is copied back out; syscalls (and printing — Sesame's RLBox
    modification, §7.2) are forbidden while a sandbox is active; and the
    guest runs at a configurable slowdown modelling WASM's ≈2× code-quality
    penalty (§10.3). Two lifecycle modes reproduce Fig. 9a: [Naive]
    creates and destroys an arena per invocation; [Pooled] acquires from a
    pool and wipes on release.

    Fail-closed fault containment: {!run} never raises. A guest exception,
    SFI violation, forbidden syscall, injected fault, or budget overrun
    (wall-clock deadline, fuel, arena high-water mark) surfaces as a
    structured {!trap}, and the arena that hosted it is quarantined —
    poisoned and dropped from the pool, never reused. *)

exception Forbidden_syscall of string

type mode = Naive | Pooled of Pool.t

(** Resource budgets enforced on the guest. All default to unlimited. *)
type budget = {
  deadline_s : float option;  (** wall-clock limit on guest execution *)
  fuel : int option;  (** max {!tick} calls (the WASM fuel/step limit) *)
  mem_bytes : int option;  (** cap on the arena high-water mark *)
}

val no_budget : budget
val budget : ?deadline_s:float -> ?fuel:int -> ?mem_bytes:int -> unit -> budget

type config = {
  mode : mode;
  strategy : Copier.strategy;
  slowdown : float;  (** ≥ 1.0; 2.0 matches the paper's WASM observation *)
  arena_size : int;  (** for [Naive] mode *)
  budget : budget;
}

val default_config : config
(** Pooled (a fresh shared pool), Swizzle, slowdown 2.0, 4 MiB arenas,
    no budget. *)

val config :
  ?mode:mode ->
  ?strategy:Copier.strategy ->
  ?slowdown:float ->
  ?arena_size:int ->
  ?budget:budget ->
  unit ->
  config

type timings = {
  setup_s : float;
  copy_in_s : float;
  exec_s : float;  (** includes the simulated guest slowdown *)
  copy_out_s : float;
  teardown_s : float;
}

val total_s : timings -> float

(** Why a guest was terminated. Messages carry no guest data beyond the
    exception rendering in [Guest_exception]; they belong in structured
    errors and logs, never verbatim in client responses. *)
type trap =
  | Guest_exception of string  (** the guest closure raised *)
  | Syscall_blocked of string  (** {!guard_syscall} fired inside the guest *)
  | Sandbox_fault of string  (** SFI bounds/exhaustion/corrupt-object trap *)
  | Fault_injected of string  (** a {!Sesame_faults} plan fired at a sandbox seam *)
  | Deadline_exceeded of { limit_s : float }
  | Fuel_exhausted of { limit : int }
  | Memory_exceeded of { used_bytes : int; limit_bytes : int }

val trap_message : trap -> string
val pp_trap : Format.formatter -> trap -> unit

type status = Ok of Value.t | Trapped of trap

type usage = {
  fuel_used : int;  (** {!tick} calls the run consumed (nested runs included) *)
  mem_bytes : int;  (** arena high-water mark at completion *)
}
(** What the run actually consumed, sampled before the arena is wiped or
    quarantined — the input to cumulative per-region quotas ({!Quota}). *)

type outcome = { status : status; timings : timings; usage : usage }

val run : config -> input:Value.t -> f:(Value.t -> Value.t) -> outcome
(** Executes [f] on the copied-in input. Never raises: any guest failure
    or budget overrun yields [Trapped] and, in pooled mode, quarantines
    the arena ({!Pool.quarantine}); a successful run releases (wipes) it.
    Exactly one of the two happens, exactly once. *)

val tick : unit -> unit
(** Guest progress callback — the moral equivalent of WASM fuel
    interruption points. Guest closures should call it on loop
    back-edges; it burns one unit of fuel and checks the deadline,
    raising internal trap exceptions that {!run} converts to [Trapped].
    Outside a sandbox it is a no-op. *)

val in_sandbox : unit -> bool
(** True while any sandbox invocation is active on this domain. Each
    domain has its own state (backed by [Domain.DLS]), so sandboxes on
    concurrent domains do not interfere. *)

val guard_syscall : string -> unit
(** Called by Sesame's I/O layers: raises {!Forbidden_syscall} when
    invoked from inside a sandbox on this domain. *)
