(** Cumulative per-region resource quotas.

    The per-run budgets in {!Runtime.budget} bound one invocation; they
    cannot stop a region that traps, burns fuel, or hogs wall-clock a
    little under the limit on {e every} invocation from starving the
    rest of the application. This layer keeps cumulative books — runs,
    traps, total fuel, total wall-clock, peak arena memory — keyed by
    region-body hash, and applies a configurable policy once a region
    exceeds its allowance:

    - [Deny]: every further run is refused with a structured denial;
    - [Throttle]: one probe run is admitted per exponentially-growing
      backoff window (a misbehaving region degrades, the pool survives);
    - [Quarantine]: the region is switched off — the transition fires
      {e exactly once}, and every later run is refused.

    All counters are exact under concurrency (one mutex over the table);
    the accounting seam ([quota-account]) fires {e before} any counter
    moves, so an injected accounting fault leaves the books untouched
    and the caller must deny the response. *)

type window = { max_runs : int; window_s : float }
(** A sliding-window rate allowance: at most [max_runs] admissions in
    any [window_s]-second span. Unlike the cumulative books this
    self-heals — admissions sliding out of the window free capacity
    with no operator action — so under [Throttle] the retry hint lands
    exactly on the window boundary (when the oldest admission expires)
    instead of an exponential backoff. Memory is bounded by [max_runs]
    timestamps per region. *)

type limits = {
  max_runs : int option;  (** admissible runs; the (n+1)th breaches *)
  max_traps : int option;
  max_fuel : int option;  (** cumulative {!Runtime.tick} calls *)
  max_wall_s : float option;  (** cumulative guest wall-clock *)
  max_mem_bytes : int option;  (** peak arena high-water mark *)
  runs_per_window : window option;  (** sliding-window rate, e.g. runs/hour *)
}

val no_limits : limits

val limits :
  ?max_runs:int ->
  ?max_traps:int ->
  ?max_fuel:int ->
  ?max_wall_s:float ->
  ?max_mem_bytes:int ->
  ?runs_per_window:window ->
  unit ->
  limits

type policy =
  | Deny
  | Throttle of { initial_backoff_s : float; max_backoff_s : float }
  | Quarantine

val policy_name : policy -> string

type counters = {
  runs : int;
  traps : int;
  fuel : int;
  wall_s : float;
  peak_mem_bytes : int;
  denied : int;  (** admissions refused (deny or quarantine) *)
  throttled : int;  (** admissions deferred into a backoff window *)
  quarantine_events : int;  (** quarantine transitions — 0 or 1 per region *)
}

val zero_counters : counters

type t

val create : ?now:(unit -> float) -> ?limits:limits -> ?policy:policy -> unit -> t
(** Defaults: wall clock, {!no_limits} (everything admits), [Deny].
    [now] is injectable so throttle-window tests run without sleeping. *)

type admission =
  | Admit
  | Deny_quota of { breached : string }
  | Backoff of { retry_in_s : float; breached : string }
  | Quarantined of { breached : string }

val admission_message : admission -> string
(** Structured rendering — names the breached limit, never region data. *)

val admit : t -> key:string -> admission
(** Gate a run on the region's cumulative books. Refusals also count
    (into [denied]/[throttled]) so starvation shows up in stats. *)

val account : t -> key:string -> trapped:bool -> fuel:int -> wall_s:float -> mem_bytes:int -> unit
(** Charge one completed run. Hits the [quota-account] fault seam before
    touching any counter; on an injected fault it raises
    {!Sesame_faults.Injected} with the books unchanged — the caller must
    fail the run closed. *)

val counters_for : t -> key:string -> counters option
val quarantined : t -> key:string -> bool

val snapshot : t -> (string * counters) list
(** All regions' books, sorted by key. *)

val totals : t -> counters
(** Aggregate across regions ([peak_mem_bytes] is the max, the rest sum). *)

val describe_counters : counters -> string

val state_string : t -> key:string -> string
(** Compact books-at-a-glance string bound into attestation manifests. *)
