type check_outcome = Caught | Missed of string

type check = {
  name : string;
  detail : string;
  outcome : check_outcome;
  elapsed_s : float;
}

type report = {
  checks : check list;
  arena_size : int;
  at_s : float;
  total_s : float;
}

let check_passed c = match c.outcome with Caught -> true | Missed _ -> false
let passed r = r.checks <> [] && List.for_all check_passed r.checks
let missed r = List.filter (fun c -> not (check_passed c)) r.checks

(* Canonical rendering: stable line-per-check text, so a hash of it is a
   usable report fingerprint for the attestation manifest (the signing
   layer hashes it; this module stays below [lib/signing]). *)
let render r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "sesame-preflight-v1 arena=%d checks=%d verdict=%s\n" r.arena_size
       (List.length r.checks)
       (if passed r then "pass" else "FAIL"));
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "%-24s %-7s %s\n" c.name
           (match c.outcome with Caught -> "caught" | Missed _ -> "MISSED")
           (match c.outcome with Caught -> c.detail | Missed why -> why)))
    r.checks;
  Buffer.contents b

let summary r =
  let n = List.length r.checks in
  let m = List.length (missed r) in
  if passed r then Printf.sprintf "preflight: %d/%d trap checks caught (%.1f ms)" n n (r.total_s *. 1e3)
  else
    Printf.sprintf "preflight FAILED: %d/%d trap checks missed (%s)" m n
      (String.concat ", " (List.map (fun c -> c.name) (missed r)))

let pp fmt r = Format.pp_print_string fmt (render r)
