type stats = {
  created : int;
  acquired : int;
  reused : int;
  wiped : int;
  dropped : int;
  poisoned : int;
  replaced : int;
  free : int;
  capacity : int;
  grown : int;
  shrunk : int;
}

(* Counters are Atomics and the free list sits behind a mutex: sandboxed
   regions may run from worker domains, and both the list and the stats
   must stay exact (a lost stats increment hides a quarantine; a torn
   free list hands one arena to two guests). [capacity] is mutable for
   autoscaling and only read/written under the same mutex. *)
type t = {
  mutable capacity : int;
  min_capacity : int;
  max_capacity : int;
  arena_size : int;
  lock : Mutex.t;
  mutable free : Arena.t list;
  mutable free_count : int;  (* |free|, kept so release stays O(1) *)
  mutable preflight : Preflight.report option;
  created : int Atomic.t;
  acquired : int Atomic.t;
  reused : int Atomic.t;
  wiped : int Atomic.t;
  dropped : int Atomic.t;
  poisoned : int Atomic.t;
  replaced : int Atomic.t;
  grown : int Atomic.t;
  shrunk : int Atomic.t;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(capacity = 2) ?min_capacity ?max_capacity ?(arena_size = 4 * 1024 * 1024) () =
  let min_capacity = Option.value min_capacity ~default:capacity in
  let max_capacity = max min_capacity (Option.value max_capacity ~default:capacity) in
  let capacity = min (max capacity min_capacity) max_capacity in
  let free = List.init capacity (fun _ -> Arena.create ~size:arena_size ()) in
  {
    capacity;
    min_capacity;
    max_capacity;
    arena_size;
    lock = Mutex.create ();
    free;
    free_count = capacity;
    preflight = None;
    created = Atomic.make capacity;
    acquired = Atomic.make 0;
    reused = Atomic.make 0;
    wiped = Atomic.make 0;
    dropped = Atomic.make 0;
    poisoned = Atomic.make 0;
    replaced = Atomic.make 0;
    grown = Atomic.make 0;
    shrunk = Atomic.make 0;
  }

let acquire t =
  Atomic.incr t.acquired;
  let pooled =
    with_lock t (fun () ->
        match t.free with
        | arena :: rest ->
            t.free <- rest;
            t.free_count <- t.free_count - 1;
            Some arena
        | [] -> None)
  in
  match pooled with
  | Some arena ->
      Atomic.incr t.reused;
      arena
  | None ->
      Atomic.incr t.created;
      Arena.create ~size:t.arena_size ()

(* A poisoned arena hosted a trapped or over-budget guest; its contents are
   untrusted and it must never serve another invocation. Drop it and — when
   the pool has room — preallocate a clean replacement so capacity (and the
   latency benefit of pooling) survives the fault. *)
let quarantine t arena =
  Arena.poison arena;
  Atomic.incr t.poisoned;
  Atomic.incr t.dropped;
  let replaced =
    with_lock t (fun () ->
        if t.free_count < t.capacity then begin
          t.free <- Arena.create ~size:t.arena_size () :: t.free;
          t.free_count <- t.free_count + 1;
          true
        end
        else false)
  in
  if replaced then begin
    Atomic.incr t.created;
    Atomic.incr t.replaced
  end

let release t arena =
  if Arena.poisoned arena then quarantine t arena
  else begin
    let returned =
      with_lock t (fun () ->
          if t.free_count < t.capacity then begin
            (* Only arenas that actually return to the pool are wiped (and
               counted as wiped); an arena the GC is about to reclaim needs
               neither. *)
            Arena.wipe arena;
            t.free <- arena :: t.free;
            t.free_count <- t.free_count + 1;
            true
          end
          else false)
    in
    if returned then Atomic.incr t.wiped else Atomic.incr t.dropped
  end

(* Autoscaling. Growing preallocates up to the new capacity so a burst is
   served from the pool rather than from per-request allocation; shrinking
   drops surplus free arenas (arenas in flight simply won't be readmitted
   past the new bound by [release]). Both clamp to [min,max]. *)
let set_capacity t n =
  let target = min (max n t.min_capacity) t.max_capacity in
  let added, dropped_now, direction =
    with_lock t (fun () ->
        let old = t.capacity in
        t.capacity <- target;
        if target > old then begin
          let add = max 0 (target - t.free_count) in
          for _ = 1 to add do
            t.free <- Arena.create ~size:t.arena_size () :: t.free
          done;
          t.free_count <- t.free_count + add;
          (add, 0, 1)
        end
        else if target < old then begin
          let drop = max 0 (t.free_count - target) in
          for _ = 1 to drop do
            match t.free with
            | _ :: rest ->
                t.free <- rest;
                t.free_count <- t.free_count - 1
            | [] -> ()
          done;
          (0, drop, -1)
        end
        else (0, 0, 0))
  in
  for _ = 1 to added do
    Atomic.incr t.created
  done;
  for _ = 1 to dropped_now do
    Atomic.incr t.dropped
  done;
  if direction > 0 then Atomic.incr t.grown
  else if direction < 0 then Atomic.incr t.shrunk;
  target

let scale_up t = set_capacity t (with_lock t (fun () -> t.capacity) + 1)
let scale_down t = set_capacity t (with_lock t (fun () -> t.capacity) - 1)
let capacity t = with_lock t (fun () -> t.capacity)
let bounds t = (t.min_capacity, t.max_capacity)
let attach_preflight t report = with_lock t (fun () -> t.preflight <- Some report)
let preflight_report t = with_lock t (fun () -> t.preflight)

let stats t =
  let free, capacity = with_lock t (fun () -> (t.free_count, t.capacity)) in
  {
    created = Atomic.get t.created;
    acquired = Atomic.get t.acquired;
    reused = Atomic.get t.reused;
    wiped = Atomic.get t.wiped;
    dropped = Atomic.get t.dropped;
    poisoned = Atomic.get t.poisoned;
    replaced = Atomic.get t.replaced;
    free;
    capacity;
    grown = Atomic.get t.grown;
    shrunk = Atomic.get t.shrunk;
  }

let available t = with_lock t (fun () -> t.free_count)

let healthy t =
  with_lock t (fun () ->
      t.free_count <= t.capacity && List.for_all (fun a -> not (Arena.poisoned a)) t.free)
