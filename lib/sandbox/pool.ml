type stats = {
  created : int;
  acquired : int;
  reused : int;
  wiped : int;
  dropped : int;
  poisoned : int;
  replaced : int;
}

type t = {
  capacity : int;
  arena_size : int;
  mutable free : Arena.t list;
  mutable free_count : int;  (* |free|, kept so release stays O(1) *)
  mutable stats : stats;
}

let create ?(capacity = 2) ?(arena_size = 4 * 1024 * 1024) () =
  let free = List.init capacity (fun _ -> Arena.create ~size:arena_size ()) in
  {
    capacity;
    arena_size;
    free;
    free_count = capacity;
    stats =
      {
        created = capacity;
        acquired = 0;
        reused = 0;
        wiped = 0;
        dropped = 0;
        poisoned = 0;
        replaced = 0;
      };
  }

let acquire t =
  let s = t.stats in
  match t.free with
  | arena :: rest ->
      t.free <- rest;
      t.free_count <- t.free_count - 1;
      t.stats <- { s with acquired = s.acquired + 1; reused = s.reused + 1 };
      arena
  | [] ->
      t.stats <- { s with acquired = s.acquired + 1; created = s.created + 1 };
      Arena.create ~size:t.arena_size ()

(* A poisoned arena hosted a trapped or over-budget guest; its contents are
   untrusted and it must never serve another invocation. Drop it and — when
   the pool has room — preallocate a clean replacement so capacity (and the
   latency benefit of pooling) survives the fault. *)
let quarantine t arena =
  Arena.poison arena;
  let s = t.stats in
  if t.free_count < t.capacity then begin
    t.free <- Arena.create ~size:t.arena_size () :: t.free;
    t.free_count <- t.free_count + 1;
    t.stats <-
      {
        s with
        poisoned = s.poisoned + 1;
        dropped = s.dropped + 1;
        created = s.created + 1;
        replaced = s.replaced + 1;
      }
  end
  else t.stats <- { s with poisoned = s.poisoned + 1; dropped = s.dropped + 1 }

let release t arena =
  if Arena.poisoned arena then quarantine t arena
  else if t.free_count < t.capacity then begin
    (* Only arenas that actually return to the pool are wiped (and counted
       as wiped); an arena the GC is about to reclaim needs neither. *)
    Arena.wipe arena;
    let s = t.stats in
    t.stats <- { s with wiped = s.wiped + 1 };
    t.free <- arena :: t.free;
    t.free_count <- t.free_count + 1
  end
  else begin
    let s = t.stats in
    t.stats <- { s with dropped = s.dropped + 1 }
  end

let stats t = t.stats
let available t = t.free_count
let healthy t = t.free_count <= t.capacity && List.for_all (fun a -> not (Arena.poisoned a)) t.free
