exception Sandbox_trap of string

type t = {
  mem : Bytes.t;
  globals_size : int;
  checkpoint : Bytes.t;  (* copy of the globals segment at creation *)
  mutable brk : int;  (* bump pointer *)
  mutable high_water : int;
  mutable poisoned : bool;
}

let trap fmt = Printf.ksprintf (fun m -> raise (Sandbox_trap m)) fmt

let create ?(size = 4 * 1024 * 1024) ?(globals_size = 4096) () =
  if globals_size >= size then invalid_arg "Arena.create: globals larger than arena";
  let mem = Bytes.make size '\000' in
  {
    mem;
    globals_size;
    checkpoint = Bytes.sub mem 0 globals_size;
    brk = globals_size;
    high_water = globals_size;
    poisoned = false;
  }

let size t = Bytes.length t.mem
let high_water t = t.high_water

let align8 n = (n + 7) land lnot 7

let poison t = t.poisoned <- true
let poisoned t = t.poisoned

let alloc t n =
  Sesame_faults.hit Sesame_faults.Arena_alloc;
  if n < 0 then trap "alloc of negative size %d" n;
  let addr = t.brk in
  let next = align8 (addr + n) in
  if next > Bytes.length t.mem then trap "sandbox heap exhausted (%d bytes requested)" n;
  t.brk <- next;
  if next > t.high_water then t.high_water <- next;
  addr

let check t addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.mem then
    trap "out-of-bounds sandbox access at %d (+%d)" addr len

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.get t.mem addr)

let write_u8 t addr v =
  check t addr 1;
  Bytes.set t.mem addr (Char.chr (v land 0xFF))

let read_u32 t addr =
  check t addr 4;
  Int32.to_int (Bytes.get_int32_le t.mem addr) land 0xFFFFFFFF

let write_u32 t addr v =
  check t addr 4;
  Bytes.set_int32_le t.mem addr (Int32.of_int v)

let read_f64 t addr =
  check t addr 8;
  Int64.float_of_bits (Bytes.get_int64_le t.mem addr)

let write_f64 t addr v =
  check t addr 8;
  Bytes.set_int64_le t.mem addr (Int64.bits_of_float v)

let read_bytes t addr len =
  check t addr len;
  Bytes.sub_string t.mem addr len

let write_bytes t addr s =
  check t addr (String.length s);
  Bytes.blit_string s 0 t.mem addr (String.length s)

let write_global_u32 t off v =
  if off < 0 || off + 4 > t.globals_size then trap "global offset %d out of range" off;
  write_u32 t off v

let read_global_u32 t off =
  if off < 0 || off + 4 > t.globals_size then trap "global offset %d out of range" off;
  read_u32 t off

let wipe t =
  Bytes.fill t.mem t.globals_size (t.high_water - t.globals_size) '\000';
  Bytes.blit t.checkpoint 0 t.mem 0 t.globals_size;
  t.brk <- t.globals_size;
  t.high_water <- t.globals_size

let reset_allocator t = t.brk <- t.globals_size

(* A fixed, arbitrary offset; real RLBox offsets guest pointers into the
   host address space. Tests use it to check pointers are translated. *)
let swizzle_offset _t = 0x5E5A0000
