type strategy = Serialize | Swizzle

let strategy_name = function Serialize -> "serialize" | Swizzle -> "swizzle"

(* Guest object layout (Swizzle):
     tag: u8 at +0 (padded to 4)
     Unit  0 | -
     Int   1 | lo:u32 +4, hi:u32 +8  (i64 kept in two words: 32-bit ABI)
     Float 2 | f64 at +8 (aligned)
     Bool  3 | u8 at +4
     Str   4 | len:u32 +4, ptr:u32 +8
     Vec   5 | len:u32 +4, ptr:u32 +8 -> u32 element addresses
     Tuple 6 | like Vec *)

let tag_unit = 0
and tag_int = 1
and tag_float = 2
and tag_bool = 3
and tag_str = 4
and tag_vec = 5
and tag_tuple = 6

let rec swizzle_in arena v =
  let header tag size =
    let addr = Arena.alloc arena size in
    Arena.write_u8 arena addr tag;
    addr
  in
  match v with
  | Value.Unit -> header tag_unit 4
  | Value.Int i ->
      let addr = header tag_int 12 in
      Arena.write_u32 arena (addr + 4) (i land 0xFFFFFFFF);
      Arena.write_u32 arena (addr + 8) ((i asr 32) land 0xFFFFFFFF);
      addr
  | Value.Float f ->
      let addr = header tag_float 16 in
      Arena.write_f64 arena (addr + 8) f;
      addr
  | Value.Bool b ->
      let addr = header tag_bool 8 in
      Arena.write_u8 arena (addr + 4) (if b then 1 else 0);
      addr
  | Value.Str s ->
      let addr = header tag_str 12 in
      let payload = Arena.alloc arena (String.length s) in
      Arena.write_bytes arena payload s;
      Arena.write_u32 arena (addr + 4) (String.length s);
      Arena.write_u32 arena (addr + 8) payload;
      addr
  | Value.Vec vs | Value.Tuple vs ->
      let tag = (match v with Value.Vec _ -> tag_vec | _ -> tag_tuple) in
      let addr = header tag 12 in
      let elems = List.map (swizzle_in arena) vs in
      let table = Arena.alloc arena (4 * List.length elems) in
      List.iteri (fun i e -> Arena.write_u32 arena (table + (4 * i)) e) elems;
      Arena.write_u32 arena (addr + 4) (List.length elems);
      Arena.write_u32 arena (addr + 8) table;
      addr

let rec swizzle_out arena addr =
  let tag = Arena.read_u8 arena addr in
  if tag = tag_unit then Value.Unit
  else if tag = tag_int then begin
    let lo = Arena.read_u32 arena (addr + 4) in
    let hi = Arena.read_u32 arena (addr + 8) in
    (* Sign-extend the high word back to a native int. *)
    let hi = if hi land 0x80000000 <> 0 then hi - 0x100000000 else hi in
    Value.Int ((hi lsl 32) lor lo)
  end
  else if tag = tag_float then Value.Float (Arena.read_f64 arena (addr + 8))
  else if tag = tag_bool then Value.Bool (Arena.read_u8 arena (addr + 4) <> 0)
  else if tag = tag_str then begin
    let len = Arena.read_u32 arena (addr + 4) in
    let payload = Arena.read_u32 arena (addr + 8) in
    Value.Str (Arena.read_bytes arena payload len)
  end
  else if tag = tag_vec || tag = tag_tuple then begin
    let len = Arena.read_u32 arena (addr + 4) in
    let table = Arena.read_u32 arena (addr + 8) in
    let elems =
      List.init len (fun i -> swizzle_out arena (Arena.read_u32 arena (table + (4 * i))))
    in
    if tag = tag_vec then Value.Vec elems else Value.Tuple elems
  end
  else raise (Arena.Sandbox_trap (Printf.sprintf "corrupt guest object tag %d" tag))

let serialize_in arena v =
  let encoded = Sesame_faults.corrupt_string Sesame_faults.Copier_encode (Codec.encode v) in
  let addr = Arena.alloc arena (4 + String.length encoded) in
  Arena.write_u32 arena addr (String.length encoded);
  Arena.write_bytes arena (addr + 4) encoded;
  addr

let serialize_out arena addr =
  let len = Arena.read_u32 arena addr in
  let encoded =
    Sesame_faults.corrupt_string Sesame_faults.Copier_decode
      (Arena.read_bytes arena (addr + 4) len)
  in
  match Codec.decode encoded with
  | Ok v -> v
  | Error msg -> raise (Arena.Sandbox_trap msg)

let copy_in strategy arena v =
  Sesame_faults.hit ~corruptible:(strategy = Serialize) Sesame_faults.Copier_encode;
  match strategy with
  | Swizzle -> swizzle_in arena v
  | Serialize -> serialize_in arena v

let copy_out strategy arena addr =
  Sesame_faults.hit ~corruptible:(strategy = Serialize) Sesame_faults.Copier_decode;
  match strategy with
  | Swizzle -> swizzle_out arena addr
  | Serialize -> serialize_out arena addr
