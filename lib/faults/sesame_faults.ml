type point =
  | Arena_alloc
  | Copier_encode
  | Copier_decode
  | Guest_body
  | Db_query
  | Policy_check
  | Template_render
  | Db_wal_append
  | Db_wal_fsync
  | Db_checkpoint_write
  | Db_checkpoint_rename
  | Preflight_trap_miss
  | Quota_account
  | Attest_append
  | Attest_fsync
  | Db_scan_cancel
  | Wal_commit_deadline
  | Brownout_enter
  | Brownout_exit

let all_points =
  [
    Arena_alloc;
    Copier_encode;
    Copier_decode;
    Guest_body;
    Db_query;
    Policy_check;
    Template_render;
    Db_wal_append;
    Db_wal_fsync;
    Db_checkpoint_write;
    Db_checkpoint_rename;
    Preflight_trap_miss;
    Quota_account;
    Attest_append;
    Attest_fsync;
    Db_scan_cancel;
    Wal_commit_deadline;
    Brownout_enter;
    Brownout_exit;
  ]

let point_index = function
  | Arena_alloc -> 0
  | Copier_encode -> 1
  | Copier_decode -> 2
  | Guest_body -> 3
  | Db_query -> 4
  | Policy_check -> 5
  | Template_render -> 6
  | Db_wal_append -> 7
  | Db_wal_fsync -> 8
  | Db_checkpoint_write -> 9
  | Db_checkpoint_rename -> 10
  | Preflight_trap_miss -> 11
  | Quota_account -> 12
  | Attest_append -> 13
  | Attest_fsync -> 14
  | Db_scan_cancel -> 15
  | Wal_commit_deadline -> 16
  | Brownout_enter -> 17
  | Brownout_exit -> 18

let n_points = 19

let point_name = function
  | Arena_alloc -> "arena-alloc"
  | Copier_encode -> "copier-encode"
  | Copier_decode -> "copier-decode"
  | Guest_body -> "guest-body"
  | Db_query -> "db-query"
  | Policy_check -> "policy-check"
  | Template_render -> "template-render"
  | Db_wal_append -> "db-wal-append"
  | Db_wal_fsync -> "db-wal-fsync"
  | Db_checkpoint_write -> "db-checkpoint-write"
  | Db_checkpoint_rename -> "db-checkpoint-rename"
  | Preflight_trap_miss -> "preflight-trap-miss"
  | Quota_account -> "quota-account"
  | Attest_append -> "attest-append"
  | Attest_fsync -> "attest-fsync"
  | Db_scan_cancel -> "db-scan-cancel"
  | Wal_commit_deadline -> "wal-commit-deadline"
  | Brownout_enter -> "brownout-enter"
  | Brownout_exit -> "brownout-exit"

let point_of_string s =
  List.find_opt (fun p -> point_name p = s) all_points

type action = Raise | Corrupt | Delay of int | Exhaust

let action_name = function
  | Raise -> "raise"
  | Corrupt -> "corrupt"
  | Delay ns -> Printf.sprintf "delay:%d" ns
  | Exhaust -> "exhaust"

let action_of_string s =
  match s with
  | "raise" -> Some Raise
  | "corrupt" -> Some Corrupt
  | "exhaust" -> Some Exhaust
  | "delay" -> Some (Delay 1_000_000)
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "delay" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some ns when ns >= 0 -> Some (Delay ns)
          | _ -> None)
      | _ -> None)

exception Injected of { point : point; action : action; transient : bool }

let injected_message point action ~transient =
  Printf.sprintf "%sinjected fault at %s (%s)"
    (if transient then "transient: " else "")
    (point_name point) (action_name action)

type plan = { point : point; action : action; nth : int }

let plan ?(nth = 1) point action = { point; action; nth }

(* Disarmed is the production configuration, so [hit] must stay a single
   load-and-branch in that case: one mutable bool guards everything. *)
let enabled = ref false
let plans : plan list ref = ref []
let counters = Array.make n_points 0
let corrupt_flags = Array.make n_points false
let rng = ref (Random.State.make [| 1742 |])

let reset_counters () =
  Array.fill counters 0 n_points 0;
  Array.fill corrupt_flags 0 n_points false

let arm ?(seed = 1742) ps =
  reset_counters ();
  plans := ps;
  rng := Random.State.make [| seed |];
  enabled := ps <> []

let disarm () =
  reset_counters ();
  plans := [];
  enabled := false

let armed () = !enabled

let busy_wait_ns ns =
  if ns > 0 then begin
    let deadline = Int64.add (Sesame_clock.now_ns ()) (Int64.of_int ns) in
    while Sesame_clock.now_ns () < deadline do
      ignore (Sys.opaque_identity ())
    done
  end

let fire ~corruptible point p =
  match p.action with
  | Raise -> raise (Injected { point; action = Raise; transient = false })
  | Exhaust -> raise (Injected { point; action = Exhaust; transient = true })
  | Delay ns -> busy_wait_ns ns
  | Corrupt ->
      if corruptible then corrupt_flags.(point_index point) <- true
      else raise (Injected { point; action = Corrupt; transient = false })

let hit ?(corruptible = false) point =
  if !enabled then begin
    let i = point_index point in
    counters.(i) <- counters.(i) + 1;
    corrupt_flags.(i) <- false;
    let n = counters.(i) in
    List.iter
      (fun p -> if p.point = point && (p.nth = 0 || p.nth = n) then fire ~corruptible point p)
      !plans
  end

let corrupting point = !enabled && corrupt_flags.(point_index point)

let corrupt_string point s =
  if corrupting point && String.length s > 0 then begin
    let b = Bytes.of_string s in
    let i = Random.State.int !rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xA5));
    Bytes.to_string b
  end
  else s

let hits point = counters.(point_index point)
