(** Deterministic fault injection for the enforcement runtime.

    Every seam the fail-closed invariant depends on — arena allocation,
    sandbox copy-in/out, the guest body, database queries, policy checks,
    template rendering — calls {!hit} with a named {!point}. When the
    injector is disarmed (the default, and the production configuration)
    a hit is a single load-and-branch; when armed, a {!plan} can raise,
    corrupt data, delay, or simulate resource exhaustion on the Nth
    traversal of its point. Given the same seed and plans, a run is
    bit-for-bit reproducible: the matrix test suite relies on this to
    assert that {e every} injected fault surfaces as a structured
    deny/error and never as leaked data or a crashed server. *)

type point =
  | Arena_alloc      (** {!Sesame_sandbox.Arena.alloc} *)
  | Copier_encode    (** sandbox copy-in ({!Sesame_sandbox.Copier.copy_in}) *)
  | Copier_decode    (** sandbox copy-out ({!Sesame_sandbox.Copier.copy_out}) *)
  | Guest_body       (** entry to the guest closure in [Runtime.run] *)
  | Db_query         (** statement execution in [Database] *)
  | Policy_check     (** sink-side policy checks in [Sesame_conn]/[Sesame_web] *)
  | Template_render  (** the HTML render sink in [Sesame_web.render] *)
  | Db_wal_append    (** WAL record append in [Sesame_wal.Wal.append] — a
                         crash/IO-error model for the redo log; a fault
                         here means the write was never acknowledged *)
  | Db_wal_fsync     (** the [fsync] made before acknowledging a batch
                         ([Sesame_wal.Wal]); a fault models a lost disk
                         flush, so the writer must fail the statement *)
  | Db_checkpoint_write
      (** serialization of the checkpoint temp file
          ([Sesame_wal.Checkpoint.write]); a fault aborts the checkpoint,
          leaving the previous checkpoint + WAL authoritative *)
  | Db_checkpoint_rename
      (** the atomic rename that publishes a checkpoint; a fault models a
          crash between temp-file write and publication — recovery must
          ignore the temp file and replay the old checkpoint + WAL *)
  | Preflight_trap_miss
      (** the boot-time SFI preflight's trap-confirmation step
          ([Sesame_sandbox.Sfi]); a fault models a build on which a
          deliberate trap was {e not} caught — the preflight must report
          the check as missed and pool construction must be refused *)
  | Quota_account
      (** cumulative per-region resource accounting
          ([Sesame_sandbox.Quota.account]); a fault means the run's usage
          could not be charged, so the run's result must be denied rather
          than served unaccounted *)
  | Attest_append
      (** attestation-manifest append ([Sesame_signing.Attest]); a fault
          means the run cannot be bound to its approving verdict, so the
          result must be denied *)
  | Attest_fsync
      (** the [fsync] between attestation-frame write and
          acknowledgement; a fault models a manifest the disk never saw *)
  | Db_scan_cancel
      (** the cooperative cancellation checkpoint inside long table scans
          ([Sesame_db.Table]); a fault models a scan whose budget check
          itself misfires — the scan must abandon with a structured
          refusal, never return a partial row set as if complete *)
  | Wal_commit_deadline
      (** the write-admission deadline check before a mutation is applied
          and journaled ([Sesame_db.Database]); a fault refuses the write
          at admission — before any state changed, so nothing is torn and
          the store must not poison *)
  | Brownout_enter
      (** the transition into read-only brownout serving
          ([Sesame_core.Sesame_conn]); a fault models the snapshot
          recovery itself failing — reads must then fail closed exactly
          as before brownout existed *)
  | Brownout_exit
      (** the transition out of brownout back to full service; a fault
          keeps the store degraded (reads from snapshot, writes refused)
          rather than resuming with a half-recovered store *)

val all_points : point list
val point_name : point -> string
(** Stable kebab-case name, e.g. ["db-query"]. *)

val point_of_string : string -> point option

type action =
  | Raise          (** raise {!Injected} at the seam (a crash/bug model) *)
  | Corrupt        (** flip bytes in data crossing the seam; seams that
                       carry no corruptible payload escalate to [Raise] *)
  | Delay of int   (** busy-wait this many nanoseconds (a stall model) *)
  | Exhaust        (** raise {!Injected} marked {e transient} (resource
                       exhaustion / flaky-dependency model) *)

val action_name : action -> string
val action_of_string : string -> action option
(** Accepts ["raise"], ["corrupt"], ["exhaust"], ["delay"] (1 ms) and
    ["delay:<ns>"]. *)

exception Injected of { point : point; action : action; transient : bool }
(** What an armed seam raises. [transient] is true only for [Exhaust]:
    retry machinery may treat those as retryable; everything else is
    permanent and must fail closed immediately. *)

val injected_message : point -> action -> transient:bool -> string
(** Canonical rendering, prefixed ["transient: "] when transient, so
    string-level error channels (the DB layer) stay classifiable. *)

type plan = { point : point; action : action; nth : int }
(** Fires on the [nth] traversal of [point] (1-based). [nth = 0] fires on
    {e every} traversal. *)

val plan : ?nth:int -> point -> action -> plan
(** [nth] defaults to 1: fire on the first traversal after arming. *)

(** {1 Arming} *)

val arm : ?seed:int -> plan list -> unit
(** Installs the plans, resets all hit counters, and seeds the RNG used
    for corruption (default seed 1742). Replaces any previous arming. *)

val disarm : unit -> unit
(** Back to the production no-op configuration (counters cleared). *)

val armed : unit -> bool

(** {1 Seam API} *)

val hit : ?corruptible:bool -> point -> unit
(** Counts one traversal and applies any due plan: [Raise]/[Exhaust]
    raise {!Injected}, [Delay] busy-waits, [Corrupt] marks the point as
    {!corrupting} when [corruptible] (the seam then mangles its own
    payload) and escalates to [Raise] otherwise. Disarmed: a single
    branch. *)

val corrupting : point -> bool
(** True iff a [Corrupt] plan fired on the latest {!hit} of [point].
    Stable until that point's next hit. *)

val corrupt_string : point -> string -> string
(** When {!corrupting point}, returns a copy with one deterministically
    chosen byte flipped (seeded RNG); otherwise the string unchanged.
    Empty strings pass through. *)

val hits : point -> int
(** Traversals of [point] since the last {!arm}/{!disarm} — lets tests
    assert a seam was actually exercised. *)
