module Scrut = Sesame_scrutinizer
module Elision = Scrut.Elision

type model = {
  app : string;
  families : Elision.family list;
  sites : Elision.site list;
}

let spec_of name =
  match
    List.find_opt (fun (c : App_corpus.case) -> String.equal c.name name) (App_corpus.cases ())
  with
  | Some c -> c.spec
  | None -> invalid_arg ("elision corpus references unknown region " ^ name)

(* The admin principals mirror the app modules (lib/apps); the corpus
   cannot depend on them, so the constants are restated here and the
   differential tests cross-check the websubmit ones against the app. *)
let websubmit_admins = [ "admin@school.edu" ]
let voltron_admins = [ "dean@university.edu" ]
let portfolio_admins = [ "officer@school.cz" ]

let websubmit_model () =
  {
    app = "websubmit";
    families =
      [
        {
          family = "websubmit::answer-access";
          inspects = [ ("answers", [ "email" ]); ("answers", [ "lecture" ]) ];
          satisfied_when = [ [ Elision.Principal_in websubmit_admins ] ];
          pushable = false;
        };
        {
          family = "websubmit::grade-access";
          inspects = [ ("answers", [ "email" ]) ];
          satisfied_when =
            [
              [ Elision.Custom_eq ("role", "employer") ];
              [ Elision.Principal_in websubmit_admins ];
            ];
          pushable = true;
        };
        {
          family = "websubmit::ml-training";
          inspects = [ ("users", [ "consent_ml" ]) ];
          satisfied_when = [ [ Elision.Sink_not "ml::train" ] ];
          pushable = true;
        };
        {
          (* Instance data only (k, members): residual by construction. *)
          family = "websubmit::k-anonymity";
          inspects = [];
          satisfied_when = [];
          pushable = false;
        };
      ];
    sites =
      [
        {
          endpoint = "/aggregates";
          sinks = [ "http::render" ];
          facts =
            [
              Elision.Principal_in websubmit_admins;
              Elision.Custom_not ("role", "employer");
            ];
          region = Some (spec_of "ws::mean_region");
          row_params = [ ("grades", "answers") ];
        };
        {
          (* The corpus predict region reads only model.weight and
             model.b: the inspected answers.email place is provably
             never released, so grade access is field-disjoint here
             even with no context facts at all. *)
          endpoint = "/predict";
          sinks = [ "http::respond" ];
          facts = [];
          region = Some (spec_of "ws::predict_region");
          row_params = [ ("model", "answers") ];
        };
        {
          (* Training: consent is instance data at exactly the guarded
             sink, so MlTraining cannot be elided — but its binding
             translates to a row predicate, so it classifies pushable. *)
          endpoint = "/retrain";
          sinks = [ "ml::train" ];
          facts = [ Elision.Principal_in websubmit_admins ];
          region = None;
          row_params = [];
        };
      ];
  }

let youchat_model () =
  {
    app = "youchat";
    families =
      [
        {
          (* Sender, recipient, and group membership are all instance
             data: no context clause ever satisfies the check, so every
             triple must classify residual. *)
          family = "youchat::message-access";
          inspects = [ ("messages", [ "sender" ]); ("messages", [ "recipient" ]) ];
          satisfied_when = [];
          pushable = false;
        };
      ];
    sites =
      [
        {
          endpoint = "/inbox";
          sinks = [ "http::render" ];
          facts = [];
          region = Some (spec_of "yc::preview_region");
          row_params = [ ("body", "messages") ];
        };
      ];
  }

let voltron_model () =
  {
    app = "voltron";
    families =
      [
        {
          family = "voltron::enroll-instructor";
          inspects = [];
          satisfied_when = [ [ Elision.Principal_in voltron_admins ] ];
          pushable = false;
        };
        {
          family = "voltron::firebase-auth";
          inspects = [];
          satisfied_when = [ [ Elision.Sink_is "db::query" ] ];
          pushable = false;
        };
        {
          family = "voltron::buffer-read";
          inspects = [ ("enrollments", [ "student" ]); ("classes", [ "instructor" ]) ];
          satisfied_when = [];
          pushable = false;
        };
      ];
    sites =
      [
        {
          (* Dashboard reads: the auth token reaches the read-query sink
             only, where FirebaseAuth is identically true. *)
          endpoint = "/dashboard";
          sinks = [ "db::query" ];
          facts = [];
          region = None;
          row_params = [];
        };
        {
          endpoint = "/buffer";
          sinks = [ "http::render" ];
          facts = [];
          region = Some (spec_of "vt::line_count_region");
          row_params = [ ("code", "buffers") ];
        };
      ];
  }

let portfolio_model () =
  {
    app = "portfolio";
    families =
      [
        {
          family = "portfolio::candidate-data";
          inspects = [ ("candidates", [ "email" ]) ];
          satisfied_when = [ [ Elision.Principal_in portfolio_admins ] ];
          pushable = false;
        };
        {
          (* Key material may touch DB sinks freely but never any other
             sink without the owner: residual at every release site. *)
          family = "portfolio::private-key";
          inspects = [ ("candidates", [ "private_key" ]) ];
          satisfied_when =
            [
              [ Elision.Sink_is "db::insert" ];
              [ Elision.Sink_is "db::query" ];
              [ Elision.Sink_is "db::execute" ];
            ];
          pushable = false;
        };
      ];
    sites =
      [
        {
          endpoint = "/review";
          sinks = [ "http::render" ];
          facts = [ Elision.Principal_in portfolio_admins ];
          region = None;
          row_params = [];
        };
      ];
  }

let models () =
  [ youchat_model (); voltron_model (); portfolio_model (); websubmit_model () ]

let model app = List.find_opt (fun m -> String.equal m.app app) (models ())

let classify ?(scale = App_corpus.Small) m =
  Elision.classify ~program:(App_corpus.program scale) ~families:m.families ~sites:m.sites ()
