(* Field-disjoint precision regions: leakage-free code the var-granular
   seed engine wrongly rejects because one sensitive field poisons the
   whole struct. Every [flips] case is accepted by the place-sensitive
   engine and rejected by [Legacy_analysis]; the controls are flows the
   place-sensitive engine must keep rejecting — genuine leaks plus its
   deliberate conservatisms (depth widening, index insensitivity,
   var-granular taint signatures). *)

module Scrut = Sesame_scrutinizer
open Scrut.Ir

type case = {
  name : string;
  spec : Scrut.Spec.t;
  flips : bool;
  description : string;
}

let program () =
  let p = Scrut.Program.create () in
  Scrut.Program.define_all p
    [
      (* The audit sink: a native body nothing sensitive may reach. *)
      native ~package:"audit" ~name:"audit::emit" ~params:[ "msg" ] ();
      (* Writes its second argument into one field of its first — the
         per-parameter per-path write-back summary is (dst, [secret]). *)
      func ~name:"pc::set_secret" ~params:[ "dst"; "v" ]
        [ Assign (Lfield ("dst", "secret"), Var "v") ];
      (* Same shape one level down: fills dst.email, so a caller passing
         prof.contact sees the write land at prof.contact.email. *)
      func ~name:"pc::fill_contact" ~params:[ "dst"; "v" ]
        [ Assign (Lfield ("dst", "email"), Var "v") ];
      (* Splices to a depth-2 write-back: (dst, contact.email). *)
      func ~name:"pc::fill_deep" ~params:[ "dst"; "v" ]
        [ Expr_stmt (Call (Static "pc::fill_contact", [ Field (Var "dst", "contact"); Var "v" ])) ];
      (* Depth 3: home.contact.email widens to (dst, home.contact). *)
      func ~name:"pc::fill_deeper" ~params:[ "dst"; "v" ]
        [ Expr_stmt (Call (Static "pc::fill_deep", [ Field (Var "dst", "home"); Var "v" ])) ];
      (* Reads only the clean sibling field of its argument. *)
      func ~name:"pc::summarize" ~params:[ "rec" ]
        [ Return (Some (Field (Var "rec", "public"))) ];
    ];
  p

let spec name body = Scrut.Spec.make ~name ~params:[ "q" ] body

let flip name ~description body = { name; spec = spec name body; flips = true; description }

let control name ~description body =
  { name; spec = spec name body; flips = false; description }

let cases () =
  [
    (* -------- flips: rejected by the seed engine, leakage-free -------- *)
    flip "pc::local_field_disjoint"
      ~description:"sink reads the clean sibling of a tainted field"
      [
        Let ("rec", Str_lit "record");
        Assign (Lfield ("rec", "secret"), Var "q");
        Expr_stmt (Call (Static "audit::emit", [ Field (Var "rec", "public") ]));
      ];
    flip "pc::callee_writeback_disjoint"
      ~description:"callee writes dst.secret; sink reads dst.public"
      [
        Let ("rec", Str_lit "record");
        Expr_stmt (Call (Static "pc::set_secret", [ Ref_mut "rec"; Var "q" ]));
        Expr_stmt (Call (Static "audit::emit", [ Field (Var "rec", "public") ]));
      ];
    flip "pc::global_clean_field"
      ~description:"global write of a clean sibling field"
      [
        Let ("form", Str_lit "form");
        Assign (Lfield ("form", "token"), Var "q");
        Assign (Lglobal "stats", Field (Var "form", "count"));
      ];
    flip "pc::nested_disjoint"
      ~description:"depth-2 write-back; sink reads the disjoint depth-2 sibling"
      [
        Let ("prof", Str_lit "profile");
        Expr_stmt (Call (Static "pc::fill_deep", [ Ref_mut "prof"; Var "q" ]));
        Expr_stmt
          (Call (Static "audit::emit", [ Field (Field (Var "prof", "contact"), "phone") ]));
      ];
    flip "pc::branch_clean_field"
      ~description:"branch on a clean field with an effect in the body"
      [
        Let ("st", Str_lit "state");
        Assign (Lfield ("st", "secret"), Var "q");
        If
          ( Field (Var "st", "flag"),
            [ Expr_stmt (Call (Static "audit::emit", [ Str_lit "ping" ])) ],
            [] );
      ];
    flip "pc::copy_clean_field"
      ~description:"a let-copy of the clean field stays clean"
      [
        Let ("form", Str_lit "form");
        Assign (Lfield ("form", "body"), Var "q");
        Let ("meta", Field (Var "form", "meta"));
        Expr_stmt (Call (Static "audit::emit", [ Var "meta" ]));
      ];
    (* -------- controls: flows the place-sensitive engine must keep
       rejecting (genuine leaks and deliberate conservatisms) -------- *)
    control "pc::callee_reads_clean_field"
      ~description:
        "argument taint signatures are var-granular: a part-tainted struct passed whole is conservatively tainted"
      [
        Let ("rec", Str_lit "record");
        Assign (Lfield ("rec", "secret"), Var "q");
        Expr_stmt
          (Call (Static "audit::emit", [ Call (Static "pc::summarize", [ Var "rec" ]) ]));
      ];
    control "pc::same_field_leak"
      ~description:"the tainted field itself reaches the sink"
      [
        Let ("rec", Str_lit "record");
        Assign (Lfield ("rec", "secret"), Var "q");
        Expr_stmt (Call (Static "audit::emit", [ Field (Var "rec", "secret") ]));
      ];
    control "pc::whole_struct_leak"
      ~description:"the whole struct (tainted field included) reaches the sink"
      [
        Let ("rec", Str_lit "record");
        Assign (Lfield ("rec", "secret"), Var "q");
        Expr_stmt (Call (Static "audit::emit", [ Var "rec" ]));
      ];
    control "pc::depth_widening"
      ~description:"beyond depth k the path widens and siblings merge"
      [
        Let ("prof", Str_lit "profile");
        (* The write lands at prof.home.contact.email, truncated to
           prof.home.contact — so the depth-3 sibling read below overlaps
           the widened entry and is conservatively rejected. *)
        Expr_stmt (Call (Static "pc::fill_deeper", [ Ref_mut "prof"; Var "q" ]));
        Expr_stmt
          (Call
             ( Static "audit::emit",
               [ Field (Field (Field (Var "prof", "home"), "contact"), "phone") ] ));
      ];
    control "pc::index_insensitive"
      ~description:"element writes merge at the base: index positions are runtime values"
      [
        Let ("arr", Vec []);
        Assign (Lindex ("arr", Int_lit 0), Var "q");
        Expr_stmt (Call (Static "audit::emit", [ Index (Var "arr", Int_lit 1) ]));
      ];
  ]

let counts () =
  let cs = cases () in
  let flips = List.length (List.filter (fun c -> c.flips) cs) in
  (flips, List.length cs - flips)
