(** Per-app elision models over the Fig. 10 corpus: the static input
    ({!Sesame_scrutinizer.Elision.family} facts and release-site models)
    for each of the four case-study apps, bound to region specs from
    {!App_corpus} so certificates replay against the corpus programs.

    The models are deliberately honest about what each family's verdict
    depends on: YouChat's message access hinges entirely on instance
    data (sender, recipient, group membership), so every one of its
    checks classifies residual — the pass must be able to say "nothing
    to elide" as readily as it proves redundancy. *)

module Scrut := Sesame_scrutinizer

type model = {
  app : string;  (** "youchat" | "voltron" | "portfolio" | "websubmit" *)
  families : Scrut.Elision.family list;
  sites : Scrut.Elision.site list;
}

val models : unit -> model list
(** One model per app, in {!App_corpus.apps} order. Region-bearing sites
    reference specs looked up from {!App_corpus.cases} by name. *)

val model : string -> model option
(** Look up one app's model. *)

val classify :
  ?scale:App_corpus.scale -> model -> Scrut.Elision.certificate list
(** Run the elision pass for one app over the corpus program at [scale]
    (default [Small]). *)
