(** Field-disjoint precision regions.

    Leakage-free regions the var-granular seed engine wrongly rejects —
    one sensitive field used to poison the whole struct — plus controls
    that must stay rejected (genuine leaks, depth-widened flows,
    index-insensitive element writes, var-granular taint signatures).
    The differential suite asserts that every [flips] case is rejected by
    [Legacy_analysis] and accepted by the place-sensitive engine, that
    every control is rejected by the place-sensitive engine with a
    non-empty witness trace, and that every case the legacy engine
    rejects is still rejected. *)

module Scrut := Sesame_scrutinizer

type case = {
  name : string;
  spec : Scrut.Spec.t;
  flips : bool;
      (** [true]: leakage-free, legacy rejects, place-sensitive accepts.
          [false]: a control the place-sensitive engine must reject. *)
  description : string;
}

val program : unit -> Scrut.Program.t
val cases : unit -> case list

val counts : unit -> int * int
(** (flips, controls). *)
