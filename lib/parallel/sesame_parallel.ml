(* Worker domains block on a condition variable for queued tasks; a
   fan-out pushes one closure per chunk (minus one: the caller runs the
   first chunk itself, then helps drain the queue before blocking on the
   completion count). All coordination state is either behind the pool
   mutex or an Atomic, so counts stay exact under any interleaving. *)

type stats = { jobs : int; chunks : int; sequential : int }

type t = {
  workers : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  job_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable handles : unit Domain.t list;
  jobs : int Atomic.t;
  chunk_count : int Atomic.t;
  sequential_runs : int Atomic.t;
}

(* A task executing on any domain (worker or the caller helping out) must
   not recursively fan out on the same pool: the inner run would park the
   domain waiting for chunks only this domain could execute. *)
let inside_task : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let sequentialized f =
  let guard = Domain.DLS.get inside_task in
  let saved = !guard in
  guard := true;
  Fun.protect ~finally:(fun () -> guard := saved) f

let env_domains () =
  let cap = max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "PARALLEL_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n cap
      | Some _ | None -> 1)

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && t.live do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* shutting down *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let create ?domains () =
  let requested = match domains with Some d -> d | None -> env_domains () in
  let workers = max 0 (requested - 1) in
  let t =
    {
      workers;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      job_done = Condition.create ();
      queue = Queue.create ();
      live = true;
      handles = [];
      jobs = Atomic.make 0;
      chunk_count = Atomic.make 0;
      sequential_runs = Atomic.make 0;
    }
  in
  t.handles <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let domains t = t.workers + 1

let shutdown t =
  Mutex.lock t.mutex;
  let handles = t.handles in
  t.live <- false;
  t.handles <- [];
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join handles

let default_pool = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
        let t = create () in
        default_pool := Some t;
        if t.workers > 0 then at_exit (fun () -> shutdown t);
        t
  in
  Mutex.unlock default_mutex;
  t

let stats t =
  {
    jobs = Atomic.get t.jobs;
    chunks = Atomic.get t.chunk_count;
    sequential = Atomic.get t.sequential_runs;
  }

let run_sequential t ~chunks f =
  Atomic.incr t.sequential_runs;
  for i = 0 to chunks - 1 do
    f i
  done

let run_chunks t ~chunks f =
  if chunks <= 0 then ()
  else if chunks = 1 || t.workers = 0 || (not t.live) || !(Domain.DLS.get inside_task)
  then run_sequential t ~chunks f
  else begin
    Atomic.incr t.jobs;
    let completed = Atomic.make 0 in
    let failure = Atomic.make None in
    let task i () =
      let guard = Domain.DLS.get inside_task in
      guard := true;
      (try f i
       with exn ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set failure None (Some (exn, bt))));
      guard := false;
      Atomic.incr t.chunk_count;
      if Atomic.fetch_and_add completed 1 = chunks - 1 then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.job_done;
        Mutex.unlock t.mutex
      end
    in
    Mutex.lock t.mutex;
    for i = 1 to chunks - 1 do
      Queue.push (task i) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    task 0 ();
    (* Help drain before blocking: under contention (or with fewer workers
       than chunks) the caller is just another executor. *)
    let rec help () =
      Mutex.lock t.mutex;
      let next = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
      Mutex.unlock t.mutex;
      match next with
      | Some task ->
          task ();
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock t.mutex;
    while Atomic.get completed < chunks do
      Condition.wait t.job_done t.mutex
    done;
    Mutex.unlock t.mutex;
    match Atomic.get failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

let chunk_ranges ~n ~chunks =
  (* Contiguous, near-equal ranges covering [0, n); chunk k is
     [lo k, lo (k+1)). *)
  fun k -> (n * k / chunks, n * (k + 1) / chunks)

let chunk_count_for t ~n =
  (* A couple of chunks per domain smooths uneven per-element cost without
     paying queue overhead per element. *)
  max 1 (min n (2 * (t.workers + 1)))

let map_array ?(cutoff = 2048) t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if n < cutoff || t.workers = 0 || (not t.live) || !(Domain.DLS.get inside_task)
  then begin
    Atomic.incr t.sequential_runs;
    Array.map f arr
  end
  else begin
    let out = Array.make n (f arr.(0)) in
    let chunks = chunk_count_for t ~n:(n - 1) in
    let range = chunk_ranges ~n:(n - 1) ~chunks in
    run_chunks t ~chunks (fun k ->
        let lo, hi = range k in
        for i = lo to hi - 1 do
          out.(i + 1) <- f arr.(i + 1)
        done);
    out
  end

let fold_range ?(cutoff = 2048) t ~n ~chunk ~merge ~init =
  if n <= 0 then init
  else if n < cutoff || t.workers = 0 || (not t.live) || !(Domain.DLS.get inside_task)
  then begin
    Atomic.incr t.sequential_runs;
    merge init (chunk ~lo:0 ~hi:n)
  end
  else begin
    let chunks = chunk_count_for t ~n in
    let range = chunk_ranges ~n ~chunks in
    let results = Array.make chunks None in
    run_chunks t ~chunks (fun k ->
        let lo, hi = range k in
        results.(k) <- Some (chunk ~lo ~hi));
    Array.fold_left
      (fun acc r -> match r with Some r -> merge acc r | None -> acc)
      init results
  end
