(** A small, reusable pool of worker domains for chunked data-parallel
    folds over the enforcement hot path.

    Design constraints, in order:

    - {e Determinism}: parallel combinators must be drop-in replacements
      for their sequential counterparts — results (and result {e order})
      are identical, chunks are merged in index order, and the first
      exception raised by any chunk is re-raised in the caller.
    - {e No oversubscription}: one pool is shared process-wide by
      default, sized by [PARALLEL_DOMAINS] (total participating domains,
      including the calling one). Unset or [<= 1] means no workers and
      every combinator degrades to the sequential path.
    - {e Reentrancy}: a task that itself calls a combinator runs it
      sequentially instead of deadlocking on the pool. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains () ] starts [domains - 1] worker domains (the
    calling domain participates as the remaining one). [domains <= 1]
    creates a pool with no workers — all combinators run sequentially.
    Default: {!env_domains}. *)

val domains : t -> int
(** Total participating domains (workers + the caller), >= 1. *)

val shutdown : t -> unit
(** Joins the workers. Idempotent; combinators on a shut-down pool run
    sequentially. *)

val env_domains : unit -> int
(** The [PARALLEL_DOMAINS] environment variable clamped to
    [1 .. recommended_domain_count], defaulting to 1 (sequential) when
    unset or unparsable. *)

val default : unit -> t
(** The lazily-created process-wide pool, sized by {!env_domains} at
    first use and shut down at exit. *)

type stats = {
  jobs : int;  (** parallel fan-outs executed *)
  chunks : int;  (** chunks run across all jobs *)
  sequential : int;  (** combinator calls that took the sequential path *)
}

val stats : t -> stats

val sequentialized : (unit -> 'a) -> 'a
(** [sequentialized f] runs [f ()] with the calling domain's
    pool-reentrancy guard set, so any combinator call inside [f]
    degrades to its sequential path instead of fanning out. For
    long-lived worker domains created {e outside} the pool (e.g. the
    server's burst workers) that execute handlers which may themselves
    use the pool: without the guard such a handler would enqueue chunks
    no resident worker is obliged to pick up promptly. The guard is
    restored on exit. *)

val run_chunks : t -> chunks:int -> (int -> unit) -> unit
(** [run_chunks t ~chunks f] runs [f 0 .. f (chunks-1)], distributing
    chunks over the pool; the caller participates and the call returns
    only when every chunk has finished. Chunks must be independent. The
    first exception (in completion order) is re-raised. *)

val map_array : ?cutoff:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map]. Arrays shorter than [cutoff]
    (default 2048) are mapped sequentially — below that the fan-out
    costs more than it saves. *)

val fold_range :
  ?cutoff:int ->
  t ->
  n:int ->
  chunk:(lo:int -> hi:int -> 'b) ->
  merge:('a -> 'b -> 'a) ->
  init:'a ->
  'a
(** [fold_range t ~n ~chunk ~merge ~init] splits [0 .. n-1] into
    contiguous ranges, evaluates [chunk ~lo ~hi] (hi exclusive) for each
    in parallel, and merges results {e in range order} on the calling
    domain: [merge (... (merge init r0) ...) rlast] — so a [merge] that
    concatenates preserves the sequential order. *)
