(** Monotonic wall-clock time.

    [Sys.time] measures CPU time, which under-counts whenever the process
    is descheduled or blocked; every duration in this repository (DB
    round-trip modelling, analysis timings, benchmark samples) wants
    elapsed wall time that never goes backwards. This wraps the
    CLOCK_MONOTONIC stubs that ship with bechamel, so no new dependency is
    introduced. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. The epoch is unspecified; only
    differences are meaningful. *)

val now_s : unit -> float
(** {!now_ns} in seconds, for callers that do float arithmetic. *)

val elapsed_s : since:int64 -> float
(** Seconds elapsed since a {!now_ns} reading. *)
