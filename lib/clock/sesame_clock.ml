let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (now_ns ()) *. 1e-9
let elapsed_s ~since = Int64.to_float (Int64.sub (now_ns ()) since) *. 1e-9
