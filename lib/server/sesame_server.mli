(** Real TCP serving for [Sesame_http]: a listener + accept loop feeding
    a dedicated {!Sesame_parallel} domain pool, HTTP/1.1 keep-alive with
    per-connection request and idle-time bounds, and shed-don't-queue
    overload behaviour (503 once [max_connections] sockets are open).

    Handlers run inside pool tasks, so any [Sesame_parallel] fan-out
    they reach (Enforce's wide conjunctions, the connector's grouping
    pass) takes its sequential path per-request — parallelism comes from
    concurrent connections, one handler domain each. *)

module Http = Sesame_http

type autoscale = {
  min_domains : int;
      (** floor on total handler workers; when above [config.domains]
          the difference is pre-spawned as burst workers at start *)
  max_domains : int;  (** ceiling on total handler workers *)
  interval_s : float;  (** supervisor sampling period *)
  queue_high : int;
      (** handoff-queue depth that counts as pressure; any shedding
          since the last sample counts as pressure too *)
  idle_samples : int;
      (** consecutive quiet samples (empty queue, no shedding) before
          one burst worker is retired *)
}

val default_autoscale : autoscale
(** floor 0 (the pool alone), ceiling 8, 50 ms sampling, queue depth 4,
    10 quiet samples to shrink. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  domains : int;
      (** handler domains; the server creates its own pool so serving
          never competes with the process-default pool *)
  backlog : int;
  max_connections : int;
      (** accepted-but-unfinished connections beyond this are shed with
          an immediate 503 + close *)
  max_requests_per_connection : int;
  idle_timeout_s : float;  (** SO_RCVTIMEO on each connection *)
  limits : Http.Wire.limits;
  default_deadline_ms : int;
      (** wall budget stamped on each request when the client sends no
          [X-Deadline-Ms]; 0 leaves the request unbounded *)
  max_deadline_ms : int;
      (** ceiling on a client-requested [X-Deadline-Ms] — clients may
          tighten their budget freely but never extend past this *)
  retry_after_s : int;
      (** [Retry-After] value stamped on every 503 the server
          originates (accept-time sheds and mutation sheds alike) *)
  health_paths : string list;
      (** paths never shed at request level — health probes keep
          answering while everything else degrades *)
  shed_mutations_at : int;
      (** active connections at/above this shed non-health mutations
          (anything but GET/HEAD) with 503 + [Retry-After], so reads
          keep their capacity right up to [max_connections] *)
  autoscale : autoscale option;
      (** [None] (the default) keeps the fixed [domains]-sized worker
          set; [Some] adds a supervisor domain that grows the set with
          burst workers under queue/shed pressure and shrinks it when
          idle. Burst workers run outside the pool but under the same
          reentrancy guard, so handler fan-outs still degrade to their
          sequential path. *)
}

val default_config : config
(** 127.0.0.1:ephemeral, [max 2 (Sesame_parallel.env_domains ())]
    handler domains, 256 connections, 1000 requests/connection, 5 s idle
    timeout, {!Http.Wire.default_limits}; 5 s default deadline, 30 s
    deadline ceiling, [Retry-After: 1], health at [/health]/[/healthz],
    mutations shed at 192 active connections. *)

type t

val start :
  ?config:config ->
  ?on_error:(string -> unit) ->
  ?on_scale:(workers:int -> unit) ->
  handler:(Http.Request.t -> Http.Response.t) ->
  unit ->
  (t, string) result
(** Binds, listens, and returns once the listener and handler domains
    are running. Handler exceptions become redacted 500s ("internal
    error"); the exception text goes to [on_error] (default stderr).
    HEAD requests are dispatched to the handler as GET and answered
    with the body stripped, so routers only register GET routes.

    [on_scale] fires from the supervisor domain after every change to
    the total worker count (including the initial floor pre-spawn),
    with the new total — wire it to [Pool.set_capacity] to keep sandbox
    arenas in step with handler concurrency. Never called when
    [config.autoscale] is [None]. *)

val port : t -> int
(** The bound port (useful with [config.port = 0]). *)

type stats = {
  accepted : int;
  served : int;  (** requests answered, across all connections *)
  shed : int;  (** connections refused with 503 at capacity *)
  mutations_shed : int;
      (** requests refused with 503 by the mutation watermark (these
          {e are} also counted in [served]: the client got an answer) *)
  parse_errors : int;  (** requests answered 400/413/431 *)
  timeouts : int;  (** connections closed by the idle deadline *)
  active : int;  (** currently accepted-but-unfinished connections *)
  burst_workers : int;  (** autoscaler burst workers currently alive *)
  scale_ups : int;  (** demand-driven grow events *)
  scale_downs : int;  (** idle-driven shrink events *)
}

val stats : t -> stats

val stop : t -> unit
(** Stops accepting, drains queued connections, nudges in-flight ones to
    close after their current response, joins every domain (including
    the autoscale supervisor and its burst workers — so stop may wait
    out one [interval_s] sample), and shuts the pool down. Idempotent. *)
