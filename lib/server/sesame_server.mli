(** Real TCP serving for [Sesame_http]: a listener + accept loop feeding
    a dedicated {!Sesame_parallel} domain pool, HTTP/1.1 keep-alive with
    per-connection request and idle-time bounds, and shed-don't-queue
    overload behaviour (503 once [max_connections] sockets are open).

    Handlers run inside pool tasks, so any [Sesame_parallel] fan-out
    they reach (Enforce's wide conjunctions, the connector's grouping
    pass) takes its sequential path per-request — parallelism comes from
    concurrent connections, one handler domain each. *)

module Http = Sesame_http

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  domains : int;
      (** handler domains; the server creates its own pool so serving
          never competes with the process-default pool *)
  backlog : int;
  max_connections : int;
      (** accepted-but-unfinished connections beyond this are shed with
          an immediate 503 + close *)
  max_requests_per_connection : int;
  idle_timeout_s : float;  (** SO_RCVTIMEO on each connection *)
  limits : Http.Wire.limits;
}

val default_config : config
(** 127.0.0.1:ephemeral, [max 2 (Sesame_parallel.env_domains ())]
    handler domains, 256 connections, 1000 requests/connection, 5 s idle
    timeout, {!Http.Wire.default_limits}. *)

type t

val start :
  ?config:config ->
  ?on_error:(string -> unit) ->
  handler:(Http.Request.t -> Http.Response.t) ->
  unit ->
  (t, string) result
(** Binds, listens, and returns once the listener and handler domains
    are running. Handler exceptions become redacted 500s ("internal
    error"); the exception text goes to [on_error] (default stderr).
    HEAD requests are dispatched to the handler as GET and answered
    with the body stripped, so routers only register GET routes. *)

val port : t -> int
(** The bound port (useful with [config.port = 0]). *)

type stats = {
  accepted : int;
  served : int;  (** requests answered, across all connections *)
  shed : int;  (** connections refused with 503 at capacity *)
  parse_errors : int;  (** requests answered 400/413/431 *)
  timeouts : int;  (** connections closed by the idle deadline *)
  active : int;  (** currently accepted-but-unfinished connections *)
}

val stats : t -> stats

val stop : t -> unit
(** Stops accepting, drains queued connections, nudges in-flight ones to
    close after their current response, joins every domain, and shuts the
    pool down. Idempotent. *)
