(* Real TCP serving for lib/http: a listener domain accepts connections
   and hands them to handler domains drawn from a dedicated
   Sesame_parallel pool (one long-lived worker loop per pool domain, fed
   from a bounded handoff queue). Handlers therefore execute inside a
   pool task, which flips the pool's reentrancy guard — any
   Sesame_parallel fan-out a handler reaches (e.g. Enforce's wide
   conjunctions) degrades to its sequential path instead of deadlocking,
   so parallelism comes from concurrent connections, one domain each.

   Overload policy is shed-don't-queue: once [max_connections] sockets
   are accepted-but-unfinished, new arrivals get an immediate 503 and a
   close instead of joining an unbounded queue. Keep-alive connections
   are bounded twice over: [max_requests_per_connection] requests, and
   an [idle_timeout_s] receive timeout enforced by SO_RCVTIMEO. *)

module Http = Sesame_http

(* Autoscaling adds a supervisor domain that samples the handoff queue
   and the shed counter every [interval_s]. Pressure (queue depth at or
   past [queue_high], or any shedding since the last sample) grows the
   worker set by one burst domain up to [max_domains]; [idle_samples]
   consecutive quiet samples shrink it by one down to the floor. Burst
   domains run the same worker loop as the pool domains but outside the
   pool, wrapped in [Sesame_parallel.sequentialized] so handler fan-outs
   still degrade to their sequential path. *)
type autoscale = {
  min_domains : int;
  max_domains : int;
  interval_s : float;
  queue_high : int;
  idle_samples : int;
}

let default_autoscale =
  { min_domains = 0; max_domains = 8; interval_s = 0.05; queue_high = 4; idle_samples = 10 }

type config = {
  host : string;
  port : int;  (* 0 picks an ephemeral port; see port t *)
  domains : int;  (* handler domains (its own pool, caller included) *)
  backlog : int;
  max_connections : int;
  max_requests_per_connection : int;
  idle_timeout_s : float;
  limits : Http.Wire.limits;
  default_deadline_ms : int;  (* per-request budget when the client names none; 0 = unbounded *)
  max_deadline_ms : int;  (* ceiling on client-requested X-Deadline-Ms *)
  retry_after_s : int;  (* stamped on every 503 this server originates *)
  health_paths : string list;  (* never shed at request level *)
  shed_mutations_at : int;  (* active conns at/above this shed non-health mutations *)
  autoscale : autoscale option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    domains = max 2 (Sesame_parallel.env_domains ());
    backlog = 128;
    max_connections = 256;
    max_requests_per_connection = 1000;
    idle_timeout_s = 5.0;
    limits = Http.Wire.default_limits;
    autoscale = None;
    default_deadline_ms = 5_000;
    max_deadline_ms = 30_000;
    retry_after_s = 1;
    health_paths = [ "/health"; "/healthz" ];
    shed_mutations_at = 192;
  }

type stats = {
  accepted : int;
  served : int;
  shed : int;
  mutations_shed : int;
  parse_errors : int;
  timeouts : int;
  active : int;
  burst_workers : int;
  scale_ups : int;
  scale_downs : int;
}

type t = {
  config : config;
  handler : Http.Request.t -> Http.Response.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  pool : Sesame_parallel.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : Unix.file_descr Queue.t;
  open_conns : (Unix.file_descr, unit) Hashtbl.t;  (* guarded by mutex *)
  stopping : bool Atomic.t;
  active : int Atomic.t;
  accepted : int Atomic.t;
  served : int Atomic.t;
  shed : int Atomic.t;
  mutations_shed : int Atomic.t;
  parse_errors : int Atomic.t;
  timeouts : int Atomic.t;
  burst_target : int Atomic.t;
  burst_active : int Atomic.t;
  scale_ups : int Atomic.t;
  scale_downs : int Atomic.t;
  on_error : string -> unit;
  on_scale : workers:int -> unit;
  mutable burst_handles : unit Domain.t list;  (* guarded by mutex *)
  mutable listener : unit Domain.t option;
  mutable driver : unit Domain.t option;
  mutable supervisor : unit Domain.t option;
}

let port t = t.bound_port

let stats t =
  {
    accepted = Atomic.get t.accepted;
    served = Atomic.get t.served;
    shed = Atomic.get t.shed;
    mutations_shed = Atomic.get t.mutations_shed;
    parse_errors = Atomic.get t.parse_errors;
    timeouts = Atomic.get t.timeouts;
    active = Atomic.get t.active;
    burst_workers = Atomic.get t.burst_active;
    scale_ups = Atomic.get t.scale_ups;
    scale_downs = Atomic.get t.scale_downs;
  }

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let source_of_fd fd =
  let buf = Bytes.create 8192 in
  Http.Wire.source_of_fun (fun () ->
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ""
      | n -> Bytes.sub_string buf 0 n)

(* Deregister-then-close under the mutex so stop's shutdown sweep can
   never hit a recycled descriptor number. *)
let finish_connection t fd =
  Mutex.lock t.mutex;
  Hashtbl.remove t.open_conns fd;
  close_quietly fd;
  Mutex.unlock t.mutex;
  Atomic.decr t.active

let error_body = function
  | Http.Wire.Malformed _ as e -> Http.Wire.error_message e
  | (Http.Wire.Request_line_too_long | Http.Wire.Headers_too_large | Http.Wire.Body_too_large)
    as e ->
      Http.Wire.error_message e

(* Every 503 this server originates carries Retry-After, so honest
   clients (and the load generator) know when to come back instead of
   hammering an overloaded server. *)
let unavailable t body =
  Http.Response.add_header
    (Http.Response.error Http.Status.Service_unavailable body)
    "Retry-After"
    (string_of_int t.config.retry_after_s)

(* The request's wall budget: the client's X-Deadline-Ms (capped by the
   server ceiling) or the configured default. 0 means unbounded. *)
let request_budget_ms t request =
  let requested =
    match Http.Request.header request "x-deadline-ms" with
    | None -> None
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some ms when ms > 0 -> Some ms
        | Some _ | None -> None)
  in
  match requested with
  | Some ms -> min ms t.config.max_deadline_ms
  | None -> t.config.default_deadline_ms

let handle_connection t fd =
  Mutex.lock t.mutex;
  Hashtbl.replace t.open_conns fd ();
  Mutex.unlock t.mutex;
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.idle_timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.idle_timeout_s;
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  let src = source_of_fd fd in
  let respond ?head_only ~keep_alive response =
    write_all fd (Http.Wire.write_response ?head_only ~keep_alive response)
  in
  let rec serve requests_served =
    match Http.Wire.read_request ~limits:t.config.limits src with
    | `Eof -> ()
    | `Error e ->
        Atomic.incr t.parse_errors;
        respond ~keep_alive:false
          (Http.Response.error (Http.Wire.error_status e) (error_body e))
    | `Request { request; keep_alive; version = _ } ->
        (* HEAD is answered from the GET handler with the body stripped,
           per RFC 9110; handlers never need to register HEAD routes. *)
        let head_only = Http.Meth.equal request.Http.Request.meth Http.Meth.HEAD in
        let request =
          if head_only then { request with Http.Request.meth = Http.Meth.GET } else request
        in
        (* Admission by priority class: health probes are always
           answered; mutations are shed (503 + Retry-After) ahead of
           reads once active connections cross the watermark — reads and
           health stay useful right up to the hard connection cap. *)
        let health = List.mem request.Http.Request.path t.config.health_paths in
        let mutation = not (Http.Meth.equal request.Http.Request.meth Http.Meth.GET) in
        let response =
          if
            mutation && (not health)
            && Atomic.get t.active >= t.config.shed_mutations_at
          then begin
            Atomic.incr t.mutations_shed;
            unavailable t "server overloaded; mutations shed before reads"
          end
          else begin
            (* Fresh per-request serving state, then the whole handler
               runs under the request's wall budget: every blocking
               layer below (enforcement fan-out, DB scans, WAL
               admission, sandbox runs) observes the same deadline. *)
            Http.Serving.reset ();
            let run () =
              try t.handler request
              with exn ->
                (* Same redaction discipline as Router.dispatch: the
                   client sees a fixed body, the log sees the
                   exception. *)
                t.on_error
                  (Printf.sprintf "%s %s: handler raised %s"
                     (Http.Meth.to_string request.Http.Request.meth)
                     request.Http.Request.path (Printexc.to_string exn));
                Http.Response.error Http.Status.Internal_error "internal error"
            in
            let budget_ms = request_budget_ms t request in
            let response =
              if budget_ms <= 0 then run ()
              else Sesame_deadline.with_deadline (Sesame_deadline.after_ms budget_ms) run
            in
            match Http.Serving.degraded_reason () with
            | None -> response
            | Some reason ->
                Http.Response.add_header response Http.Serving.header_name reason
          end
        in
        let requests_served = requests_served + 1 in
        let keep_alive =
          keep_alive
          && requests_served < t.config.max_requests_per_connection
          && not (Atomic.get t.stopping)
        in
        (* Count before writing: a client that has read this response
           must never observe a [served] total that excludes it. *)
        Atomic.incr t.served;
        respond ~head_only ~keep_alive response;
        if keep_alive then serve requests_served
  in
  (try serve 0 with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* SO_RCVTIMEO fired: the peer sat idle past the deadline. *)
      Atomic.incr t.timeouts
  | Unix.Unix_error _ -> ());
  finish_connection t fd

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
    Condition.wait t.nonempty t.mutex
  done;
  let next = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  match next with
  | Some fd ->
      handle_connection t fd;
      worker_loop t
  | None -> ()

(* A burst worker is a pool-less copy of worker_loop with one extra exit
   condition: when more burst workers are alive than the supervisor's
   target, the first to reach the (mutex-serialized) check claims the
   retirement by decrementing [burst_active] — so a scale-down retires
   exactly one worker, whichever gets there first. *)
let rec burst_loop t =
  Mutex.lock t.mutex;
  let rec await () =
    if Atomic.get t.stopping || Atomic.get t.burst_active > Atomic.get t.burst_target
    then begin
      Atomic.decr t.burst_active;
      None
    end
    else if Queue.is_empty t.queue then begin
      Condition.wait t.nonempty t.mutex;
      await ()
    end
    else Some (Queue.pop t.queue)
  in
  let next = await () in
  Mutex.unlock t.mutex;
  match next with
  | Some fd ->
      handle_connection t fd;
      burst_loop t
  | None -> ()

let spawn_burst t =
  (* Count the worker before it runs so a concurrent retirement check
     never under-counts. *)
  Atomic.incr t.burst_active;
  let h =
    Domain.spawn (fun () -> Sesame_parallel.sequentialized (fun () -> burst_loop t))
  in
  Mutex.lock t.mutex;
  t.burst_handles <- h :: t.burst_handles;
  Mutex.unlock t.mutex

let supervisor_loop t auto =
  let base = Sesame_parallel.domains t.pool in
  let workers () = base + Atomic.get t.burst_target in
  let floor = max base (min auto.min_domains auto.max_domains) in
  (* Honour the floor up front: pre-spawned capacity is configuration,
     not a scale event, so it doesn't count toward scale_ups. *)
  if floor > base then begin
    Atomic.set t.burst_target (floor - base);
    for _ = 1 to floor - base do
      spawn_burst t
    done;
    t.on_scale ~workers:(workers ())
  end;
  let shed_prev = ref (Atomic.get t.shed) in
  let calm = ref 0 in
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (try Unix.sleepf auto.interval_s with Unix.Unix_error _ -> ());
      if not (Atomic.get t.stopping) then begin
        Mutex.lock t.mutex;
        let depth = Queue.length t.queue in
        Mutex.unlock t.mutex;
        let shed_now = Atomic.get t.shed in
        let shed_delta = shed_now - !shed_prev in
        shed_prev := shed_now;
        if depth >= auto.queue_high || shed_delta > 0 then begin
          calm := 0;
          if workers () < auto.max_domains then begin
            Atomic.incr t.burst_target;
            Atomic.incr t.scale_ups;
            spawn_burst t;
            t.on_scale ~workers:(workers ())
          end
        end
        else if depth = 0 then begin
          incr calm;
          if !calm >= auto.idle_samples && workers () > floor then begin
            calm := 0;
            Atomic.decr t.burst_target;
            Atomic.incr t.scale_downs;
            (* Wake a parked worker so the retirement check runs now
               rather than at the next connection. *)
            Mutex.lock t.mutex;
            Condition.broadcast t.nonempty;
            Mutex.unlock t.mutex;
            t.on_scale ~workers:(workers ())
          end
        end
        else calm := 0;
        loop ()
      end
    end
  in
  loop ()

let shed t fd =
  Atomic.incr t.shed;
  (try
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
     write_all fd
       (Http.Wire.write_response ~keep_alive:false
          (unavailable t "server at connection capacity"))
   with Unix.Unix_error _ -> ());
  close_quietly fd;
  Atomic.decr t.active

let rec listener_loop t =
  if Atomic.get t.stopping then ()
  else
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        listener_loop t
    | exception Unix.Unix_error _ ->
        (* Listening socket was shut down (stop) or is gone; exit. *)
        ()
    | fd, _ ->
        Atomic.incr t.accepted;
        (* fetch_and_add so the capacity check and the reservation are one
           atomic step even with shedding happening concurrently. *)
        if Atomic.fetch_and_add t.active 1 >= t.config.max_connections then shed t fd
        else begin
          Mutex.lock t.mutex;
          Queue.push fd t.queue;
          Condition.signal t.nonempty;
          Mutex.unlock t.mutex
        end;
        listener_loop t

let start ?(config = default_config) ?(on_error = fun msg -> prerr_endline ("[server] " ^ msg))
    ?(on_scale = fun ~workers:_ -> ()) ~handler () =
  (* A peer closing mid-write must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
    let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
       (* Bounded accept wait so the listener can notice stop without a
          cross-domain close race. *)
       Unix.setsockopt_float listen_fd Unix.SO_RCVTIMEO 0.25;
       Unix.bind listen_fd addr;
       Unix.listen listen_fd config.backlog
     with e ->
       close_quietly listen_fd;
       raise e);
    let bound_port =
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> config.port
    in
    let t =
      {
        config;
        handler;
        listen_fd;
        bound_port;
        pool = Sesame_parallel.create ~domains:(max 1 config.domains) ();
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        open_conns = Hashtbl.create 64;
        stopping = Atomic.make false;
        active = Atomic.make 0;
        accepted = Atomic.make 0;
        served = Atomic.make 0;
        shed = Atomic.make 0;
        mutations_shed = Atomic.make 0;
        parse_errors = Atomic.make 0;
        timeouts = Atomic.make 0;
        burst_target = Atomic.make 0;
        burst_active = Atomic.make 0;
        scale_ups = Atomic.make 0;
        scale_downs = Atomic.make 0;
        on_error;
        on_scale;
        burst_handles = [];
        listener = None;
        driver = None;
        supervisor = None;
      }
    in
    (* One worker loop per pool domain: run_chunks distributes them, the
       driver domain participates as chunk 0, and the call only returns
       when every worker has exited (at stop). *)
    t.driver <-
      Some
        (Domain.spawn (fun () ->
             let chunks = Sesame_parallel.domains t.pool in
             Sesame_parallel.run_chunks t.pool ~chunks (fun _ -> worker_loop t)));
    t.listener <- Some (Domain.spawn (fun () -> listener_loop t));
    (match config.autoscale with
    | None -> ()
    | Some auto -> t.supervisor <- Some (Domain.spawn (fun () -> supervisor_loop t auto)));
    t
  with
  | t -> Ok t
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "server start failed: %s (%s)" (Unix.error_message err) fn)
  | exception Failure msg -> Error (Printf.sprintf "server start failed: %s" msg)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Wake the listener out of accept. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Option.iter Domain.join t.listener;
    t.listener <- None;
    close_quietly t.listen_fd;
    (* Drain never-served connections and nudge in-flight ones: shutting
       down the read side makes their next read return EOF, so workers
       close them after the in-flight response instead of waiting out the
       idle timeout. *)
    Mutex.lock t.mutex;
    while not (Queue.is_empty t.queue) do
      let fd = Queue.pop t.queue in
      close_quietly fd;
      Atomic.decr t.active
    done;
    Hashtbl.iter
      (fun fd () -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      t.open_conns;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    Option.iter Domain.join t.driver;
    t.driver <- None;
    (* Join the supervisor before snapshotting burst handles: once it has
       exited no new burst workers can appear, so the snapshot is the
       complete set. Workers spawned after [stopping] was set exit on
       their first check without needing a wakeup. *)
    Option.iter Domain.join t.supervisor;
    t.supervisor <- None;
    let bursts =
      Mutex.lock t.mutex;
      let hs = t.burst_handles in
      t.burst_handles <- [];
      Mutex.unlock t.mutex;
      hs
    in
    List.iter Domain.join bursts;
    Sesame_parallel.shutdown t.pool
  end
