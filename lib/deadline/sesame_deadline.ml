(* Absolute monotonic-clock deadlines, carried in domain-local storage.

   Representation: nanoseconds on Sesame_clock's monotonic clock.
   Int64.max_int stands for "no deadline" so comparisons stay branch-free
   (min works unchanged for tightening). *)

type t = int64

let none : t = Int64.max_int
let is_none (t : t) = Int64.equal t none

let after_s (s : float) : t =
  Int64.add (Sesame_clock.now_ns ()) (Int64.of_float (s *. 1e9))

let after_ms (ms : int) : t = after_s (float_of_int ms /. 1000.)

let key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> none)
let current () : t = Domain.DLS.get key

let with_deadline (d : t) (f : unit -> 'a) : 'a =
  let prev = current () in
  let tightened = if Int64.compare d prev < 0 then d else prev in
  if Int64.equal tightened prev then f ()
  else begin
    Domain.DLS.set key tightened;
    Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
  end

let unrestricted (f : unit -> 'a) : 'a =
  let prev = current () in
  if is_none prev then f ()
  else begin
    Domain.DLS.set key none;
    Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
  end

let remaining_s (t : t) : float =
  if is_none t then infinity
  else Int64.to_float (Int64.sub t (Sesame_clock.now_ns ())) /. 1e9

let remaining_ms (t : t) : int =
  if is_none t then max_int
  else
    let ms = remaining_s t *. 1000. in
    if ms <= 0. then 0 else int_of_float ms

let expired (t : t) : bool =
  (not (is_none t)) && Int64.compare (Sesame_clock.now_ns ()) t >= 0

let expired_now () = expired (current ())

exception Expired of string

let marker = "deadline exceeded"
let error_message what = Printf.sprintf "%s: %s over budget" marker what

let is_deadline_error msg =
  String.length msg >= String.length marker
  && String.sub msg 0 (String.length marker) = marker

let check what = if expired_now () then raise (Expired what)

let guard what =
  if expired_now () then Error (error_message what) else Ok ()
