(** Per-request deadline budgets.

    A deadline is an absolute instant on the monotonic clock by which the
    current request must have produced an answer. The server stamps one at
    the HTTP edge; every blocking layer below (enforcement fan-out, DB
    scans, WAL commit admission, sandbox runs) consults the *ambient*
    deadline — carried in domain-local storage — and turns "about to miss
    the budget" into a fast structured refusal instead of a hang.

    Domain-local storage does not cross domains: code that fans work out
    to a pool must capture {!current} on the requesting domain and
    re-install it with {!with_deadline} inside each task.

    The ambient deadline only ever tightens: installing a looser deadline
    inside a tighter scope keeps the tighter one. *)

type t
(** An absolute deadline, or "none". Immutable; cheap to copy. *)

val none : t
(** The absent deadline: never expires, imposes no budget. *)

val after_ms : int -> t
(** [after_ms n] is a deadline [n] milliseconds from now ([n <= 0] is an
    already-expired deadline, not [none]). *)

val after_s : float -> t
(** [after_s s] is a deadline [s] seconds from now. *)

val is_none : t -> bool

val current : unit -> t
(** The ambient deadline for this domain ({!none} outside any
    {!with_deadline} scope). *)

val with_deadline : t -> (unit -> 'a) -> 'a
(** [with_deadline d f] runs [f] with the ambient deadline tightened to
    [min d (current ())], restoring the previous ambient deadline on exit
    (normal or exceptional). [with_deadline none f] is [f ()] under the
    unchanged ambient deadline. *)

val unrestricted : (unit -> 'a) -> 'a
(** [unrestricted f] runs [f] with no ambient deadline, restoring the
    previous one on exit. For maintenance work that happens to run on a
    request's domain but must not be aborted by that request's budget:
    WAL replay during recovery, checkpoint publication, brownout
    snapshot builds. Never use it on a request-serving path. *)

val remaining_s : t -> float
(** Seconds until [t] expires; negative once expired; [infinity] for
    {!none}. *)

val remaining_ms : t -> int
(** {!remaining_s} in whole milliseconds, clamped at 0 below. *)

val expired : t -> bool
(** [expired none] is [false]. *)

val expired_now : unit -> bool
(** [expired (current ())]. *)

exception Expired of string
(** Raised by {!check} when the ambient deadline has passed. The payload
    names the layer that noticed ("db scan", "wal commit", ...). Layers
    that speak [result] catch this and surface {!error_message}. *)

val check : string -> unit
(** [check what] raises [Expired what] if the ambient deadline has
    passed; otherwise returns unit. Cheap enough to call every few
    hundred rows of a scan. *)

val guard : string -> (unit, string) result
(** [guard what] is [Error (error_message what)] if the ambient deadline
    has passed, [Ok ()] otherwise. *)

val error_message : string -> string
(** The structured refusal message for an expired budget at layer
    [what]. Always begins with {!marker}. *)

val marker : string
(** The prefix ["deadline exceeded"] that identifies a deadline refusal
    in an [Error] message, wherever it crossed a [result] boundary. *)

val is_deadline_error : string -> bool
(** Does this error message carry {!marker}? *)
