(* The read-footprint recorder.

   A cached verdict is sound to reuse exactly when nothing it read has
   changed. The table layer cannot know who is asking, so the asker
   (Enforce's memo table, Sesame_conn's aggregate cache) opens a
   recording [scope] around the computation; every read inside —
   pk-index probes, secondary probes, full scans, even lookups of
   missing tables — records the (table, shard) slot it depended on
   together with that slot's generation *at the moment of the read*.
   Validation later compares just those slots against the live epochs.

   Soundness hinges on two details:

   - Generations are sampled {e before} the rows are read (the record
     happens at probe/scan start, under the table's read lock). A write
     that races the read lands after the sample, so the stored
     generation differs from the live one and the entry fails
     validation — a lost race costs a recompute, never a stale reuse.

   - When the same slot is recorded twice in one scope, the {e first}
     (oldest) generation wins. Any write between the two reads makes
     the footprint stale, which is the conservative direction.

   Scopes nest: a child scope's deps merge into its parent on exit, so
   a conjunction member evaluated inside its own scope still taints the
   enclosing request's footprint. Recording is per-domain (DLS) and
   costs one DLS read when no scope is open. *)

type dep = {
  ep : Epoch.table_epoch;
  table : string;
  shard : int;  (* -1 = whole-table dependency (scan, secondary probe, absence) *)
  gen : int;  (* the slot's generation when the read was made *)
}

type snapshot = dep array

let empty : snapshot = [||]

type scope = (string * int, dep) Hashtbl.t

let stack : scope list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref ([] : scope list))

let recording () = !(Domain.DLS.get stack) <> []

let record_dep table shard ep =
  match !(Domain.DLS.get stack) with
  | [] -> ()
  | tbl :: _ ->
      let key = (table, shard) in
      if not (Hashtbl.mem tbl key) then
        let gen = if shard < 0 then Epoch.total_gen ep else Epoch.shard_gen ep shard in
        Hashtbl.add tbl key { ep; table; shard; gen }

let record_shard table ep shard = record_dep table shard ep
let record_table table ep = record_dep table (-1) ep

let record_table_name table =
  (* Missing-table lookups too: a verdict that observed "no such table"
     depends on the table staying absent, and creation bumps its
     (name-keyed, persistent) epoch. *)
  if recording () then record_dep table (-1) (Epoch.for_table table)

let snapshot_of tbl =
  let deps = Array.make (Hashtbl.length tbl) { ep = Epoch.for_table ""; table = ""; shard = -1; gen = 0 } in
  let i = ref 0 in
  Hashtbl.iter
    (fun _ d ->
      deps.(!i) <- d;
      incr i)
    tbl;
  deps

let merge_ambient (snap : snapshot) =
  match !(Domain.DLS.get stack) with
  | [] -> ()
  | tbl :: _ ->
      Array.iter
        (fun d ->
          let key = (d.table, d.shard) in
          if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key d)
        snap

let scope f =
  let st = Domain.DLS.get stack in
  let tbl : scope = Hashtbl.create 8 in
  st := tbl :: !st;
  let pop () = match !st with _ :: rest -> st := rest | [] -> () in
  match f () with
  | v ->
      pop ();
      let snap = snapshot_of tbl in
      (* Nested scopes: whatever the child read, the parent read too. *)
      merge_ambient snap;
      (v, snap)
  | exception e ->
      pop ();
      raise e

let dep_valid d =
  if d.shard < 0 then Epoch.total_gen d.ep = d.gen
  else Epoch.shard_gen d.ep d.shard = d.gen

let valid (snap : snapshot) = Array.for_all dep_valid snap
let cardinal (snap : snapshot) = Array.length snap

let deps (snap : snapshot) =
  Array.to_list snap
  |> List.map (fun d -> (d.table, d.shard))
  |> List.sort compare
