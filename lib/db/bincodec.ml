(* Byte-exact serialization for Value/Row/Schema/Expr/Sql.stmt, plus the
   CRC32 the WAL frames records with. Display forms (Value.to_string) are
   lossy — %g floats, quote-escaped text — so persistence goes through
   this codec exclusively. *)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected). Table-driven, computed once. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(crc = 0l) s =
  let table = Lazy.force crc_table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Writer *)

type writer = Buffer.t

let writer () = Buffer.create 256
let contents = Buffer.contents

let put_u8 b n =
  if n < 0 || n > 0xFF then invalid_arg "Bincodec.put_u8";
  Buffer.add_char b (Char.chr n)

let put_u32 b n =
  if n < 0 || n > 0xFFFFFFFF then invalid_arg "Bincodec.put_u32";
  Buffer.add_char b (Char.chr (n land 0xFF));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xFF))

let put_i64 b n =
  let bytes = Bytes.create 8 in
  Bytes.set_int64_le bytes 0 n;
  Buffer.add_bytes b bytes

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_value b = function
  | Value.Null -> put_u8 b 0
  | Value.Int i ->
      put_u8 b 1;
      put_i64 b (Int64.of_int i)
  | Value.Float f ->
      put_u8 b 2;
      put_i64 b (Int64.bits_of_float f)
  | Value.Text s ->
      put_u8 b 3;
      put_string b s
  | Value.Bool flag ->
      put_u8 b 4;
      put_u8 b (if flag then 1 else 0)

let put_row b row =
  put_u32 b (Array.length row);
  Array.iter (put_value b) row

let ty_tag = function Value.Tint -> 0 | Value.Tfloat -> 1 | Value.Ttext -> 2 | Value.Tbool -> 3

let put_schema b schema =
  put_string b (Schema.name schema);
  (match Schema.primary_key schema with
  | None -> put_u8 b 0
  | Some pk ->
      put_u8 b 1;
      put_string b pk);
  let columns = Schema.columns schema in
  put_u32 b (List.length columns);
  List.iter
    (fun (c : Schema.column) ->
      put_string b c.name;
      put_u8 b (ty_tag c.ty);
      put_u8 b (if c.nullable then 1 else 0))
    columns

let put_operand b = function
  | Expr.Col name ->
      put_u8 b 0;
      put_string b name
  | Expr.Lit v ->
      put_u8 b 1;
      put_value b v

let cmp_tag = function
  | Expr.Eq -> 0
  | Expr.Ne -> 1
  | Expr.Lt -> 2
  | Expr.Le -> 3
  | Expr.Gt -> 4
  | Expr.Ge -> 5

let rec put_expr b = function
  | Expr.True -> put_u8 b 0
  | Expr.Cmp (cmp, lhs, rhs) ->
      put_u8 b 1;
      put_u8 b (cmp_tag cmp);
      put_operand b lhs;
      put_operand b rhs
  | Expr.And (l, r) ->
      put_u8 b 2;
      put_expr b l;
      put_expr b r
  | Expr.Or (l, r) ->
      put_u8 b 3;
      put_expr b l;
      put_expr b r
  | Expr.Not e ->
      put_u8 b 4;
      put_expr b e
  | Expr.In (operand, values) ->
      put_u8 b 5;
      put_operand b operand;
      put_u32 b (List.length values);
      List.iter (put_value b) values
  | Expr.Like (operand, pattern) ->
      put_u8 b 6;
      put_operand b operand;
      put_string b pattern
  | Expr.Is_null operand ->
      put_u8 b 7;
      put_operand b operand

let put_aggregate b = function
  | Sql.Count_all -> put_u8 b 0
  | Sql.Count c ->
      put_u8 b 1;
      put_string b c
  | Sql.Sum c ->
      put_u8 b 2;
      put_string b c
  | Sql.Avg c ->
      put_u8 b 3;
      put_string b c
  | Sql.Min c ->
      put_u8 b 4;
      put_string b c
  | Sql.Max c ->
      put_u8 b 5;
      put_string b c

let put_option b put = function
  | None -> put_u8 b 0
  | Some v ->
      put_u8 b 1;
      put b v

let put_list b put xs =
  put_u32 b (List.length xs);
  List.iter (put b) xs

let put_stmt b = function
  | Sql.Select { table; columns; where; order_by; limit } ->
      put_u8 b 0;
      put_string b table;
      put_option b (fun b cols -> put_list b put_string cols) columns;
      put_expr b where;
      put_option b
        (fun b (col, dir) ->
          put_string b col;
          put_u8 b (match dir with Sql.Asc -> 0 | Sql.Desc -> 1))
        order_by;
      put_option b (fun b n -> put_i64 b (Int64.of_int n)) limit
  | Sql.Select_agg { table; aggregates; where; group_by } ->
      put_u8 b 1;
      put_string b table;
      put_list b put_aggregate aggregates;
      put_expr b where;
      put_list b put_string group_by
  | Sql.Insert { table; columns; values } ->
      put_u8 b 2;
      put_string b table;
      put_option b (fun b cols -> put_list b put_string cols) columns;
      put_list b put_value values
  | Sql.Update { table; set; where } ->
      put_u8 b 3;
      put_string b table;
      put_list b
        (fun b (col, v) ->
          put_string b col;
          put_value b v)
        set;
      put_expr b where
  | Sql.Delete { table; where } ->
      put_u8 b 4;
      put_string b table;
      put_expr b where

(* ------------------------------------------------------------------ *)
(* Reader *)

type reader = { src : string; mutable pos : int }

let reader ?(pos = 0) src = { src; pos }
let pos r = r.pos

let ( let* ) = Result.bind

let short r what =
  Error (Printf.sprintf "truncated %s at byte %d" what r.pos)

let get_u8 r =
  if r.pos + 1 > String.length r.src then short r "u8"
  else begin
    let v = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    Ok v
  end

let get_u32 r =
  if r.pos + 4 > String.length r.src then short r "u32"
  else begin
    let byte i = Char.code r.src.[r.pos + i] in
    let v = byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24) in
    r.pos <- r.pos + 4;
    Ok v
  end

let get_i64 r =
  if r.pos + 8 > String.length r.src then short r "i64"
  else begin
    let v = String.get_int64_le r.src r.pos in
    r.pos <- r.pos + 8;
    Ok v
  end

let get_string r =
  let* len = get_u32 r in
  if r.pos + len > String.length r.src then short r "string body"
  else begin
    let s = String.sub r.src r.pos len in
    r.pos <- r.pos + len;
    Ok s
  end

let bad r what tag =
  Error (Printf.sprintf "bad %s tag %d at byte %d" what tag (r.pos - 1))

let get_value r =
  let* tag = get_u8 r in
  match tag with
  | 0 -> Ok Value.Null
  | 1 ->
      let* i = get_i64 r in
      Ok (Value.Int (Int64.to_int i))
  | 2 ->
      let* bits = get_i64 r in
      Ok (Value.Float (Int64.float_of_bits bits))
  | 3 ->
      let* s = get_string r in
      Ok (Value.Text s)
  | 4 ->
      let* flag = get_u8 r in
      Ok (Value.Bool (flag <> 0))
  | tag -> bad r "value" tag

let get_count r what =
  let* n = get_u32 r in
  (* Each element needs at least one byte, so a count beyond the remaining
     input is corruption, not a huge-but-valid frame: reject before any
     allocation proportional to it. *)
  if n > String.length r.src - r.pos then
    Error (Printf.sprintf "implausible %s count %d at byte %d" what n (r.pos - 4))
  else Ok n

let get_row r =
  let* n = get_count r "row" in
  let row = Array.make n Value.Null in
  let rec fill i =
    if i = n then Ok row
    else
      let* v = get_value r in
      row.(i) <- v;
      fill (i + 1)
  in
  fill 0

let get_list r what get =
  let* n = get_count r what in
  let rec go acc i =
    if i = n then Ok (List.rev acc)
    else
      let* v = get r in
      go (v :: acc) (i + 1)
  in
  go [] 0

let get_option r get =
  let* tag = get_u8 r in
  match tag with
  | 0 -> Ok None
  | 1 ->
      let* v = get r in
      Ok (Some v)
  | tag -> bad r "option" tag

let get_schema r =
  let* name = get_string r in
  let* primary_key = get_option r get_string in
  let* columns =
    get_list r "schema columns" (fun r ->
        let* col_name = get_string r in
        let* ty_tag = get_u8 r in
        let* ty =
          match ty_tag with
          | 0 -> Ok Value.Tint
          | 1 -> Ok Value.Tfloat
          | 2 -> Ok Value.Ttext
          | 3 -> Ok Value.Tbool
          | tag -> bad r "column type" tag
        in
        let* nullable = get_u8 r in
        Ok { Schema.name = col_name; ty; nullable = nullable <> 0 })
  in
  Schema.make ~name ?primary_key columns

let get_operand r =
  let* tag = get_u8 r in
  match tag with
  | 0 ->
      let* name = get_string r in
      Ok (Expr.Col name)
  | 1 ->
      let* v = get_value r in
      Ok (Expr.Lit v)
  | tag -> bad r "operand" tag

let get_cmp r =
  let* tag = get_u8 r in
  match tag with
  | 0 -> Ok Expr.Eq
  | 1 -> Ok Expr.Ne
  | 2 -> Ok Expr.Lt
  | 3 -> Ok Expr.Le
  | 4 -> Ok Expr.Gt
  | 5 -> Ok Expr.Ge
  | tag -> bad r "cmp" tag

let rec get_expr r =
  let* tag = get_u8 r in
  match tag with
  | 0 -> Ok Expr.True
  | 1 ->
      let* cmp = get_cmp r in
      let* lhs = get_operand r in
      let* rhs = get_operand r in
      Ok (Expr.Cmp (cmp, lhs, rhs))
  | 2 ->
      let* l = get_expr r in
      let* right = get_expr r in
      Ok (Expr.And (l, right))
  | 3 ->
      let* l = get_expr r in
      let* right = get_expr r in
      Ok (Expr.Or (l, right))
  | 4 ->
      let* e = get_expr r in
      Ok (Expr.Not e)
  | 5 ->
      let* operand = get_operand r in
      let* values = get_list r "IN values" get_value in
      Ok (Expr.In (operand, values))
  | 6 ->
      let* operand = get_operand r in
      let* pattern = get_string r in
      Ok (Expr.Like (operand, pattern))
  | 7 ->
      let* operand = get_operand r in
      Ok (Expr.Is_null operand)
  | tag -> bad r "expr" tag

let get_aggregate r =
  let* tag = get_u8 r in
  match tag with
  | 0 -> Ok Sql.Count_all
  | _ -> (
      let* c = get_string r in
      match tag with
      | 1 -> Ok (Sql.Count c)
      | 2 -> Ok (Sql.Sum c)
      | 3 -> Ok (Sql.Avg c)
      | 4 -> Ok (Sql.Min c)
      | 5 -> Ok (Sql.Max c)
      | tag -> bad r "aggregate" tag)

let get_stmt r =
  let* tag = get_u8 r in
  match tag with
  | 0 ->
      let* table = get_string r in
      let* columns = get_option r (fun r -> get_list r "columns" get_string) in
      let* where = get_expr r in
      let* order_by =
        get_option r (fun r ->
            let* col = get_string r in
            let* dir = get_u8 r in
            match dir with
            | 0 -> Ok (col, Sql.Asc)
            | 1 -> Ok (col, Sql.Desc)
            | tag -> bad r "order" tag)
      in
      let* limit = get_option r (fun r -> Result.map Int64.to_int (get_i64 r)) in
      Ok (Sql.Select { table; columns; where; order_by; limit })
  | 1 ->
      let* table = get_string r in
      let* aggregates = get_list r "aggregates" get_aggregate in
      let* where = get_expr r in
      let* group_by = get_list r "group-by" get_string in
      Ok (Sql.Select_agg { table; aggregates; where; group_by })
  | 2 ->
      let* table = get_string r in
      let* columns = get_option r (fun r -> get_list r "columns" get_string) in
      let* values = get_list r "values" get_value in
      Ok (Sql.Insert { table; columns; values })
  | 3 ->
      let* table = get_string r in
      let* set =
        get_list r "set" (fun r ->
            let* col = get_string r in
            let* v = get_value r in
            Ok (col, v))
      in
      let* where = get_expr r in
      Ok (Sql.Update { table; set; where })
  | 4 ->
      let* table = get_string r in
      let* where = get_expr r in
      Ok (Sql.Delete { table; where })
  | tag -> bad r "stmt" tag

let expect_end r =
  if r.pos = String.length r.src then Ok ()
  else Error (Printf.sprintf "%d trailing bytes after frame" (String.length r.src - r.pos))

(* ------------------------------------------------------------------ *)

let to_bytes put v =
  let b = writer () in
  put b v;
  contents b

let of_bytes get s =
  let r = reader s in
  let* v = get r in
  let* () = expect_end r in
  Ok v

let value_to_bytes = to_bytes put_value
let value_of_bytes = of_bytes get_value
let row_to_bytes = to_bytes put_row
let row_of_bytes = of_bytes get_row
let schema_to_bytes = to_bytes put_schema
let schema_of_bytes = of_bytes get_schema
let stmt_to_bytes = to_bytes put_stmt
let stmt_of_bytes = of_bytes get_stmt

let schema_hash schema = crc32 (schema_to_bytes schema)
