type column = { name : string; ty : Value.ty; nullable : bool }

type t = {
  name : string;
  columns : column array;
  index : (string, int) Hashtbl.t;
  primary_key : int option;
}

let make ~name ?primary_key columns =
  if columns = [] then Error (Printf.sprintf "table %s: no columns" name)
  else
    let index = Hashtbl.create (List.length columns) in
    let dup = ref None in
    List.iteri
      (fun i (c : column) ->
        if Hashtbl.mem index c.name then dup := Some c.name
        else Hashtbl.add index c.name i)
      columns;
    match !dup with
    | Some col -> Error (Printf.sprintf "table %s: duplicate column %s" name col)
    | None -> (
        let columns = Array.of_list columns in
        match primary_key with
        | None -> Ok { name; columns; index; primary_key = None }
        | Some pk -> (
            match Hashtbl.find_opt index pk with
            | None -> Error (Printf.sprintf "table %s: primary key %s is not a column" name pk)
            | Some i when columns.(i).nullable ->
                Error (Printf.sprintf "table %s: primary key %s must not be nullable" name pk)
            | Some i -> Ok { name; columns; index; primary_key = Some i }))

let make_exn ~name ?primary_key columns =
  match make ~name ?primary_key columns with
  | Ok t -> t
  | Error msg -> invalid_arg msg

let name t = t.name
let columns t = Array.to_list t.columns
let arity t = Array.length t.columns
let primary_key t = Option.map (fun i -> t.columns.(i).name) t.primary_key
let column_index t col = Hashtbl.find_opt t.index col
let column_name t i = t.columns.(i).name

let column_index_exn t col =
  match column_index t col with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "table %s has no column %s" t.name col)

let mem t col = Hashtbl.mem t.index col

let validate_row t row =
  if Array.length row <> Array.length t.columns then
    Error
      (Printf.sprintf "table %s: row has %d values, schema has %d columns" t.name
         (Array.length row) (Array.length t.columns))
  else
    let bad = ref None in
    Array.iteri
      (fun i v ->
        if !bad = None then
          let col = t.columns.(i) in
          if Value.is_null v then (
            if not col.nullable then
              bad := Some (Printf.sprintf "column %s is not nullable" col.name))
          else if not (Value.has_type v col.ty) then
            bad :=
              Some
                (Printf.sprintf "column %s expects %s, got %s" col.name
                   (Value.ty_to_string col.ty) (Value.to_string v)))
      row;
    match !bad with
    | Some msg -> Error (Printf.sprintf "table %s: %s" t.name msg)
    | None -> Ok ()

let pp fmt t =
  Format.fprintf fmt "@[<hov 2>%s(" t.name;
  Array.iteri
    (fun i (c : column) ->
      if i > 0 then Format.fprintf fmt ",@ ";
      Format.fprintf fmt "%s %a%s" c.name Value.pp_ty c.ty
        (if c.nullable then "" else " NOT NULL"))
    t.columns;
  Format.fprintf fmt ")@]"
