(** Lossless binary codec for the storage layer.

    [Value.to_string] is a display form ([%g] floats, quoted strings) and
    must never be used for persistence; this module is the byte-exact
    counterpart the WAL and checkpoints serialize through. Every encoding
    is length-prefixed little-endian, integers travel as 64-bit
    two's-complement, and floats as their IEEE-754 bit pattern via
    [Int64.bits_of_float], so a decode of an encode is structurally equal
    to the original — including NaNs, negative zero and infinities.

    Decoders never raise on malformed input: they return [Error] with a
    byte offset so the WAL reader can distinguish a torn tail from mid-log
    corruption. *)

(** {1 Writer} *)

type writer

val writer : unit -> writer
val contents : writer -> string

val put_u8 : writer -> int -> unit
val put_u32 : writer -> int -> unit
(** Little-endian; [invalid_arg] outside [0, 2^32). *)

val put_i64 : writer -> int64 -> unit
val put_string : writer -> string -> unit
(** [u32] length prefix + raw bytes. *)

val put_value : writer -> Value.t -> unit
val put_row : writer -> Row.t -> unit
val put_schema : writer -> Schema.t -> unit
val put_expr : writer -> Expr.t -> unit
val put_stmt : writer -> Sql.stmt -> unit

(** {1 Reader} *)

type reader

val reader : ?pos:int -> string -> reader
val pos : reader -> int

val get_u8 : reader -> (int, string) result
val get_u32 : reader -> (int, string) result
val get_i64 : reader -> (int64, string) result
val get_string : reader -> (string, string) result
val get_value : reader -> (Value.t, string) result
val get_row : reader -> (Row.t, string) result
val get_schema : reader -> (Schema.t, string) result
val get_expr : reader -> (Expr.t, string) result
val get_stmt : reader -> (Sql.stmt, string) result
val expect_end : reader -> (unit, string) result
(** [Error] if trailing bytes remain — a decode must consume its whole
    frame, or the frame was corrupt in a CRC-colliding way. *)

(** {1 Whole-buffer conveniences} *)

val value_to_bytes : Value.t -> string
val value_of_bytes : string -> (Value.t, string) result
val row_to_bytes : Row.t -> string
val row_of_bytes : string -> (Row.t, string) result
val schema_to_bytes : Schema.t -> string
val schema_of_bytes : string -> (Schema.t, string) result
val stmt_to_bytes : Sql.stmt -> string
val stmt_of_bytes : string -> (Sql.stmt, string) result

val schema_hash : Schema.t -> int32
(** CRC32 of the schema's canonical encoding — the drift detector the WAL
    journals alongside each record's policy provenance. *)

val crc32 : ?crc:int32 -> string -> int32
(** CRC-32 (IEEE 802.3, reflected, init/xorout [0xFFFFFFFF]) of the whole
    string; [crc] continues a running checksum. *)
