(** Per-table, per-shard mutation generations.

    Each table owns a generation vector — one counter per hash shard of
    its primary-key space plus a whole-table total. Mutations bump only
    the shards they touch; caches upstream record the (table, shard)
    slots a computation actually read (via {!Footprint}) and revalidate
    by comparing just those, so unrelated writes keep them warm.

    Epochs are keyed by table {e name} and deliberately survive
    drop/recreate: resetting a counter could make a stale footprint
    revalidate against a table with different contents. The legacy
    process-wide counter ({!global}, the old [Table.generation]) is
    still bumped on every mutation for coarse-mode callers. *)

val shard_count : int
(** Fixed power of two; {!shard_of_value} masks into it. *)

type table_epoch

val for_table : string -> table_epoch
(** The (unique, persistent) epoch vector for a table name. *)

val shard_of_value : Value.t -> int
(** Hash partition of a primary-key value into [0 .. shard_count-1]. *)

val shard_gen : table_epoch -> int -> int
val total_gen : table_epoch -> int

val bump_shard : table_epoch -> int -> unit
(** One-key mutation: bumps that shard, the table total, and {!global}. *)

val bump_table : table_epoch -> unit
(** Whole-table mutation: bumps every shard, the total, and {!global}. *)

val bump_structural : string -> unit
(** Schema-level event (create/drop/clear/restore) on the named table:
    {!bump_table} plus a {!structure} bump. *)

val global : unit -> int
(** Legacy process-wide mutation epoch: moves on every accepted
    mutation, exactly like the old [Table.generation]. *)

val structure : unit -> int
(** Structural epoch: create/drop/clear/restore/touch only. Plan
    certificates revalidate against this (plus [Enforce.bump]) instead
    of the per-row {!global}, so row traffic does not force certificate
    revalidation. *)

val touch : unit -> unit
(** A mutation the table layer cannot see: bumps {!global} and
    {!structure}. *)
