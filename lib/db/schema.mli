(** Table schemas: ordered, named, typed columns with an optional primary
    key. The Sesame connector ({!Sesame_core.Sesame_db}) attaches policies
    per column of these schemas, mirroring the paper's
    [#[db_policy(table, columns)]] annotations (Fig. 3). *)

type column = {
  name : string;
  ty : Value.ty;
  nullable : bool;
}

type t

val make : name:string -> ?primary_key:string -> column list -> (t, string) result
(** Fails on duplicate column names, an empty column list, or a primary key
    that names no column. The primary-key column must not be nullable. *)

val make_exn : name:string -> ?primary_key:string -> column list -> t

val name : t -> string
val columns : t -> column list
val arity : t -> int
val primary_key : t -> string option

val column_index : t -> string -> int option
val column_index_exn : t -> string -> int

(** [column_name t i] is the name of the column at position [i] (O(1),
    no list rebuild). *)
val column_name : t -> int -> string
val mem : t -> string -> bool

val validate_row : t -> Value.t array -> (unit, string) result
(** Checks arity, per-column types, and nullability. *)

val pp : Format.formatter -> t -> unit
