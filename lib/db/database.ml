type journal_event =
  | J_stmt of Sql.stmt
  | J_create of Schema.t
  | J_drop of string

type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable query_cost_ns : int;
  queries : int Atomic.t;  (* exact under concurrent statement execution *)
  mutable journal : (journal_event -> (unit, string) result) option;
  mutable poisoned : string option;
}

type exec_result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int

let create ?(query_cost_ns = 0) () =
  {
    tables = Hashtbl.create 8;
    query_cost_ns;
    queries = Atomic.make 0;
    journal = None;
    poisoned = None;
  }

let set_query_cost_ns t ns = t.query_cost_ns <- ns
let query_count t = Atomic.get t.queries
let reset_query_count t = Atomic.set t.queries 0

let set_journal t journal = t.journal <- journal
let poison t reason = if t.poisoned = None then t.poisoned <- Some reason
let poisoned t = t.poisoned

(* A store whose journal diverged from memory serves nothing — reads
   included — until it is reopened through recovery. The client-facing
   message is generic; the detailed reason stays in [poisoned]. *)
let guard t =
  match t.poisoned with
  | None -> Ok ()
  | Some _ -> Error "database quarantined: durable log write failed"

(* The write is applied first, journaled second: only statements the
   engine accepted reach the log, so recovery treats any replay failure
   as corruption rather than expected noise. A journal failure after a
   successful apply means memory and log have diverged — the statement is
   reported failed (never acknowledged) and the store is poisoned. *)
let journal_applied t event =
  match t.journal with
  | None -> Ok ()
  | Some journal -> (
      match journal event with
      | Ok () -> Ok ()
      | Error msg ->
          poison t msg;
          Error "durable log write failed; statement not acknowledged"
      | exception exn ->
          poison t (Printexc.to_string exn);
          Error "durable log write failed; statement not acknowledged")

let ( let* ) = Result.bind

let create_table t schema =
  let* () = guard t in
  let name = Schema.name schema in
  if Hashtbl.mem t.tables name then Error (Printf.sprintf "table %s already exists" name)
  else begin
    Hashtbl.add t.tables name (Table.create schema);
    Epoch.bump_structural name;
    match journal_applied t (J_create schema) with
    | Ok () -> Ok ()
    | Error _ as e ->
        (* Creation was not acknowledged: take the table back out so a
           recovered store and this one agree. *)
        Hashtbl.remove t.tables name;
        Epoch.bump_structural name;
        e
  end

let restore_table t schema rows =
  let name = Schema.name schema in
  if Hashtbl.mem t.tables name then
    Error (Printf.sprintf "table %s already exists" name)
  else
    match Table.of_rows schema rows with
    | Error _ as e -> e
    | Ok tbl ->
        Hashtbl.add t.tables name tbl;
        Epoch.bump_structural name;
        Ok ()

let table t name = Hashtbl.find_opt t.tables name

let ensure_index t ~table ~column =
  match Hashtbl.find_opt t.tables table with
  | None -> Error (Printf.sprintf "no table named %s" table)
  | Some tbl -> (
      match Table.ensure_index tbl column with
      | () -> Ok ()
      | exception Invalid_argument msg -> Error msg)

let table_exn t name =
  match table t name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "no table named %s" name)

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort String.compare

let drop_table t name =
  let* () = guard t in
  match Hashtbl.find_opt t.tables name with
  | Some table -> begin
      Hashtbl.remove t.tables name;
      Epoch.bump_structural name;
      match journal_applied t (J_drop name) with
      | Ok () -> Ok ()
      | Error _ as e ->
          Hashtbl.add t.tables name table;
          Epoch.bump_structural name;
          e
    end
  | None -> Error (Printf.sprintf "no table named %s" name)

(* Busy-wait to model a round trip. The deadline must come from a
   monotonic wall clock: [Sys.time] is process CPU time, which both runs
   slow against real time (so the modeled latency was inflated) and is
   shared across threads. *)
let charge t =
  Sesame_faults.hit Sesame_faults.Db_query;
  Atomic.incr t.queries;
  if t.query_cost_ns > 0 then begin
    let deadline = Int64.add (Sesame_clock.now_ns ()) (Int64.of_int t.query_cost_ns) in
    while Sesame_clock.now_ns () < deadline do
      ignore (Sys.opaque_identity ())
    done
  end

let lookup t name =
  match table t name with
  | Some tbl -> Ok tbl
  | None ->
      (* The statement's outcome depends on the table's absence; a later
         CREATE bumps the (name-keyed) epoch and invalidates anything
         that cached this failure. *)
      Footprint.record_table_name name;
      Error (Printf.sprintf "no table named %s" name)

(* Early-terminating prefix: stops consuming once [n] elements are taken
   instead of materializing and scanning the whole list. *)
let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let run_plain_select tbl ~columns ~where ~order_by ~limit =
  let schema = Table.schema tbl in
  let* () = Expr.validate schema where in
  let* cols =
    match columns with
    | None -> Ok (List.map (fun (c : Schema.column) -> c.name) (Schema.columns schema))
    | Some cols -> (
        match List.find_opt (fun c -> not (Schema.mem schema c)) cols with
        | Some c -> Error (Printf.sprintf "table %s has no column %s" (Schema.name schema) c)
        | None -> Ok cols)
  in
  (* Without an ORDER BY, LIMIT pushes down into the scan itself; with
     one, every matching row is needed for the sort and the limit is an
     early-terminating prefix of the sorted rows. *)
  let rows =
    match order_by with
    | None -> Table.select ?limit tbl ~where
    | Some _ -> Table.select tbl ~where
  in
  let* rows =
    match order_by with
    | None -> Ok rows
    | Some (col, dir) ->
        if not (Schema.mem schema col) then
          Error (Printf.sprintf "table %s has no column %s" (Schema.name schema) col)
        else
          let key row = Row.get schema row col in
          let cmp a b =
            let c = Value.compare (key a) (key b) in
            match dir with Sql.Asc -> c | Sql.Desc -> -c
          in
          let sorted = List.stable_sort cmp rows in
          Ok (match limit with None -> sorted | Some n -> take n sorted)
  in
  let projected = List.map (fun row -> Row.project schema row cols) rows in
  Ok (Rows { columns = cols; rows = projected })

let aggregate_column = function
  | Sql.Count_all -> None
  | Sql.Count c | Sql.Sum c | Sql.Avg c | Sql.Min c | Sql.Max c -> Some c

let compute_aggregate schema rows agg =
  let values col =
    List.filter_map
      (fun row ->
        let v = Row.get schema row col in
        if Value.is_null v then None else Some v)
      rows
  in
  match agg with
  | Sql.Count_all -> Value.Int (List.length rows)
  | Sql.Count col -> Value.Int (List.length (values col))
  | Sql.Sum col ->
      let vs = values col in
      if vs = [] then Value.Null
      else Value.Float (List.fold_left (fun acc v -> acc +. Value.to_float v) 0.0 vs)
  | Sql.Avg col ->
      let vs = values col in
      if vs = [] then Value.Null
      else
        let sum = List.fold_left (fun acc v -> acc +. Value.to_float v) 0.0 vs in
        Value.Float (sum /. float_of_int (List.length vs))
  | Sql.Min col -> (
      match values col with
      | [] -> Value.Null
      | v :: vs -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v vs)
  | Sql.Max col -> (
      match values col with
      | [] -> Value.Null
      | v :: vs -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v vs)

let run_agg_select tbl ~aggregates ~where ~group_by =
  let schema = Table.schema tbl in
  let* () = Expr.validate schema where in
  let referenced = group_by @ List.filter_map aggregate_column aggregates in
  let* () =
    match List.find_opt (fun c -> not (Schema.mem schema c)) referenced with
    | Some c -> Error (Printf.sprintf "table %s has no column %s" (Schema.name schema) c)
    | None -> Ok ()
  in
  let rows = Table.select tbl ~where in
  let columns = group_by @ List.map Sql.aggregate_label aggregates in
  if group_by = [] then
    let out = Array.of_list (List.map (compute_aggregate schema rows) aggregates) in
    Ok (Rows { columns; rows = [ out ] })
  else begin
    (* Group rows by the tuple of group-by values, preserving first-seen
       order of groups. *)
    let groups : (Value.t list, Row.t list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun row ->
        let key = List.map (Row.get schema row) group_by in
        match Hashtbl.find_opt groups key with
        | Some cell -> cell := row :: !cell
        | None ->
            Hashtbl.add groups key (ref [ row ]);
            order := key :: !order)
      rows;
    let out =
      List.rev_map
        (fun key ->
          let members = List.rev !(Hashtbl.find groups key) in
          Array.of_list (key @ List.map (compute_aggregate schema members) aggregates))
        !order
    in
    Ok (Rows { columns; rows = out })
  end

let run_insert tbl ~columns ~values =
  let schema = Table.schema tbl in
  let* row =
    match columns with
    | Some cols ->
        if List.compare_lengths cols values <> 0 then
          Error "INSERT: column/value count mismatch"
        else Row.of_assoc schema (List.combine cols values)
    | None ->
        if List.compare_length_with values (Schema.arity schema) <> 0 then
          Error
            (Printf.sprintf "INSERT: expected %d values for table %s" (Schema.arity schema)
               (Schema.name schema))
        else Ok (Array.of_list values)
  in
  let* () = Table.insert tbl row in
  Ok (Affected 1)

(* An injected fault at the query seam must surface through the ordinary
   error channel — classifiable by the connector's retry machinery — not
   as an exception unwinding through the server. *)
let protect_faults f =
  try f () with
  | Sesame_faults.Injected { point; action; transient } ->
      Error (Sesame_faults.injected_message point action ~transient)
  | Sesame_deadline.Expired what -> Error (Sesame_deadline.error_message what)

(* Write admission: a mutation that has already missed its budget is
   refused here, before the engine applies anything — memory and journal
   never diverge over a deadline, so a late write can be refused without
   poisoning the store and without a torn journal record. The scan
   checkpoints inside [Table] can still abandon a mutation during its
   read phase (before any row changed); once the apply loop starts the
   statement runs to completion, journal included. *)
let admit_write () =
  Sesame_faults.hit Sesame_faults.Wal_commit_deadline;
  Sesame_deadline.guard "wal commit admission"

let exec_stmt t stmt =
  protect_faults @@ fun () ->
  let* () = guard t in
  let* () = Sesame_deadline.guard "db statement" in
  charge t;
  match stmt with
  | Sql.Select { table; columns; where; order_by; limit } ->
      let* tbl = lookup t table in
      run_plain_select tbl ~columns ~where ~order_by ~limit
  | Sql.Select_agg { table; aggregates; where; group_by } ->
      let* tbl = lookup t table in
      run_agg_select tbl ~aggregates ~where ~group_by
  | Sql.Insert { table; columns; values } ->
      let* tbl = lookup t table in
      let* () = admit_write () in
      let* result = run_insert tbl ~columns ~values in
      let* () = journal_applied t (J_stmt stmt) in
      Ok result
  | Sql.Update { table; set; where } ->
      let* tbl = lookup t table in
      let* () = Expr.validate (Table.schema tbl) where in
      let* () = admit_write () in
      let* n = Table.update tbl ~where ~set in
      let* () = journal_applied t (J_stmt stmt) in
      Ok (Affected n)
  | Sql.Delete { table; where } ->
      let* tbl = lookup t table in
      let* () = Expr.validate (Table.schema tbl) where in
      let* () = admit_write () in
      let n = Table.delete tbl ~where in
      let* () = journal_applied t (J_stmt stmt) in
      Ok (Affected n)

let exec t src ~params =
  let* stmt = Sql.parse src ~params in
  exec_stmt t stmt

let select_rows_under t src ~params ~pred =
  let* stmt = Sql.parse src ~params in
  match stmt with
  | Sql.Select { table; columns = None; where; order_by; limit } -> (
      let* () = guard t in
      let* tbl = lookup t table in
      (* The pushdown hook: an extra predicate (typically a policy's
         row translation) conjoined into the statement's own WHERE, so
         it rides the same index-candidate selection and early
         termination as any other predicate instead of being applied
         post-hoc to materialized rows. *)
      let* where =
        match pred with
        | None -> Ok where
        | Some extra ->
            let* () = Expr.validate (Table.schema tbl) extra in
            Ok (match where with Expr.True -> extra | w -> Expr.And (w, extra))
      in
      let* result =
        protect_faults (fun () ->
            let* () = Sesame_deadline.guard "db statement" in
            charge t;
            run_plain_select tbl ~columns:None ~where ~order_by ~limit)
      in
      match result with
      | Rows { rows; _ } -> Ok (Table.schema tbl, rows)
      | Affected _ -> assert false)
  | Sql.Select _ | Sql.Select_agg _ | Sql.Insert _ | Sql.Update _ | Sql.Delete _ ->
      Error "select_rows expects a SELECT * statement"

let select_rows t src ~params = select_rows_under t src ~params ~pred:None
