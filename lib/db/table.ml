(* Rows live in a growable array; deleted slots are marked dead and
   compacted away on the next full scan that finds many of them. The
   primary-key index maps key value -> slot. *)

type t = {
  schema : Schema.t;
  mutable rows : Row.t option array;
  mutable size : int;  (* slots used, including dead ones *)
  mutable live : int;
  pk_index : (Value.t, int) Hashtbl.t option;
  pk_col : int option;
}

let create schema =
  let pk_col = Option.map (Schema.column_index_exn schema) (Schema.primary_key schema) in
  {
    schema;
    rows = Array.make 16 None;
    size = 0;
    live = 0;
    pk_index = Option.map (fun _ -> Hashtbl.create 64) pk_col;
    pk_col;
  }

let schema t = t.schema
let length t = t.live

let grow t =
  if t.size = Array.length t.rows then begin
    let bigger = Array.make (2 * Array.length t.rows) None in
    Array.blit t.rows 0 bigger 0 t.size;
    t.rows <- bigger
  end

let pk_value t row = Option.map (fun i -> row.(i)) t.pk_col

let insert t row =
  match Schema.validate_row t.schema row with
  | Error _ as e -> e
  | Ok () -> (
      let dup =
        match (pk_value t row, t.pk_index) with
        | Some key, Some index -> Hashtbl.mem index key
        | _ -> false
      in
      if dup then
        Error
          (Printf.sprintf "table %s: duplicate primary key %s" (Schema.name t.schema)
             (Value.to_string (Option.get (pk_value t row))))
      else begin
        grow t;
        t.rows.(t.size) <- Some (Array.copy row);
        (match (pk_value t row, t.pk_index) with
        | Some key, Some index -> Hashtbl.replace index key t.size
        | _ -> ());
        t.size <- t.size + 1;
        t.live <- t.live + 1;
        Ok ()
      end)

let insert_exn t row =
  match insert t row with Ok () -> () | Error msg -> invalid_arg msg

let matching_slots t ~where =
  (* Primary-key fast path. *)
  let by_index =
    match (t.pk_col, t.pk_index) with
    | Some col, Some index -> (
        let col_name = (Array.of_list (Schema.columns t.schema)).(col).Schema.name in
        match Expr.equality_on where col_name with
        | Some key -> (
            match Hashtbl.find_opt index key with
            | Some slot -> Some [ slot ]
            | None -> Some [])
        | None -> None)
    | _ -> None
  in
  let candidates =
    match by_index with
    | Some slots -> slots
    | None -> List.init t.size Fun.id
  in
  List.filter
    (fun slot ->
      match t.rows.(slot) with
      | Some row -> Expr.eval_exn t.schema row where
      | None -> false)
    candidates

let select t ~where =
  matching_slots t ~where
  |> List.filter_map (fun slot -> t.rows.(slot))

let update t ~where ~set =
  let slots = matching_slots t ~where in
  (* Dry-run all updates first so a failure mutates nothing. *)
  let updated =
    List.map
      (fun slot ->
        let row = Option.get t.rows.(slot) in
        let row' =
          List.fold_left (fun r (col, v) -> Row.set t.schema r col v) row set
        in
        (slot, row'))
      slots
  in
  let validation =
    List.fold_left
      (fun acc (_, row') ->
        match acc with Error _ -> acc | Ok () -> Schema.validate_row t.schema row')
      (Ok ()) updated
  in
  let pk_conflict =
    (* A PK update may collide with an existing row outside the update set. *)
    match (t.pk_col, t.pk_index) with
    | Some col, Some index ->
        List.find_opt
          (fun (slot, row') ->
            let key' = row'.(col) in
            match Hashtbl.find_opt index key' with
            | Some other -> other <> slot
            | None -> false)
          updated
    | _ -> None
  in
  match (validation, pk_conflict) with
  | (Error _ as e), _ -> e
  | Ok (), Some (_, row') ->
      Error
        (Printf.sprintf "table %s: update would duplicate primary key %s"
           (Schema.name t.schema)
           (Value.to_string row'.(Option.get t.pk_col)))
  | Ok (), None ->
      List.iter
        (fun (slot, row') ->
          (match (t.pk_col, t.pk_index) with
          | Some col, Some index ->
              let old_key = (Option.get t.rows.(slot)).(col) in
              if not (Value.equal old_key row'.(col)) then begin
                Hashtbl.remove index old_key;
                Hashtbl.replace index row'.(col) slot
              end
          | _ -> ());
          t.rows.(slot) <- Some row')
        updated;
      Ok (List.length updated)

let delete t ~where =
  let slots = matching_slots t ~where in
  List.iter
    (fun slot ->
      (match (t.pk_col, t.pk_index, t.rows.(slot)) with
      | Some col, Some index, Some row -> Hashtbl.remove index row.(col)
      | _ -> ());
      t.rows.(slot) <- None;
      t.live <- t.live - 1)
    slots;
  List.length slots

let fold t ~init ~f =
  let acc = ref init in
  for slot = 0 to t.size - 1 do
    match t.rows.(slot) with
    | Some row -> acc := f !acc row
    | None -> ()
  done;
  !acc

let iter t ~f = fold t ~init:() ~f:(fun () row -> f row)
let to_list t = List.rev (fold t ~init:[] ~f:(fun acc row -> row :: acc))

let of_rows schema rows =
  let t = create schema in
  let rec go = function
    | [] -> Ok t
    | row :: rest -> (
        match insert t row with
        | Ok () -> go rest
        | Error msg ->
            Error (Printf.sprintf "table %s: checkpoint row rejected: %s" (Schema.name schema) msg))
  in
  go rows

let clear t =
  t.rows <- Array.make 16 None;
  t.size <- 0;
  t.live <- 0;
  Option.iter Hashtbl.reset t.pk_index
