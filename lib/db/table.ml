(* Rows live in a growable array; deleted slots are marked dead (slots are
   never reused, so a slot identifies a row for the life of the table).
   The primary-key index maps key value -> slot; secondary indexes map a
   column value -> the slots holding it and are kept exact across
   insert/update/delete, so an equality probe plus the ordinary WHERE
   filter is equivalent to a full scan. *)

(* One process-wide mutation epoch covering every table: bumped on any
   accepted mutation. Policy-verdict caches upstream (Sesame_core.Enforce)
   compare against it to invalidate — coarse on purpose: a missed
   invalidation is unsound, an extra one is just a cold cache. *)
let generation_counter = Atomic.make 0
let generation () = Atomic.get generation_counter
let touch () = Atomic.incr generation_counter

type t = {
  schema : Schema.t;
  mutable rows : Row.t option array;
  mutable size : int;  (* slots used, including dead ones *)
  mutable live : int;
  pk_index : (Value.t, int) Hashtbl.t option;
  pk_col : int option;
  secondary : (int, (Value.t, int list ref) Hashtbl.t) Hashtbl.t;
      (* column position -> value -> slots (unordered) *)
  scan_votes : (int, int) Hashtbl.t;
      (* column position -> full scans that could have used an index on it;
         past a threshold the index is built automatically *)
}

(* Auto-index a column once this many full scans carried an equality
   predicate on it and the table is big enough for probes to win. *)
let auto_index_scans = 8
let auto_index_min_rows = 256

(* Cooperative cancellation: long scans poll the ambient request deadline
   every [scan_checkpoint_rows] slots (power of two so the poll gate is a
   mask). An expired budget aborts the scan via [Sesame_deadline.Expired]
   before any mutation has been applied — callers observe a structured
   refusal, never a partial row set presented as complete. [fold]/[iter]
   stay checkpoint-free on purpose: they feed durable checkpointing,
   which must not be aborted by whichever request happened to trigger it. *)
let scan_checkpoint_rows = 256

let scan_checkpoint counter =
  incr counter;
  if !counter land (scan_checkpoint_rows - 1) = 0 then begin
    Sesame_faults.hit Sesame_faults.Db_scan_cancel;
    Sesame_deadline.check "db scan"
  end

let create schema =
  let pk_col = Option.map (Schema.column_index_exn schema) (Schema.primary_key schema) in
  {
    schema;
    rows = Array.make 16 None;
    size = 0;
    live = 0;
    pk_index = Option.map (fun _ -> Hashtbl.create 64) pk_col;
    pk_col;
    secondary = Hashtbl.create 4;
    scan_votes = Hashtbl.create 4;
  }

let schema t = t.schema
let length t = t.live

let grow t =
  if t.size = Array.length t.rows then begin
    let bigger = Array.make (2 * Array.length t.rows) None in
    Array.blit t.rows 0 bigger 0 t.size;
    t.rows <- bigger
  end

let pk_value t row = Option.map (fun i -> row.(i)) t.pk_col

(* --- secondary-index maintenance ---------------------------------- *)

let index_add index value slot =
  match Hashtbl.find_opt index value with
  | Some bucket -> bucket := slot :: !bucket
  | None -> Hashtbl.add index value (ref [ slot ])

let index_remove index value slot =
  match Hashtbl.find_opt index value with
  | Some bucket -> bucket := List.filter (fun s -> s <> slot) !bucket
  | None -> ()

let secondary_add t row slot =
  Hashtbl.iter (fun col index -> index_add index row.(col) slot) t.secondary

let secondary_remove t row slot =
  Hashtbl.iter (fun col index -> index_remove index row.(col) slot) t.secondary

let secondary_replace t ~old_row ~new_row slot =
  Hashtbl.iter
    (fun col index ->
      if not (Value.equal old_row.(col) new_row.(col)) then begin
        index_remove index old_row.(col) slot;
        index_add index new_row.(col) slot
      end)
    t.secondary

let build_index t col =
  if not (Hashtbl.mem t.secondary col) then begin
    let index = Hashtbl.create (max 64 t.live) in
    for slot = 0 to t.size - 1 do
      match t.rows.(slot) with
      | Some row -> index_add index row.(col) slot
      | None -> ()
    done;
    Hashtbl.add t.secondary col index;
    Hashtbl.remove t.scan_votes col
  end

let ensure_index t column =
  match Schema.column_index t.schema column with
  | None ->
      invalid_arg
        (Printf.sprintf "table %s has no column %s" (Schema.name t.schema) column)
  | Some col -> build_index t col

let has_index t column =
  match Schema.column_index t.schema column with
  | Some col -> Hashtbl.mem t.secondary col
  | None -> false

(* ------------------------------------------------------------------ *)

let insert t row =
  match Schema.validate_row t.schema row with
  | Error _ as e -> e
  | Ok () -> (
      let dup =
        match (pk_value t row, t.pk_index) with
        | Some key, Some index -> Hashtbl.mem index key
        | _ -> false
      in
      if dup then
        Error
          (Printf.sprintf "table %s: duplicate primary key %s" (Schema.name t.schema)
             (Value.to_string (Option.get (pk_value t row))))
      else begin
        grow t;
        let stored = Array.copy row in
        t.rows.(t.size) <- Some stored;
        (match (pk_value t row, t.pk_index) with
        | Some key, Some index -> Hashtbl.replace index key t.size
        | _ -> ());
        secondary_add t stored t.size;
        t.size <- t.size + 1;
        t.live <- t.live + 1;
        touch ();
        Ok ()
      end)

let insert_exn t row =
  match insert t row with Ok () -> () | Error msg -> invalid_arg msg

(* Candidate slots from an index, if any equality predicate in [where]
   hits one. [None] means "no index applies: scan". Candidates are a
   superset filter — every candidate is still checked against the full
   WHERE clause — sorted so results keep insertion (slot) order. *)
let index_candidates t ~where =
  let pk =
    match (t.pk_col, t.pk_index) with
    | Some col, Some index -> (
        match Expr.equality_on where (Schema.column_name t.schema col) with
        | Some key -> (
            match Hashtbl.find_opt index key with
            | Some slot -> Some [ slot ]
            | None -> Some [])
        | None -> None)
    | _ -> None
  in
  match pk with
  | Some _ as hit -> hit
  | None ->
      Hashtbl.fold
        (fun col index acc ->
          match acc with
          | Some _ -> acc
          | None -> (
              match Expr.equality_on where (Schema.column_name t.schema col) with
              | Some key -> (
                  match Hashtbl.find_opt index key with
                  | Some bucket -> Some (List.sort compare !bucket)
                  | None -> Some [])
              | None -> acc))
        t.secondary None

(* On a full scan, vote for every equality column the scan could have
   probed; build the index once the votes say the scan pattern repeats. *)
let record_scan_votes t ~where =
  if t.live >= auto_index_min_rows then
    List.iter
      (fun name ->
        match Schema.column_index t.schema name with
        | Some col
          when (not (Hashtbl.mem t.secondary col)) && t.pk_col <> Some col
               && Expr.equality_on where name <> None ->
            let votes = 1 + Option.value ~default:0 (Hashtbl.find_opt t.scan_votes col) in
            if votes >= auto_index_scans then build_index t col
            else Hashtbl.replace t.scan_votes col votes
        | _ -> ())
      (Expr.columns where)

let matching_slots t ~where =
  match index_candidates t ~where with
  | Some candidates ->
      List.filter
        (fun slot ->
          match t.rows.(slot) with
          | Some row -> Expr.eval_exn t.schema row where
          | None -> false)
        candidates
  | None ->
      record_scan_votes t ~where;
      let scanned = ref 0 in
      let acc = ref [] in
      for slot = t.size - 1 downto 0 do
        scan_checkpoint scanned;
        match t.rows.(slot) with
        | Some row -> if Expr.eval_exn t.schema row where then acc := slot :: !acc
        | None -> ()
      done;
      !acc

let select ?limit t ~where =
  let cap = match limit with Some n -> max 0 n | None -> max_int in
  if cap = 0 then []
  else
    match index_candidates t ~where with
    | Some candidates ->
        let rec take n = function
          | slot :: rest when n > 0 -> (
              match t.rows.(slot) with
              | Some row when Expr.eval_exn t.schema row where -> row :: take (n - 1) rest
              | Some _ | None -> take n rest)
          | _ -> []
        in
        take cap candidates
    | None ->
        record_scan_votes t ~where;
        (* Direct array walk, stopping as soon as [limit] rows matched —
           no candidate list is materialized for the common full scan. *)
        let scanned = ref 0 in
        let acc = ref [] in
        let found = ref 0 in
        let slot = ref 0 in
        while !found < cap && !slot < t.size do
          scan_checkpoint scanned;
          (match t.rows.(!slot) with
          | Some row ->
              if Expr.eval_exn t.schema row where then begin
                acc := row :: !acc;
                incr found
              end
          | None -> ());
          incr slot
        done;
        List.rev !acc

let update t ~where ~set =
  let slots = matching_slots t ~where in
  (* Dry-run all updates first so a failure mutates nothing. *)
  let updated =
    List.map
      (fun slot ->
        let row = Option.get t.rows.(slot) in
        let row' =
          List.fold_left (fun r (col, v) -> Row.set t.schema r col v) row set
        in
        (slot, row'))
      slots
  in
  let validation =
    List.fold_left
      (fun acc (_, row') ->
        match acc with Error _ -> acc | Ok () -> Schema.validate_row t.schema row')
      (Ok ()) updated
  in
  let pk_conflict =
    (* A PK update may collide with an existing row outside the update set. *)
    match (t.pk_col, t.pk_index) with
    | Some col, Some index ->
        List.find_opt
          (fun (slot, row') ->
            let key' = row'.(col) in
            match Hashtbl.find_opt index key' with
            | Some other -> other <> slot
            | None -> false)
          updated
    | _ -> None
  in
  match (validation, pk_conflict) with
  | (Error _ as e), _ -> e
  | Ok (), Some (_, row') ->
      Error
        (Printf.sprintf "table %s: update would duplicate primary key %s"
           (Schema.name t.schema)
           (Value.to_string row'.(Option.get t.pk_col)))
  | Ok (), None ->
      List.iter
        (fun (slot, row') ->
          let old_row = Option.get t.rows.(slot) in
          (match (t.pk_col, t.pk_index) with
          | Some col, Some index ->
              if not (Value.equal old_row.(col) row'.(col)) then begin
                Hashtbl.remove index old_row.(col);
                Hashtbl.replace index row'.(col) slot
              end
          | _ -> ());
          secondary_replace t ~old_row ~new_row:row' slot;
          t.rows.(slot) <- Some row')
        updated;
      if updated <> [] then touch ();
      Ok (List.length updated)

let delete t ~where =
  let slots = matching_slots t ~where in
  List.iter
    (fun slot ->
      (match t.rows.(slot) with
      | Some row ->
          (match (t.pk_col, t.pk_index) with
          | Some col, Some index -> Hashtbl.remove index row.(col)
          | _ -> ());
          secondary_remove t row slot
      | None -> ());
      t.rows.(slot) <- None;
      t.live <- t.live - 1)
    slots;
  if slots <> [] then touch ();
  List.length slots

let fold t ~init ~f =
  let acc = ref init in
  for slot = 0 to t.size - 1 do
    match t.rows.(slot) with
    | Some row -> acc := f !acc row
    | None -> ()
  done;
  !acc

let iter t ~f = fold t ~init:() ~f:(fun () row -> f row)
let to_list t = List.rev (fold t ~init:[] ~f:(fun acc row -> row :: acc))

let of_rows schema rows =
  let t = create schema in
  let rec go = function
    | [] -> Ok t
    | row :: rest -> (
        match insert t row with
        | Ok () -> go rest
        | Error msg ->
            Error (Printf.sprintf "table %s: checkpoint row rejected: %s" (Schema.name schema) msg))
  in
  go rows

let clear t =
  t.rows <- Array.make 16 None;
  t.size <- 0;
  t.live <- 0;
  Option.iter Hashtbl.reset t.pk_index;
  Hashtbl.iter (fun _ index -> Hashtbl.reset index) t.secondary;
  Hashtbl.reset t.scan_votes;
  touch ()
