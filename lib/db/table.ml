(* Rows live in a growable array; deleted slots are marked dead (slots are
   never reused, so a slot identifies a row for the life of the table).
   The primary-key index maps key value -> slot; secondary indexes map a
   column value -> the slots holding it and are kept exact across
   insert/update/delete, so an equality probe plus the ordinary WHERE
   filter is equivalent to a full scan.

   Concurrency: a writer-preferring RW lock per table. Mutations and
   index builds run under [wr]; reads run under [rd] — index probes
   evaluate in place (candidate lists are tiny), full scans copy the
   slot-pointer array under [rd] and evaluate predicates off-lock, so a
   10k-row scan holds the lock for a pointer memcpy, not for 10k
   predicate evaluations. Stored rows are immutable (insert copies,
   update installs a fresh row), so a copied snapshot is a consistent
   statement-level view even while writers proceed.

   Invalidation: every mutation bumps the table's per-shard epoch vector
   ({!Epoch}) — the shard of the touched primary key when it is known,
   every shard otherwise — and reads record what they depended on into
   the ambient {!Footprint} scope: pk-equality probes record one shard,
   everything else (secondary probes, scans, folds) records the whole
   table. Caches upstream revalidate against exactly those slots. *)

let generation () = Epoch.global ()
let touch () = Epoch.touch ()

type t = {
  schema : Schema.t;
  name : string;
  ep : Epoch.table_epoch;
  lock : Rwlock.t;
  mutable rows : Row.t option array;
  mutable size : int;  (* slots used, including dead ones *)
  mutable live : int;
  pk_index : (Value.t, int) Hashtbl.t option;
  pk_col : int option;
  secondary : (int, (Value.t, int list ref) Hashtbl.t) Hashtbl.t;
      (* column position -> value -> slots (unordered) *)
  votes : int Atomic.t array;
      (* per column: full scans that could have used an index on it *)
  want_index : bool Atomic.t array;
      (* per column: votes crossed the threshold; the build itself is
         deferred to the next [wr] section so it never runs while
         concurrent readers probe [secondary] *)
}

(* Auto-index a column once this many full scans carried an equality
   predicate on it and the table is big enough for probes to win. *)
let auto_index_scans = 8
let auto_index_min_rows = 256

(* Cooperative cancellation: long scans poll the ambient request deadline
   every [scan_checkpoint_rows] slots (power of two so the poll gate is a
   mask). An expired budget aborts the scan via [Sesame_deadline.Expired]
   before any mutation has been applied — callers observe a structured
   refusal, never a partial row set presented as complete. [fold]/[iter]
   stay checkpoint-free on purpose: they feed durable checkpointing,
   which must not be aborted by whichever request happened to trigger it. *)
let scan_checkpoint_rows = 256

let scan_checkpoint counter =
  incr counter;
  if !counter land (scan_checkpoint_rows - 1) = 0 then begin
    Sesame_faults.hit Sesame_faults.Db_scan_cancel;
    Sesame_deadline.check "db scan"
  end

let create schema =
  let pk_col = Option.map (Schema.column_index_exn schema) (Schema.primary_key schema) in
  let name = Schema.name schema in
  {
    schema;
    name;
    ep = Epoch.for_table name;
    lock = Rwlock.create ();
    rows = Array.make 16 None;
    size = 0;
    live = 0;
    pk_index = Option.map (fun _ -> Hashtbl.create 64) pk_col;
    pk_col;
    secondary = Hashtbl.create 4;
    votes = Array.init (Schema.arity schema) (fun _ -> Atomic.make 0);
    want_index = Array.init (Schema.arity schema) (fun _ -> Atomic.make false);
  }

let schema t = t.schema

let length t =
  Footprint.record_table t.name t.ep;
  Rwlock.rd t.lock (fun () -> t.live)

let grow t =
  if t.size = Array.length t.rows then begin
    let bigger = Array.make (2 * Array.length t.rows) None in
    Array.blit t.rows 0 bigger 0 t.size;
    t.rows <- bigger
  end

let pk_value t row = Option.map (fun i -> row.(i)) t.pk_col

(* --- secondary-index maintenance ---------------------------------- *)

let index_add index value slot =
  match Hashtbl.find_opt index value with
  | Some bucket -> bucket := slot :: !bucket
  | None -> Hashtbl.add index value (ref [ slot ])

let index_remove index value slot =
  match Hashtbl.find_opt index value with
  | Some bucket -> bucket := List.filter (fun s -> s <> slot) !bucket
  | None -> ()

let secondary_add t row slot =
  Hashtbl.iter (fun col index -> index_add index row.(col) slot) t.secondary

let secondary_remove t row slot =
  Hashtbl.iter (fun col index -> index_remove index row.(col) slot) t.secondary

let secondary_replace t ~old_row ~new_row slot =
  Hashtbl.iter
    (fun col index ->
      if not (Value.equal old_row.(col) new_row.(col)) then begin
        index_remove index old_row.(col) slot;
        index_add index new_row.(col) slot
      end)
    t.secondary

(* Caller must hold [wr]. *)
let build_index_unlocked t col =
  if not (Hashtbl.mem t.secondary col) then begin
    let index = Hashtbl.create (max 64 t.live) in
    for slot = 0 to t.size - 1 do
      match t.rows.(slot) with
      | Some row -> index_add index row.(col) slot
      | None -> ()
    done;
    Hashtbl.add t.secondary col index
  end;
  Atomic.set t.votes.(col) 0;
  Atomic.set t.want_index.(col) false

(* Caller must hold [wr]: materialize any index the vote counters asked
   for. Readers only flag; builds happen here so [secondary] is never
   resized under a concurrent probe. *)
let build_pending_unlocked t =
  Array.iteri
    (fun col want -> if Atomic.get want then build_index_unlocked t col)
    t.want_index

(* A read path's entry hook: if votes flagged an index, take the write
   lock once and build it before the read proceeds. *)
let maybe_build_pending t =
  if Array.exists Atomic.get t.want_index then
    Rwlock.wr t.lock (fun () -> build_pending_unlocked t)

let ensure_index t column =
  match Schema.column_index t.schema column with
  | None ->
      invalid_arg
        (Printf.sprintf "table %s has no column %s" (Schema.name t.schema) column)
  | Some col -> Rwlock.wr t.lock (fun () -> build_index_unlocked t col)

let has_index t column =
  match Schema.column_index t.schema column with
  | Some col -> Rwlock.rd t.lock (fun () -> Hashtbl.mem t.secondary col)
  | None -> false

(* Candidate slots from an index, if any equality predicate in [where]
   hits one. [None] means "no index applies: scan". Candidates are a
   superset filter — every candidate is still checked against the full
   WHERE clause — sorted so results keep insertion (slot) order.
   Caller must hold [rd] or [wr]; records the footprint of the probe
   (one shard for a pk probe — key absence is shard-local too — the
   whole table for a secondary probe, whose buckets shift under any
   write). *)
let index_candidates_unlocked t ~where =
  let pk =
    match (t.pk_col, t.pk_index) with
    | Some col, Some index -> (
        match Expr.equality_on where (Schema.column_name t.schema col) with
        | Some key -> (
            Footprint.record_shard t.name t.ep (Epoch.shard_of_value key);
            match Hashtbl.find_opt index key with
            | Some slot -> Some [ slot ]
            | None -> Some [])
        | None -> None)
    | _ -> None
  in
  match pk with
  | Some _ as hit -> hit
  | None ->
      Hashtbl.fold
        (fun col index acc ->
          match acc with
          | Some _ -> acc
          | None -> (
              match Expr.equality_on where (Schema.column_name t.schema col) with
              | Some key -> (
                  Footprint.record_table t.name t.ep;
                  match Hashtbl.find_opt index key with
                  | Some bucket -> Some (List.sort compare !bucket)
                  | None -> Some [])
              | None -> acc))
        t.secondary None

(* On a full scan, vote for every equality column the scan could have
   probed; flag the column once the votes say the scan pattern repeats
   (the build itself waits for a [wr] section). Safe under [rd]: the
   counters are atomics. *)
let record_scan_votes t ~where =
  if t.live >= auto_index_min_rows then
    List.iter
      (fun name ->
        match Schema.column_index t.schema name with
        | Some col
          when (not (Hashtbl.mem t.secondary col)) && t.pk_col <> Some col
               && Expr.equality_on where name <> None ->
            let votes = 1 + Atomic.fetch_and_add t.votes.(col) 1 in
            if votes >= auto_index_scans then Atomic.set t.want_index.(col) true
        | _ -> ())
      (Expr.columns where)

(* Caller must hold [wr] (mutation read phase: checkpoint polls may
   abort the statement here, before any row has changed). *)
let matching_slots_unlocked t ~where =
  match index_candidates_unlocked t ~where with
  | Some candidates ->
      List.filter
        (fun slot ->
          match t.rows.(slot) with
          | Some row -> Expr.eval_exn t.schema row where
          | None -> false)
        candidates
  | None ->
      Footprint.record_table t.name t.ep;
      record_scan_votes t ~where;
      let scanned = ref 0 in
      let acc = ref [] in
      for slot = t.size - 1 downto 0 do
        scan_checkpoint scanned;
        match t.rows.(slot) with
        | Some row -> if Expr.eval_exn t.schema row where then acc := slot :: !acc
        | None -> ()
      done;
      !acc

(* ------------------------------------------------------------------ *)

let bump_rows t touched =
  (* [touched]: the pk values of the mutated rows. With a primary key,
     bump exactly their shards; without one, the whole table. *)
  match t.pk_col with
  | Some _ ->
      List.iter (fun key -> Epoch.bump_shard t.ep (Epoch.shard_of_value key)) touched
  | None -> Epoch.bump_table t.ep

let insert t row =
  match Schema.validate_row t.schema row with
  | Error _ as e -> e
  | Ok () ->
      Rwlock.wr t.lock (fun () ->
          build_pending_unlocked t;
          (* The duplicate check is a read: success depends on the key's
             shard (absence included), so record it — a verdict computed
             through a failed insert stays cached until that shard moves. *)
          (match pk_value t row with
          | Some key -> Footprint.record_shard t.name t.ep (Epoch.shard_of_value key)
          | None -> Footprint.record_table t.name t.ep);
          let dup =
            match (pk_value t row, t.pk_index) with
            | Some key, Some index -> Hashtbl.mem index key
            | _ -> false
          in
          if dup then
            Error
              (Printf.sprintf "table %s: duplicate primary key %s" (Schema.name t.schema)
                 (Value.to_string (Option.get (pk_value t row))))
          else begin
            grow t;
            let stored = Array.copy row in
            t.rows.(t.size) <- Some stored;
            (match (pk_value t row, t.pk_index) with
            | Some key, Some index -> Hashtbl.replace index key t.size
            | _ -> ());
            secondary_add t stored t.size;
            t.size <- t.size + 1;
            t.live <- t.live + 1;
            (match pk_value t row with
            | Some key -> Epoch.bump_shard t.ep (Epoch.shard_of_value key)
            | None -> Epoch.bump_table t.ep);
            Ok ()
          end)

let insert_exn t row =
  match insert t row with Ok () -> () | Error msg -> invalid_arg msg

(* Reads either resolve through an index (tiny candidate lists, checked
   in place under [rd]) or copy the slot array under [rd] and scan the
   copy off-lock. The copy is the snapshot: rows are immutable once
   stored, so concurrent writers cannot tear it — Retrain Model's 10k-row
   scan sees the table exactly as of its start. *)
type 'a read_plan = Resolved of 'a | Scan of Row.t option array

let select ?limit t ~where =
  maybe_build_pending t;
  let cap = match limit with Some n -> max 0 n | None -> max_int in
  if cap = 0 then []
  else
    let plan =
      Rwlock.rd t.lock (fun () ->
          match index_candidates_unlocked t ~where with
          | Some candidates ->
              let rec take n = function
                | slot :: rest when n > 0 -> (
                    match t.rows.(slot) with
                    | Some row when Expr.eval_exn t.schema row where ->
                        row :: take (n - 1) rest
                    | Some _ | None -> take n rest)
                | _ -> []
              in
              Resolved (take cap candidates)
          | None ->
              Footprint.record_table t.name t.ep;
              record_scan_votes t ~where;
              Scan (Array.sub t.rows 0 t.size))
    in
    (* A scan whose votes just crossed the threshold flags the index;
       build it now (after the read lock is released, under [wr]) so the
       adaptive index exists as soon as the deciding scan returns. *)
    maybe_build_pending t;
    match plan with
    | Resolved rows -> rows
    | Scan snap ->
        (* Direct walk of the snapshot, stopping as soon as [limit] rows
           matched — no candidate list is materialized, no lock held. *)
        let scanned = ref 0 in
        let acc = ref [] in
        let found = ref 0 in
        let slot = ref 0 in
        let n = Array.length snap in
        while !found < cap && !slot < n do
          scan_checkpoint scanned;
          (match snap.(!slot) with
          | Some row ->
              if Expr.eval_exn t.schema row where then begin
                acc := row :: !acc;
                incr found
              end
          | None -> ());
          incr slot
        done;
        List.rev !acc

let update t ~where ~set =
  Rwlock.wr t.lock (fun () ->
      build_pending_unlocked t;
      let slots = matching_slots_unlocked t ~where in
      (* Dry-run all updates first so a failure mutates nothing. *)
      let updated =
        List.map
          (fun slot ->
            let row = Option.get t.rows.(slot) in
            let row' =
              List.fold_left (fun r (col, v) -> Row.set t.schema r col v) row set
            in
            (slot, row'))
          slots
      in
      let validation =
        List.fold_left
          (fun acc (_, row') ->
            match acc with Error _ -> acc | Ok () -> Schema.validate_row t.schema row')
          (Ok ()) updated
      in
      let pk_conflict =
        (* A PK update may collide with an existing row outside the update set. *)
        match (t.pk_col, t.pk_index) with
        | Some col, Some index ->
            List.find_opt
              (fun (slot, row') ->
                let key' = row'.(col) in
                match Hashtbl.find_opt index key' with
                | Some other -> other <> slot
                | None -> false)
              updated
        | _ -> None
      in
      match (validation, pk_conflict) with
      | (Error _ as e), _ -> e
      | Ok (), Some (_, row') ->
          Error
            (Printf.sprintf "table %s: update would duplicate primary key %s"
               (Schema.name t.schema)
               (Value.to_string row'.(Option.get t.pk_col)))
      | Ok (), None ->
          let touched = ref [] in
          List.iter
            (fun (slot, row') ->
              let old_row = Option.get t.rows.(slot) in
              (match (t.pk_col, t.pk_index) with
              | Some col, Some index ->
                  (* Old and new key shards both move: a verdict keyed on
                     either sees the change. *)
                  touched := old_row.(col) :: !touched;
                  if not (Value.equal old_row.(col) row'.(col)) then begin
                    touched := row'.(col) :: !touched;
                    Hashtbl.remove index old_row.(col);
                    Hashtbl.replace index row'.(col) slot
                  end
              | _ -> ());
              secondary_replace t ~old_row ~new_row:row' slot;
              t.rows.(slot) <- Some row')
            updated;
          if updated <> [] then bump_rows t !touched;
          Ok (List.length updated))

let delete t ~where =
  Rwlock.wr t.lock (fun () ->
      build_pending_unlocked t;
      let slots = matching_slots_unlocked t ~where in
      let touched = ref [] in
      List.iter
        (fun slot ->
          (match t.rows.(slot) with
          | Some row ->
              (match (t.pk_col, t.pk_index) with
              | Some col, Some index ->
                  touched := row.(col) :: !touched;
                  Hashtbl.remove index row.(col)
              | _ -> ());
              secondary_remove t row slot
          | None -> ());
          t.rows.(slot) <- None;
          t.live <- t.live - 1)
        slots;
      if slots <> [] then bump_rows t !touched;
      List.length slots)

let snapshot t =
  Footprint.record_table t.name t.ep;
  Rwlock.rd t.lock (fun () -> Array.sub t.rows 0 t.size)

let fold t ~init ~f =
  let snap = snapshot t in
  Array.fold_left
    (fun acc slot -> match slot with Some row -> f acc row | None -> acc)
    init snap

let iter t ~f = fold t ~init:() ~f:(fun () row -> f row)
let to_list t = List.rev (fold t ~init:[] ~f:(fun acc row -> row :: acc))

let of_rows schema rows =
  let t = create schema in
  let rec go = function
    | [] -> Ok t
    | row :: rest -> (
        match insert t row with
        | Ok () -> go rest
        | Error msg ->
            Error (Printf.sprintf "table %s: checkpoint row rejected: %s" (Schema.name schema) msg))
  in
  go rows

let clear t =
  Rwlock.wr t.lock (fun () ->
      t.rows <- Array.make 16 None;
      t.size <- 0;
      t.live <- 0;
      Option.iter Hashtbl.reset t.pk_index;
      Hashtbl.iter (fun _ index -> Hashtbl.reset index) t.secondary;
      Array.iter (fun v -> Atomic.set v 0) t.votes;
      Array.iter (fun w -> Atomic.set w false) t.want_index);
  Epoch.bump_structural t.name
