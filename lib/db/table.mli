(** A mutable table: rows stored in insertion order, with a hash index on
    the primary key (when the schema declares one) and optional secondary
    hash indexes used to serve equality lookups without a scan.

    Thread-safe: mutations and index builds serialize on a per-table
    writer-preferring RW lock; reads run concurrently, and full scans
    copy the slot array under the read lock and evaluate off-lock, so a
    long scan sees a consistent statement-level snapshot instead of
    racing writers. Every mutation bumps the table's per-shard epoch
    vector ({!Epoch}) and every read records its dependency into the
    ambient {!Footprint} scope, which is what makes precise verdict- and
    aggregate-cache invalidation upstream sound. *)

type t

val generation : unit -> int
(** Legacy process-wide mutation epoch ({!Epoch.global}): bumped
    whenever any table accepts a mutation (insert/update/delete/clear)
    and by {!touch}. Coarse verdict caches compare against it; precise
    ones record per-shard footprints instead. Monotonic; exact under
    concurrent readers. *)

val touch : unit -> unit
(** Bumps {!generation} and the structural epoch ({!Epoch.structure}) —
    for mutations the table layer cannot see (policy re-registration
    and other out-of-band events). *)

val create : Schema.t -> t
val schema : t -> Schema.t
val length : t -> int

val insert : t -> Row.t -> (unit, string) result
(** Validates the row against the schema and primary-key uniqueness. *)

val insert_exn : t -> Row.t -> unit

val ensure_index : t -> string -> unit
(** Builds a secondary hash index on the column (idempotent). Kept exact
    across inserts, updates, and deletes; equality predicates on the
    column then probe the index instead of scanning. Raises
    [Invalid_argument] on an unknown column. *)

val has_index : t -> string -> bool
(** Whether a secondary index exists for the column (indexes also appear
    adaptively after repeated equality scans on a large table). *)

val select : ?limit:int -> t -> where:Expr.t -> Row.t list
(** Matching rows in insertion order, at most [limit] when given (the
    scan stops early — no full result is materialized). Routes through
    the primary-key or a secondary index when [where] pins the indexed
    column to a value. Raises [Invalid_argument] on unknown columns (use
    {!Expr.validate} to check first). *)

val update :
  t -> where:Expr.t -> set:(string * Value.t) list -> (int, string) result
(** Returns the number of rows updated; rejects updates that would violate
    the schema or duplicate a primary key, in which case no row changes. *)

val delete : t -> where:Expr.t -> int
(** Returns the number of rows removed. *)

val fold : t -> init:'a -> f:('a -> Row.t -> 'a) -> 'a
val iter : t -> f:(Row.t -> unit) -> unit
val to_list : t -> Row.t list

val of_rows : Schema.t -> Row.t list -> (t, string) result
(** Rebuilds a table from a checkpoint snapshot: every row is validated
    and indexed exactly as live inserts are, and the first rejected row
    fails the whole load — a checkpoint that does not replay verbatim is
    corruption, not data. *)

val clear : t -> unit
