(* Per-table, per-shard mutation generations.

   The old scheme was one process-wide counter ([Table.generation])
   bumped on every accepted mutation: sound, but a write anywhere cooled
   every memoized verdict everywhere. Here each table owns a generation
   vector — one counter per hash shard of its primary-key space plus a
   whole-table total — and caches upstream record exactly the slots they
   read (see {!Footprint}), so a write to [users] shard 3 leaves verdicts
   over [answers] (and over [users] shard 5) warm.

   Epochs are keyed by table *name* and survive drop/recreate on
   purpose: if dropping a table reset its counters to the values a
   cached footprint recorded, a stale verdict would revalidate against a
   table with entirely different contents. Sharing one slot between
   same-named tables in different [Database.t] instances is the safe
   direction too — it can only invalidate more than necessary, never
   less. *)

(* Power of two so [shard_of_value] is a mask, fixed so a footprint
   recorded under one count is comparable forever. *)
let shard_count = 16

type table_epoch = {
  total : int Atomic.t;  (* any mutation to the table *)
  shards : int Atomic.t array;  (* per primary-key hash shard *)
}

(* Legacy process-wide epoch (the old [Table.generation]), still bumped
   on every mutation: the coarse mode benchmarks ablate against, and the
   compatibility surface for callers that predate footprints. *)
let global_counter = Atomic.make 0
let global () = Atomic.get global_counter

(* Structural epoch: create/drop/clear/restore and [Table.touch] — the
   events that can change what a compiled plan certificate or schema
   assumption means. Bumped far more rarely than row mutations, which is
   exactly why certificates revalidate against it instead of [global]. *)
let structure_counter = Atomic.make 0
let structure () = Atomic.get structure_counter

let registry : (string, table_epoch) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let fresh () =
  { total = Atomic.make 0; shards = Array.init shard_count (fun _ -> Atomic.make 0) }

let for_table name =
  match Hashtbl.find_opt registry name with
  | Some ep -> ep
  | None ->
      Mutex.lock registry_lock;
      let ep =
        match Hashtbl.find_opt registry name with
        | Some ep -> ep
        | None ->
            let ep = fresh () in
            Hashtbl.add registry name ep;
            ep
      in
      Mutex.unlock registry_lock;
      ep

let shard_of_value v = Hashtbl.hash v land (shard_count - 1)

let shard_gen ep i = Atomic.get ep.shards.(i)
let total_gen ep = Atomic.get ep.total

(* A row mutation whose primary key is known: bump that shard, the
   table total, and the legacy global. *)
let bump_shard ep i =
  Atomic.incr ep.shards.(i);
  Atomic.incr ep.total;
  Atomic.incr global_counter

(* A mutation that cannot be pinned to one key (multi-row update/delete
   without a pk, clear, restore): bump every shard so any footprint over
   the table goes stale. *)
let bump_table ep =
  Array.iter Atomic.incr ep.shards;
  Atomic.incr ep.total;
  Atomic.incr global_counter

(* Schema-level events (create/drop/clear/restore): also move the
   structural epoch that plan certificates key on. *)
let bump_structural name =
  bump_table (for_table name);
  Atomic.incr structure_counter

(* The old [Table.touch] contract: a mutation the table layer cannot
   see. Conservatively structural. *)
let touch () =
  Atomic.incr global_counter;
  Atomic.incr structure_counter
