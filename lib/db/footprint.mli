(** Read-footprint recording for precise cache invalidation.

    A cache (Enforce's verdict memo, Sesame_conn's aggregate cache)
    opens a {!scope} around a computation; every {!Table}/{!Database}
    read inside records the (table, shard) generation slot it depended
    on, sampled {e before} the rows are read. The resulting
    {!snapshot} is stored with the cached value and {!valid} rechecks
    only those slots — a write elsewhere leaves the entry warm.

    Conservative by construction: pk-equality probes record one shard;
    every other read shape (secondary probe, full scan, fold, absence
    of a table) records a whole-table dependency; duplicate records
    keep the oldest generation; a read that races a write samples a
    generation the write then moves, so the entry fails validation.
    Scopes nest, merging child deps into the parent on exit.
    Per-domain (DLS); recording off costs one DLS read per record
    site. *)

type snapshot

val empty : snapshot

val recording : unit -> bool
(** Is a scope open on this domain? *)

val record_shard : string -> Epoch.table_epoch -> int -> unit
(** [record_shard table ep shard] — a pk-equality probe touched exactly
    this shard (hit or miss: key absence is shard-local too). *)

val record_table : string -> Epoch.table_epoch -> unit
(** Whole-table dependency: scans, secondary-index probes, folds. *)

val record_table_name : string -> unit
(** Whole-table dependency by name — also for tables that do not exist
    (the verdict depends on their absence; creation bumps the slot). *)

val scope : (unit -> 'a) -> 'a * snapshot
(** Run with a fresh recording scope; returns the result and the deps
    recorded. On exit the deps also merge into the enclosing scope, if
    any. Exceptions pop the scope and re-raise (deps discarded). *)

val merge_ambient : snapshot -> unit
(** Record a stored snapshot's deps into the current scope (cache-hit
    path: the reused verdict's reads become the caller's reads). No-op
    when no scope is open. *)

val valid : snapshot -> bool
(** Do all recorded slots still hold their recorded generations? *)

val cardinal : snapshot -> int

val deps : snapshot -> (string * int) list
(** Sorted (table, shard) pairs; shard [-1] is a whole-table dep. For
    tests and diagnostics. *)
