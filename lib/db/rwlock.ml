(* A writer-preferring readers/writer lock.

   Table reads (index probes, snapshot copies) run concurrently under
   [rd]; mutations and index builds serialize under [wr]. Writer
   preference — new readers queue once a writer is waiting — keeps a
   steady read stream from starving the 10%-writes side of the mixed
   workloads. Not re-entrant: the table layer never nests its own
   operations (predicate evaluation is pure), and callers must not
   re-enter the table from inside a callback run under the lock. *)

type t = {
  mutex : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int;  (* active readers *)
  mutable writer : bool;  (* a writer holds the lock *)
  mutable waiting_writers : int;
}

let create () =
  {
    mutex = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let rd t f =
  Mutex.lock t.mutex;
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.can_read t.mutex
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mutex;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock t.mutex;
      t.readers <- t.readers - 1;
      if t.readers = 0 then Condition.signal t.can_write;
      Mutex.unlock t.mutex)

let wr t f =
  Mutex.lock t.mutex;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.can_write t.mutex
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.mutex;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock t.mutex;
      t.writer <- false;
      if t.waiting_writers > 0 then Condition.signal t.can_write
      else Condition.broadcast t.can_read;
      Mutex.unlock t.mutex)
