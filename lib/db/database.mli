(** The database: named tables plus a SQL executor.

    A configurable per-statement cost models the round trip to a remote
    database server; the policy-composition experiment (Fig. 9c) depends on
    the fact that each policy check that needs fresh data issues one such
    round trip, so joining policies that share a query amortizes it. *)

type t

type exec_result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int

type journal_event =
  | J_stmt of Sql.stmt  (** a mutating statement the engine accepted *)
  | J_create of Schema.t
  | J_drop of string

val create : ?query_cost_ns:int -> unit -> t
(** [query_cost_ns] (default 0) is busy-waited before every statement. *)

val set_journal : t -> (journal_event -> (unit, string) result) option -> unit
(** Installs (or removes) the durable-mode journal hook. The hook runs
    {e after} a mutating statement (or [create_table]/[drop_table]) has
    been applied in memory; only accepted operations reach it, so a WAL
    built from these events replays cleanly. If the hook fails (or
    raises), the operation is reported failed — never acknowledged — and
    the store is {!poison}ed, because memory and log have diverged. *)

val poison : t -> string -> unit
(** Quarantines the store: every subsequent statement — reads included —
    fails with a generic, classified-permanent error until the store is
    reopened through recovery. Idempotent; the first reason wins. *)

val poisoned : t -> string option

val set_query_cost_ns : t -> int -> unit
val query_count : t -> int
(** Number of statements executed so far (for tests and benchmarks). *)

val reset_query_count : t -> unit

val create_table : t -> Schema.t -> (unit, string) result

val restore_table : t -> Schema.t -> Row.t list -> (unit, string) result
(** Recovery-only: installs a table rebuilt from a checkpoint snapshot
    (every row re-validated via {!Table.of_rows}), bypassing the journal.
    Fails if the table already exists or any row is rejected. *)

val ensure_index : t -> table:string -> column:string -> (unit, string) result
(** Builds a secondary hash index (see {!Table.ensure_index}) so equality
    predicates on the column probe instead of scanning. Idempotent. *)

val table : t -> string -> Table.t option
val table_exn : t -> string -> Table.t
val table_names : t -> string list
val drop_table : t -> string -> (unit, string) result

val exec : t -> string -> params:Value.t list -> (exec_result, string) result
(** Parses, binds, and runs one statement. *)

val exec_stmt : t -> Sql.stmt -> (exec_result, string) result

val select_rows :
  t -> string -> params:Value.t list -> ((Schema.t * Row.t list), string) result
(** Convenience for [SELECT *] queries: returns the table schema along with
    the full rows, which the Sesame connector needs to instantiate
    per-row policies. Fails if the statement is not a [SELECT *]. *)

val select_rows_under :
  t ->
  string ->
  params:Value.t list ->
  pred:Expr.t option ->
  ((Schema.t * Row.t list), string) result
(** {!select_rows} with an extra predicate conjoined into the
    statement's WHERE — the predicate-pushdown hook: a policy's row
    translation filters denied rows {e during} the (possibly indexed)
    scan instead of post-hoc over materialized rows. [pred] is validated
    against the table schema; [None] is exactly {!select_rows}. *)
