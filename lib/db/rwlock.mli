(** Writer-preferring readers/writer lock for table access.

    Many concurrent [rd] sections; [wr] sections exclusive. New readers
    queue behind a waiting writer so a steady read stream cannot starve
    writes. Sections release the lock on exception. Not re-entrant. *)

type t

val create : unit -> t
val rd : t -> (unit -> 'a) -> 'a
val wr : t -> (unit -> 'a) -> 'a
