module C = Sesame_core
module Db = Sesame_db
module Http = Sesame_http
module Scrut = Sesame_scrutinizer
module Policy = C.Policy
module Pcon = C.Pcon
module Context = C.Context
module Region = C.Region
module Conn = C.Sesame_conn
module Web = C.Sesame_web

let app_name = "youchat"

(* The single YouChat policy: a message is visible to its sender, its
   recipient, and (for group messages) the group's members. Membership
   lives in the database. *)
module Message_access_family = struct
  type s = {
    sender : string;
    recipient : string option;
    group_id : int option;
    db : Db.Database.t;
  }

  let name = "youchat::message-access"

  let group_members db group_id =
    match
      Db.Database.exec db "SELECT email FROM group_members WHERE group_id = ?"
        ~params:[ Db.Value.Int group_id ]
    with
    | Ok (Db.Database.Rows { rows; _ }) ->
        List.filter_map
          (fun row -> match row.(0) with Db.Value.Text e -> Some e | _ -> None)
          rows
    | Ok (Db.Database.Affected _) | Error _ -> []

  let check s ctx =
    match Context.user ctx with
    | None -> false
    | Some who ->
        who = s.sender
        || s.recipient = Some who
        || (match s.group_id with
           | Some gid -> List.mem who (group_members s.db gid)
           | None -> false)

  let join = None
  let no_folding = false

  let describe s =
    Printf.sprintf "MessageAccess(from=%s, to=%s, group=%s)" s.sender
      (Option.value s.recipient ~default:"-")
      (match s.group_id with Some g -> string_of_int g | None -> "-")
end

module Message_access = Policy.Make (Message_access_family)

let policy_inventory = [ ("MessageAccess", 38, 12) ]

(* ------------------------------------------------------------------ *)

let users_schema =
  Db.Schema.make_exn ~name:"users" ~primary_key:"email"
    [ { name = "email"; ty = Db.Value.Ttext; nullable = false } ]

let groups_schema =
  Db.Schema.make_exn ~name:"groups" ~primary_key:"id"
    [
      { name = "id"; ty = Db.Value.Tint; nullable = false };
      { name = "name"; ty = Db.Value.Ttext; nullable = false };
    ]

let members_schema =
  Db.Schema.make_exn ~name:"group_members" ~primary_key:"id"
    [
      { name = "id"; ty = Db.Value.Tint; nullable = false };
      { name = "group_id"; ty = Db.Value.Tint; nullable = false };
      { name = "email"; ty = Db.Value.Ttext; nullable = false };
    ]

let messages_schema =
  Db.Schema.make_exn ~name:"messages" ~primary_key:"id"
    [
      { name = "id"; ty = Db.Value.Tint; nullable = false };
      { name = "sender"; ty = Db.Value.Ttext; nullable = false };
      { name = "recipient"; ty = Db.Value.Ttext; nullable = true };
      { name = "group_id"; ty = Db.Value.Tint; nullable = true };
      { name = "body"; ty = Db.Value.Ttext; nullable = false };
      { name = "sent_at"; ty = Db.Value.Tint; nullable = false };
    ]

(* YouChat's three verified regions (Fig. 6). *)
let build_program () =
  let open Scrut.Ir in
  let program = Scrut.Program.create () in
  Scrut.Program.define_all program
    [
      func ~name:"yc::preview" ~params:[ "body" ]
        [
          Let ("short", Call (Static "String::clone", [ Var "body" ]));
          Return (Some (Var "short"));
        ];
      func ~name:"yc::join_thread" ~params:[ "bodies" ]
        [
          Let ("out", Str_lit "");
          For
            ( "b",
              Var "bodies",
              [ Assign (Lvar "out", Binop (Concat, Var "out", Var "b")) ] );
          Return (Some (Var "out"));
        ];
      func ~name:"yc::shout" ~params:[ "body" ]
        [ Return (Some (Binop (Concat, Var "body", Str_lit "!"))) ];
    ];
  program

type regions = {
  preview : (string, string) Region.Verified.t;
  join_thread : (string list, string) Region.Verified.t;
  shout : (string, string) Region.Verified.t;
}

type t = {
  conn : Conn.t;
  db : Db.Database.t;
  regions : regions;
  mutable next_id : int;
}

let database t = t.db
let conn t = t.conn

let ( let* ) = Result.bind

let make_regions program =
  let open Scrut.Ir in
  let spec name params body = Scrut.Spec.make ~name ~params body in
  let lift r = Result.map_error Region.error_to_string r in
  let* preview =
    lift
      (Region.Verified.make ~app:app_name ~program
         ~spec:
           (spec "inbox::preview" [ "body" ]
              [ Return (Some (Call (Static "yc::preview", [ Var "body" ]))) ])
         ~f:(fun body -> if String.length body <= 40 then body else String.sub body 0 40)
         ())
  in
  let* join_thread =
    lift
      (Region.Verified.make ~app:app_name ~program
         ~spec:
           (spec "thread::join" [ "bodies" ]
              [ Return (Some (Call (Static "yc::join_thread", [ Var "bodies" ]))) ])
         ~f:(fun bodies -> String.concat "\n" bodies)
         ())
  in
  let* shout =
    lift
      (Region.Verified.make ~app:app_name ~program
         ~spec:
           (spec "send::shout" [ "body" ]
              [ Return (Some (Call (Static "yc::shout", [ Var "body" ]))) ])
         ~f:String.uppercase_ascii
         ())
  in
  Ok { preview; join_thread; shout }

let create ?(query_cost_ns = 0) () =
  let db = Db.Database.create ~query_cost_ns () in
  let* () = Db.Database.create_table db users_schema in
  let* () = Db.Database.create_table db groups_schema in
  let* () = Db.Database.create_table db members_schema in
  let* () = Db.Database.create_table db messages_schema in
  let conn = Conn.create db in
  Conn.attach_policy conn ~table:"messages" ~column:"body" (fun schema row ->
      Message_access.make
        {
          sender = Db.Value.to_text (Db.Row.get schema row "sender");
          recipient =
            (match Db.Row.get schema row "recipient" with
            | Db.Value.Text r -> Some r
            | _ -> None);
          group_id =
            (match Db.Row.get schema row "group_id" with
            | Db.Value.Int g -> Some g
            | _ -> None);
          db;
        });
  let* regions = make_regions (build_program ()) in
  Ok { conn; db; regions; next_id = 1 }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let user_email i = Printf.sprintf "user%d@chat.io" i

let seed t ~users ~messages =
  let check = function Ok _ -> Ok () | Error msg -> Error msg in
  let* () =
    List.fold_left
      (fun acc i ->
        let* () = acc in
        check
          (Db.Database.exec t.db "INSERT INTO users (email) VALUES (?)"
             ~params:[ Db.Value.Text (user_email i) ]))
      (Ok ())
      (List.init users Fun.id)
  in
  let* () =
    check
      (Db.Database.exec t.db "INSERT INTO groups (id, name) VALUES (?, ?)"
         ~params:[ Db.Value.Int 1; Db.Value.Text "everyone" ])
  in
  let* () =
    List.fold_left
      (fun acc i ->
        let* () = acc in
        check
          (Db.Database.exec t.db
             "INSERT INTO group_members (id, group_id, email) VALUES (?, ?, ?)"
             ~params:
               [ Db.Value.Int (fresh_id t); Db.Value.Int 1; Db.Value.Text (user_email i) ]))
      (Ok ())
      (List.init (max 1 (users / 2)) Fun.id)
  in
  List.fold_left
    (fun acc m ->
      let* () = acc in
      let sender = user_email (m mod users) in
      let to_group = m mod 4 = 0 in
      check
        (Db.Database.exec t.db
           "INSERT INTO messages (id, sender, recipient, group_id, body, sent_at) VALUES (?, ?, ?, ?, ?, ?)"
           ~params:
             [
               Db.Value.Int (fresh_id t);
               Db.Value.Text sender;
               (if to_group then Db.Value.Null
                else Db.Value.Text (user_email ((m + 1) mod users)));
               (if to_group then Db.Value.Int 1 else Db.Value.Null);
               Db.Value.Text (Printf.sprintf "message %d from %s" m sender);
               Db.Value.Int m;
             ]))
    (Ok ())
    (List.init messages Fun.id)

(* ------------------------------------------------------------------ *)

let conn_error e = Conn.error_response e

let authenticate request = Http.Request.cookie request "user"

let require_auth request k =
  match authenticate request with
  | Some user -> k user
  | None -> Http.Response.error Http.Status.Unauthorized "not signed in"

let send_message t request =
  require_auth request (fun user ->
      match Http.Request.form_param request "body" with
      | None -> Http.Response.error Http.Status.Bad_request "body is required"
      | Some _ -> (
          let recipient = Http.Request.form_param request "to" in
          let group = Http.Request.form_param request "group" in
          let policy =
            Message_access.make
              {
                sender = user;
                recipient;
                group_id = Option.bind group int_of_string_opt;
                db = t.db;
              }
          in
          let body_pcon =
            Option.get (Web.form_param request "body" ~policy:(fun _ -> policy))
          in
          (* Emphasis is app logic on protected data: a verified region. *)
          let body_pcon =
            if Http.Request.form_param request "shout" = Some "true" then
              Region.Verified.run t.regions.shout body_pcon
            else body_pcon
          in
          let context = Web.context_for request ~user () in
          match
            Conn.insert t.conn ~context ~table:"messages"
              [
                ("id", Pcon.wrap_no_policy (Db.Value.Int (fresh_id t)));
                ("sender", Pcon.wrap_no_policy (Db.Value.Text user));
                ( "recipient",
                  Pcon.wrap_no_policy
                    (match recipient with
                    | Some r -> Db.Value.Text r
                    | None -> Db.Value.Null) );
                ( "group_id",
                  Pcon.wrap_no_policy
                    (match Option.bind group int_of_string_opt with
                    | Some g -> Db.Value.Int g
                    | None -> Db.Value.Null) );
                ("body", C.Pcon.Internal.map (fun b -> Db.Value.Text b) body_pcon);
                ("sent_at", Pcon.wrap_no_policy (Db.Value.Int t.next_id));
              ]
          with
          | Ok () -> Http.Response.text ~status:Http.Status.Created "sent"
          | Error e -> conn_error e))

let feed_template =
  Http.Template.compile_exn
    "<html><body>{{#messages}}<div>{{line}}</div>{{/messages}}</body></html>"

let render_messages t context rows =
  let bindings =
    List.map
      (fun row ->
        [ ("line", Region.Verified.run t.regions.preview (C.Pcon_row.text row "body")) ])
      rows
  in
  match
    Web.render ~context feed_template [ ("messages", Web.Sensitive_list bindings) ]
  with
  | Ok response -> response
  | Error e -> Web.error_response e

let inbox t request =
  require_auth request (fun user ->
      let context = Web.context_for request ~user () in
      match
        Conn.query t.conn ~context
          "SELECT * FROM messages WHERE sender = ? OR recipient = ? ORDER BY sent_at"
          ~params:
            [
              Pcon.wrap_no_policy (Db.Value.Text user);
              Pcon.wrap_no_policy (Db.Value.Text user);
            ]
      with
      | Error e -> conn_error e
      | Ok rows -> render_messages t context rows)

let group_feed t request =
  require_auth request (fun user ->
      let gid =
        Http.Request.path_param request "id"
        |> Option.map int_of_string_opt |> Option.join |> Option.value ~default:1
      in
      let context = Web.context_for request ~user () in
      match
        Conn.query t.conn ~context
          "SELECT * FROM messages WHERE group_id = ? ORDER BY sent_at"
          ~params:[ Pcon.wrap_no_policy (Db.Value.Int gid) ]
      with
      | Error e -> conn_error e
      | Ok rows -> render_messages t context rows)

let router t =
  let router = Http.Router.create () in
  Http.Router.post router "/send" (send_message t);
  Http.Router.get router "/inbox" (inbox t);
  Http.Router.get router "/group/<id>" (group_feed t);
  router

let handle t request = Http.Router.dispatch (router t) request
