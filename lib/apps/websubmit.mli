(** WebSubmit: the homework-submission case study (§9, §10).

    The paper's WebSubmit is a class-submission system extended with a
    grade-prediction model, aggregate statistics for administrators and
    employers, and consent choices. It carries seven policies (§9) and is
    the application behind the end-to-end performance figures (Fig. 8),
    the sandbox drill-downs (Fig. 9a/9b), and the policy-composition
    experiment (Fig. 9c).

    Endpoints mirror the paper's:
    - [POST /register] — register with an API key, hashed in a {e sandboxed
      region} ("Register Users");
    - [POST /submit/<lecture>/<question>] — Fig. 1's flow: store the
      answer, format a confirmation in a {e verified region}, email it via
      a signed {e critical region};
    - [GET /view/<answer_id>] — Fig. 2's flow;
    - [GET /answers/<lecture>] — staff view; [?compose=true] folds the
      answers' policies (Fig. 9c ablation);
    - [GET /aggregates] — per-lecture average grades under k-anonymity
      ("Get Aggregates");
    - [GET /employer] — consenting students' averages for employers ("Get
      Employer Info");
    - [POST /consent] — the user's consent choice for employer release and
      model training;
    - [POST /retrain] — trains the grade model in a sandbox ("Retrain
      Model");
    - [GET /predict/<email>] — model inference in a verified region
      ("Predict Grades"). *)

module C := Sesame_core
module Db := Sesame_db
module Http := Sesame_http
module Wal := Sesame_wal
module Scrut := Sesame_scrutinizer
module Sbx := Sesame_sandbox

type t

val app_name : string
(** ["websubmit"] — the registry key. *)

type hardening = {
  sandbox_pool : Sbx.Pool.t;
  preflight : Sbx.Preflight.report;
  quota : Sbx.Quota.t;
  sandbox_config : Sbx.Runtime.config;
}
(** The sandbox-hardening bundle both sandboxed regions share when the
    app is created with one: a preflighted pool, per-run budgets, and a
    cumulative quota accountant. *)

val harden :
  ?pool_capacity:int ->
  ?max_pool_capacity:int ->
  ?arena_size:int ->
  ?quota_limits:Sbx.Quota.limits ->
  ?quota_policy:Sbx.Quota.policy ->
  ?budget:Sbx.Runtime.budget ->
  unit ->
  (hardening, string) result
(** Runs the boot-time SFI preflight battery and constructs the bundle;
    fails closed (with the missed checks named) if any trap test is not
    caught — an app asked to harden never falls back to an unverified
    pool. Defaults: 4 arenas of 256 KiB (growable to [max_pool_capacity]
    via {!Sbx.Pool.set_capacity}), a 5 s / 1M-fuel / 128 KiB per-run
    budget, no cumulative limits, [Deny] policy. *)

val hardening : t -> hardening option
(** The bundle this instance was created with, for stats surfacing. *)

val create :
  ?query_cost_ns:int -> ?k_anonymity:int -> ?hardening:hardening -> unit -> (t, string) result
(** Builds schemas, policies, regions (running Scrutinizer on the verified
    ones), and signs the critical regions with the built-in reviewer key.
    [query_cost_ns] models the DB round trip (Fig. 9c); [k_anonymity]
    defaults to 5. [hardening] (default off) runs both sandboxed regions
    on the bundle's preflighted pool, under its budgets and quota. *)

val create_durable :
  ?query_cost_ns:int ->
  ?k_anonymity:int ->
  ?durable_config:Wal.Durable.config ->
  ?hardening:hardening ->
  data_dir:string ->
  unit ->
  (t * Wal.Durable.t, string) result
(** Like {!create}, but over a crash-consistent durable store rooted at
    [data_dir] (see {!Sesame_wal.Durable}): registers the seven policy
    families with the provenance registry, recovers checkpoint + WAL
    (fail-closed — a store that cannot prove every row's policy refuses
    to open), creates any missing tables, and resumes the answer-id
    sequence past the largest recovered id. *)

val policy_family_names : string list
(** The seven families' stable constructor names, as journaled. *)

val answer_count : t -> int
(** Rows currently in [answers] — lets a durable caller decide whether
    seeding is needed after recovery. *)

val conn : t -> C.Sesame_conn.t
val database : t -> Db.Database.t

val recover : t -> (Wal.Durable.t, string) result
(** Leave brownout (see {!C.Sesame_conn.exit_brownout}): recover a fresh
    writable store from disk, swap it into the connector, and rebind the
    app's direct-db paths (authentication, registration, [answer_count])
    to the recovered handle. Returns the new store so durable callers
    can rebind checkpoint/flush plumbing; the old handle is closed. *)

val router : t -> Http.Router.t

val seed : t -> students:int -> questions:int -> (unit, string) result
(** Loads the Fig. 8 workload: [students] users (every third consents to
    both employer release and ML training) and one graded answer per
    (student, question) for a single lecture, plus a second lecture with
    discussion leaders. *)

val handle : t -> Http.Request.t -> Http.Response.t

(** Direct handles used by benchmarks (bypassing routing, not policy): *)

val get_aggregates : t -> Http.Request.t -> Http.Response.t
val get_employer_info : t -> Http.Request.t -> Http.Response.t
val predict_grades : t -> Http.Request.t -> Http.Response.t
val register_user : t -> Http.Request.t -> Http.Response.t
val retrain_model : t -> Http.Request.t -> Http.Response.t
val submit_answer : t -> Http.Request.t -> Http.Response.t
val view_answer : t -> Http.Request.t -> Http.Response.t
val view_answers : t -> compose:bool -> Http.Request.t -> Http.Response.t
val update_consent : t -> Http.Request.t -> Http.Response.t
(** [POST /consent] with form [consent=true|false]: the §9 consent choice.
    Invalidates the MlTraining policy's consent memo for the user. *)

val policy_inventory : (string * int * int) list
(** [(policy, policy_loc, check_loc)] accounting used for Fig. 5. *)

(** {1 Check elision}

    The static model consumed by {!Sesame_scrutinizer.Elision} and the
    runtime plan compiled from its verdicts (see DESIGN.md, "Check
    elision & predicate pushdown"). *)

val elision_families : Scrut.Elision.family list
(** The seven families: inspected places, identically-true clauses, and
    pushability. *)

val elision_sites : Scrut.Elision.site list
(** The elidable release sites: [/aggregates], [/predict] (with the
    verified predict region), [/retrain], and [/employer] (residual by
    design — consent can never be elided). *)

val elision_certificates : t -> Scrut.Elision.certificate list
(** The full classification of this instance's program against the
    model, one certificate per (site, sink, family) triple. *)

val install_plan : t -> unit
(** Compiles the Redundant certificates into {!C.Enforce.Plan} entries
    (guarded by their satisfying clauses, revalidated against the
    issuing binding versions) and declares the endpoints' release
    sinks. Called by {!create}/{!create_durable}; exposed so tests can
    reinstall after {!C.Enforce.Plan.clear}. *)

val sandbox_hash_region : t -> (string, string) C.Region.Sandboxed.t
(** The "Register Users" hashing region, exposed for the Fig. 9a
    drill-down. *)

val sandbox_train_region : t -> (float * float, float list) C.Region.Sandboxed.t
(** The "Retrain Model" region, exposed for Fig. 9b. *)
