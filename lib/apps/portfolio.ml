module C = Sesame_core
module Db = Sesame_db
module Http = Sesame_http
module Scrut = Sesame_scrutinizer
module Sign = Sesame_signing
module Policy = C.Policy
module Pcon = C.Pcon
module Context = C.Context
module Region = C.Region
module Conn = C.Sesame_conn
module Web = C.Sesame_web

let app_name = "portfolio"
let admins = [ "officer@school.cz" ]
let is_admin user = List.mem user admins

(* (1) Candidate data — plain or ciphertext — is accessible only to the
   candidate and reviewing administrators. *)
module Candidate_data_family = struct
  type s = { candidate : string }

  let name = "portfolio::candidate-data"

  let check s ctx =
    match Context.user ctx with
    | None -> false
    | Some who -> who = s.candidate || is_admin who

  let join = None
  let no_folding = false
  let describe s = Printf.sprintf "CandidateData(%s)" s.candidate
end

module Candidate_data = Policy.Make (Candidate_data_family)

(* (2) Private keys never leave the DB except in the owner's cookie. *)
module Private_key_family = struct
  type s = { owner : string }

  let name = "portfolio::private-key"

  let check s ctx =
    match Context.sink ctx with
    | Some "db::insert" | Some "db::query" | Some "db::execute" -> true
    | Some "http::cookie" -> Context.user ctx = Some s.owner
    | None ->
        (* A critical region in the owner's own session (encrypt/decrypt)
           may compute with the key; it still cannot externalize it. *)
        Context.user ctx = Some s.owner
    | Some _ -> false

  let join = None
  let no_folding = true
  let describe s = Printf.sprintf "PrivateKey(%s)" s.owner
end

module Private_key = Policy.Make (Private_key_family)

let policy_inventory = [ ("CandidateData", 16, 5); ("PrivateKey", 17, 6) ]

(* ------------------------------------------------------------------ *)

let candidates_schema =
  Db.Schema.make_exn ~name:"candidates" ~primary_key:"email"
    [
      { name = "email"; ty = Db.Value.Ttext; nullable = false };
      { name = "name"; ty = Db.Value.Ttext; nullable = false };
      { name = "school"; ty = Db.Value.Ttext; nullable = true };
      { name = "private_key"; ty = Db.Value.Ttext; nullable = false };
    ]

let documents_schema =
  Db.Schema.make_exn ~name:"documents" ~primary_key:"id"
    [
      { name = "id"; ty = Db.Value.Tint; nullable = false };
      { name = "email"; ty = Db.Value.Ttext; nullable = false };
      { name = "filename"; ty = Db.Value.Ttext; nullable = false };
      { name = "ciphertext"; ty = Db.Value.Ttext; nullable = false };
      { name = "checksum"; ty = Db.Value.Tint; nullable = true };
    ]

(* The IR program: the crypto crate is async + native, so every region
   touching it is rejected by Scrutinizer, and (being incompatible with
   the WASM sandbox) becomes a critical region — the §9 porting story. *)
let build_program () =
  let open Scrut.Ir in
  let program = Scrut.Program.create () in
  Scrut.Program.define_all program
    [
      func ~name:"pf::validate_name" ~params:[ "name" ]
        [
          If
            ( Binop (Eq, Var "name", Str_lit ""),
              [ Return (Some (Str_lit "name must not be empty")) ],
              [ Return (Some (Str_lit "")) ] );
        ];
      func ~name:"pf::format_profile" ~params:[ "name"; "school" ]
        [
          Return
            (Some (Binop (Concat, Var "name", Binop (Concat, Str_lit " / ", Var "school"))));
        ];
      func ~name:"pf::checksum" ~params:[ "data" ]
        [
          Let ("sum", Int_lit 0);
          For ("b", Var "data", [ Assign (Lvar "sum", Binop (Add, Var "sum", Var "b")) ]);
          Return (Some (Var "sum"));
        ];
      native ~package:"ring" ~name:"ring::stream_encrypt" ~params:[ "key"; "data" ] ();
      native ~package:"ring" ~name:"ring::stream_decrypt" ~params:[ "key"; "data" ] ();
      native ~package:"ring" ~name:"ring::keypair" ~params:[ "seed" ] ();
      func ~name:"pf::encrypt_document" ~params:[ "data"; "key" ]
        [ Return (Some (Call (Static "ring::stream_encrypt", [ Var "key"; Var "data" ]))) ];
      func ~name:"pf::decrypt_document" ~params:[ "data"; "key" ]
        [ Return (Some (Call (Static "ring::stream_decrypt", [ Var "key"; Var "data" ]))) ];
      func ~name:"pf::generate_keypair" ~params:[ "seed" ]
        [ Return (Some (Call (Static "ring::keypair", [ Var "seed" ]))) ];
    ];
  program

let lockfile =
  Sign.Lockfile.of_packages
    [
      { name = "ring"; version = "0.17.8"; deps = [ "untrusted" ] };
      { name = "untrusted"; version = "0.9.0"; deps = [] };
    ]

type regions = {
  validate_name : (string, string) Region.Verified.t;
  format_profile : (string * string, string) Region.Verified.t;
  checksum : (string, int) Region.Sandboxed.t;
  encrypt_document : (string * string, string) Region.Critical.t;
  decrypt_document : (string * string, (string, string) result) Region.Critical.t;
  generate_keypair : (string, string * string) Region.Critical.t;
}

type t = {
  conn : Conn.t;
  db : Db.Database.t;
  regions : regions;
  mutable next_id : int;
}

let database t = t.db
let conn t = t.conn

let ( let* ) = Result.bind
let reviewer = "dpo@school.cz"

let make_regions program keystore =
  let open Scrut.Ir in
  let spec ?captures name params body = Scrut.Spec.make ~name ~params ?captures body in
  let lift r = Result.map_error Region.error_to_string r in
  let* validate_name =
    lift
      (Region.Verified.make ~app:app_name ~program
         ~spec:
           (spec "register::validate_name" [ "name" ]
              [ Return (Some (Call (Static "pf::validate_name", [ Var "name" ]))) ])
         ~f:(fun name -> if String.trim name = "" then "name must not be empty" else "")
         ())
  in
  let* format_profile =
    lift
      (Region.Verified.make ~app:app_name ~program
         ~spec:
           (spec "profile::format" [ "name"; "school" ]
              [
                Return
                  (Some (Call (Static "pf::format_profile", [ Var "name"; Var "school" ])));
              ])
         ~f:(fun (name, school) -> name ^ " / " ^ school)
         ())
  in
  let checksum =
    Region.Sandboxed.make ~app:app_name ~name:"upload::checksum" ~loc:6
      ~encode:(fun data -> Sesame_sandbox.Value.Str data)
      ~decode:(function
        | Sesame_sandbox.Value.Int sum -> Ok sum
        | _ -> Error "expected Int")
      ~f:(function
        | Sesame_sandbox.Value.Str data ->
            let sum = ref 0 in
            String.iter (fun c -> sum := (!sum + Char.code c) land 0xFFFFFF) data;
            Sesame_sandbox.Value.Int !sum
        | other -> other)
      ()
  in
  let* encrypt_document =
    lift
      (Region.Critical.make ~app:app_name ~program
         ~spec:
           (spec "document::encrypt" [ "data"; "key" ]
              [
                Return
                  (Some (Call (Static "pf::encrypt_document", [ Var "data"; Var "key" ])));
              ])
         ~lockfile ~keystore
         ~f:(fun ~context:_ (data, key) -> Crypto.encrypt ~key data)
         ())
  in
  let* decrypt_document =
    lift
      (Region.Critical.make ~app:app_name ~program
         ~spec:
           (spec "document::decrypt" [ "data"; "key" ]
              [
                Return
                  (Some (Call (Static "pf::decrypt_document", [ Var "data"; Var "key" ])));
              ])
         ~lockfile ~keystore
         ~f:(fun ~context:_ (data, key) -> Crypto.decrypt ~key data)
         ())
  in
  let* generate_keypair =
    lift
      (Region.Critical.make ~app:app_name ~program
         ~spec:
           (spec "register::keypair" [ "seed" ]
              [ Return (Some (Call (Static "pf::generate_keypair", [ Var "seed" ]))) ])
         ~lockfile ~keystore
         ~f:(fun ~context:_ seed -> Crypto.keypair ~seed)
         ())
  in
  Ok
    {
      validate_name;
      format_profile;
      checksum;
      encrypt_document;
      decrypt_document;
      generate_keypair;
    }

let create ?(query_cost_ns = 0) () =
  let db = Db.Database.create ~query_cost_ns () in
  let* () = Db.Database.create_table db candidates_schema in
  let* () = Db.Database.create_table db documents_schema in
  let conn = Conn.create db in
  let candidate_of schema row column =
    ignore column;
    Db.Value.to_text (Db.Row.get schema row "email")
  in
  List.iter
    (fun column ->
      Conn.attach_policy conn ~table:"candidates" ~column (fun schema row ->
          Candidate_data.make { candidate = candidate_of schema row column }))
    [ "name"; "school" ];
  Conn.attach_policy conn ~table:"candidates" ~column:"private_key" (fun schema row ->
      Private_key.make { owner = Db.Value.to_text (Db.Row.get schema row "email") });
  List.iter
    (fun column ->
      Conn.attach_policy conn ~table:"documents" ~column (fun schema row ->
          Candidate_data.make { candidate = candidate_of schema row column }))
    [ "filename"; "ciphertext"; "checksum" ];
  let keystore = Sign.Keystore.create () in
  Sign.Keystore.register keystore ~reviewer ~secret:"portfolio-dpo-secret";
  let* regions = make_regions (build_program ()) keystore in
  let sign region =
    match Region.Critical.sign region ~reviewer ~at:3000 with
    | Ok () -> Ok ()
    | Error e -> Error (Region.error_to_string e)
  in
  let* () = sign regions.encrypt_document in
  let* () = sign regions.decrypt_document in
  let* () = sign regions.generate_keypair in
  Ok { conn; db; regions; next_id = 1 }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let candidate_email i = Printf.sprintf "candidate%d@school.cz" i

let insert_candidate t ~email ~name ~school =
  let _, priv = Crypto.keypair ~seed:email in
  let ( let* ) = Result.bind in
  let* _ =
    Db.Database.exec t.db
      "INSERT INTO candidates (email, name, school, private_key) VALUES (?, ?, ?, ?)"
      ~params:
        [
          Db.Value.Text email;
          Db.Value.Text name;
          Db.Value.Text school;
          Db.Value.Text priv;
        ]
  in
  Ok priv

let seed t ~candidates =
  let ( let* ) = Result.bind in
  List.fold_left
    (fun acc i ->
      let* () = acc in
      let email = candidate_email i in
      let* priv =
        insert_candidate t ~email
          ~name:(Printf.sprintf "Candidate %d" i)
          ~school:"Gymnazium Praha"
      in
      let key = Crypto.derive_key ~passphrase:priv ~salt:email in
      let ciphertext = Crypto.encrypt ~key (Printf.sprintf "transcript of %s" email) in
      let* _ =
        Db.Database.exec t.db
          "INSERT INTO documents (id, email, filename, ciphertext, checksum) VALUES (?, ?, ?, ?, ?)"
          ~params:
            [
              Db.Value.Int (fresh_id t);
              Db.Value.Text email;
              Db.Value.Text "transcript.pdf";
              Db.Value.Text ciphertext;
              Db.Value.Null;
            ]
      in
      Ok ())
    (Ok ())
    (List.init candidates Fun.id)

(* ------------------------------------------------------------------ *)

let conn_error e = Conn.error_response e

(* Explicit variants, no catch-all: region failures carry internal
   detail (trap renderings, hash/decode messages) that must never reach
   a client body, and the compiler should flag any new variant here. *)
let region_err e =
  match e with
  | Region.Policy_denied _ -> Http.Response.error Http.Status.Forbidden "policy check failed"
  | Region.Quota_denied _ ->
      Http.Response.error (Http.Status.Code 503) "service temporarily unavailable"
  | Region.Not_leakage_free _ | Region.Unsigned _ | Region.Signature_invalid _
  | Region.Hashing_failed _ | Region.Decode_failed _ | Region.Sandbox_trapped _
  | Region.Attest_failed _ ->
      Http.Response.error Http.Status.Internal_error "internal error"

let authenticate request = Http.Request.cookie request "user"

let require_auth request k =
  match authenticate request with
  | Some user -> k user
  | None -> Http.Response.error Http.Status.Unauthorized "not signed in"

(* The user's document key is derived from the private key in their
   cookie — data the DB released through the cookie sink at registration. *)
let document_key ~request ~email =
  match Http.Request.cookie request "private_key" with
  | Some priv -> Some (Crypto.derive_key ~passphrase:priv ~salt:email)
  | None -> None

(* POST /register *)
let register t request =
  match (Http.Request.form_param request "email", Http.Request.form_param request "name")
  with
  | Some email, Some name -> (
      let school = Option.value (Http.Request.form_param request "school") ~default:"" in
      let name_policy = Candidate_data.make { candidate = email } in
      let name_pcon = C.Pcon.Internal.make name_policy name in
      let validation = Region.Verified.run t.regions.validate_name name_pcon in
      (* Fold-in of the validation result: early-return on errors (§9's
         anti-pattern resolution — the result itself stays governed). *)
      if C.Mock.unwrap (C.Pcon.string_length validation) > 0 then
        Http.Response.error Http.Status.Unprocessable "name must not be empty"
      else
        let cr_context = Context.untrusted ~endpoint:"/register" ~user:email () in
        let seed_pcon = C.Pcon.Internal.make name_policy email in
        match Region.Critical.run t.regions.generate_keypair ~context:cr_context seed_pcon with
        | Error e -> region_err e
        | Ok (_public, priv) -> (
            let context = Web.context_for request ~user:email () in
            match
              Conn.insert t.conn ~context ~table:"candidates"
                [
                  ("email", Pcon.wrap_no_policy (Db.Value.Text email));
                  ("name", C.Pcon.Internal.make name_policy (Db.Value.Text name));
                  ("school", Pcon.wrap_no_policy (Db.Value.Text school));
                  ( "private_key",
                    C.Pcon.Internal.make
                      (Private_key.make { owner = email })
                      (Db.Value.Text priv) );
                ]
            with
            | Error e -> conn_error e
            | Ok () -> (
                (* Release the private key through the cookie sink — the
                   policy's single permitted exit. *)
                let key_pcon =
                  C.Pcon.Internal.make (Private_key.make { owner = email }) priv
                in
                let response = Http.Response.text ~status:Http.Status.Created "registered" in
                match Web.set_cookie ~context response ~name:"private_key" ~value:key_pcon with
                | Ok response -> response
                | Error e -> Web.error_response e)))
  | _ -> Http.Response.error Http.Status.Bad_request "email and name are required"

(* POST /documents *)
let upload_document t request =
  require_auth request (fun user ->
      (* The request body is the document itself; metadata travels in the
         query string. *)
      match Http.Request.query_param request "filename" with
      | None -> Http.Response.error Http.Status.Bad_request "filename is required"
      | Some filename -> (
          match document_key ~request ~email:user with
          | None -> Http.Response.error Http.Status.Unauthorized "no private key cookie"
          | Some key -> (
              let policy = Candidate_data.make { candidate = user } in
              let data = Web.body request ~policy:(fun _ -> policy) in
              (* Fingerprint the upload in the sandboxed checksum region:
                 the document is sensitive and the checksum routine is not
                 statically verifiable, so it runs isolated. The result
                 stays wrapped and is stored as a protected column. *)
              let checksum_cell =
                match Region.Sandboxed.run t.regions.checksum data with
                | Ok c -> C.Pcon.Internal.map (fun i -> Db.Value.Int i) c
                | Error _ -> Pcon.wrap_no_policy Db.Value.Null
              in
              let key_pcon =
                C.Pcon.Internal.make (Private_key.make { owner = user }) key
              in
              let cr_context =
                Context.untrusted ~endpoint:request.Http.Request.path ~user ()
              in
              match
                Region.Critical.run t.regions.encrypt_document ~context:cr_context
                  (Pcon.pair data key_pcon)
              with
              | Error e -> region_err e
              | Ok ciphertext -> (
                  let context = Web.context_for request ~user () in
                  match
                    Conn.insert t.conn ~context ~table:"documents"
                      [
                        ("id", Pcon.wrap_no_policy (Db.Value.Int (fresh_id t)));
                        ("email", Pcon.wrap_no_policy (Db.Value.Text user));
                        ("filename", C.Pcon.Internal.make policy (Db.Value.Text filename));
                        ( "ciphertext",
                          C.Pcon.Internal.make policy (Db.Value.Text ciphertext) );
                        ("checksum", checksum_cell);
                      ]
                  with
                  | Ok () -> Http.Response.text ~status:Http.Status.Created "uploaded"
                  | Error e -> conn_error e))))

(* GET /documents/<id> *)
let view_document t request =
  require_auth request (fun user ->
      let id =
        Http.Request.path_param request "id"
        |> Option.map int_of_string_opt |> Option.join |> Option.value ~default:0
      in
      let context = Web.context_for request ~user () in
      match
        Conn.query t.conn ~context "SELECT * FROM documents WHERE id = ?"
          ~params:[ Pcon.wrap_no_policy (Db.Value.Int id) ]
      with
      | Error e -> conn_error e
      | Ok [] -> Http.Response.error Http.Status.Not_found "no such document"
      | Ok (row :: _) -> (
          let owner =
            (* Structural column (no policy binding) naming the owner. *)
            C.Mock.unwrap (C.Pcon_row.text row "email")
          in
          match document_key ~request ~email:owner with
          | None -> Http.Response.error Http.Status.Unauthorized "no private key cookie"
          | Some key -> (
              let ciphertext = C.Pcon_row.text row "ciphertext" in
              let key_pcon =
                C.Pcon.Internal.make (Private_key.make { owner }) key
              in
              let cr_context =
                Context.untrusted ~endpoint:request.Http.Request.path ~user ()
              in
              match
                Region.Critical.run t.regions.decrypt_document ~context:cr_context
                  (Pcon.pair ciphertext key_pcon)
              with
              | Error e -> region_err e
              | Ok (Error msg) -> Http.Response.error Http.Status.Forbidden msg
              | Ok (Ok plaintext) -> Http.Response.text plaintext)))

let admin_template =
  Http.Template.compile_exn
    "<html><body>{{#candidates}}<div>{{profile}}</div>{{/candidates}}</body></html>"

(* GET /admin/candidates *)
let admin_list t request =
  require_auth request (fun user ->
      if not (is_admin user) then
        Http.Response.error Http.Status.Forbidden "admissions officers only"
      else
        let context = Web.context_for request ~user () in
        match Conn.query t.conn ~context "SELECT * FROM candidates" ~params:[] with
        | Error e -> conn_error e
        | Ok rows -> (
            let bindings =
              List.map
                (fun row ->
                  let name = C.Pcon_row.text row "name" in
                  let school = C.Pcon_row.text row "school" in
                  let profile =
                    Region.Verified.run2 t.regions.format_profile name school
                  in
                  [ ("profile", profile) ])
                rows
            in
            match
              Web.render ~context admin_template
                [ ("candidates", Web.Sensitive_list bindings) ]
            with
            | Ok response -> response
            | Error e -> Web.error_response e))

let router t =
  let router = Http.Router.create () in
  Http.Router.post router "/register" (register t);
  Http.Router.post router "/documents" (upload_document t);
  Http.Router.get router "/documents/<id>" (view_document t);
  Http.Router.get router "/admin/candidates" (admin_list t);
  router

let handle t request = Http.Router.dispatch (router t) request
