module C = Sesame_core
module Db = Sesame_db
module Http = Sesame_http
module Scrut = Sesame_scrutinizer
module Sign = Sesame_signing
module Sbx = Sesame_sandbox
module Policy = C.Policy
module Pcon = C.Pcon
module Context = C.Context
module Region = C.Region
module Conn = C.Sesame_conn
module Web = C.Sesame_web
module Enforce = C.Enforce
module Elision = Scrut.Elision

let app_name = "websubmit"
let admins = [ "admin@school.edu" ]
let hash_salt = Websubmit_schema.hash_salt
let hash_iterations = Websubmit_schema.hash_iterations

let is_admin user = List.mem user admins

(* The acting principal of a check: the recipient named by a critical
   region's context if present (Fig. 1b line 15), else the authenticated
   user. *)
let principal ctx =
  match Context.custom ctx "recipient" with
  | Some r -> Some r
  | None -> Context.user ctx

(* ------------------------------------------------------------------ *)
(* Policies (§9: WebSubmit's seven policies). Each [*_loc] constant
   records the size of the policy's definition for the Fig. 5 table. *)

module Sset = Set.Make (String)

(* (i) Answers are visible to the author, admins/instructors, and the
   lecture's discussion leaders. Discussion leaders live in the database,
   so every check costs a query; joining same-lecture policies shares it
   (Fig. 9c). *)
module Answer_access_family = struct
  type s = { authors : Sset.t; lecture : int; db : Db.Database.t }

  let name = "websubmit::answer-access"

  let discussion_leads db lecture =
    match
      Db.Database.exec db "SELECT email FROM discussion_leaders WHERE lecture = ?"
        ~params:[ Db.Value.Int lecture ]
    with
    | Ok (Db.Database.Rows { rows; _ }) ->
        List.filter_map
          (fun row -> match row.(0) with Db.Value.Text e -> Some e | _ -> None)
          rows
    | Ok (Db.Database.Affected _) | Error _ -> []

  let check s ctx =
    match principal ctx with
    | None -> false
    | Some who ->
        Sset.mem who s.authors || is_admin who
        || List.mem who (discussion_leads s.db s.lecture)

  let join =
    Some
      (fun a b ->
        if a.lecture = b.lecture then
          Some { a with authors = Sset.union a.authors b.authors }
        else None)

  let no_folding = false

  let describe s =
    Printf.sprintf "AnswerAccess(lecture=%d, authors=%d)" s.lecture
      (Sset.cardinal s.authors)
end

module Answer_access = Policy.Make (Answer_access_family)

let answer_access_loc = (26, 9) (* (policy_loc, check_loc) *)

(* (ii) Individual grades: the student and the instructor only. Employers
   never see individual grades; they are admitted here only so that the
   conjoined Employer_release policy (iii) can gate released averages by
   consent. *)
module Grade_access_family = struct
  type s = { student : string }

  let name = "websubmit::grade-access"

  let check s ctx =
    Context.custom ctx "role" = Some "employer"
    ||
    match principal ctx with
    | None -> false
    | Some who -> who = s.student || is_admin who

  let join = None (* different students cannot be folded together (§10.2) *)
  let no_folding = false
  let describe s = Printf.sprintf "GradeAccess(%s)" s.student
end

module Grade_access = Policy.Make (Grade_access_family)

let grade_access_loc = (13, 6)

(* (iii) Average grade and email go to employers only with consent. *)
module Employer_release_family = struct
  type s = { student : string; consent : bool }

  let name = "websubmit::employer-release"

  let check s ctx =
    match Context.custom ctx "role" with
    | Some "employer" -> s.consent
    | Some _ | None -> (
        match principal ctx with
        | None -> false
        | Some who -> who = s.student || is_admin who)

  let join = None
  let no_folding = false

  let describe s =
    Printf.sprintf "EmployerRelease(%s, consent=%b)" s.student s.consent
end

module Employer_release = Policy.Make (Employer_release_family)

let employer_release_loc = (15, 8)

(* (iv) Grades feed model training only with consent. Consent lives in the
   users table; the policy queries it lazily at check time and memoizes per
   student (policy code is trusted and may cache, §4.1). *)
module Ml_training_family = struct
  type s = {
    student : string;
    db : Db.Database.t;
    cache : (string, bool) Hashtbl.t;
  }

  let name = "websubmit::ml-training"

  (* The consent memo is shared by every grade policy and written from
     whichever domain runs the check; one mutex keeps the Hashtbl (and
     the consent-change invalidation in [update_consent]) domain-safe.
     The DB query runs outside the lock — a racing duplicate lookup is
     idempotent, a held lock across a modeled round trip is not cheap. *)
  let cache_lock = Mutex.create ()

  let cached_consent cache student =
    Mutex.lock cache_lock;
    let hit = Hashtbl.find_opt cache student in
    Mutex.unlock cache_lock;
    hit

  let remember_consent cache student consent =
    Mutex.lock cache_lock;
    if not (Hashtbl.mem cache student) then Hashtbl.add cache student consent;
    Mutex.unlock cache_lock

  let forget_consent cache student =
    Mutex.lock cache_lock;
    Hashtbl.remove cache student;
    Mutex.unlock cache_lock

  let consents s =
    match cached_consent s.cache s.student with
    | Some consent -> consent
    | None ->
        let consent =
          match
            Db.Database.exec s.db "SELECT consent_ml FROM users WHERE email = ?"
              ~params:[ Db.Value.Text s.student ]
          with
          | Ok (Db.Database.Rows { rows = [ [| Db.Value.Bool b |] ]; _ }) -> b
          | _ -> false
        in
        remember_consent s.cache s.student consent;
        consent

  let check s ctx =
    match Context.sink ctx with
    | Some "ml::train" -> consents s
    | Some _ | None -> true (* other sinks are governed by the other policies *)

  let join = None
  let no_folding = false
  let describe s = Printf.sprintf "MlTraining(%s)" s.student
end

module Ml_training = Policy.Make (Ml_training_family)

let ml_training_loc = (12, 5)

(* (v) Protected demographics must not be aggregated by administrators. *)
module Demographics_family = struct
  type s = { student : string }

  let name = "websubmit::demographics"

  let check s ctx =
    if Context.custom ctx "purpose" = Some "aggregate" then false
    else
      match principal ctx with
      | None -> false
      | Some who -> who = s.student || is_admin who

  let join = None
  let no_folding = true (* shape of demographic data must not leak either *)
  let describe s = Printf.sprintf "Demographics(%s)" s.student
end

module Demographics = Policy.Make (Demographics_family)

let demographics_loc = (13, 7)

(* (vi) Released aggregates must cover at least k students. *)
module K_anonymity_family = struct
  type s = { k : int; members : int }

  let name = "websubmit::k-anonymity"

  let check s _ctx = s.members >= s.k

  let join =
    Some (fun a b -> Some { k = max a.k b.k; members = min a.members b.members })

  let no_folding = false
  let describe s = Printf.sprintf "KAnonymity(k=%d, members=%d)" s.k s.members
end

module K_anonymity = Policy.Make (K_anonymity_family)

let k_anonymity_loc = (11, 1)

(* (vii) API-key hashes are visible to their owner only. *)
module Api_key_family = struct
  type s = { owner : string }

  let name = "websubmit::api-key"

  let check s ctx =
    match principal ctx with None -> false | Some who -> who = s.owner

  let join = None
  let no_folding = true
  let describe s = Printf.sprintf "ApiKey(%s)" s.owner
end

module Api_key = Policy.Make (Api_key_family)

let api_key_loc = (10, 2)

let policy_inventory =
  [
    ("AnswerAccess", fst answer_access_loc, snd answer_access_loc);
    ("GradeAccess", fst grade_access_loc, snd grade_access_loc);
    ("EmployerRelease", fst employer_release_loc, snd employer_release_loc);
    ("MlTraining", fst ml_training_loc, snd ml_training_loc);
    ("Demographics", fst demographics_loc, snd demographics_loc);
    ("KAnonymity", fst k_anonymity_loc, snd k_anonymity_loc);
    ("ApiKey", fst api_key_loc, snd api_key_loc);
  ]


(* ------------------------------------------------------------------ *)
(* The IR program modelling the regions' code (see DESIGN.md on the
   MIR → Region-IR substitution). *)

let build_program () =
  let open Scrut.Ir in
  let program = Scrut.Program.create () in
  Scrut.Program.define_all program
    [
      func ~name:"ws::fmt_submitted" ~params:[ "answer" ]
        [ Return (Some (Binop (Concat, Str_lit "submitted: ", Var "answer"))) ];
      func ~name:"ws::join_lines" ~params:[ "lines" ]
        [
          Let ("out", Str_lit "");
          For
            ( "line",
              Var "lines",
              [ Assign (Lvar "out", Binop (Concat, Var "out", Var "line")) ] );
          Return (Some (Var "out"));
        ];
      func ~name:"ws::mean" ~params:[ "values" ]
        [
          Let ("sum", Float_lit 0.0);
          Let ("count", Int_lit 0);
          For
            ( "v",
              Var "values",
              [
                Assign (Lvar "sum", Binop (Add, Var "sum", Var "v"));
                Assign (Lvar "count", Binop (Add, Var "count", Int_lit 1));
              ] );
          Return (Some (Binop (Div, Var "sum", Var "count")));
        ];
      func ~name:"ws::predict" ~params:[ "model"; "x" ]
        [
          Let ("w", Field (Var "model", "weight"));
          Let ("b", Field (Var "model", "intercept"));
          Return (Some (Binop (Add, Binop (Mul, Var "w", Var "x"), Var "b")));
        ];
      (* The hashing and training regions call into native crates, which is
         why Scrutinizer rejects them and they run as sandboxed regions. *)
      native ~package:"sha2" ~name:"sha2::digest" ~params:[ "data" ] ();
      func ~name:"ws::hash_key" ~params:[ "key" ]
        [
          Let ("digest", Call (Static "sha2::digest", [ Var "key" ]));
          Return (Some (Var "digest"));
        ];
      native ~package:"nalgebra" ~name:"nalgebra::solve" ~params:[ "a"; "b" ] ();
      func ~name:"ws::train" ~params:[ "points" ]
        [
          Let ("weights", Call (Static "nalgebra::solve", [ Var "points"; Var "points" ]));
          Return (Some (Var "weights"));
        ];
      (* Critical-region bodies: they intentionally externalize. *)
      native ~package:"lettre" ~name:"lettre::send" ~params:[ "to"; "subject"; "body" ] ();
      func ~name:"ws::email_confirmation" ~params:[ "body"; "recipient" ]
        [
          Expr_stmt
            (Call
               ( Static "lettre::send",
                 [ Var "recipient"; Str_lit "submission received"; Var "body" ] ));
        ];
      native ~package:"csv" ~name:"csv::write_record" ~params:[ "record" ] ();
      func ~name:"ws::export_employer_row" ~params:[ "email"; "average" ]
        [
          Let ("record", Tuple [ Var "email"; Var "average" ]);
          Expr_stmt (Call (Static "csv::write_record", [ Var "record" ]));
        ];
    ];
  program

let lockfile =
  Sign.Lockfile.of_packages
    [
      { name = "lettre"; version = "0.11.4"; deps = [ "base64"; "mime" ] };
      { name = "base64"; version = "0.22.1"; deps = [] };
      { name = "mime"; version = "0.3.17"; deps = [] };
      { name = "csv"; version = "1.3.0"; deps = [ "serde" ] };
      { name = "serde"; version = "1.0.203"; deps = [] };
      { name = "sha2"; version = "0.10.8"; deps = [ "digest" ] };
      { name = "digest"; version = "0.10.7"; deps = [] };
      { name = "nalgebra"; version = "0.32.5"; deps = [] };
    ]

(* ------------------------------------------------------------------ *)
(* Optional sandbox hardening: a preflighted pool (fail closed if any
   SFI trap test is missed), per-run budgets, and a cumulative quota
   shared by both sandboxed regions. Off by default so the unhardened
   paper-workload numbers stay comparable. *)

type hardening = {
  sandbox_pool : Sbx.Pool.t;
  preflight : Sbx.Preflight.report;
  quota : Sbx.Quota.t;
  sandbox_config : Sbx.Runtime.config;
}

let harden ?(pool_capacity = 4) ?max_pool_capacity ?(arena_size = 256 * 1024) ?quota_limits
    ?(quota_policy = Sbx.Quota.Deny)
    ?(budget = Sbx.Runtime.budget ~deadline_s:5.0 ~fuel:1_000_000 ~mem_bytes:(128 * 1024) ())
    () =
  match
    Sbx.Sfi.create_pool ~capacity:pool_capacity ?max_capacity:max_pool_capacity ~arena_size ()
  with
  | Error report ->
      Error (Printf.sprintf "sandbox preflight failed closed: %s" (Sbx.Preflight.summary report))
  | Ok (pool, preflight) ->
      let quota = Sbx.Quota.create ?limits:quota_limits ~policy:quota_policy () in
      let sandbox_config = Sbx.Runtime.config ~mode:(Sbx.Runtime.Pooled pool) ~budget () in
      Ok { sandbox_pool = pool; preflight; quota; sandbox_config }

type regions = {
  fmt_confirmation : (string, string) Region.Verified.t;
  join_answers : (string list, string) Region.Verified.t;
  mean_grades : (float list, float) Region.Verified.t;
  predict : ((float * float) * float, float) Region.Verified.t;
  hash_key : (string, string) Region.Sandboxed.t;
  train : (float * float, float list) Region.Sandboxed.t;
  email_confirmation : (string, unit) Region.Critical.t;
  export_employer : (string * float, string) Region.Critical.t;
}

type t = {
  conn : Conn.t;
  mutable db : Db.Database.t;
      (* rebound by [recover] after brownout: the connector swaps in a
         freshly recovered store, and the app's direct-db paths
         (authenticate, register, answer_count) must follow it *)
  keystore : Sign.Keystore.t;
  program : Scrut.Program.t;
  k : int;
  regions : regions;
  hardening : hardening option;
  consent_cache : (string, bool) Hashtbl.t;
      (** memo used by the MlTraining policy; invalidated on consent change *)
  mutable model : (float * float) Pcon.t option;  (** (weight, intercept) *)
  mutable next_answer_id : int;
}

let conn t = t.conn
let database t = t.db

(* Leave brownout: recover the durable store through the connector and
   follow the swap in the app's own db handle. Policy closures minted
   before the swap keep their stale handle; their lookups fail closed
   (empty leads, no consent), never open. *)
let recover t =
  match Conn.exit_brownout t.conn with
  | Error m -> Error m
  | Ok store ->
      t.db <- Conn.database t.conn;
      Ok store
let hardening t = t.hardening
let sandbox_hash_region t = t.regions.hash_key
let sandbox_train_region t = t.regions.train

let ( let* ) = Result.bind

let region_error e = Error (Region.error_to_string e)

let spec ?captures name params body = Scrut.Spec.make ~name ~params ?captures body

(* The predict region's spec is shared with the elision model's /predict
   site, so field-disjointness certificates replay against the exact IR
   the verifier checked. The body is written out place-by-place (rather
   than delegating to ws::predict) because call summaries truncate path
   sensitivity at the boundary: inline, the analysis can see that only
   model.weight and model.intercept are ever read. *)
let predict_spec =
  Scrut.Ir.(
    spec "ml::predict" [ "model"; "x" ]
      [
        Let ("w", Field (Var "model", "weight"));
        Let ("b", Field (Var "model", "intercept"));
        Return (Some (Binop (Add, Binop (Mul, Var "w", Var "x"), Var "b")));
      ])

let make_regions ?hardening program keystore db =
  let open Scrut.Ir in
  let sbx_config = Option.map (fun h -> h.sandbox_config) hardening in
  let sbx_quota = Option.map (fun h -> h.quota) hardening in
  let* fmt_confirmation =
    Result.map_error Region.error_to_string
      (Region.Verified.make ~app:app_name ~program
         ~spec:
           (spec "submit::fmt_confirmation" [ "answer" ]
              [ Return (Some (Call (Static "ws::fmt_submitted", [ Var "answer" ]))) ])
         ~f:(fun answer -> "submitted: " ^ answer)
         ())
  in
  let* join_answers =
    Result.map_error Region.error_to_string
      (Region.Verified.make ~app:app_name ~program
         ~spec:
           (spec "staff::join_answers" [ "answers" ]
              [ Return (Some (Call (Static "ws::join_lines", [ Var "answers" ]))) ])
         ~f:(fun answers -> String.concat "\n" answers)
         ())
  in
  let* mean_grades =
    Result.map_error Region.error_to_string
      (Region.Verified.make ~app:app_name ~program
         ~spec:
           (spec "aggregate::mean_grades" [ "grades" ]
              [ Return (Some (Call (Static "ws::mean", [ Var "grades" ]))) ])
         ~f:(fun grades -> Sesame_ml.Stats.mean grades)
         ())
  in
  let* predict =
    Result.map_error Region.error_to_string
      (Region.Verified.make ~app:app_name ~program ~spec:predict_spec
         ~f:(fun ((weight, intercept), x) -> (weight *. x) +. intercept)
         ())
  in
  (* Sandboxed regions: their IR models are genuinely rejected (they call
     native code); tests assert this. The executable closures run under
     the sandbox runtime. *)
  let hash_key =
    Region.Sandboxed.make ~app:app_name ~name:"register::hash_key" ?config:sbx_config
      ?quota:sbx_quota ~loc:4
      ~encode:(fun key -> Sbx.Value.Str key)
      ~decode:(function
        | Sbx.Value.Str digest -> Ok digest
        | other -> Error (Format.asprintf "expected Str, got %a" Sbx.Value.pp other))
      ~f:(function
        | Sbx.Value.Str key ->
            Sbx.Value.Str (Sesame_ml.Apikey.hash ~iterations:hash_iterations ~salt:hash_salt key)
        | other -> other)
      ()
  in
  let train =
    Region.Sandboxed.make ~app:app_name ~name:"ml::train" ?config:sbx_config ?quota:sbx_quota
      ~loc:19
      ~encode:(fun (x, y) -> Sbx.Value.Tuple [ Sbx.Value.Float x; Sbx.Value.Float y ])
      ~decode:(fun value ->
        match Sbx.Value.to_floats value with
        | Some weights -> Ok weights
        | None -> Error "expected a float vector")
      ~f:(fun value ->
        let point = function
          | Sbx.Value.Tuple [ Sbx.Value.Float x; Sbx.Value.Float y ] -> Some (x, y)
          | _ -> None
        in
        let points =
          match value with
          | Sbx.Value.Vec elems -> List.filter_map point elems
          | single -> Option.to_list (point single)
        in
        match Sesame_ml.Linreg.train_simple points with
        | Ok model ->
            Sbx.Value.floats [ model.Sesame_ml.Linreg.weights.(0); model.intercept ]
        | Error _ -> Sbx.Value.floats [ 0.0; Sesame_ml.Stats.mean (List.map snd points) ])
      ()
  in
  let* email_confirmation =
    Result.map_error Region.error_to_string
      (Region.Critical.make ~app:app_name ~program
         ~spec:
           (spec "submit::email_confirmation" [ "body" ]
              ~captures:[ { cap_var = "recipient"; mode = By_value } ]
              [
                Expr_stmt
                  (Call (Static "ws::email_confirmation", [ Var "body"; Var "recipient" ]));
              ])
         ~lockfile ~keystore
         ~f:(fun ~context body ->
           (* Reviewer obligation: the recipient must be the address the
              policy check approved in the context. *)
           let recipient = Option.value (Context.custom context "recipient") ~default:"" in
           Email.send ~recipient ~subject:"submission received" ~body)
         ())
  in
  let* export_employer =
    Result.map_error Region.error_to_string
      (Region.Critical.make ~app:app_name ~program
         ~spec:
           (spec "employer::export_row" [ "email"; "average" ]
              [
                Expr_stmt
                  (Call (Static "ws::export_employer_row", [ Var "email"; Var "average" ]));
              ])
         ~lockfile ~keystore
         ~f:(fun ~context:_ (email, average) ->
           Printf.sprintf "%s,%.2f" email average)
         ())
  in
  ignore db;
  Ok
    {
      fmt_confirmation;
      join_answers;
      mean_grades;
      predict;
      hash_key;
      train;
      email_confirmation;
      export_employer;
    }

let reviewer = "alice@school.edu"

(* The seven policy families, by their stable constructor names: durable
   mode registers these with the WAL's provenance registry so recovery
   can prove every journaled row's policy is still reconstructible. *)
let policy_family_names =
  [
    Answer_access_family.name;
    Grade_access_family.name;
    Employer_release_family.name;
    Ml_training_family.name;
    Demographics_family.name;
    K_anonymity_family.name;
    Api_key_family.name;
  ]

let attach_policies conn db =
  (* Column policy bindings (the db_policy annotations of Fig. 3). *)
  (* Policy instances are immutable, so the bindings memoize them per
     protected entity: wrapping 10k result rows costs 10k table lookups,
     not 10k policy constructions (policy code is trusted, §4.1). *)
  let answer_policies : (string * int, Policy.t) Hashtbl.t = Hashtbl.create 256 in
  Conn.attach_policy conn ~table:"answers" ~column:"answer" (fun schema row ->
      let author = Db.Value.to_text (Db.Row.get schema row "email") in
      let lecture = Db.Value.to_int (Db.Row.get schema row "lecture") in
      match Hashtbl.find_opt answer_policies (author, lecture) with
      | Some policy -> policy
      | None ->
          let policy =
            Answer_access.make { authors = Sset.singleton author; lecture; db }
          in
          Hashtbl.add answer_policies (author, lecture) policy;
          policy);
  let consent_cache = Hashtbl.create 256 in
  let grade_policies : (string, Policy.t) Hashtbl.t = Hashtbl.create 256 in
  (* The grade binding's pushdown translation. At the training sink the
     conjoined GradeAccess ∧ MlTraining policy admits exactly the
     consenting students (GradeAccess passes for the admin initiating
     training), so one users scan compiles the whole per-row check into
     an indexable email ∈ {consenting} predicate. Every other context is
     declined and falls back to the post-hoc reference path. *)
  let grade_to_expr ctx =
    match Context.sink ctx with
    | Some "ml::train" -> (
        match principal ctx with
        | Some who when is_admin who -> (
            match
              Db.Database.exec db "SELECT email FROM users WHERE consent_ml = ?"
                ~params:[ Db.Value.Bool true ]
            with
            | Ok (Db.Database.Rows { rows; _ }) ->
                let consenting =
                  List.filter_map
                    (fun row ->
                      match row.(0) with Db.Value.Text _ as v -> Some v | _ -> None)
                    rows
                in
                Some (Db.Expr.In (Db.Expr.Col "email", consenting))
            | Ok (Db.Database.Affected _) | Error _ -> None)
        | Some _ | None -> None)
    | Some _ | None -> None
  in
  Conn.attach_policy conn ~to_expr:grade_to_expr ~table:"answers" ~column:"grade"
    (fun schema row ->
      let student = Db.Value.to_text (Db.Row.get schema row "email") in
      match Hashtbl.find_opt grade_policies student with
      | Some policy -> policy
      | None ->
          let policy =
            Policy.conjoin
              (Grade_access.make { student })
              (Ml_training.make { student; db; cache = consent_cache })
          in
          Hashtbl.add grade_policies student policy;
          policy);
  (* Static claim backing aggregate elision: every policy the grade
     binding produces is a conjunction over exactly these two leaf
     families. Dropped automatically if the binding is re-attached. *)
  Conn.certify_binding conn ~table:"answers" ~column:"grade"
    ~families:[ Grade_access_family.name; Ml_training_family.name ];
  Conn.attach_policy conn ~table:"users" ~column:"email" (fun schema row ->
      Employer_release.make
        {
          student = Db.Value.to_text (Db.Row.get schema row "email");
          consent = Db.Value.to_bool (Db.Row.get schema row "consent_employer");
        });
  Conn.attach_policy conn ~table:"users" ~column:"gender" (fun schema row ->
      Demographics.make
        { student = Db.Value.to_text (Db.Row.get schema row "email") });
  Conn.attach_policy conn ~table:"users" ~column:"apikey_hash" (fun schema row ->
      Api_key.make { owner = Db.Value.to_text (Db.Row.get schema row "email") });
  consent_cache

(* ------------------------------------------------------------------ *)
(* The static elision model: what each policy family's verdict depends
   on, when it is identically true, and what every context reaching the
   release sinks of the elidable endpoints is known to satisfy. The
   runtime never trusts these claims directly — installed certificates
   re-check their satisfying clause against each concrete context — so
   an over-claimed fact can only lose elisions, never change verdicts. *)

let elision_families : Elision.family list =
  [
    {
      family = Answer_access_family.name;
      inspects = [ ("answers", [ "email" ]); ("answers", [ "lecture" ]) ];
      satisfied_when = [ [ Elision.Principal_in admins ] ];
      pushable = false;
    };
    {
      family = Grade_access_family.name;
      inspects = [ ("answers", [ "email" ]) ];
      satisfied_when =
        [ [ Elision.Custom_eq ("role", "employer") ]; [ Elision.Principal_in admins ] ];
      pushable = true;
    };
    {
      family = Employer_release_family.name;
      inspects = [ ("users", [ "email" ]); ("users", [ "consent_employer" ]) ];
      satisfied_when =
        [ [ Elision.Principal_in admins; Elision.Custom_not ("role", "employer") ] ];
      pushable = false;
    };
    {
      family = Ml_training_family.name;
      inspects = [ ("users", [ "consent_ml" ]) ];
      satisfied_when = [ [ Elision.Sink_not "ml::train" ] ];
      pushable = true;
    };
    {
      family = Demographics_family.name;
      inspects = [ ("users", [ "gender" ]); ("users", [ "email" ]) ];
      satisfied_when =
        [ [ Elision.Principal_in admins; Elision.Custom_not ("purpose", "aggregate") ] ];
      pushable = false;
    };
    {
      (* The verdict depends only on instance data (k, members): never
         context-satisfiable and inspecting no stored field, so every
         K-anonymity check stays residual — aggregates are always
         counted, with or without elision. *)
      family = K_anonymity_family.name;
      inspects = [];
      satisfied_when = [];
      pushable = false;
    };
    {
      family = Api_key_family.name;
      inspects = [ ("users", [ "apikey_hash" ]); ("users", [ "email" ]) ];
      satisfied_when = [];
      pushable = false;
    };
  ]

let elision_sites : Elision.site list =
  [
    {
      (* Admin-gated before any data is touched; context carries no
         custom fields; releases only through Web.render. *)
      endpoint = "/aggregates";
      sinks = [ "http::render" ];
      facts =
        [
          Elision.Principal_in admins;
          Elision.Custom_not ("role", "employer");
          Elision.Custom_not ("purpose", "aggregate");
        ];
      region = None;
      row_params = [];
    };
    {
      (* Any authenticated user may call predict, so no context facts:
         redundancy here must come from the region. The released value
         is ml::predict's output, whose model parameter descends from
         answers rows. *)
      endpoint = "/predict";
      sinks = [ "http::respond" ];
      facts = [];
      region = Some predict_spec;
      row_params = [ ("model", "answers") ];
    };
    {
      endpoint = "/retrain";
      sinks = [ "ml::train" ];
      facts = [ Elision.Principal_in admins ];
      region = None;
      row_params = [];
    };
    {
      (* The employer export releases through a signed critical region
         whose check runs on the raw policy path; modeled to show the
         consent check is residual — it can never be elided. *)
      endpoint = "/employer";
      sinks = [ "region::critical" ];
      facts = [ Elision.Custom_eq ("role", "employer") ];
      region = None;
      row_params = [];
    };
  ]

(* Family -> the binding its certificates ride on: revalidation pins the
   binding version a certificate was issued under, so re-attaching a
   policy drops the certificate (next epoch move) and the residual
   runtime check runs until a new plan is installed. *)
let family_bindings =
  [
    (Answer_access_family.name, ("answers", "answer"));
    (Grade_access_family.name, ("answers", "grade"));
    (Ml_training_family.name, ("answers", "grade"));
    (Employer_release_family.name, ("users", "email"));
    (Demographics_family.name, ("users", "gender"));
    (Api_key_family.name, ("users", "apikey_hash"));
  ]

let elision_certificates t =
  Elision.classify ~program:t.program ~families:elision_families ~sites:elision_sites ()

let install_plan t =
  let conn = t.conn in
  List.iter
    (fun (cert : Elision.certificate) ->
      match cert.cert_verdict with
      | Elision.Redundant proof ->
          let guard =
            match proof with
            | Elision.Context_satisfies { clause } -> Enforce.Plan.guard_of_atoms clause
            | Elision.Field_disjoint _ -> (
                (* This repo's reference semantics keeps policies
                   attached to region outputs and still checks them, so
                   a field-disjointness certificate is installed under
                   the family's own satisfying clauses: the static proof
                   stands on its own in the CLI and replay harness, the
                   guard keeps runtime verdicts byte-identical to the
                   reference. A family with no satisfying clause stays a
                   static-only artifact. *)
                match
                  List.find_opt
                    (fun (f : Elision.family) -> String.equal f.family cert.cert_family)
                    elision_families
                with
                | Some { satisfied_when = _ :: _ as clauses; _ } ->
                    fun ctx ->
                      List.exists (fun c -> Enforce.Plan.guard_of_atoms c ctx) clauses
                | Some _ | None -> fun _ -> false)
          in
          let revalidate =
            match List.assoc_opt cert.cert_family family_bindings with
            | None -> fun () -> true
            | Some (table, column) ->
                let issued = Conn.binding_version conn ~table ~column in
                fun () -> Conn.binding_version conn ~table ~column = issued
          in
          Enforce.Plan.install
            (Enforce.Plan.entry ~endpoint:cert.cert_endpoint ~sink:cert.cert_sink
               ~family:cert.cert_family ~guard ~revalidate
               ~witness:(Format.asprintf "%a" Elision.pp_certificate cert)
               ())
      | Elision.Pushable | Elision.Residual _ -> ())
    (elision_certificates t);
  Enforce.Plan.declare_endpoint_sinks ~endpoint:"/aggregates" [ "http::render" ];
  Enforce.Plan.declare_endpoint_sinks ~endpoint:"/predict" [ "http::respond" ]

let assemble ?hardening ~conn ~db ~k_anonymity ~next_answer_id ~consent_cache () =
  let keystore = Sign.Keystore.create () in
  Sign.Keystore.register keystore ~reviewer ~secret:"alice-reviewer-secret";
  let program = build_program () in
  let* regions = make_regions ?hardening program keystore db in
  (* The team lead reviews and signs the critical regions before release. *)
  let* () =
    match Region.Critical.sign regions.email_confirmation ~reviewer ~at:1000 with
    | Ok () -> Ok ()
    | Error e -> region_error e
  in
  let* () =
    match Region.Critical.sign regions.export_employer ~reviewer ~at:1000 with
    | Ok () -> Ok ()
    | Error e -> region_error e
  in
  let t =
    {
      conn;
      db;
      keystore;
      program;
      k = k_anonymity;
      regions;
      hardening;
      consent_cache;
      model = None;
      next_answer_id;
    }
  in
  install_plan t;
  Ok t

(* Equality predicates the endpoints and policy families issue on every
   request; building the secondary indexes up front (instead of waiting
   for the adaptive-indexing vote) keeps even a cold instance off the
   full-scan path. *)
let index_hot_columns db =
  let* () = Db.Database.ensure_index db ~table:"answers" ~column:"email" in
  let* () = Db.Database.ensure_index db ~table:"answers" ~column:"lecture" in
  let* () = Db.Database.ensure_index db ~table:"users" ~column:"email" in
  Db.Database.ensure_index db ~table:"discussion_leaders" ~column:"lecture"

let create ?(query_cost_ns = 0) ?(k_anonymity = 5) ?hardening () =
  let db = Db.Database.create ~query_cost_ns () in
  let* () = Db.Database.create_table db Websubmit_schema.users in
  let* () = Db.Database.create_table db Websubmit_schema.answers in
  let* () = Db.Database.create_table db Websubmit_schema.leaders in
  let* () = index_hot_columns db in
  let conn = Conn.create db in
  let consent_cache = attach_policies conn db in
  assemble ?hardening ~conn ~db ~k_anonymity ~next_answer_id:1 ~consent_cache ()

let create_durable ?(query_cost_ns = 0) ?(k_anonymity = 5) ?durable_config ?hardening ~data_dir
    () =
  (* Family registration must precede recovery: replay refuses any
     journaled constructor the registry does not know. *)
  List.iter Sesame_wal.Provenance.register policy_family_names;
  match Conn.create_durable ?config:durable_config ~dir:data_dir () with
  | Error e -> Error (Sesame_wal.Durable.error_message e)
  | Ok (conn, store) ->
      let db = Conn.database conn in
      Db.Database.set_query_cost_ns db query_cost_ns;
      (* Recovery may already have rebuilt the tables from the log. *)
      let ensure schema =
        match Db.Database.table db (Db.Schema.name schema) with
        | Some _ -> Ok ()
        | None -> Db.Database.create_table db schema
      in
      let* () = ensure Websubmit_schema.users in
      let* () = ensure Websubmit_schema.answers in
      let* () = ensure Websubmit_schema.leaders in
      let* () = index_hot_columns db in
      let consent_cache = attach_policies conn db in
      let next_answer_id =
        match Db.Database.table db "answers" with
        | None -> 1
        | Some tbl ->
            let schema = Db.Table.schema tbl in
            1
            + Db.Table.fold tbl ~init:0 ~f:(fun acc row ->
                  match Db.Row.get schema row "id" with
                  | Db.Value.Int i -> max acc i
                  | _ -> acc)
      in
      let* t = assemble ?hardening ~conn ~db ~k_anonymity ~next_answer_id ~consent_cache () in
      Ok (t, store)

let answer_count t =
  match Db.Database.table t.db "answers" with
  | Some tbl -> Db.Table.length tbl
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Seeding (the Fig. 8 workload: a medium-sized course). *)

let seed t ~students ~questions =
  Websubmit_schema.seed t.db ~students ~questions ~next_id:(fun () ->
      let id = t.next_answer_id in
      t.next_answer_id <- id + 1;
      id)

(* ------------------------------------------------------------------ *)
(* Endpoints *)

let bad_request msg = Http.Response.error Http.Status.Bad_request msg

let web_error e = Web.error_response e

(* One shared rendering for connector errors (redaction lives there). *)
let conn_error = Conn.error_response

(* Region failures carry internal detail (sandbox traps, hash/decode
   messages, Scrutinizer verdicts); like DB errors, none of it belongs in
   a client-facing body. *)
let region_err e =
  match e with
  | Region.Policy_denied _ -> Http.Response.error Http.Status.Forbidden "policy check failed"
  | Region.Quota_denied _ ->
      (* Quota exhaustion is load shedding, not a server bug: retryable. *)
      Http.Response.error (Http.Status.Code 503) "service temporarily unavailable"
  | Region.Not_leakage_free _ | Region.Unsigned _ | Region.Signature_invalid _
  | Region.Hashing_failed _ | Region.Decode_failed _ | Region.Sandbox_trapped _
  | Region.Attest_failed _ ->
      Http.Response.error Http.Status.Internal_error "internal error"

(* The Sesame authentication guard (framework-level, like Fig. 2's
   [student: Student] cookie guard): resolves the session cookie to a
   known user. Trusted code. *)
let authenticate t request =
  match Http.Request.cookie request "user" with
  | None -> None
  | Some email -> (
      match
        Db.Database.exec t.db "SELECT email FROM users WHERE email = ?"
          ~params:[ Db.Value.Text email ]
      with
      | Ok (Db.Database.Rows { rows = [ _ ]; _ }) -> Some email
      | _ -> if is_admin email || email = "leader@school.edu" then Some email else None)

let require_auth t request k =
  match authenticate t request with
  | Some user -> k user
  | None -> Http.Response.error Http.Status.Unauthorized "not signed in"

(* POST /register: body form [email], [apikey], [consent]. The API key is
   hashed inside the sandboxed region ("Register Users", Fig. 9a). *)
let register_user t request =
  match (Http.Request.form_param request "email", Http.Request.form_param request "apikey")
  with
  | Some email, Some apikey -> (
      let consent = Http.Request.form_param request "consent" = Some "true" in
      let gender = Option.value (Http.Request.form_param request "gender") ~default:"" in
      let key_pcon =
        C.Pcon.Internal.make (Api_key.make { owner = email }) apikey
      in
      match Region.Sandboxed.run t.regions.hash_key key_pcon with
      | Error e -> region_err e
      | Ok hash_pcon -> (
          let context = Web.context_for request ~user:email () in
          match
            Conn.insert t.conn ~context ~table:"users"
              [
                ("email", Pcon.wrap_no_policy (Db.Value.Text email));
                ( "apikey_hash",
                  C.Pcon.Internal.map (fun h -> Db.Value.Text h) hash_pcon );
                ("consent_employer", Pcon.wrap_no_policy (Db.Value.Bool consent));
                ("consent_ml", Pcon.wrap_no_policy (Db.Value.Bool consent));
                ("gender", Pcon.wrap_no_policy (Db.Value.Text gender));
              ]
          with
          | Ok () -> Http.Response.text ~status:Http.Status.Created "registered"
          | Error e -> conn_error e))
  | _ -> bad_request "email and apikey are required"

(* POST /submit/<lecture>/<question>: Fig. 1's endpoint. *)
let submit_answer t request =
  require_auth t request (fun user ->
      let answer_policy =
        Answer_access.make
          {
            authors = Sset.singleton user;
            lecture =
              int_of_string_opt (Option.value (Http.Request.path_param request "lecture") ~default:"1")
              |> Option.value ~default:1;
            db = t.db;
          }
      in
      match Web.form_param request "answer" ~policy:(fun _ -> answer_policy) with
      | None -> bad_request "answer is required"
      | Some answer_pcon -> (
          let lecture =
            Option.value (Http.Request.path_param request "lecture") ~default:"1"
          in
          let question =
            Option.value (Http.Request.path_param request "question") ~default:"0"
          in
          let id = t.next_answer_id in
          t.next_answer_id <- id + 1;
          let context = Web.context_for request ~user () in
          match
            Conn.insert t.conn ~context ~table:"answers"
              [
                ("id", Pcon.wrap_no_policy (Db.Value.Int id));
                ("email", Pcon.wrap_no_policy (Db.Value.Text user));
                ( "lecture",
                  Pcon.wrap_no_policy (Db.Value.Int (int_of_string lecture)) );
                ( "question",
                  Pcon.wrap_no_policy (Db.Value.Int (int_of_string question)) );
                ( "answer",
                  C.Pcon.Internal.map (fun a -> Db.Value.Text a) answer_pcon );
                ("grade", Pcon.wrap_no_policy Db.Value.Null);
              ]
          with
          | Error e -> conn_error e
          | Ok () -> (
              (* Fig. 1b lines 10-21: format in a VR, email via the CR. *)
              let body = Region.Verified.run t.regions.fmt_confirmation answer_pcon in
              let cr_context =
                Context.untrusted ~endpoint:request.Http.Request.path ~user
                  ~custom:[ ("recipient", user) ]
                  ()
              in
              match
                Region.Critical.run t.regions.email_confirmation ~context:cr_context body
              with
              | Ok () -> Http.Response.text ~status:Http.Status.Created "submitted"
              | Error e -> region_err e)))

(* GET /view/<answer_id>: Fig. 2's endpoint. *)
let view_answer_template =
  Http.Template.compile_exn
    "<html><body><h1>Answer</h1><p>{{answer}}</p></body></html>"

let view_answer t request =
  require_auth t request (fun user ->
      match Http.Request.path_param request "answer_id" with
      | None -> bad_request "answer_id is required"
      | Some id -> (
          let context = Web.context_for request ~user () in
          match
            Conn.query t.conn ~context
              "SELECT * FROM answers WHERE id = ? AND email = ?"
              ~params:
                [
                  Pcon.wrap_no_policy (Db.Value.Int (int_of_string id));
                  Pcon.wrap_no_policy (Db.Value.Text user);
                ]
          with
          | Error e -> conn_error e
          | Ok [] -> Http.Response.error Http.Status.Not_found "no such answer"
          | Ok (row :: _) -> (
              match
                Web.render ~context view_answer_template
                  [ ("answer", Web.Sensitive (C.Pcon_row.text row "answer")) ]
              with
              | Ok response -> response
              | Error e -> web_error e)))

(* GET /answers/<lecture>[?compose=true]: the staff view behind Fig. 9c.
   Without composition each answer's policy is checked separately (one
   discussion-leader query per answer); with composition the same-lecture
   policies join and a single check suffices. *)
let answers_template =
  Http.Template.compile_exn "<html><body><pre>{{answers}}</pre></body></html>"

let answers_list_template =
  Http.Template.compile_exn
    "<html><body><pre>{{#answers}}{{line}}\n{{/answers}}</pre></body></html>"

let view_answers t ~compose request =
  require_auth t request (fun user ->
      let lecture =
        Option.value (Http.Request.path_param request "lecture") ~default:"1"
      in
      let context = Web.context_for request ~user () in
      match
        Conn.query t.conn ~context "SELECT * FROM answers WHERE lecture = ?"
          ~params:[ Pcon.wrap_no_policy (Db.Value.Int (int_of_string lecture)) ]
      with
      | Error e -> conn_error e
      | Ok rows ->
          let answers = List.map (fun row -> C.Pcon_row.text row "answer") rows in
          if compose then begin
            (* Fold: conjunction joins same-lecture policies into one. *)
            let joined = Region.Verified.run_list t.regions.join_answers answers in
            match
              Web.render ~context answers_template [ ("answers", Web.Sensitive joined) ]
            with
            | Ok response -> response
            | Error e -> web_error e
          end
          else begin
            let bindings = List.map (fun a -> [ ("line", a) ]) answers in
            match
              Web.render ~context answers_list_template
                [ ("answers", Web.Sensitive_list bindings) ]
            with
            | Ok response -> response
            | Error e -> web_error e
          end)

(* GET /aggregates: administrators see per-lecture average grades,
   k-anonymized ("Get Aggregates"). *)
let aggregates_template =
  Http.Template.compile_exn
    "<html><body>{{#groups}}<div>lecture {{lecture}}: {{avg}}</div>{{/groups}}</body></html>"

let get_aggregates t request =
  require_auth t request (fun user ->
      if not (is_admin user) then
        Http.Response.error Http.Status.Forbidden "administrators only"
      else
        let context = Web.context_for request ~user () in
        match
          Conn.query_agg t.conn ~context
            "SELECT AVG(grade), COUNT(grade) FROM answers GROUP BY lecture" ~params:[]
        with
        | Error e -> conn_error e
        | Ok rows -> (
            let groups =
              List.map
                (fun row ->
                  let lecture = List.assoc "lecture" row in
                  let avg = List.assoc "AVG(grade)" row in
                  let members =
                    match C.Pcon.Internal.unwrap (List.assoc "COUNT(grade)" row) with
                    | Db.Value.Int n -> n
                    | _ -> 0
                  in
                  (* Aggregates released only when ≥ k students contribute. *)
                  let kanon = K_anonymity.make { k = t.k; members } in
                  let avg = Pcon.with_policy avg kanon in
                  [
                    ( "lecture",
                      C.Pcon.Internal.map Db.Value.to_string lecture );
                    ("avg", C.Pcon.Internal.map Db.Value.to_string avg);
                  ])
                rows
            in
            match
              Web.render ~context aggregates_template
                [ ("groups", Web.Sensitive_list groups) ]
            with
            | Ok response -> response
            | Error e -> web_error e))

(* GET /employer: averages + emails of consenting students ("Get Employer
   Info"). The caller is an employer; consent is enforced by
   Employer_release, and the released rows leave through the signed
   export CR. *)
let get_employer_info t request =
  let context =
    Web.context_for request ~user:"recruiter@corp.com" ~custom:[ ("role", "employer") ] ()
  in
  match
    Conn.query t.conn ~context "SELECT * FROM users WHERE consent_employer = ?"
      ~params:[ Pcon.wrap_no_policy (Db.Value.Bool true) ]
  with
  | Error e -> conn_error e
  | Ok users -> (
      let rows =
        List.map
          (fun row ->
            let email = C.Pcon_row.text row "email" in
            let raw_email =
              (* Needed to look up this student's grades; flows only into
                 the policy-checked query parameters. *)
              C.Pcon.Internal.map (fun e -> Db.Value.Text e) email
            in
            (email, raw_email))
          users
      in
      let export_rows =
        List.filter_map
          (fun (email, raw_email) ->
            match
              Conn.query t.conn ~context "SELECT * FROM answers WHERE email = ?"
                ~params:[ raw_email ]
            with
            | Error _ -> None
            | Ok answer_rows ->
                let grades =
                  List.filter_map
                    (fun row ->
                      match C.Pcon.Internal.unwrap (C.Pcon_row.get row "grade") with
                      | Db.Value.Null -> None
                      | _ -> Some (C.Pcon_row.float row "grade"))
                    answer_rows
                in
                if grades = [] then None
                else
                  let avg = Region.Verified.run_list t.regions.mean_grades grades in
                  Some (Pcon.pair email avg))
          rows
      in
      let cr_context =
        Context.untrusted ~endpoint:request.Http.Request.path ~custom:[ ("role", "employer") ] ()
      in
      let lines =
        List.filter_map
          (fun pair ->
            match
              Region.Critical.run t.regions.export_employer ~context:cr_context pair
            with
            | Ok line -> Some line
            | Error _ -> None)
          export_rows
      in
      Http.Response.text (String.concat "\n" lines))

(* POST /retrain: train the grade model on consenting students' grades in
   the training sandbox ("Retrain Model", Fig. 9b). *)
let retrain_model t request =
  require_auth t request (fun user ->
      if not (is_admin user) then
        Http.Response.error Http.Status.Forbidden "administrators only"
      else
        let context =
          Context.with_sink (Web.context_for request ~user ()) "ml::train"
        in
        match
          (* "Fetch everything I may train on": the connector keeps only
             rows whose grade policy admits this context. When pushdown
             is on, the grade binding's translation compiles the consent
             check into an email ∈ {consenting} predicate that rides the
             indexed scan — no per-row policy objects at all; otherwise
             the reference path instantiates and checks each row's
             policy post-hoc (memoized by Enforce underneath). *)
          Conn.query_filtered t.conn ~context ~on:"grade"
            "SELECT * FROM answers WHERE grade IS NOT NULL" ~params:[]
        with
        | Error e -> conn_error e
        | Ok rows -> (
            let points =
              List.map
                (fun row ->
                  let grade = C.Pcon_row.get row "grade" in
                  let question = C.Pcon_row.int row "question" in
                  C.Pcon.Internal.map2
                    (fun q g -> (float_of_int q, Db.Value.to_float g))
                    question grade)
                rows
            in
            if points = [] then bad_request "no consenting training data"
            else
              match Region.Sandboxed.run_list t.regions.train points with
              | Error e -> region_err e
              | Ok weights_pcon -> (
                  match C.Pcon.Internal.unwrap weights_pcon with
                  | [ w; b ] ->
                      t.model <-
                        Some (C.Pcon.Internal.map (fun _ -> (w, b)) weights_pcon);
                      Http.Response.text "model retrained"
                  | _ -> Http.Response.error Http.Status.Internal_error "bad model shape")))

(* GET /predict/<question>: model inference in a verified region ("Predict
   Grades"). *)
let predict_grades t request =
  require_auth t request (fun user ->
      match t.model with
      | None -> Http.Response.error Http.Status.Not_found "model not trained"
      | Some model -> (
          let question =
            Http.Request.path_param request "question"
            |> Option.map int_of_string_opt |> Option.join |> Option.value ~default:0
          in
          let x = Pcon.wrap_no_policy (float_of_int question) in
          let prediction = Region.Verified.run t.regions.predict (Pcon.pair model x) in
          let prediction = C.Pcon.Internal.map (fun p -> Printf.sprintf "%.2f" p) prediction in
          let context = Web.context_for request ~user () in
          match Web.respond_text ~context prediction with
          | Ok response -> response
          | Error e -> web_error e))

(* POST /consent: the user's consent choice (§9). Consent gates both the
   employer release and ML training; the MlTraining policy memoizes
   consent lookups, so a change must invalidate that cache or stale
   consent would keep flowing into training. *)
let update_consent t request =
  require_auth t request (fun user ->
      match Http.Request.form_param request "consent" with
      | None -> bad_request "consent=true|false is required"
      | Some value -> (
          let consent = value = "true" in
          let context = Web.context_for request ~user () in
          match
            Conn.execute t.conn ~context
              "UPDATE users SET consent_employer = ?, consent_ml = ? WHERE email = ?"
              ~params:
                [
                  Pcon.wrap_no_policy (Db.Value.Bool consent);
                  Pcon.wrap_no_policy (Db.Value.Bool consent);
                  Pcon.wrap_no_policy (Db.Value.Text user);
                ]
          with
          | Error e -> conn_error e
          | Ok 0 -> Http.Response.error Http.Status.Not_found "no such user"
          | Ok _ ->
              Ml_training_family.forget_consent t.consent_cache user;
              Http.Response.text "consent updated"))

(* ------------------------------------------------------------------ *)

let router t =
  let router = Http.Router.create () in
  Http.Router.post router "/register" (register_user t);
  Http.Router.post router "/consent" (update_consent t);
  Http.Router.post router "/submit/<lecture>/<question>" (submit_answer t);
  Http.Router.get router "/view/<answer_id>" (view_answer t);
  Http.Router.get router "/answers/<lecture>" (fun request ->
      let compose = Http.Request.query_param request "compose" = Some "true" in
      view_answers t ~compose request);
  Http.Router.get router "/aggregates" (get_aggregates t);
  Http.Router.get router "/employer" (get_employer_info t);
  Http.Router.post router "/retrain" (retrain_model t);
  Http.Router.get router "/predict/<question>" (predict_grades t);
  router

let handle t request = Http.Router.dispatch (router t) request
