module C = Sesame_core
module Db = Sesame_db
module Http = Sesame_http
module Scrut = Sesame_scrutinizer
module Sign = Sesame_signing
module Policy = C.Policy
module Pcon = C.Pcon
module Context = C.Context
module Region = C.Region
module Conn = C.Sesame_conn
module Web = C.Sesame_web

let app_name = "voltron"
let admins = [ "dean@university.edu" ]
let is_admin user = List.mem user admins

(* ------------------------------------------------------------------ *)
(* Policies: Storm's three plus Sesame's two extra (§9). Buffer access
   splits into read and write families, as in the paper. *)

(* (1) Only admins can enroll new instructors. *)
module Enroll_instructor_family = struct
  type s = unit

  let name = "voltron::enroll-instructor"

  let check () ctx =
    match Context.user ctx with Some who -> is_admin who | None -> false

  let join = Some (fun () () -> Some ())
  let no_folding = false
  let describe () = "EnrollInstructor(admins only)"
end

module Enroll_instructor = Policy.Make (Enroll_instructor_family)

(* (2) Students can only be enrolled by their class's instructor. *)
module Enroll_student_family = struct
  type s = { instructor : string }

  let name = "voltron::enroll-student"

  let check s ctx = Context.user ctx = Some s.instructor

  let join = None
  let no_folding = false
  let describe s = Printf.sprintf "EnrollStudent(by %s)" s.instructor
end

module Enroll_student = Policy.Make (Enroll_student_family)

(* (3a/3b) Code buffers: read and write restricted to the group's
   students and the class's instructor. *)
module Buffer_family (M : sig
  val direction : string
end) =
struct
  type s = { class_id : int; group_id : int; db : Db.Database.t }

  let name = "voltron::buffer-" ^ M.direction

  let allowed s who =
    let instructor =
      match
        Db.Database.exec s.db "SELECT instructor FROM classes WHERE id = ?"
          ~params:[ Db.Value.Int s.class_id ]
      with
      | Ok (Db.Database.Rows { rows = [ [| Db.Value.Text i |] ]; _ }) -> Some i
      | _ -> None
    in
    instructor = Some who
    ||
    match
      Db.Database.exec s.db
        "SELECT student FROM enrollments WHERE class_id = ? AND group_id = ? AND student = ?"
        ~params:[ Db.Value.Int s.class_id; Db.Value.Int s.group_id; Db.Value.Text who ]
    with
    | Ok (Db.Database.Rows { rows = _ :: _; _ }) -> true
    | _ -> false

  let check s ctx =
    match Context.user ctx with Some who -> allowed s who | None -> false

  let join =
    Some
      (fun a b ->
        if a.class_id = b.class_id && a.group_id = b.group_id then Some a else None)

  let no_folding = false

  let describe s =
    Printf.sprintf "Buffer%s(class=%d, group=%d)" M.direction s.class_id s.group_id
end

module Buffer_read_family = Buffer_family (struct let direction = "read" end)
module Buffer_write_family = Buffer_family (struct let direction = "write" end)
module Buffer_read = Policy.Make (Buffer_read_family)
module Buffer_write = Policy.Make (Buffer_write_family)

(* (4) Firebase auth headers may only flow into read queries. *)
module Firebase_auth_family = struct
  type s = unit

  let name = "voltron::firebase-auth"

  let check () ctx =
    match Context.sink ctx with
    | Some "db::query" -> true (* reads only *)
    | Some _ -> false
    | None -> false

  let join = Some (fun () () -> Some ())
  let no_folding = true
  let describe () = "FirebaseAuth(read queries only)"
end

module Firebase_auth = Policy.Make (Firebase_auth_family)

(* (5) Endpoints may only use the authenticated user's email. *)
module Own_email_family = struct
  type s = { owner : string }

  let name = "voltron::own-email"

  let check s ctx = Context.user ctx = Some s.owner

  let join = None
  let no_folding = false
  let describe s = Printf.sprintf "OwnEmail(%s)" s.owner
end

module Own_email = Policy.Make (Own_email_family)

let policy_inventory =
  [
    ("EnrollInstructor", 11, 3);
    ("EnrollStudent", 10, 1);
    ("BufferRead", 33, 14);
    ("BufferWrite", 33, 14);
    ("FirebaseAuth", 12, 5);
    ("OwnEmail", 9, 1);
  ]

(* ------------------------------------------------------------------ *)

let classes_schema =
  Db.Schema.make_exn ~name:"classes" ~primary_key:"id"
    [
      { name = "id"; ty = Db.Value.Tint; nullable = false };
      { name = "instructor"; ty = Db.Value.Ttext; nullable = false };
    ]

let instructors_schema =
  Db.Schema.make_exn ~name:"instructors" ~primary_key:"email"
    [ { name = "email"; ty = Db.Value.Ttext; nullable = false } ]

let enrollments_schema =
  Db.Schema.make_exn ~name:"enrollments" ~primary_key:"id"
    [
      { name = "id"; ty = Db.Value.Tint; nullable = false };
      { name = "class_id"; ty = Db.Value.Tint; nullable = false };
      { name = "group_id"; ty = Db.Value.Tint; nullable = false };
      { name = "student"; ty = Db.Value.Ttext; nullable = false };
    ]

let buffers_schema =
  Db.Schema.make_exn ~name:"buffers" ~primary_key:"id"
    [
      { name = "id"; ty = Db.Value.Tint; nullable = false };
      { name = "class_id"; ty = Db.Value.Tint; nullable = false };
      { name = "group_id"; ty = Db.Value.Tint; nullable = false };
      { name = "code"; ty = Db.Value.Ttext; nullable = false };
    ]

let build_program () =
  let open Scrut.Ir in
  let program = Scrut.Program.create () in
  Scrut.Program.define_all program
    [
      func ~name:"vt::merge_edit" ~params:[ "code"; "edit" ]
        [ Return (Some (Binop (Concat, Var "code", Var "edit"))) ];
      func ~name:"vt::line_count" ~params:[ "code" ]
        [
          Let ("n", Int_lit 0);
          For ("c", Var "code", [ Assign (Lvar "n", Binop (Add, Var "n", Int_lit 1)) ]);
          Return (Some (Var "n"));
        ];
      func ~name:"vt::render_buffer" ~params:[ "code" ]
        [ Return (Some (Binop (Concat, Str_lit "<code>", Var "code"))) ];
      native ~package:"fcm" ~name:"fcm::notify" ~params:[ "device"; "payload" ] ();
      func ~name:"vt::notify_instructor" ~params:[ "summary"; "device" ]
        [ Expr_stmt (Call (Static "fcm::notify", [ Var "device"; Var "summary" ])) ];
      native ~package:"firebase" ~name:"firebase::sync" ~params:[ "doc" ] ();
      func ~name:"vt::sync_buffer" ~params:[ "code" ]
        [ Expr_stmt (Call (Static "firebase::sync", [ Var "code" ])) ];
    ];
  program

let lockfile =
  Sign.Lockfile.of_packages
    [
      { name = "fcm"; version = "0.9.2"; deps = [ "reqwest" ] };
      { name = "reqwest"; version = "0.12.4"; deps = [] };
      { name = "firebase"; version = "0.3.1"; deps = [ "reqwest" ] };
    ]

type regions = {
  merge_edit : (string * string, string) Region.Verified.t;
  line_count : (string, int) Region.Verified.t;
  render_buffer : (string, string) Region.Verified.t;
  notify_instructor : (string, unit) Region.Critical.t;
  sync_buffer : (string, unit) Region.Critical.t;
}

type t = {
  conn : Conn.t;
  db : Db.Database.t;
  regions : regions;
  mutable next_id : int;
  synced : string list ref;  (** firebase-sync sink, observable in tests *)
}

let database t = t.db
let conn t = t.conn

let ( let* ) = Result.bind
let reviewer = "lead@university.edu"

let make_regions program keystore synced =
  let open Scrut.Ir in
  let spec ?captures name params body = Scrut.Spec.make ~name ~params ?captures body in
  let lift r = Result.map_error Region.error_to_string r in
  let* merge_edit =
    lift
      (Region.Verified.make ~app:app_name ~program
         ~spec:
           (spec "buffer::merge_edit" [ "code"; "edit" ]
              [ Return (Some (Call (Static "vt::merge_edit", [ Var "code"; Var "edit" ]))) ])
         ~f:(fun (code, edit) -> code ^ "\n" ^ edit)
         ())
  in
  let* line_count =
    lift
      (Region.Verified.make ~app:app_name ~program
         ~spec:
           (spec "buffer::line_count" [ "code" ]
              [ Return (Some (Call (Static "vt::line_count", [ Var "code" ]))) ])
         ~f:(fun code -> List.length (String.split_on_char '\n' code))
         ())
  in
  let* render_buffer =
    lift
      (Region.Verified.make ~app:app_name ~program
         ~spec:
           (spec "buffer::render" [ "code" ]
              [ Return (Some (Call (Static "vt::render_buffer", [ Var "code" ]))) ])
         ~f:(fun code -> "<code>" ^ Http.Template.html_escape code ^ "</code>")
         ())
  in
  let* notify_instructor =
    lift
      (Region.Critical.make ~app:app_name ~program
         ~spec:
           (spec "buffer::notify_instructor" [ "summary" ]
              ~captures:[ { cap_var = "device"; mode = By_value } ]
              [
                Expr_stmt
                  (Call (Static "vt::notify_instructor", [ Var "summary"; Var "device" ]));
              ])
         ~lockfile ~keystore
         ~f:(fun ~context summary ->
           let recipient = Option.value (Context.custom context "device") ~default:"" in
           Email.send ~recipient ~subject:"buffer updated" ~body:summary)
         ())
  in
  let* sync_buffer =
    lift
      (Region.Critical.make ~app:app_name ~program
         ~spec:
           (spec "buffer::sync" [ "code" ]
              [ Expr_stmt (Call (Static "vt::sync_buffer", [ Var "code" ])) ])
         ~lockfile ~keystore
         ~f:(fun ~context:_ code ->
           synced := code :: !synced)
         ())
  in
  Ok { merge_edit; line_count; render_buffer; notify_instructor; sync_buffer }

let create ?(query_cost_ns = 0) () =
  let db = Db.Database.create ~query_cost_ns () in
  let* () = Db.Database.create_table db classes_schema in
  let* () = Db.Database.create_table db instructors_schema in
  let* () = Db.Database.create_table db enrollments_schema in
  let* () = Db.Database.create_table db buffers_schema in
  let conn = Conn.create db in
  Conn.attach_policy conn ~table:"buffers" ~column:"code" (fun schema row ->
      Buffer_read.make
        {
          class_id = Db.Value.to_int (Db.Row.get schema row "class_id");
          group_id = Db.Value.to_int (Db.Row.get schema row "group_id");
          db;
        });
  let keystore = Sign.Keystore.create () in
  Sign.Keystore.register keystore ~reviewer ~secret:"voltron-reviewer-secret";
  let synced = ref [] in
  let* regions = make_regions (build_program ()) keystore synced in
  let sign region =
    match Region.Critical.sign region ~reviewer ~at:2000 with
    | Ok () -> Ok ()
    | Error e -> Error (Region.error_to_string e)
  in
  let* () = sign regions.notify_instructor in
  let* () = sign regions.sync_buffer in
  Ok { conn; db; regions; next_id = 1; synced }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let student_email c i = Printf.sprintf "student%d_%d@university.edu" c i
let instructor_email c = Printf.sprintf "instructor%d@university.edu" c

let seed t ~classes ~students_per_class =
  let check = function Ok _ -> Ok () | Error msg -> Error msg in
  List.fold_left
    (fun acc c ->
      let* () = acc in
      let* () =
        check
          (Db.Database.exec t.db "INSERT INTO instructors (email) VALUES (?)"
             ~params:[ Db.Value.Text (instructor_email c) ])
      in
      let* () =
        check
          (Db.Database.exec t.db "INSERT INTO classes (id, instructor) VALUES (?, ?)"
             ~params:[ Db.Value.Int (c + 1); Db.Value.Text (instructor_email c) ])
      in
      let* () =
        List.fold_left
          (fun acc i ->
            let* () = acc in
            check
              (Db.Database.exec t.db
                 "INSERT INTO enrollments (id, class_id, group_id, student) VALUES (?, ?, ?, ?)"
                 ~params:
                   [
                     Db.Value.Int (fresh_id t);
                     Db.Value.Int (c + 1);
                     Db.Value.Int ((i / 2) + 1);
                     Db.Value.Text (student_email c i);
                   ]))
          (Ok ())
          (List.init students_per_class Fun.id)
      in
      List.fold_left
        (fun acc g ->
          let* () = acc in
          check
            (Db.Database.exec t.db
               "INSERT INTO buffers (id, class_id, group_id, code) VALUES (?, ?, ?, ?)"
               ~params:
                 [
                   Db.Value.Int (fresh_id t);
                   Db.Value.Int (c + 1);
                   Db.Value.Int (g + 1);
                   Db.Value.Text "fn main() {}";
                 ]))
        (Ok ())
        (List.init (max 1 (students_per_class / 2)) Fun.id))
    (Ok ())
    (List.init classes Fun.id)

(* ------------------------------------------------------------------ *)

let conn_error e = Conn.error_response e

let authenticate request = Http.Request.cookie request "user"

let require_auth request k =
  match authenticate request with
  | Some user -> k user
  | None -> Http.Response.error Http.Status.Unauthorized "not signed in"

(* POST /instructors: enrolling an instructor is a write whose data
   carries the EnrollInstructor policy, so only admins pass the insert
   sink's check (policy 1). *)
let enroll_instructor t request =
  require_auth request (fun user ->
      match Http.Request.form_param request "email" with
      | None -> Http.Response.error Http.Status.Bad_request "email is required"
      | Some email -> (
          let context = Web.context_for request ~user () in
          let wrapped =
            C.Pcon.Internal.make (Enroll_instructor.make ()) (Db.Value.Text email)
          in
          match
            Conn.insert t.conn ~context ~table:"instructors" [ ("email", wrapped) ]
          with
          | Ok () -> Http.Response.text ~status:Http.Status.Created "instructor enrolled"
          | Error e -> conn_error e))

(* POST /classes/<class_id>/students (policy 2). *)
let enroll_student t request =
  require_auth request (fun user ->
      let class_id =
        Http.Request.path_param request "class_id"
        |> Option.map int_of_string_opt |> Option.join |> Option.value ~default:0
      in
      match Http.Request.form_param request "email" with
      | None -> Http.Response.error Http.Status.Bad_request "email is required"
      | Some email -> (
          let instructor =
            match
              Db.Database.exec t.db "SELECT instructor FROM classes WHERE id = ?"
                ~params:[ Db.Value.Int class_id ]
            with
            | Ok (Db.Database.Rows { rows = [ [| Db.Value.Text i |] ]; _ }) -> i
            | _ -> ""
          in
          let context = Web.context_for request ~user () in
          let group_id =
            Http.Request.form_param request "group"
            |> Option.map int_of_string_opt |> Option.join |> Option.value ~default:1
          in
          match
            Conn.insert t.conn ~context ~table:"enrollments"
              [
                ("id", Pcon.wrap_no_policy (Db.Value.Int (fresh_id t)));
                ("class_id", Pcon.wrap_no_policy (Db.Value.Int class_id));
                ("group_id", Pcon.wrap_no_policy (Db.Value.Int group_id));
                ( "student",
                  C.Pcon.Internal.make
                    (Enroll_student.make { instructor })
                    (Db.Value.Text email) );
              ]
          with
          | Ok () -> Http.Response.text ~status:Http.Status.Created "student enrolled"
          | Error e -> conn_error e))

let buffer_template =
  Http.Template.compile_exn "<html><body>{{{buffer}}}</body></html>"

(* GET /buffers/<id> (policy 3, read side). *)
let read_buffer t request =
  require_auth request (fun user ->
      let id =
        Http.Request.path_param request "id"
        |> Option.map int_of_string_opt |> Option.join |> Option.value ~default:0
      in
      let context = Web.context_for request ~user () in
      match
        Conn.query t.conn ~context "SELECT * FROM buffers WHERE id = ?"
          ~params:[ Pcon.wrap_no_policy (Db.Value.Int id) ]
      with
      | Error e -> conn_error e
      | Ok [] -> Http.Response.error Http.Status.Not_found "no such buffer"
      | Ok (row :: _) -> (
          let rendered =
            Region.Verified.run t.regions.render_buffer (C.Pcon_row.text row "code")
          in
          match
            Web.render ~context buffer_template [ ("buffer", Web.Sensitive rendered) ]
          with
          | Ok response -> response
          | Error e -> Web.error_response e))

(* POST /buffers/<id> (policy 3, write side). The new content is merged in
   a verified region; the write-policy check happens at the update sink. *)
let write_buffer t request =
  require_auth request (fun user ->
      let id =
        Http.Request.path_param request "id"
        |> Option.map int_of_string_opt |> Option.join |> Option.value ~default:0
      in
      match Http.Request.form_param request "edit" with
      | None -> Http.Response.error Http.Status.Bad_request "edit is required"
      | Some _ -> (
          let context = Web.context_for request ~user () in
          match
            Conn.query t.conn ~context "SELECT * FROM buffers WHERE id = ?"
              ~params:[ Pcon.wrap_no_policy (Db.Value.Int id) ]
          with
          | Error e -> conn_error e
          | Ok [] -> Http.Response.error Http.Status.Not_found "no such buffer"
          | Ok (row :: _) -> (
              let class_id =
                C.Mock.unwrap (C.Pcon_row.int row "class_id")
                (* class/group ids are structural, NoPolicy columns *)
              in
              let group_id = C.Mock.unwrap (C.Pcon_row.int row "group_id") in
              let write_policy = Buffer_write.make { class_id; group_id; db = t.db } in
              let edit =
                Option.get
                  (Web.form_param request "edit" ~policy:(fun _ -> write_policy))
              in
              let code = C.Pcon_row.text row "code" in
              let merged = Region.Verified.run2 t.regions.merge_edit code edit in
              match
                Conn.execute t.conn ~context "UPDATE buffers SET code = ? WHERE id = ?"
                  ~params:
                    [
                      C.Pcon.Internal.map (fun c -> Db.Value.Text c) merged;
                      Pcon.wrap_no_policy (Db.Value.Int id);
                    ]
              with
              | Error e -> conn_error e
              | Ok _ -> Http.Response.text "buffer updated")))

let router t =
  let router = Http.Router.create () in
  Http.Router.post router "/instructors" (enroll_instructor t);
  Http.Router.post router "/classes/<class_id>/students" (enroll_student t);
  Http.Router.get router "/buffers/<id>" (read_buffer t);
  Http.Router.post router "/buffers/<id>" (write_buffer t);
  router

let handle t request = Http.Router.dispatch (router t) request
