(* A driveable WebSubmit instance: seeds the course, then reads simple
   request lines from stdin and dispatches them through the in-process
   router. Useful for poking at the policy checks by hand.

     dune exec bin/websubmit_demo.exe -- --students 20 --questions 3

   Request syntax, one per line:
     [user@email] METHOD /path[?query] [body]
   e.g.
     student0@school.edu GET /view/1
     admin@school.edu GET /aggregates
     student2@school.edu POST /submit/1/9 answer=hello
     quit *)

module Http = Sesame_http
module Apps = Sesame_apps
module F = Sesame_faults

(* --inject point:action[:nth], e.g. db-query:exhaust or
   copier-decode:corrupt:2. nth defaults to 1 (first traversal); 0 fires
   on every traversal. *)
let parse_inject spec =
  match String.split_on_char ':' spec with
  | point :: rest -> (
      match F.point_of_string point with
      | None -> Error (Printf.sprintf "unknown fault point %S" point)
      | Some point -> (
          let action_spec, nth =
            match rest with
            | [ action ] -> (action, Some 1)
            | [ "delay"; ns ] -> ("delay:" ^ ns, Some 1)
            | [ "delay"; ns; nth ] -> ("delay:" ^ ns, int_of_string_opt nth)
            | [ action; nth ] -> (action, int_of_string_opt nth)
            | _ -> ("", None)
          in
          match (nth, F.action_of_string action_spec) with
          | Some nth, Some action -> Ok (F.plan ~nth point action)
          | _, None -> Error (Printf.sprintf "unknown fault action %S" action_spec)
          | None, _ -> Error (Printf.sprintf "bad fault spec %S" spec)))
  | [] -> Error "empty fault spec"

let dispatch app line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | [] -> None
  | [ "quit" ] | [ "exit" ] -> raise Exit
  | parts ->
      let user, rest =
        match parts with
        | u :: rest when String.contains u '@' -> (Some u, rest)
        | rest -> (None, rest)
      in
      (match rest with
      | meth :: target :: body -> (
          match Http.Meth.of_string meth with
          | None -> Some (Http.Response.error Http.Status.Bad_request "unknown method")
          | Some meth ->
              let headers =
                Http.Headers.of_list
                  ((match user with
                   | Some u -> [ ("Cookie", "user=" ^ u) ]
                   | None -> [])
                  @ [ ("Content-Type", "application/x-www-form-urlencoded") ])
              in
              let request =
                Http.Request.make ~headers ~body:(String.concat " " body) meth target
              in
              Some (Apps.Websubmit.handle app request))
      | _ -> Some (Http.Response.error Http.Status.Bad_request "usage: [user] METHOD /path [body]"))

let run students questions injects =
  let plans =
    List.map
      (fun spec ->
        match parse_inject spec with
        | Ok plan -> plan
        | Error msg ->
            Printf.eprintf "bad --inject: %s\n" msg;
            exit 2)
      injects
  in
  match Apps.Websubmit.create () with
  | Error m ->
      Printf.eprintf "failed to start: %s\n" m;
      1
  | Ok app -> (
      (match Apps.Websubmit.seed app ~students ~questions with
      | Ok () -> ()
      | Error m -> failwith m);
      (* Arm only after seeding: the plans should hit the requests typed
         at the prompt, not the fixture's own DB traffic. *)
      if plans <> [] then F.arm plans;
      Printf.printf
        "WebSubmit ready: %d students x %d questions seeded.\n\
         Principals: studentN@school.edu, admin@school.edu, leader@school.edu.\n\
         Example: student0@school.edu GET /view/1   (quit to exit)\n%!"
        students questions;
      if plans <> [] then
        Printf.printf "Fault injection armed: %s.\n%!" (String.concat ", " injects);
      try
        while true do
          print_string "> ";
          let line = read_line () in
          match dispatch app line with
          | None -> ()
          | Some response ->
              Printf.printf "%d %s\n%s\n%!"
                (Http.Status.to_int response.Http.Response.status)
                (Http.Status.reason response.Http.Response.status)
                response.Http.Response.body
        done;
        0
      with Exit | End_of_file -> 0)

open Cmdliner

let students_arg =
  Arg.(value & opt int 20 & info [ "students" ] ~docv:"N" ~doc:"Students to seed.")

let questions_arg =
  Arg.(value & opt int 3 & info [ "questions" ] ~docv:"N" ~doc:"Questions per student.")

let inject_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "inject" ] ~docv:"POINT:ACTION[:NTH]"
        ~doc:
          "Arm a deterministic fault after seeding, e.g. db-query:exhaust or \
           copier-decode:corrupt:2. NTH=0 fires on every traversal. Repeatable.")

let cmd =
  Cmd.v
    (Cmd.info "websubmit-demo" ~version:"1.0" ~doc:"Interactive WebSubmit instance")
    Term.(const run $ students_arg $ questions_arg $ inject_arg)

let () = exit (Cmd.eval' cmd)
