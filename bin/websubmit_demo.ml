(* A driveable WebSubmit instance: seeds the course, then reads simple
   request lines from stdin and dispatches them through the in-process
   router. Useful for poking at the policy checks by hand.

     dune exec bin/websubmit_demo.exe -- --students 20 --questions 3

   Request syntax, one per line:
     [user@email] METHOD /path[?query] [body]
   e.g.
     student0@school.edu GET /view/1
     admin@school.edu GET /aggregates
     student2@school.edu POST /submit/1/9 answer=hello
     quit *)

module Http = Sesame_http
module Apps = Sesame_apps
module F = Sesame_faults
module Wal = Sesame_wal
module Sbx = Sesame_sandbox
module Sign = Sesame_signing

(* --inject point:action[:nth], e.g. db-query:exhaust or
   copier-decode:corrupt:2. nth defaults to 1 (first traversal); 0 fires
   on every traversal. *)
let parse_inject spec =
  match String.split_on_char ':' spec with
  | point :: rest -> (
      match F.point_of_string point with
      | None -> Error (Printf.sprintf "unknown fault point %S" point)
      | Some point -> (
          let action_spec, nth =
            match rest with
            | [ action ] -> (action, Some 1)
            | [ "delay"; ns ] -> ("delay:" ^ ns, Some 1)
            | [ "delay"; ns; nth ] -> ("delay:" ^ ns, int_of_string_opt nth)
            | [ action; nth ] -> (action, int_of_string_opt nth)
            | _ -> ("", None)
          in
          match (nth, F.action_of_string action_spec) with
          | Some nth, Some action -> Ok (F.plan ~nth point action)
          | _, None -> Error (Printf.sprintf "unknown fault action %S" action_spec)
          | None, _ -> Error (Printf.sprintf "bad fault spec %S" spec)))
  | [] -> Error "empty fault spec"

let dispatch app line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | [] -> None
  | [ "quit" ] | [ "exit" ] -> raise Exit
  | parts ->
      let user, rest =
        match parts with
        | u :: rest when String.contains u '@' -> (Some u, rest)
        | rest -> (None, rest)
      in
      (match rest with
      | meth :: target :: body -> (
          match Http.Meth.of_string meth with
          | None -> Some (Http.Response.error Http.Status.Bad_request "unknown method")
          | Some meth ->
              let headers =
                Http.Headers.of_list
                  ((match user with
                   | Some u -> [ ("Cookie", "user=" ^ u) ]
                   | None -> [])
                  @ [ ("Content-Type", "application/x-www-form-urlencoded") ])
              in
              let request =
                Http.Request.make ~headers ~body:(String.concat " " body) meth target
              in
              Some (Apps.Websubmit.handle app request))
      | _ -> Some (Http.Response.error Http.Status.Bad_request "usage: [user] METHOD /path [body]"))

(* --preflight: run the boot-time SFI battery standalone and exit — the
   smoke test a deployment gates pool construction on. Fault plans are
   armed first so an injected preflight-trap-miss demonstrably turns
   into a non-zero exit. *)
let run_preflight plans injects =
  if plans <> [] then begin
    F.arm plans;
    Printf.printf "Fault injection armed: %s.\n%!" (String.concat ", " injects)
  end;
  let report = Sbx.Sfi.run () in
  print_string (Sbx.Preflight.render report);
  Printf.printf "%s\n%!" (Sbx.Preflight.summary report);
  if plans <> [] then F.disarm ();
  if Sbx.Preflight.passed report then 0 else 1

let run students questions injects data_dir fsync checkpoint_every serve_port preflight_only
    harden attest_log =
  let plans =
    List.map
      (fun spec ->
        match parse_inject spec with
        | Ok plan -> plan
        | Error msg ->
            Printf.eprintf "bad --inject: %s\n" msg;
            exit 2)
      injects
  in
  if preflight_only then run_preflight plans injects
  else begin
  (* The ambient recorder must be installed before the app is created:
     region installation appends the approval frames that later runs are
     verified against. *)
  let recorder =
    match attest_log with
    | None -> None
    | Some path -> (
        match Sign.Attest.create_recorder path with
        | Ok r ->
            Sign.Attest.install r;
            Printf.printf "Attesting runs to %s.\n%!" path;
            Some r
        | Error m ->
            Printf.eprintf "failed to open attestation log: %s\n" m;
            exit 1)
  in
  let hardening =
    if not harden then None
    else
      match Apps.Websubmit.harden () with
      | Ok h ->
          Printf.printf "Sandbox hardening on: %s.\n%!" (Sbx.Preflight.summary h.preflight);
          Some h
      | Error m ->
          Printf.eprintf "%s\n" m;
          exit 1
  in
  let started =
    match data_dir with
    | None -> Result.map (fun app -> (app, None)) (Apps.Websubmit.create ?hardening ())
    | Some dir ->
        let durable_config =
          {
            Wal.Durable.sync = (if fsync then Wal.Durable.Fsync else Wal.Durable.No_sync);
            batch = 1;
            checkpoint_every = (if checkpoint_every <= 0 then None else Some checkpoint_every);
            window_ns = 0L;
          }
        in
        Result.map
          (fun (app, store) -> (app, Some store))
          (Apps.Websubmit.create_durable ~durable_config ?hardening ~data_dir:dir ())
  in
  match started with
  | Error m ->
      Printf.eprintf "failed to start: %s\n" m;
      1
  | Ok (app, store) -> (
      (* A durable directory that already holds answers was recovered —
         re-seeding would collide with the journaled rows. *)
      let recovered = Apps.Websubmit.answer_count app in
      if recovered > 0 then
        Printf.printf "WebSubmit ready: recovered %d answers from %s.\n%!" recovered
          (Option.value data_dir ~default:"?")
      else begin
        (match Apps.Websubmit.seed app ~students ~questions with
        | Ok () -> ()
        | Error m -> failwith m);
        Printf.printf "WebSubmit ready: %d students x %d questions seeded.\n%!" students
          questions
      end;
      (* Arm only after seeding: the plans should hit the requests typed
         at the prompt, not the fixture's own DB traffic. *)
      if plans <> [] then F.arm plans;
      Printf.printf
        "Principals: studentN@school.edu, admin@school.edu, leader@school.edu.\n\
         Example: student0@school.edu GET /view/1   (quit to exit)\n%!";
      if plans <> [] then
        Printf.printf "Fault injection armed: %s.\n%!" (String.concat ", " injects);
      (* --serve PORT: the same instance, over real sockets, alongside
         the stdin prompt. Both drive the same router and database. *)
      let server =
        match serve_port with
        | None -> None
        | Some port -> (
            let config = { Sesame_server.default_config with Sesame_server.port } in
            match
              Sesame_server.start ~config ~handler:(Apps.Websubmit.handle app) ()
            with
            | Ok server ->
                Printf.printf "Serving HTTP on http://127.0.0.1:%d (e.g. curl -b \
                               user=admin@school.edu http://127.0.0.1:%d/aggregates)\n%!"
                  (Sesame_server.port server) (Sesame_server.port server);
                Some server
            | Error m ->
                Printf.eprintf "failed to serve: %s\n" m;
                exit 1)
      in
      let finish () =
        Option.iter Sesame_server.stop server;
        Option.iter
          (fun r ->
            Sign.Attest.uninstall ();
            Sign.Attest.close_recorder r)
          recorder;
        match store with
        | None -> 0
        | Some store -> (
            match Wal.Durable.close store with
            | Ok () -> 0
            | Error m ->
                Printf.eprintf "durable close failed: %s\n" m;
                1)
      in
      try
        while true do
          print_string "> ";
          let line = read_line () in
          match dispatch app line with
          | None -> ()
          | Some response ->
              Printf.printf "%d %s\n%s\n%!"
                (Http.Status.to_int response.Http.Response.status)
                (Http.Status.reason response.Http.Response.status)
                response.Http.Response.body
        done;
        0
      with Exit | End_of_file -> finish ())
  end

open Cmdliner

let students_arg =
  Arg.(value & opt int 20 & info [ "students" ] ~docv:"N" ~doc:"Students to seed.")

let questions_arg =
  Arg.(value & opt int 3 & info [ "questions" ] ~docv:"N" ~doc:"Questions per student.")

let inject_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "inject" ] ~docv:"POINT:ACTION[:NTH]"
        ~doc:
          "Arm a deterministic fault after seeding, e.g. db-query:exhaust or \
           copier-decode:corrupt:2. NTH=0 fires on every traversal. Repeatable.")

let data_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Run durably: journal every write (with its policy provenance) to a \
           WAL + checkpoint store in $(docv), recovering it on startup. A \
           directory that already holds data is recovered instead of re-seeded.")

let fsync_arg =
  Arg.(
    value & opt bool true
    & info [ "fsync" ] ~docv:"BOOL"
        ~doc:
          "With --data-dir: fsync on every commit (true, the strict default) or \
           leave flushing to the OS (false).")

let serve_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve" ] ~docv:"PORT"
        ~doc:
          "Also serve the instance over HTTP on 127.0.0.1:$(docv) (0 picks an \
           ephemeral port). Authenticate with a 'user=EMAIL' cookie. The stdin \
           prompt keeps working; quitting stops the server.")

let preflight_arg =
  Arg.(
    value & flag
    & info [ "preflight" ]
        ~doc:
          "Run the boot-time SFI preflight battery (out-of-bounds, exhaustion, budget, \
           syscall, wipe, and quarantine trap tests) and exit: 0 when every trap was caught, \
           1 otherwise. Honors --inject (e.g. preflight-trap-miss:raise).")

let harden_arg =
  Arg.(
    value & flag
    & info [ "harden" ]
        ~doc:
          "Run both sandboxed regions on a preflighted pool with per-run budgets and a \
           cumulative quota. Refuses to start (fail closed) if any preflight check misses \
           its trap.")

let attest_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "attest-log" ] ~docv:"PATH"
        ~doc:
          "Append a signed attestation frame for every region installation and sandbox run \
           to $(docv). Verify later with scrutinizer --attest-verify $(docv).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 256
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "With --data-dir: checkpoint after every N journaled records (0 \
           disables automatic checkpoints).")

let cmd =
  Cmd.v
    (Cmd.info "websubmit-demo" ~version:"1.0" ~doc:"Interactive WebSubmit instance")
    Term.(
      const run $ students_arg $ questions_arg $ inject_arg $ data_dir_arg $ fsync_arg
      $ checkpoint_every_arg $ serve_arg $ preflight_arg $ harden_arg $ attest_log_arg)

let () = exit (Cmd.eval' cmd)
