(* The standalone Scrutinizer CLI: run the leakage-freedom analysis over
   the bundled region corpus, per app or in full, at either scale.

     dune exec bin/scrutinizer.exe -- --app portfolio --scale full
     dune exec bin/scrutinizer.exe -- --stdlib
     dune exec bin/scrutinizer.exe -- --region 'pf::rank_region' --explain
     dune exec bin/scrutinizer.exe -- --json *)

module Scrut = Sesame_scrutinizer
module Corpus = Sesame_corpus

(* ------------------------------------------------------------------ *)
(* Hand-rolled JSON rendering (no JSON dependency in the tree). *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""

let json_of_step (s : Scrut.Analysis.step) =
  Printf.sprintf {|{"kind":%s,"fn":%s,"detail":%s}|}
    (json_str
       (match s.Scrut.Analysis.step_kind with
       | Scrut.Analysis.Source -> "source"
       | Flow -> "flow"
       | Branch -> "branch"
       | Call -> "call"
       | Return -> "return"
       | Writeback -> "writeback"
       | Sink -> "sink"))
    (json_str s.Scrut.Analysis.step_fn)
    (json_str s.Scrut.Analysis.step_detail)

let json_of_rejection (r : Scrut.Analysis.rejection) =
  Printf.sprintf {|{"reason":%s,"trace":[%s]}|}
    (json_str (Scrut.Analysis.reason_to_string r.Scrut.Analysis.reason))
    (String.concat "," (List.map json_of_step r.Scrut.Analysis.trace))

let json_of_verdict ~label ~name (v : Scrut.Analysis.verdict) =
  Printf.sprintf
    {|{"app":%s,"region":%s,"accepted":%b,"functions":%d,"rejections":[%s]}|}
    (json_str label) (json_str name) v.Scrut.Analysis.accepted
    v.Scrut.Analysis.stats.functions_analyzed
    (String.concat "," (List.map json_of_rejection v.Scrut.Analysis.rejections))

let print_json ~corpus ~scale results =
  let verified =
    List.length (List.filter (fun (_, _, v) -> v.Scrut.Analysis.accepted) results)
  in
  Format.printf {|{"corpus":%s,"scale":%s,"verified":%d,"total":%d,"regions":[%s]}@.|}
    (json_str corpus) (json_str scale) verified (List.length results)
    (String.concat ","
       (List.map (fun (label, name, v) -> json_of_verdict ~label ~name v) results))

let print_explanations (v : Scrut.Analysis.verdict) =
  List.iter
    (fun (r : Scrut.Analysis.rejection) ->
      Format.printf "    - %s@." (Scrut.Analysis.rejection_to_string r);
      List.iter
        (fun s -> Format.printf "        %s@." (Scrut.Analysis.step_to_string s))
        r.Scrut.Analysis.trace)
    v.Scrut.Analysis.rejections

(* ------------------------------------------------------------------ *)

let run_app_corpus scale app_filter region_filter verbose explain json no_cache =
  let program = Corpus.App_corpus.program scale in
  let cases =
    Corpus.App_corpus.cases ()
    |> List.filter (fun (c : Corpus.App_corpus.case) ->
           (match app_filter with Some app -> c.app = app | None -> true)
           && match region_filter with Some r -> c.name = r | None -> true)
  in
  if cases = [] then (
    Format.eprintf "no regions match the given filters@.";
    1)
  else begin
    let cache =
      if no_cache then None else Some (Scrut.Analysis.Summary_cache.create ())
    in
    let results =
      List.map
        (fun (c : Corpus.App_corpus.case) ->
          (c.app, c.name, c.spec, Scrut.Analysis.check ?cache program c.spec))
        cases
    in
    if json then
      print_json ~corpus:"app"
        ~scale:(match scale with Corpus.App_corpus.Small -> "small" | Full -> "full")
        (List.map (fun (app, name, _, v) -> (app, name, v)) results)
    else begin
      let accepted = ref 0 in
      List.iter
        (fun (app, name, spec, v) ->
          if v.Scrut.Analysis.accepted then incr accepted;
          Format.printf "%-10s %-38s %s (%d functions, %.3fs)@." app name
            (if v.Scrut.Analysis.accepted then "VERIFIED" else "REJECTED")
            v.Scrut.Analysis.stats.functions_analyzed v.Scrut.Analysis.stats.duration_s;
          if explain && not v.Scrut.Analysis.accepted then begin
            Format.printf "    %s@." (Scrut.Spec.signature spec);
            print_explanations v
          end
          else if verbose && not v.Scrut.Analysis.accepted then
            List.iter
              (fun r -> Format.printf "    - %s@." (Scrut.Analysis.rejection_to_string r))
              v.Scrut.Analysis.rejections;
          if verbose && region_filter <> None then
            Format.printf "@[<v 2>source:@,%s@]@." (Scrut.Spec.source spec))
        results;
      Format.printf "@.%d/%d regions verified.@." !accepted (List.length results);
      match cache with
      | Some cache when List.length results > 1 ->
          Format.printf
            "summary cache: %d entries, %d hits / %d misses (%.1f%% hit rate)@."
            (Scrut.Analysis.Summary_cache.entries cache)
            (Scrut.Analysis.Summary_cache.hits cache)
            (Scrut.Analysis.Summary_cache.misses cache)
            (100.0 *. Scrut.Analysis.Summary_cache.hit_rate cache)
      | Some _ | None -> ()
    end;
    0
  end

let run_audit scale =
  let program = Corpus.App_corpus.program scale in
  let findings = Scrut.Encapsulation.audit program in
  List.iter (fun f -> Format.printf "%a@." Scrut.Encapsulation.pp_finding f) findings;
  (match Scrut.Encapsulation.breaking_packages program with
  | [] -> Format.printf "@.no encapsulation-breaking packages.@."
  | pkgs ->
      Format.printf "@.packages needing review or the obfuscated layout: %s@."
        (String.concat ", " pkgs));
  0

let run_stdlib verbose explain json =
  let program = Corpus.Stdlib_corpus.program () in
  let cases = Corpus.Stdlib_corpus.cases () in
  let results =
    List.map
      (fun (c : Corpus.Stdlib_corpus.case) ->
        (c, Scrut.Analysis.check program c.spec))
      cases
  in
  if json then
    print_json ~corpus:"stdlib" ~scale:"-"
      (List.map (fun ((c : Corpus.Stdlib_corpus.case), v) -> ("stdlib", c.name, v)) results)
  else begin
    let accepted = ref 0 in
    List.iter
      (fun ((c : Corpus.Stdlib_corpus.case), v) ->
        if v.Scrut.Analysis.accepted then incr accepted;
        Format.printf "%-28s %s%s@." c.name
          (if v.Scrut.Analysis.accepted then "VERIFIED" else "REJECTED")
          (if (not v.Scrut.Analysis.accepted) && c.leak_free then "  (false positive)" else "");
        if explain && not v.Scrut.Analysis.accepted then print_explanations v
        else if verbose && not v.Scrut.Analysis.accepted then
          List.iter
            (fun r -> Format.printf "    - %s@." (Scrut.Analysis.rejection_to_string r))
            v.Scrut.Analysis.rejections)
      results;
    Format.printf "@.%d/%d methods verified.@." !accepted (List.length results)
  end;
  0

open Cmdliner

let app_arg =
  Arg.(
    value
    & opt (some (enum (List.map (fun a -> (a, a)) Corpus.App_corpus.apps))) None
    & info [ "app" ] ~docv:"APP" ~doc:"Analyze only this application's regions.")

let region_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "region" ] ~docv:"NAME" ~doc:"Analyze only the named region.")

let scale_arg =
  Arg.(
    value
    & opt
        (enum [ ("small", Corpus.App_corpus.Small); ("full", Corpus.App_corpus.Full) ])
        Corpus.App_corpus.Small
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Dependency-tree scale: $(b,small) for quick runs, $(b,full) for Fig. 10-sized call graphs.")

let stdlib_arg =
  Arg.(value & flag & info [ "stdlib" ] ~doc:"Analyze the std-collection method corpus instead.")

let audit_arg =
  Arg.(
    value & flag
    & info [ "audit-unsafe" ]
        ~doc:"Whole-program unsafe-encapsulation audit (the section-12 analysis) instead of region checking.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print rejection reasons (and sources with --region).")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print the witness trace of every rejection: the path sensitive data takes from its source binding to the rejected sink.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit machine-readable JSON (verdicts, rejections, and witness traces) instead of text.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-summary-cache" ]
        ~doc:"Disable the cross-region function-summary cache (on by default; the verdicts are identical either way).")

let cmd =
  let run stdlib audit scale app region verbose explain json no_cache =
    if audit then run_audit scale
    else if stdlib then run_stdlib verbose explain json
    else run_app_corpus scale app region verbose explain json no_cache
  in
  Cmd.v
    (Cmd.info "scrutinizer" ~version:"1.0"
       ~doc:"Check privacy regions for leakage-freedom (the paper's Scrutinizer)")
    Term.(
      const run $ stdlib_arg $ audit_arg $ scale_arg $ app_arg $ region_arg $ verbose_arg
      $ explain_arg $ json_arg $ no_cache_arg)

let () = exit (Cmd.eval' cmd)
