(* The standalone Scrutinizer CLI: run the leakage-freedom analysis over
   the bundled region corpus, per app or in full, at either scale.

     dune exec bin/scrutinizer.exe -- --app portfolio --scale full
     dune exec bin/scrutinizer.exe -- --stdlib
     dune exec bin/scrutinizer.exe -- --region 'pf::rank_region' --explain
     dune exec bin/scrutinizer.exe -- --json
     dune exec bin/scrutinizer.exe -- --elide --app websubmit --explain

   Exit codes under --json are meaningful so CI can gate on them: 0 when
   every analyzed region is accepted, 1 when the output contains any
   rejection (for the bundled corpus, which includes known-leaking
   regions, a full-run exit of 1 is the expected healthy outcome). *)

module Scrut = Sesame_scrutinizer
module Corpus = Sesame_corpus
module Sign = Sesame_signing

(* ------------------------------------------------------------------ *)
(* Hand-rolled JSON rendering (no JSON dependency in the tree). *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""

let json_of_step (s : Scrut.Analysis.step) =
  Printf.sprintf {|{"kind":%s,"fn":%s,"detail":%s}|}
    (json_str
       (match s.Scrut.Analysis.step_kind with
       | Scrut.Analysis.Source -> "source"
       | Flow -> "flow"
       | Branch -> "branch"
       | Call -> "call"
       | Return -> "return"
       | Writeback -> "writeback"
       | Sink -> "sink"))
    (json_str s.Scrut.Analysis.step_fn)
    (json_str s.Scrut.Analysis.step_detail)

let json_of_rejection (r : Scrut.Analysis.rejection) =
  Printf.sprintf {|{"reason":%s,"trace":[%s]}|}
    (json_str (Scrut.Analysis.reason_to_string r.Scrut.Analysis.reason))
    (String.concat "," (List.map json_of_step r.Scrut.Analysis.trace))

let json_of_verdict ~label ~name (v : Scrut.Analysis.verdict) =
  Printf.sprintf
    {|{"app":%s,"region":%s,"accepted":%b,"functions":%d,"rejections":[%s]}|}
    (json_str label) (json_str name) v.Scrut.Analysis.accepted
    v.Scrut.Analysis.stats.functions_analyzed
    (String.concat "," (List.map json_of_rejection v.Scrut.Analysis.rejections))

let print_json ~corpus ~scale results =
  let verified =
    List.length (List.filter (fun (_, _, v) -> v.Scrut.Analysis.accepted) results)
  in
  Format.printf {|{"corpus":%s,"scale":%s,"verified":%d,"total":%d,"regions":[%s]}@.|}
    (json_str corpus) (json_str scale) verified (List.length results)
    (String.concat ","
       (List.map (fun (label, name, v) -> json_of_verdict ~label ~name v) results))

let print_explanations (v : Scrut.Analysis.verdict) =
  List.iter
    (fun (r : Scrut.Analysis.rejection) ->
      Format.printf "    - %s@." (Scrut.Analysis.rejection_to_string r);
      List.iter
        (fun s -> Format.printf "        %s@." (Scrut.Analysis.step_to_string s))
        r.Scrut.Analysis.trace)
    v.Scrut.Analysis.rejections

(* Any rejection in machine-readable output turns into a non-zero exit
   so CI can gate on "the verdicts are what we ship", not on greps. *)
let json_exit results =
  if List.exists (fun (_, _, v) -> v.Scrut.Analysis.rejections <> []) results then 1 else 0

(* ------------------------------------------------------------------ *)

let run_app_corpus scale app_filter region_filter verbose explain json no_cache =
  let program = Corpus.App_corpus.program scale in
  let cases =
    Corpus.App_corpus.cases ()
    |> List.filter (fun (c : Corpus.App_corpus.case) ->
           (match app_filter with Some app -> c.app = app | None -> true)
           && match region_filter with Some r -> c.name = r | None -> true)
  in
  if cases = [] then (
    Format.eprintf "no regions match the given filters@.";
    1)
  else begin
    let cache =
      if no_cache then None else Some (Scrut.Analysis.Summary_cache.create ())
    in
    let results =
      List.map
        (fun (c : Corpus.App_corpus.case) ->
          (c.app, c.name, c.spec, Scrut.Analysis.check ?cache program c.spec))
        cases
    in
    if json then begin
      let flat = List.map (fun (app, name, _, v) -> (app, name, v)) results in
      print_json ~corpus:"app"
        ~scale:(match scale with Corpus.App_corpus.Small -> "small" | Full -> "full")
        flat;
      json_exit flat
    end
    else begin
      let accepted = ref 0 in
      List.iter
        (fun (app, name, spec, v) ->
          if v.Scrut.Analysis.accepted then incr accepted;
          Format.printf "%-10s %-38s %s (%d functions, %.3fs)@." app name
            (if v.Scrut.Analysis.accepted then "VERIFIED" else "REJECTED")
            v.Scrut.Analysis.stats.functions_analyzed v.Scrut.Analysis.stats.duration_s;
          if explain && not v.Scrut.Analysis.accepted then begin
            Format.printf "    %s@." (Scrut.Spec.signature spec);
            print_explanations v
          end
          else if verbose && not v.Scrut.Analysis.accepted then
            List.iter
              (fun r -> Format.printf "    - %s@." (Scrut.Analysis.rejection_to_string r))
              v.Scrut.Analysis.rejections;
          if verbose && region_filter <> None then
            Format.printf "@[<v 2>source:@,%s@]@." (Scrut.Spec.source spec))
        results;
      Format.printf "@.%d/%d regions verified.@." !accepted (List.length results);
      (match cache with
      | Some cache when List.length results > 1 ->
          Format.printf
            "summary cache: %d entries, %d hits / %d misses (%.1f%% hit rate)@."
            (Scrut.Analysis.Summary_cache.entries cache)
            (Scrut.Analysis.Summary_cache.hits cache)
            (Scrut.Analysis.Summary_cache.misses cache)
            (100.0 *. Scrut.Analysis.Summary_cache.hit_rate cache)
      | Some _ | None -> ());
      0
    end
  end

let run_audit scale =
  let program = Corpus.App_corpus.program scale in
  let findings = Scrut.Encapsulation.audit program in
  List.iter (fun f -> Format.printf "%a@." Scrut.Encapsulation.pp_finding f) findings;
  (match Scrut.Encapsulation.breaking_packages program with
  | [] -> Format.printf "@.no encapsulation-breaking packages.@."
  | pkgs ->
      Format.printf "@.packages needing review or the obfuscated layout: %s@."
        (String.concat ", " pkgs));
  0

let run_stdlib verbose explain json =
  let program = Corpus.Stdlib_corpus.program () in
  let cases = Corpus.Stdlib_corpus.cases () in
  let results =
    List.map
      (fun (c : Corpus.Stdlib_corpus.case) ->
        (c, Scrut.Analysis.check program c.spec))
      cases
  in
  if json then begin
    let flat =
      List.map (fun ((c : Corpus.Stdlib_corpus.case), v) -> ("stdlib", c.name, v)) results
    in
    print_json ~corpus:"stdlib" ~scale:"-" flat;
    json_exit flat
  end
  else begin
    let accepted = ref 0 in
    List.iter
      (fun ((c : Corpus.Stdlib_corpus.case), v) ->
        if v.Scrut.Analysis.accepted then incr accepted;
        Format.printf "%-28s %s%s@." c.name
          (if v.Scrut.Analysis.accepted then "VERIFIED" else "REJECTED")
          (if (not v.Scrut.Analysis.accepted) && c.leak_free then "  (false positive)" else "");
        if explain && not v.Scrut.Analysis.accepted then print_explanations v
        else if verbose && not v.Scrut.Analysis.accepted then
          List.iter
            (fun r -> Format.printf "    - %s@." (Scrut.Analysis.rejection_to_string r))
            v.Scrut.Analysis.rejections)
      results;
    Format.printf "@.%d/%d methods verified.@." !accepted (List.length results);
    0
  end

(* ------------------------------------------------------------------ *)
(* Check elision: classify each (endpoint, sink, policy-family) triple
   of the per-app models and print (or emit) the verdicts with their
   replayable proof witnesses. *)

let json_of_certificate ~app (c : Scrut.Elision.certificate) =
  let proof =
    match c.Scrut.Elision.cert_verdict with
    | Scrut.Elision.Redundant (Scrut.Elision.Field_disjoint { param; path }) ->
        Printf.sprintf {|{"rule":"field-disjoint","param":%s,"path":[%s]}|} (json_str param)
          (String.concat "," (List.map json_str path))
    | Scrut.Elision.Redundant (Scrut.Elision.Context_satisfies { clause }) ->
        Printf.sprintf {|{"rule":"context-satisfies","clause":[%s]}|}
          (String.concat "," (List.map (fun a -> json_str (Scrut.Elision.atom_to_string a)) clause))
    | Scrut.Elision.Pushable -> {|{"rule":"pushable"}|}
    | Scrut.Elision.Residual why -> Printf.sprintf {|{"rule":"residual","why":%s}|} (json_str why)
  in
  Printf.sprintf
    {|{"app":%s,"endpoint":%s,"sink":%s,"family":%s,"verdict":%s,"proof":%s,"witness":[%s]}|}
    (json_str app)
    (json_str c.Scrut.Elision.cert_endpoint)
    (json_str c.Scrut.Elision.cert_sink)
    (json_str c.Scrut.Elision.cert_family)
    (json_str (Scrut.Elision.verdict_name c.Scrut.Elision.cert_verdict))
    proof
    (String.concat "," (List.map json_of_step c.Scrut.Elision.cert_witness))

let run_elide scale app_filter explain json =
  let models =
    Corpus.Elision_corpus.models ()
    |> List.filter (fun (m : Corpus.Elision_corpus.model) ->
           match app_filter with Some app -> m.app = app | None -> true)
  in
  if models = [] then (
    Format.eprintf "no elision model matches the given filters@.";
    2)
  else begin
    let classified =
      List.map
        (fun (m : Corpus.Elision_corpus.model) -> (m, Corpus.Elision_corpus.classify ~scale m))
        models
    in
    if json then begin
      let certs =
        List.concat_map
          (fun ((m : Corpus.Elision_corpus.model), certs) ->
            List.map (json_of_certificate ~app:m.app) certs)
          classified
      in
      let redundant, pushable, residual =
        List.fold_left
          (fun (r, p, s) (_, certs) ->
            List.fold_left
              (fun (r, p, s) (c : Scrut.Elision.certificate) ->
                match c.cert_verdict with
                | Scrut.Elision.Redundant _ -> (r + 1, p, s)
                | Scrut.Elision.Pushable -> (r, p + 1, s)
                | Scrut.Elision.Residual _ -> (r, p, s + 1))
              (r, p, s) certs)
          (0, 0, 0) classified
      in
      Format.printf
        {|{"corpus":"elision","redundant":%d,"pushable":%d,"residual":%d,"certificates":[%s]}@.|}
        redundant pushable residual
        (String.concat "," certs);
      0
    end
    else begin
      List.iter
        (fun ((m : Corpus.Elision_corpus.model), certs) ->
          List.iter
            (fun (c : Scrut.Elision.certificate) ->
              Format.printf "%-10s %-12s %-16s %-28s %s@." m.app c.cert_endpoint c.cert_sink
                c.cert_family
                (Scrut.Elision.verdict_name c.cert_verdict);
              if explain then begin
                Format.printf "    @[%a@]@." Scrut.Elision.pp_certificate c;
                let ok =
                  Scrut.Elision.replay ~program:(Corpus.App_corpus.program scale)
                    ~families:m.families ~sites:m.sites c
                in
                Format.printf "    replay: %s@." (if ok then "confirmed" else "DIVERGED")
              end)
            certs)
        classified;
      let total = List.fold_left (fun n (_, certs) -> n + List.length certs) 0 classified in
      let count p =
        List.fold_left
          (fun n (_, certs) ->
            n + List.length (List.filter (fun (c : Scrut.Elision.certificate) -> p c.cert_verdict) certs))
          0 classified
      in
      Format.printf "@.%d triples: %d redundant, %d pushable, %d residual.@." total
        (count (function Scrut.Elision.Redundant _ -> true | _ -> false))
        (count (function Scrut.Elision.Pushable -> true | _ -> false))
        (count (function Scrut.Elision.Residual _ -> true | _ -> false));
      0
    end
  end

(* ------------------------------------------------------------------ *)
(* Attestation-log verification: replay the signed run log and fail on
   any run whose body hash lacks an approving verdict — the runtime
   counterpart of the static verdicts above. *)

let run_attest_verify secret path =
  match Sign.Attest.verify ?secret path with
  | Ok s ->
      Format.printf "attestation log OK: %d approvals, %d runs over %d distinct bodies%s@."
        s.Sign.Attest.approvals s.runs s.distinct_bodies
        (if s.torn_tail then " (torn trailing frame ignored)" else "");
      0
  | Error msg ->
      Format.eprintf "attestation verification FAILED: %s@." msg;
      1

open Cmdliner

let app_arg =
  Arg.(
    value
    & opt (some (enum (List.map (fun a -> (a, a)) Corpus.App_corpus.apps))) None
    & info [ "app" ] ~docv:"APP" ~doc:"Analyze only this application's regions.")

let region_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "region" ] ~docv:"NAME" ~doc:"Analyze only the named region.")

let scale_arg =
  Arg.(
    value
    & opt
        (enum [ ("small", Corpus.App_corpus.Small); ("full", Corpus.App_corpus.Full) ])
        Corpus.App_corpus.Small
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Dependency-tree scale: $(b,small) for quick runs, $(b,full) for Fig. 10-sized call graphs.")

let stdlib_arg =
  Arg.(value & flag & info [ "stdlib" ] ~doc:"Analyze the std-collection method corpus instead.")

let audit_arg =
  Arg.(
    value & flag
    & info [ "audit-unsafe" ]
        ~doc:"Whole-program unsafe-encapsulation audit (the section-12 analysis) instead of region checking.")

let elide_arg =
  Arg.(
    value & flag
    & info [ "elide" ]
        ~doc:
          "Run the check-elision pass instead: classify each (endpoint, sink, policy-family) triple of the per-app models as redundant, pushable, or residual, with replayable proof witnesses.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print rejection reasons (and sources with --region).")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print the witness trace of every rejection: the path sensitive data takes from its source binding to the rejected sink.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit machine-readable JSON (verdicts, rejections, and witness traces) instead of text.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-summary-cache" ]
        ~doc:"Disable the cross-region function-summary cache (on by default; the verdicts are identical either way).")

let attest_verify_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "attest-verify" ] ~docv:"LOG"
        ~doc:
          "Verify the signed run-attestation log at $(docv) instead: check the header, every \
           frame's CRC and signature, and that every recorded run's region body carries an \
           earlier approving verdict. Exit 0 on a clean log, 1 on any violation.")

let attest_secret_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "attest-secret" ] ~docv:"SECRET"
        ~doc:"With --attest-verify: the attestor secret the log was signed under (defaults to \
              the built-in test-fixture secret).")

let cmd =
  let run stdlib audit elide scale app region verbose explain json no_cache attest_verify
      attest_secret =
    match attest_verify with
    | Some path -> run_attest_verify attest_secret path
    | None ->
        if audit then run_audit scale
        else if elide then run_elide scale app explain json
        else if stdlib then run_stdlib verbose explain json
        else run_app_corpus scale app region verbose explain json no_cache
  in
  Cmd.v
    (Cmd.info "scrutinizer" ~version:"1.0"
       ~doc:"Check privacy regions for leakage-freedom (the paper's Scrutinizer)")
    Term.(
      const run $ stdlib_arg $ audit_arg $ elide_arg $ scale_arg $ app_arg $ region_arg
      $ verbose_arg $ explain_arg $ json_arg $ no_cache_arg $ attest_verify_arg
      $ attest_secret_arg)

let () = exit (Cmd.eval' cmd)
