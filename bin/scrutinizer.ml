(* The standalone Scrutinizer CLI: run the leakage-freedom analysis over
   the bundled region corpus, per app or in full, at either scale.

     dune exec bin/scrutinizer.exe -- --app portfolio --scale full
     dune exec bin/scrutinizer.exe -- --stdlib
     dune exec bin/scrutinizer.exe -- --region 'pf::rank_region' --verbose *)

module Scrut = Sesame_scrutinizer
module Corpus = Sesame_corpus

let run_app_corpus scale app_filter region_filter verbose no_cache =
  let program = Corpus.App_corpus.program scale in
  let cases =
    Corpus.App_corpus.cases ()
    |> List.filter (fun (c : Corpus.App_corpus.case) ->
           (match app_filter with Some app -> c.app = app | None -> true)
           && match region_filter with Some r -> c.name = r | None -> true)
  in
  if cases = [] then (
    Format.eprintf "no regions match the given filters@.";
    1)
  else begin
    let cache =
      if no_cache then None else Some (Scrut.Analysis.Summary_cache.create ())
    in
    let accepted = ref 0 in
    List.iter
      (fun (c : Corpus.App_corpus.case) ->
        let v = Scrut.Analysis.check ?cache program c.spec in
        if v.Scrut.Analysis.accepted then incr accepted;
        Format.printf "%-10s %-38s %s (%d functions, %.3fs)@." c.app c.name
          (if v.Scrut.Analysis.accepted then "VERIFIED" else "REJECTED")
          v.Scrut.Analysis.stats.functions_analyzed v.Scrut.Analysis.stats.duration_s;
        if verbose && not v.Scrut.Analysis.accepted then
          List.iter
            (fun r -> Format.printf "    - %s@." (Scrut.Analysis.rejection_to_string r))
            v.Scrut.Analysis.rejections;
        if verbose && region_filter <> None then
          Format.printf "@[<v 2>source:@,%s@]@." (Scrut.Spec.source c.spec))
      cases;
    Format.printf "@.%d/%d regions verified.@." !accepted (List.length cases);
    (match cache with
    | Some cache when List.length cases > 1 ->
        Format.printf "summary cache: %d entries, %d hits / %d misses (%.1f%% hit rate)@."
          (Scrut.Analysis.Summary_cache.entries cache)
          (Scrut.Analysis.Summary_cache.hits cache)
          (Scrut.Analysis.Summary_cache.misses cache)
          (100.0 *. Scrut.Analysis.Summary_cache.hit_rate cache)
    | Some _ | None -> ());
    0
  end

let run_audit scale =
  let program = Corpus.App_corpus.program scale in
  let findings = Scrut.Encapsulation.audit program in
  List.iter (fun f -> Format.printf "%a@." Scrut.Encapsulation.pp_finding f) findings;
  (match Scrut.Encapsulation.breaking_packages program with
  | [] -> Format.printf "@.no encapsulation-breaking packages.@."
  | pkgs ->
      Format.printf "@.packages needing review or the obfuscated layout: %s@."
        (String.concat ", " pkgs));
  0

let run_stdlib verbose =
  let program = Corpus.Stdlib_corpus.program () in
  let cases = Corpus.Stdlib_corpus.cases () in
  let accepted = ref 0 in
  List.iter
    (fun (c : Corpus.Stdlib_corpus.case) ->
      let v = Scrut.Analysis.check program c.spec in
      if v.Scrut.Analysis.accepted then incr accepted;
      Format.printf "%-28s %s%s@." c.name
        (if v.Scrut.Analysis.accepted then "VERIFIED" else "REJECTED")
        (if (not v.Scrut.Analysis.accepted) && c.leak_free then "  (false positive)" else "");
      if verbose && not v.Scrut.Analysis.accepted then
        List.iter
          (fun r -> Format.printf "    - %s@." (Scrut.Analysis.rejection_to_string r))
          v.Scrut.Analysis.rejections)
    cases;
  Format.printf "@.%d/%d methods verified.@." !accepted (List.length cases);
  0

open Cmdliner

let app_arg =
  Arg.(
    value
    & opt (some (enum (List.map (fun a -> (a, a)) Corpus.App_corpus.apps))) None
    & info [ "app" ] ~docv:"APP" ~doc:"Analyze only this application's regions.")

let region_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "region" ] ~docv:"NAME" ~doc:"Analyze only the named region.")

let scale_arg =
  Arg.(
    value
    & opt
        (enum [ ("small", Corpus.App_corpus.Small); ("full", Corpus.App_corpus.Full) ])
        Corpus.App_corpus.Small
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Dependency-tree scale: $(b,small) for quick runs, $(b,full) for Fig. 10-sized call graphs.")

let stdlib_arg =
  Arg.(value & flag & info [ "stdlib" ] ~doc:"Analyze the std-collection method corpus instead.")

let audit_arg =
  Arg.(
    value & flag
    & info [ "audit-unsafe" ]
        ~doc:"Whole-program unsafe-encapsulation audit (the section-12 analysis) instead of region checking.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print rejection reasons (and sources with --region).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-summary-cache" ]
        ~doc:"Disable the cross-region function-summary cache (on by default; the verdicts are identical either way).")

let cmd =
  let run stdlib audit scale app region verbose no_cache =
    if audit then run_audit scale
    else if stdlib then run_stdlib verbose
    else run_app_corpus scale app region verbose no_cache
  in
  Cmd.v
    (Cmd.info "scrutinizer" ~version:"1.0"
       ~doc:"Check privacy regions for leakage-freedom (the paper's Scrutinizer)")
    Term.(
      const run $ stdlib_arg $ audit_arg $ scale_arg $ app_arg $ region_arg $ verbose_arg
      $ no_cache_arg)

let () = exit (Cmd.eval' cmd)
