open Sesame_scrutinizer
open Ir

let program () =
  let p = Program.create () in
  Program.define_all p
    [
      (* Callee whose parameter happens to be named "cap" and which mutates
         a projection of it. *)
      func ~name:"helper" ~params:[ "cap" ]
        [ Assign (Lfield ("cap", "x"), Int_lit 0); Return (Some (Var "cap")) ];
    ];
  p

let spec_no_capture =
  Spec.make ~name:"rA" ~params:[ "x" ] ~captures:[]
    [ Expr_stmt (Call (Static "helper", [ Var "x" ])) ]

let spec_with_capture =
  Spec.make ~name:"rB" ~params:[ "x" ]
    ~captures:[ { cap_var = "cap"; mode = By_ref } ]
    [ Expr_stmt (Call (Static "helper", [ Var "x" ])) ]

let () =
  let p = program () in
  (* Fresh check of spec B, no cache: *)
  let fresh = Analysis.check p spec_with_capture in
  Printf.printf "fresh  spec-B accepted: %b\n" fresh.Analysis.accepted;
  (* Shared cache warmed by spec A (no captures), then spec B: *)
  let cache = Analysis.Summary_cache.create () in
  ignore (Analysis.check ~cache p spec_no_capture);
  let cached = Analysis.check ~cache p spec_with_capture in
  Printf.printf "cached spec-B accepted: %b (hits=%d)\n" cached.Analysis.accepted
    cached.Analysis.stats.summary_cache_hits
