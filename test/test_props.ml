(* Property-based tests (qcheck) over the core data structures and
   invariants, registered as alcotest cases via QCheck_alcotest. *)

module Sign = Sesame_signing
module Db = Sesame_db
module Http = Sesame_http
module Sbx = Sesame_sandbox
module C = Sesame_core

let prop ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Generators *)

let printable = QCheck.string_small_of QCheck.Gen.printable

let sandbox_value : Sbx.Value.t QCheck.arbitrary =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Sbx.Value.Unit;
        map (fun i -> Sbx.Value.Int i) int;
        map (fun f -> Sbx.Value.Float f) float;
        map (fun b -> Sbx.Value.Bool b) bool;
        map (fun s -> Sbx.Value.Str s) string_printable;
      ]
  in
  let value =
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 1 then leaf
            else
              frequency
                [
                  (2, leaf);
                  (1, map (fun vs -> Sbx.Value.Vec vs) (list_size (int_bound 4) (self (n / 2))));
                  (1, map (fun vs -> Sbx.Value.Tuple vs) (list_size (int_bound 3) (self (n / 2))));
                ])
          (min n 12))
  in
  QCheck.make ~print:(Format.asprintf "%a" Sbx.Value.pp) value

(* A reference (slow, obviously-correct) LIKE matcher to compare against. *)
let reference_like pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match pattern.[pi] with
      | '%' -> List.exists (fun k -> go (pi + 1) k) (List.init (ns - si + 1) (fun k -> si + k))
      | '_' -> si < ns && go (pi + 1) (si + 1)
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

let signing_props =
  [
    prop "sha256 hex round-trips" printable (fun s ->
        let d = Sign.Sha256.digest_string s in
        Sign.Sha256.of_hex (Sign.Sha256.to_hex d) = Some d);
    prop "sha256 is deterministic and length-64 hex" printable (fun s ->
        let h = Sign.Sha256.to_hex (Sign.Sha256.digest_string s) in
        String.length h = 64 && h = Sign.Sha256.to_hex (Sign.Sha256.digest_string s));
    prop "digest_list framing: splitting a string changes the digest"
      QCheck.(pair printable printable)
      (fun (a, b) ->
        QCheck.assume (a <> "" && b <> "");
        not
          (Sign.Sha256.equal
             (Sign.Sha256.digest_list [ a; b ])
             (Sign.Sha256.digest_list [ a ^ b ])));
    prop "normalize is idempotent" printable (fun s ->
        Sign.Normalize.source (Sign.Normalize.source s) = Sign.Normalize.source s);
    prop "normalized text never has two adjacent spaces outside strings"
      (QCheck.string_small_of QCheck.Gen.(oneofl [ 'a'; ' '; '\n'; '\t'; '/'; '*'; '('; ')' ]))
      (fun s ->
        let out = Sign.Normalize.source s in
        let rec ok i = i + 1 >= String.length out || not (out.[i] = ' ' && out.[i + 1] = ' ') || ok (i + 1) in
        let rec all i = i + 1 >= String.length out || ((not (out.[i] = ' ' && out.[i + 1] = ' ')) && all (i + 1)) in
        ignore ok;
        all 0);
    prop "lockfile parse/render round-trips"
      (QCheck.small_list
         (QCheck.map
            (fun (n, v) -> { Sign.Lockfile.name = "p" ^ n; version = "v" ^ v; deps = [] })
            QCheck.(pair (string_small_of Gen.numeral) (string_small_of Gen.numeral))))
      (fun packages ->
        let lf = Sign.Lockfile.of_packages packages in
        match Sign.Lockfile.parse (Sign.Lockfile.render lf) with
        | Ok lf' -> Sign.Lockfile.equal lf lf'
        | Error _ -> false);
  ]

let db_props =
  [
    prop "LIKE agrees with the reference matcher"
      QCheck.(
        pair
          (string_small_of Gen.(oneofl [ 'a'; 'b'; '%'; '_' ]))
          (string_small_of Gen.(oneofl [ 'a'; 'b'; 'c' ])))
      (fun (pattern, s) -> Db.Expr.like_matches ~pattern s = reference_like pattern s);
    prop "Value.compare is antisymmetric"
      QCheck.(pair small_int small_int)
      (fun (a, b) ->
        let va = Db.Value.Int a and vb = Db.Value.Float (float_of_int b) in
        Db.Value.compare va vb = -Db.Value.compare vb va);
    prop "Value equal implies compare zero"
      QCheck.(pair small_int small_int)
      (fun (a, b) ->
        let va = Db.Value.Int a and vb = Db.Value.Int b in
        (not (Db.Value.equal va vb)) || Db.Value.compare va vb = 0);
    prop "table insert then PK lookup finds exactly the row" QCheck.(small_list small_int)
      (fun ids ->
        let ids = List.sort_uniq compare ids in
        let schema =
          Db.Schema.make_exn ~name:"t" ~primary_key:"id"
            [ { name = "id"; ty = Db.Value.Tint; nullable = false } ]
        in
        let tbl = Db.Table.create schema in
        List.iter (fun i -> Db.Table.insert_exn tbl [| Db.Value.Int i |]) ids;
        List.for_all
          (fun i ->
            Db.Table.select tbl
              ~where:(Db.Expr.Cmp (Db.Expr.Eq, Db.Expr.Col "id", Db.Expr.Lit (Db.Value.Int i)))
            = [ [| Db.Value.Int i |] ])
          ids);
  ]

let http_props =
  [
    prop "percent encode/decode round-trips" printable (fun s ->
        Http.Request.percent_decode (Http.Request.percent_encode s) = s);
    prop "html_escape output contains no raw specials" printable (fun s ->
        let out = Http.Template.html_escape s in
        not (String.exists (fun c -> c = '<' || c = '>' || c = '"' || c = '\'') out));
    prop "template text without tags renders verbatim"
      (QCheck.string_small_of QCheck.Gen.(oneofl [ 'a'; 'b'; ' '; '<'; '}' ]))
      (fun s ->
        QCheck.assume (not (String.exists (( = ) '{') s));
        match Http.Template.render_string s [] with Ok out -> out = s | Error _ -> false);
  ]

let sandbox_props =
  [
    prop ~count:100 "codec round-trips arbitrary values" sandbox_value (fun v ->
        match Sbx.Codec.decode (Sbx.Codec.encode v) with
        | Ok v' -> Sbx.Value.equal v v'
        | Error _ -> false);
    prop ~count:100 "swizzle copy round-trips arbitrary values" sandbox_value (fun v ->
        let arena = Sbx.Arena.create () in
        let addr = Sbx.Copier.copy_in Sbx.Copier.Swizzle arena v in
        Sbx.Value.equal v (Sbx.Copier.copy_out Sbx.Copier.Swizzle arena addr));
    prop ~count:100 "wipe erases everything the copy wrote" sandbox_value (fun v ->
        let arena = Sbx.Arena.create () in
        let _addr = Sbx.Copier.copy_in Sbx.Copier.Swizzle arena v in
        let high = Sbx.Arena.high_water arena in
        Sbx.Arena.wipe arena;
        let rec all_zero i = i >= high || (Sbx.Arena.read_u8 arena i = 0 && all_zero (i + 1)) in
        all_zero 4096);
  ]

(* ------------------------------------------------------------------ *)
(* Bincodec: the WAL/checkpoint codec must be lossless — bit-exact for
   floats — and its decoders total (Error, never an exception). *)

let db_value : Db.Value.t QCheck.arbitrary =
  let open QCheck.Gen in
  let special =
    oneofl [ Float.nan; Float.infinity; Float.neg_infinity; -0.; 0.; 4.9e-324; 1.5e308 ]
  in
  let gen =
    oneof
      [
        return Db.Value.Null;
        map (fun i -> Db.Value.Int i) int;
        map (fun b -> Db.Value.Bool b) bool;
        map (fun s -> Db.Value.Text s) string_printable;
        map (fun f -> Db.Value.Float f) (oneof [ float; special ]);
      ]
  in
  QCheck.make ~print:Db.Value.to_string gen

let value_eq a b =
  match (a, b) with
  | Db.Value.Float x, Db.Value.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | _ -> a = b

let db_row : Db.Row.t QCheck.arbitrary =
  QCheck.make
    ~print:(fun r -> String.concat ";" (Array.to_list (Array.map Db.Value.to_string r)))
    QCheck.Gen.(array_size (int_bound 5) (QCheck.gen db_value))

let row_eq a b =
  Array.length a = Array.length b
  && List.for_all2 value_eq (Array.to_list a) (Array.to_list b)

let db_schema : Db.Schema.t QCheck.arbitrary =
  let open QCheck.Gen in
  let ty = oneofl [ Db.Value.Tint; Db.Value.Tfloat; Db.Value.Ttext; Db.Value.Tbool ] in
  let gen =
    int_range 1 5 >>= fun n ->
    list_repeat n (pair ty bool) >>= fun cols ->
    bool >>= fun with_pk ->
    string_small_of numeral >>= fun suffix ->
    let columns =
      List.mapi
        (fun i (ty, nullable) ->
          { Db.Schema.name = Printf.sprintf "c%d" i; ty; nullable = nullable && i > 0 })
        cols
    in
    return
      (Db.Schema.make_exn ~name:("t" ^ suffix)
         ?primary_key:(if with_pk then Some "c0" else None)
         columns)
  in
  QCheck.make ~print:(Format.asprintf "%a" Db.Schema.pp) gen

let schema_eq a b =
  Db.Schema.name a = Db.Schema.name b
  && Db.Schema.columns a = Db.Schema.columns b
  && Db.Schema.primary_key a = Db.Schema.primary_key b

(* Exprs stick to non-float literals so structural equality applies. *)
let db_expr_gen : Db.Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let operand =
    oneof
      [
        map (fun s -> Db.Expr.Col ("c" ^ s)) (string_small_of numeral);
        map (fun i -> Db.Expr.Lit (Db.Value.Int i)) small_int;
        map (fun s -> Db.Expr.Lit (Db.Value.Text s)) string_printable;
        return (Db.Expr.Lit Db.Value.Null);
      ]
  in
  let cmp = oneofl [ Db.Expr.Eq; Db.Expr.Ne; Db.Expr.Lt; Db.Expr.Le; Db.Expr.Gt; Db.Expr.Ge ] in
  let leaf =
    oneof
      [
        return Db.Expr.True;
        map3 (fun c a b -> Db.Expr.Cmp (c, a, b)) cmp operand operand;
        map (fun o -> Db.Expr.Is_null o) operand;
        map2 (fun o p -> Db.Expr.Like (o, p)) operand string_printable;
        map2
          (fun o vs -> Db.Expr.In (o, List.map (fun i -> Db.Value.Int i) vs))
          operand (small_list small_int);
      ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then leaf
          else
            frequency
              [
                (3, leaf);
                (1, map2 (fun a b -> Db.Expr.And (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map2 (fun a b -> Db.Expr.Or (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map (fun a -> Db.Expr.Not a) (self (n / 2)));
              ])
        (min n 8))

let db_stmt : Db.Sql.stmt QCheck.arbitrary =
  let open QCheck.Gen in
  let value = QCheck.gen db_value in
  let name = map (fun s -> "c" ^ s) (string_small_of numeral) in
  let gen =
    oneof
      [
        map3
          (fun table columns values -> Db.Sql.Insert { table; columns; values })
          (map (fun s -> "t" ^ s) (string_small_of numeral))
          (option (small_list name))
          (small_list value);
        map2
          (fun set where -> Db.Sql.Update { table = "t"; set; where })
          (small_list (pair name value))
          db_expr_gen;
        map (fun where -> Db.Sql.Delete { table = "t"; where }) db_expr_gen;
      ]
  in
  QCheck.make gen

let stmt_eq a b =
  match (a, b) with
  | Db.Sql.Insert i1, Db.Sql.Insert i2 ->
      i1.table = i2.table && i1.columns = i2.columns
      && List.length i1.values = List.length i2.values
      && List.for_all2 value_eq i1.values i2.values
  | Db.Sql.Update u1, Db.Sql.Update u2 ->
      u1.table = u2.table && u1.where = u2.where
      && List.length u1.set = List.length u2.set
      && List.for_all2 (fun (c1, v1) (c2, v2) -> c1 = c2 && value_eq v1 v2) u1.set u2.set
  | _ -> a = b

let flip_ty = function
  | Db.Value.Tint -> Db.Value.Ttext
  | Db.Value.Tfloat -> Db.Value.Tint
  | Db.Value.Ttext -> Db.Value.Tbool
  | Db.Value.Tbool -> Db.Value.Tfloat

let codec_props =
  [
    prop ~count:500 "values round-trip bit-exactly" db_value (fun v ->
        match Db.Bincodec.value_of_bytes (Db.Bincodec.value_to_bytes v) with
        | Ok v' -> value_eq v v'
        | Error _ -> false);
    prop "rows round-trip" db_row (fun r ->
        match Db.Bincodec.row_of_bytes (Db.Bincodec.row_to_bytes r) with
        | Ok r' -> row_eq r r'
        | Error _ -> false);
    prop "schemas round-trip with a stable hash" db_schema (fun s ->
        match Db.Bincodec.schema_of_bytes (Db.Bincodec.schema_to_bytes s) with
        | Ok s' ->
            schema_eq s s'
            && Int32.equal (Db.Bincodec.schema_hash s') (Db.Bincodec.schema_hash s)
        | Error _ -> false);
    prop "changing a column type changes the schema hash" db_schema (fun s ->
        let columns =
          match Db.Schema.columns s with
          | c :: rest -> { c with Db.Schema.ty = flip_ty c.Db.Schema.ty } :: rest
          | [] -> []
        in
        let drifted =
          Db.Schema.make_exn ~name:(Db.Schema.name s)
            ?primary_key:(Db.Schema.primary_key s) columns
        in
        not (Int32.equal (Db.Bincodec.schema_hash drifted) (Db.Bincodec.schema_hash s)));
    prop "statements round-trip" db_stmt (fun stmt ->
        match Db.Bincodec.stmt_of_bytes (Db.Bincodec.stmt_to_bytes stmt) with
        | Ok stmt' -> stmt_eq stmt stmt'
        | Error _ -> false);
    prop "strict prefixes fail cleanly, never raise"
      QCheck.(pair db_value small_nat)
      (fun (v, k) ->
        let bytes = Db.Bincodec.value_to_bytes v in
        let cut = k mod max 1 (String.length bytes) in
        match Db.Bincodec.value_of_bytes (String.sub bytes 0 cut) with
        | Ok _ -> false
        | Error _ -> true);
  ]

(* Policy semantics: conjunction behaves like logical AND of its members. *)
module Parity = C.Policy.Make (struct
  type s = int

  let name = "prop::parity"
  let check s ctx = match C.Context.user ctx with Some u -> String.length u mod 2 = s | None -> false
  let join = None
  let no_folding = false
  let describe s = "parity=" ^ string_of_int s
end)

module Maxlen = C.Policy.Make (struct
  type s = int

  let name = "prop::maxlen"
  let check s ctx = match C.Context.user ctx with Some u -> String.length u <= s | None -> false
  let join = Some (fun a b -> Some (min a b))
  let no_folding = false
  let describe s = "maxlen=" ^ string_of_int s
end)

let policy_props =
  [
    prop "conjunction = AND of member checks"
      QCheck.(pair (small_list (pair bool small_nat)) (string_small_of Gen.printable))
      (fun (specs, user) ->
        let user = "u" ^ user in
        let ctx = C.Mock.context ~user () in
        let policies =
          List.map
            (fun (parity, maxlen) ->
              if parity then Parity.make (maxlen mod 2) else Maxlen.make maxlen)
            specs
        in
        let conj = C.Policy.conjoin_all policies in
        C.Policy.check conj ctx = List.for_all (fun p -> C.Policy.check p ctx) policies);
    prop "joinable family collapses to one leaf with min semantics"
      QCheck.(pair (small_list small_nat) (string_small_of Gen.printable))
      (fun (lens, user) ->
        QCheck.assume (lens <> []);
        let ctx = C.Mock.context ~user () in
        let conj = C.Policy.conjoin_all (List.map Maxlen.make lens) in
        List.length (C.Policy.conjuncts conj) = 1
        && C.Policy.check conj ctx
           = (String.length user <= List.fold_left min max_int lens));
    prop "fold out then in preserves values and policies"
      QCheck.(small_list small_int)
      (fun xs ->
        QCheck.assume (xs <> []);
        let policy = Maxlen.make 100 in
        let pcons = List.map (C.Pcon.Internal.make policy) xs in
        let folded = C.Fold.out_list pcons in
        match C.Fold.in_list folded with
        | Ok parts ->
            List.map C.Pcon.Internal.unwrap parts = xs
            && List.for_all
                 (fun p -> C.Policy.id (C.Pcon.policy p) = C.Policy.id policy)
                 parts
        | Error _ -> false);
    prop "pcon storage modes agree on the value" QCheck.small_int (fun x ->
        let plain = C.Pcon.Internal.make ~storage:C.Pcon.Plain C.Policy.no_policy x in
        let obf = C.Pcon.Internal.make ~storage:C.Pcon.Obfuscated C.Policy.no_policy x in
        C.Pcon.Internal.unwrap plain = x && C.Pcon.Internal.unwrap obf = x);
  ]

let ml_props =
  [
    prop ~count:50 "linear data is recovered exactly-ish"
      QCheck.(pair (float_range (-5.) 5.) (float_range (-50.) 50.))
      (fun (w, b) ->
        let points = List.init 20 (fun i -> (float_of_int i, (w *. float_of_int i) +. b)) in
        match Sesame_ml.Linreg.train_simple points with
        | Ok m ->
            abs_float (m.Sesame_ml.Linreg.weights.(0) -. w) < 1e-6
            && abs_float (m.intercept -. b) < 1e-5
        | Error _ -> false);
    prop "mean is bounded by min and max" QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range (-100.) 100.))
      (fun xs ->
        let m = Sesame_ml.Stats.mean xs in
        let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
        m >= lo -. 1e-9 && m <= hi +. 1e-9);
    prop "k-anonymity filter keeps exactly the large groups"
      QCheck.(pair (int_range 1 5) (small_list (pair (int_range 0 3) (float_range 0. 100.))))
      (fun (k, samples) ->
        match Sesame_ml.Kanon.group_means ~k samples with
        | Ok groups ->
            List.for_all (fun g -> g.Sesame_ml.Kanon.members >= k) groups
            && List.length groups
               <= List.length (List.sort_uniq compare (List.map fst samples))
        | Error _ -> false);
    prop "apikey hash verifies and differs across keys"
      QCheck.(pair printable printable)
      (fun (a, b) ->
        let ha = Sesame_ml.Apikey.hash ~iterations:2 ~salt:"s" a in
        Sesame_ml.Apikey.verify ~iterations:2 ~salt:"s" ~key:a ha
        && (a = b || ha <> Sesame_ml.Apikey.hash ~iterations:2 ~salt:"s" b));
  ]

let () =
  Alcotest.run "properties"
    [
      ("signing", signing_props);
      ("db", db_props);
      ("bincodec", codec_props);
      ("http", http_props);
      ("sandbox", sandbox_props);
      ("policy", policy_props);
      ("ml", ml_props);
    ]
