(* Deadline propagation and degraded-mode serving: unit tests for the
   budget itself, in-process propagation into the DB scan / write
   admission / sandbox layers, and socket tests proving the server edge
   stamps budgets, sheds mutations before reads under overload, and
   serves read-only over the snapshot while the store is poisoned. The
   full storm (seeded load, two servers, cross-phase gates) lives in
   [bench/main.exe chaos]; this suite is the deterministic tier-1 core. *)

module D = Sesame_deadline
module F = Sesame_faults
module Db = Sesame_db
module Sbx = Sesame_sandbox
module Http = Sesame_http
module Apps = Sesame_apps
module Server = Sesame_server
module C = Sesame_core
module Wire = Http.Wire

let test name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  m = 0 || go 0

(* A statement cost long enough that a single-digit-millisecond budget
   reliably expires inside the first query, short enough that unbudgeted
   requests stay fast. Matches the modelled DB round trip in the chaos
   benchmark. *)
let query_cost_ns = 3_000_000

(* ------------------------------------------------------------------ *)
(* The budget itself. *)

let deadline_tests =
  [
    test "none never expires; a zero budget is born expired" (fun () ->
        check_bool "none" false (D.expired D.none);
        check_bool "none is none" true (D.is_none D.none);
        check_bool "infinite" true (D.remaining_s D.none = infinity);
        let spent = D.after_ms 0 in
        check_bool "expired" true (D.expired spent);
        check_bool "not none" false (D.is_none spent);
        check_int "clamped at zero" 0 (D.remaining_ms spent));
    test "the ambient deadline only tightens and always restores" (fun () ->
        check_bool "outside any scope" true (D.is_none (D.current ()));
        D.with_deadline (D.after_s 60.0) (fun () ->
            let outer = D.remaining_s (D.current ()) in
            check_bool "installed" true (outer > 1.0);
            (* A looser nested deadline must NOT loosen the ambient one. *)
            D.with_deadline (D.after_s 3600.0) (fun () ->
                check_bool "still the tighter budget" true
                  (D.remaining_s (D.current ()) <= outer +. 1e-6));
            (* A tighter nested deadline applies, then pops. *)
            D.with_deadline (D.after_ms 0) (fun () ->
                check_bool "tightened" true (D.expired_now ()));
            check_bool "popped back" false (D.expired_now ()));
        check_bool "fully restored" true (D.is_none (D.current ())));
    test "unrestricted suspends the budget for maintenance work" (fun () ->
        D.with_deadline (D.after_ms 0) (fun () ->
            check_bool "expired inside" true (D.expired_now ());
            D.unrestricted (fun () ->
                check_bool "suspended" true (D.is_none (D.current ()));
                check_bool "guard admits" true (D.guard "replay" = Ok ()));
            check_bool "reinstated" true (D.expired_now ())));
    test "refusals are structured, classifiable, and never transient" (fun () ->
        D.with_deadline (D.after_ms 0) (fun () ->
            match D.guard "db scan" with
            | Ok () -> Alcotest.fail "expired budget admitted"
            | Error msg ->
                check_bool "carries the marker" true (D.is_deadline_error msg);
                check_bool "marker is the prefix" true
                  (String.length msg >= String.length D.marker
                  && String.sub msg 0 (String.length D.marker) = D.marker);
                check_bool "names the layer" true (contains msg "db scan");
                (* A missed budget must never be retried: the client's
                   time is the one resource a retry cannot refund. *)
                check_bool "not transient" false (C.Sesame_conn.is_transient_db_message msg));
        check_bool "check raises the same marker" true
          (D.with_deadline (D.after_ms 0) (fun () ->
               match D.check "wal commit" with
               | () -> false
               | exception D.Expired what -> D.is_deadline_error (D.error_message what))));
  ]

(* ------------------------------------------------------------------ *)
(* In-process propagation: the ambient budget reaches the scan loop, the
   write-admission gate, and the sandbox runtime. *)

(* A table big enough that one full scan crosses a checkpoint interval
   (256 slots). *)
let big_db () =
  let db = Db.Database.create ~query_cost_ns () in
  let schema =
    Db.Schema.make_exn ~name:"grades" ~primary_key:"id"
      [
        { name = "id"; ty = Db.Value.Tint; nullable = false };
        { name = "email"; ty = Db.Value.Ttext; nullable = false };
        { name = "grade"; ty = Db.Value.Tint; nullable = false };
      ]
  in
  (match Db.Database.create_table db schema with
  | Ok () -> ()
  | Error m -> failwith m);
  for i = 1 to 600 do
    match
      Db.Database.exec db "INSERT INTO grades (id, email, grade) VALUES (?, ?, ?)"
        ~params:
          [ Db.Value.Int i; Db.Value.Text (Printf.sprintf "s%d@school.edu" i); Db.Value.Int (i mod 100) ]
    with
    | Ok _ -> ()
    | Error m -> failwith m
  done;
  db

let propagation_tests =
  [
    test "an expired budget cancels a long scan at a checkpoint" (fun () ->
        let db = big_db () in
        (* The budget outlives the entry guard but not the modelled
           statement cost, so expiry is noticed mid-statement — at the
           scan's 256-row checkpoint, not at the door. *)
        let result =
          D.with_deadline (D.after_ms 1) (fun () ->
              Db.Database.exec db "SELECT * FROM grades WHERE grade = ?"
                ~params:[ Db.Value.Int 7 ])
        in
        (match result with
        | Ok _ -> Alcotest.fail "scan outlived its budget"
        | Error msg ->
            check_bool "structured refusal" true (D.is_deadline_error msg);
            check_bool "names the scan" true (contains msg "db scan");
            check_bool "no row data" false (contains msg "school.edu"));
        (* A cancelled scan read nothing wrong and wrote nothing: the
           store stays healthy and the same query completes unbudgeted. *)
        check_bool "not poisoned" true (Db.Database.poisoned db = None);
        match Db.Database.exec db "SELECT * FROM grades WHERE grade = ?" ~params:[ Db.Value.Int 7 ] with
        | Ok _ -> ()
        | Error m -> Alcotest.failf "healthy rerun failed: %s" m);
    test "write admission refuses a late mutation without poisoning" (fun () ->
        let db = big_db () in
        let insert i =
          Db.Database.exec db "INSERT INTO grades (id, email, grade) VALUES (?, ?, ?)"
            ~params:[ Db.Value.Int i; Db.Value.Text "late@school.edu"; Db.Value.Int 0 ]
        in
        (match D.with_deadline (D.after_ms 1) (fun () -> insert 601) with
        | Ok _ -> Alcotest.fail "late write acknowledged"
        | Error msg ->
            check_bool "structured refusal" true (D.is_deadline_error msg);
            check_bool "refused at admission" true (contains msg "wal commit admission"));
        (* Admission strikes before the engine applies anything: memory
           and journal never diverged, so — unlike a mid-journal fault —
           the store is NOT poisoned and the retried write lands. *)
        check_bool "not poisoned" true (Db.Database.poisoned db = None);
        match insert 601 with
        | Ok _ -> ()
        | Error m -> Alcotest.failf "retried write failed: %s" m);
    test "a sandbox run cannot outlive the request budget" (fun () ->
        let config =
          Sbx.Runtime.config ~mode:Sbx.Runtime.Naive ~arena_size:(64 * 1024) ()
        in
        let guest v =
          (* Tick on the loop back-edge, as real guests do. *)
          for _ = 1 to 1000 do
            Sbx.Runtime.tick ()
          done;
          v
        in
        (* Unbudgeted control run: the guest itself is fine. *)
        (match (Sbx.Runtime.run config ~input:(Sbx.Value.Int 7) ~f:guest).Sbx.Runtime.status with
        | Sbx.Runtime.Ok _ -> ()
        | Sbx.Runtime.Trapped trap ->
            Alcotest.failf "control run trapped: %s" (Sbx.Runtime.trap_message trap));
        (* The same run under a spent request budget traps — the region's
           own (absent) budget is capped by the ambient deadline. *)
        match
          D.with_deadline (D.after_ms 0) (fun () ->
              (Sbx.Runtime.run config ~input:(Sbx.Value.Int 7) ~f:guest).Sbx.Runtime.status)
        with
        | Sbx.Runtime.Trapped (Sbx.Runtime.Deadline_exceeded _) -> ()
        | Sbx.Runtime.Trapped trap ->
            Alcotest.failf "wrong trap: %s" (Sbx.Runtime.trap_message trap)
        | Sbx.Runtime.Ok _ -> Alcotest.fail "sandbox run outlived the request budget");
  ]

(* ------------------------------------------------------------------ *)
(* The server edge, over real sockets. *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

let source_of_fd fd =
  let buf = Bytes.create 4096 in
  Wire.source_of_fun (fun () ->
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ""
      | n -> Bytes.sub_string buf 0 n)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  fd

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One request on a fresh connection; returns (status, headers, body). *)
let call ~port ?(headers = []) ?(body = "") meth path =
  let fd = connect port in
  Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
  let headers = Http.Headers.of_list (("Connection", "close") :: headers) in
  write_all fd (Wire.write_request ~headers ~body ~host:"127.0.0.1" meth path);
  match Wire.read_response (source_of_fd fd) with
  | `Response (status, headers, body) -> (status, headers, body)
  | `Eof -> Alcotest.fail "connection closed before a response arrived"
  | `Error e -> Alcotest.fail ("client parse error: " ^ Wire.error_message e)

let retry_after headers = Http.Headers.get headers "Retry-After"
let degraded headers = Http.Headers.get headers Http.Serving.header_name

let seeded_websubmit ?data_dir () =
  F.disarm ();
  match data_dir with
  | None ->
      let app = Result.get_ok (Apps.Websubmit.create ~query_cost_ns ()) in
      (match Apps.Websubmit.seed app ~students:20 ~questions:2 with
      | Ok () -> ()
      | Error m -> failwith m);
      Apps.Email.clear_outbox ();
      (app, None)
  | Some dir -> (
      match Apps.Websubmit.create_durable ~query_cost_ns ~data_dir:dir () with
      | Error m -> failwith m
      | Ok (app, store) ->
          (match Apps.Websubmit.seed app ~students:20 ~questions:2 with
          | Ok () -> ()
          | Error m -> failwith m);
          Apps.Email.clear_outbox ();
          (app, Some store))

let with_app_server ?(config = Server.default_config) app f =
  let config = { config with Server.domains = 3 } in
  match
    Server.start ~config
      ~on_error:(fun _ -> ())
      ~handler:(fun request -> Apps.Websubmit.handle app request)
      ()
  with
  | Error m -> Alcotest.fail ("server start: " ^ m)
  | Ok t -> Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t)

let admin_cookie = ("Cookie", "user=admin@school.edu")
let student_cookie = ("Cookie", "user=student0@school.edu")
let form = ("Content-Type", "application/x-www-form-urlencoded")

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let server_tests =
  [
    test "a client budget too small for one statement is a 503 + Retry-After" (fun () ->
        let app, _ = seeded_websubmit () in
        with_app_server app (fun t ->
            let port = Server.port t in
            (* Unbudgeted control: the endpoint serves. *)
            let status, _, _ = call ~port ~headers:[ admin_cookie ] Http.Meth.GET "/aggregates" in
            check_int "healthy" 200 status;
            (* One millisecond cannot cover a 3 ms statement: refused as
               soon as a layer consults the budget, never a hang. *)
            let status, headers, body =
              call ~port
                ~headers:[ admin_cookie; ("X-Deadline-Ms", "1") ]
                Http.Meth.GET "/aggregates"
            in
            check_int "refused" 503 status;
            check_bool "tells the client when to retry" true (retry_after headers <> None);
            check_bool "names the budget" true (contains body "deadline");
            check_bool "no aggregate data" false (contains body "school.edu")));
    test "the ceiling caps client-requested budgets" (fun () ->
        let app, _ = seeded_websubmit () in
        let config = { Server.default_config with Server.max_deadline_ms = 1 } in
        with_app_server ~config app (fun t ->
            (* The client asks for a minute; the ceiling grants 1 ms. *)
            let status, headers, _ =
              call ~port:(Server.port t)
                ~headers:[ admin_cookie; ("X-Deadline-Ms", "60000") ]
                Http.Meth.GET "/aggregates"
            in
            check_int "capped and refused" 503 status;
            check_bool "retryable" true (retry_after headers <> None)));
    test "overload sheds mutations before reads; health is always admitted" (fun () ->
        let app, _ = seeded_websubmit () in
        (* Watermark 1: the in-flight request itself counts as an active
           connection, so every mutation sheds — deterministically. *)
        let config =
          { Server.default_config with Server.shed_mutations_at = 1; health_paths = [ "/health" ] }
        in
        with_app_server ~config app (fun t ->
            let port = Server.port t in
            let status, headers, body =
              call ~port
                ~headers:[ student_cookie; form ]
                ~body:"answer=chaos" Http.Meth.POST "/submit/1/9001"
            in
            check_int "mutation shed" 503 status;
            check_bool "retryable" true (retry_after headers <> None);
            check_bool "says why" true (contains body "mutations shed");
            let status, _, _ = call ~port ~headers:[ admin_cookie ] Http.Meth.GET "/aggregates" in
            check_int "reads still serve" 200 status;
            (* Health probes bypass admission even as mutations: an
               overloaded server must stay observable. The app 404s the
               path, which proves the request reached the handler rather
               than the shed gate. *)
            let status, _, _ = call ~port Http.Meth.POST "/health" in
            check_bool "health probe admitted" true (status <> 503);
            check_bool "counted" true ((Server.stats t).Server.mutations_shed >= 1)));
    test "brownout over sockets: degraded reads, refused writes, recovery" (fun () ->
        let dir = Filename.concat (Filename.get_temp_dir_name ()) "sesame-chaos-test" in
        rm_rf dir;
        let app, store = seeded_websubmit ~data_dir:dir () in
        with_app_server app (fun t ->
            let port = Server.port t in
            (* Poison the store through a WAL append fault. *)
            F.arm [ F.plan ~nth:0 F.Db_wal_append F.Raise ];
            let status, _, _ =
              call ~port
                ~headers:[ student_cookie; form ]
                ~body:"answer=chaos" Http.Meth.POST "/submit/1/9002"
            in
            F.disarm ();
            check_bool "poisoning write refused" true (status >= 400);
            (* Reads brown out to the snapshot, marked degraded on the
               wire so clients and dashboards can tell stale from fresh. *)
            let status, headers, _ =
              call ~port ~headers:[ admin_cookie ] Http.Meth.GET "/aggregates"
            in
            check_int "degraded read serves" 200 status;
            check_str "marked on the wire" "snapshot"
              (Option.value ~default:"" (degraded headers));
            (* Writes are structured read-only refusals, not 500s. *)
            let status, headers, body =
              call ~port
                ~headers:[ admin_cookie; form ]
                ~body:"answer=chaos" Http.Meth.POST "/submit/1/9003"
            in
            check_int "write refused while degraded" 503 status;
            check_bool "retryable" true (retry_after headers <> None);
            check_bool "says read-only" true (contains body "read-only");
            (* Recovery swaps in a fresh store: reads lose the marker,
               writes acknowledge again. *)
            let recovered =
              match Apps.Websubmit.recover app with
              | Ok store' -> store'
              | Error m -> Alcotest.failf "recovery failed: %s" m
            in
            Fun.protect ~finally:(fun () -> ignore (Sesame_wal.Durable.close recovered))
            @@ fun () ->
            let status, headers, _ =
              call ~port ~headers:[ admin_cookie ] Http.Meth.GET "/aggregates"
            in
            check_int "fresh read serves" 200 status;
            check_bool "no degraded marker" true (degraded headers = None);
            let status, _, _ =
              call ~port
                ~headers:[ student_cookie; form ]
                ~body:"answer=chaos" Http.Meth.POST "/submit/1/9004"
            in
            check_int "writes acknowledge again" 201 status);
        Option.iter (fun s -> ignore (Sesame_wal.Durable.close s)) store;
        rm_rf dir);
    test "expired in-flight budgets refuse rather than hang under load" (fun () ->
        let app, _ = seeded_websubmit () in
        with_app_server app (fun t ->
            let port = Server.port t in
            (* A small storm of budgeted requests from several domains:
               every one must resolve — 200 or a structured 503 — with
               no hangs and no transport errors. *)
            let client () =
              let outcomes = ref [] in
              for _ = 1 to 4 do
                let status, headers, _ =
                  call ~port
                    ~headers:[ admin_cookie; ("X-Deadline-Ms", "1") ]
                    Http.Meth.GET "/aggregates"
                in
                outcomes := (status, retry_after headers <> None) :: !outcomes
              done;
              !outcomes
            in
            let domains = List.init 4 (fun _ -> Domain.spawn client) in
            let outcomes = List.concat_map Domain.join domains in
            check_int "all resolved" 16 (List.length outcomes);
            List.iter
              (fun (status, has_retry) ->
                check_bool "resolved as 200 or 503" true (status = 200 || status = 503);
                if status = 503 then check_bool "503 carries Retry-After" true has_retry)
              outcomes;
            check_bool "the storm was actually refused" true
              (List.exists (fun (s, _) -> s = 503) outcomes)));
  ]

let () =
  (* Fault plans are process-global; make sure nothing stays armed. *)
  Fun.protect ~finally:F.disarm @@ fun () ->
  Alcotest.run "chaos"
    [
      ("deadline", deadline_tests);
      ("propagation", propagation_tests);
      ("server", server_tests);
    ]
