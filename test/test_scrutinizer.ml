open Sesame_scrutinizer
open Ir

let test name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A program with one of everything the analysis cares about. *)
let fixture () =
  let program = Program.create () in
  Program.define_all program
    [
      func ~name:"pure_concat" ~params:[ "a"; "b" ]
        [ Return (Some (Binop (Concat, Var "a", Var "b"))) ];
      func ~name:"pure_via_helper" ~params:[ "x" ]
        [ Return (Some (Call (Static "pure_concat", [ Var "x"; Str_lit "!" ]))) ];
      func ~name:"writes_global" ~params:[ "x" ]
        [ Assign (Lglobal "SINK", Var "x"); Return (Some (Var "x")) ];
      func ~name:"writes_global_const" ~params:[ "x" ]
        [ Assign (Lglobal "COUNTER", Int_lit 1); Return (Some (Var "x")) ];
      native ~package:"libc" ~name:"fs_write" ~params:[ "data" ] ();
      func ~name:"calls_native" ~params:[ "x" ]
        [ Expr_stmt (Call (Static "fs_write", [ Var "x" ])) ];
      func ~name:"launders" ~params:[ "x" ]
        (* Returns data derived from x through two hops. *)
        [ Return (Some (Call (Static "pure_via_helper", [ Var "x" ]))) ];
      func ~name:"leak_after_laundering" ~params:[ "x" ]
        [
          Let ("y", Call (Static "launders", [ Var "x" ]));
          Expr_stmt (Call (Static "fs_write", [ Var "y" ]));
        ];
      func ~name:"recursive" ~params:[ "x" ]
        [
          If
            ( Binop (Eq, Var "x", Int_lit 0),
              [ Return (Some (Int_lit 0)) ],
              [ Return (Some (Call (Static "recursive", [ Binop (Sub, Var "x", Int_lit 1) ]))) ]
            );
        ];
      func ~name:"write_through" ~params:[ "dst"; "v" ]
        [ Assign (Lderef "dst", Var "v") ];
      func ~name:"store_rec" ~params:[ "dst"; "v"; "n" ]
        (* Recursive by-ref write-back: *dst = v at the bottom of the
           recursion. *)
        [
          If
            ( Binop (Gt, Var "n", Int_lit 0),
              [
                Expr_stmt
                  (Call
                     (Static "store_rec", [ Var "dst"; Var "v"; Binop (Sub, Var "n", Int_lit 1) ]));
              ],
              [ Assign (Lderef "dst", Var "v") ] );
        ];
      func ~name:"Pretty::show" ~params:[ "x" ]
        [ Return (Some (Binop (Concat, Str_lit "", Var "x"))) ];
      func ~name:"Logging::show" ~params:[ "x" ]
        [
          Expr_stmt (Call (Static "fs_write", [ Var "x" ]));
          Return (Some (Var "x"));
        ];
    ];
  Program.register_impl program ~method_name:"Show::show" ~impl:"Pretty::show";
  Program.register_impl program ~method_name:"Show::show" ~impl:"Logging::show";
  program

let spec ?captures name params body = Spec.make ~name ~params ?captures body

let verdict ?allowlist program s = Analysis.check ?allowlist program s
let accepted ?allowlist program s = (verdict ?allowlist program s).Analysis.accepted

let has_rejection program s pred =
  List.exists
    (fun (r : Analysis.rejection) -> pred r.Analysis.reason)
    (verdict program s).Analysis.rejections

let acceptance_tests =
  [
    test "pure arithmetic accepted" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ] [ Return (Some (Binop (Add, Var "x", Int_lit 1))) ])));
    test "derived data may be returned" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ] [ Return (Some (Call (Static "launders", [ Var "x" ]))) ])));
    test "branching on sensitive data without effects accepted" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ]
                [
                  If
                    ( Binop (Gt, Var "x", Int_lit 10),
                      [ Return (Some (Str_lit "big")) ],
                      [ Return (Some (Str_lit "small")) ] );
                ])));
    test "loops over sensitive collections accepted" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "xs" ]
                [
                  Let ("acc", Int_lit 0);
                  For ("x", Var "xs", [ Assign (Lvar "acc", Binop (Add, Var "acc", Var "x")) ]);
                  Return (Some (Var "acc"));
                ])));
    test "allow-listed collection ops on locals accepted" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ]
                [
                  Let ("v", Vec []);
                  Expr_stmt (Call (Static "Vec::push", [ Ref_mut "v"; Var "x" ]));
                  Return (Some (Var "v"));
                ])));
    test "by-value captures are harmless" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ]
                ~captures:[ { cap_var = "prefix"; mode = By_value } ]
                [ Return (Some (Binop (Concat, Var "prefix", Var "x"))) ])));
    test "reading by-ref captures is fine" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ]
                ~captures:[ { cap_var = "config"; mode = By_ref } ]
                [ Return (Some (Binop (Concat, Field (Var "config", "prefix"), Var "x"))) ])));
    test "native call with only insensitive args is skipped" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ]
                [
                  Expr_stmt (Call (Static "fs_write", [ Str_lit "static banner" ]));
                  Return (Some (Var "x"));
                ])));
    test "global write of insensitive constant under insensitive control accepted" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ]
                [ Assign (Lglobal "HITS", Int_lit 1); Return (Some (Var "x")) ])));
    test "recursion converges" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ] [ Return (Some (Call (Static "recursive", [ Var "x" ]))) ])));
    test "known-target unsafe write to a local accepted (stdlib pattern)" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ]
                [
                  Let ("buf", Vec []);
                  Unsafe_write (Lindex ("buf", Int_lit 0), Var "x");
                  Return (Some (Var "buf"));
                ])));
  ]

let rejection_tests =
  [
    test "mutable capture rejected up front" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                ~captures:[ { cap_var = "log"; mode = By_mut_ref } ]
                [ Return (Some (Var "x")) ])
             (function Analysis.Mutable_capture { var } -> var = "log" | _ -> false)));
    test "write through by-ref capture rejected" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                ~captures:[ { cap_var = "shared"; mode = By_ref } ]
                [
                  Let ("alias", Ref "shared");
                  Assign (Lderef "alias", Var "x");
                ])
             (function Analysis.Capture_mutation { var; _ } -> var = "shared" | _ -> false)));
    test "mutable borrow of capture escaping into a call rejected" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                ~captures:[ { cap_var = "sink"; mode = By_ref } ]
                [ Expr_stmt (Call (Static "pure_concat", [ Ref_mut "sink"; Var "x" ])) ])
             (function Analysis.Capture_mutation { var; _ } -> var = "sink" | _ -> false)));
    test "tainted global write rejected" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ] [ Assign (Lglobal "SINK", Var "x") ])
             (function
               | Analysis.Tainted_global_write { global; _ } -> global = "SINK"
               | _ -> false)));
    test "global write in callee rejected interprocedurally" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ] [ Expr_stmt (Call (Static "writes_global", [ Var "x" ])) ])
             (function Analysis.Tainted_global_write _ -> true | _ -> false)));
    test "tainted native call rejected" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ] [ Expr_stmt (Call (Static "fs_write", [ Var "x" ])) ])
             (function Analysis.Tainted_native_call _ -> true | _ -> false)));
    test "native leak through two laundering hops rejected" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                [ Expr_stmt (Call (Static "leak_after_laundering", [ Var "x" ])) ])
             (function Analysis.Tainted_native_call _ -> true | _ -> false)));
    test "implicit flow: native effect under sensitive branch rejected" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                [
                  If
                    ( Binop (Eq, Var "x", Int_lit 42),
                      [ Expr_stmt (Call (Static "fs_write", [ Str_lit "hit" ])) ],
                      [] );
                ])
             (function Analysis.Tainted_native_call _ -> true | _ -> false)));
    test "implicit flow: global write under sensitive loop rejected" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "xs" ]
                [ For ("x", Var "xs", [ Assign (Lglobal "N", Int_lit 1) ]) ])
             (function Analysis.Tainted_global_write _ -> true | _ -> false)));
    test "implicit flow through an assigned flag rejected" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                [
                  Let ("flag", Bool_lit false);
                  If (Binop (Gt, Var "x", Int_lit 0), [ Assign (Lvar "flag", Bool_lit true) ], []);
                  If (Var "flag", [ Expr_stmt (Call (Static "fs_write", [ Str_lit "+" ])) ], []);
                ])
             (function Analysis.Tainted_native_call _ -> true | _ -> false)));
    test "unknown function with tainted args rejected" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ] [ Expr_stmt (Call (Static "who_knows", [ Var "x" ])) ])
             (function Analysis.Unknown_body_call { callee; _ } -> callee = "who_knows" | _ -> false)));
    test "function pointer call rejected unconditionally" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                [ Expr_stmt (Call (Fn_ptr (Some "cb"), [ Str_lit "untainted" ])) ])
             (function Analysis.Fn_pointer_call _ -> true | _ -> false)));
    test "unresolvable dispatch rejected unconditionally" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                [
                  Expr_stmt
                    (Call
                       ( Dynamic { method_name = "Future::poll"; receiver_hint = None },
                         [ Str_lit "untainted" ] ));
                ])
             (function Analysis.Unresolvable_dispatch _ -> true | _ -> false)));
    test "dispatch superset includes leaking impl" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                [
                  Return
                    (Some
                       (Call (Dynamic { method_name = "Show::show"; receiver_hint = None }, [ Var "x" ])));
                ])
             (function Analysis.Tainted_native_call _ -> true | _ -> false)));
    test "dispatch narrowed by receiver hint to a pure impl accepted" (fun () ->
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ]
                [
                  Return
                    (Some
                       (Call
                          ( Dynamic { method_name = "show"; receiver_hint = Some "Pretty" },
                            [ Var "x" ] )));
                ])));
    test "opaque unsafe mutation rejected" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ] [ Opaque_unsafe [ Var "x" ] ])
             (function Analysis.Unsafe_mutation _ -> true | _ -> false)));
    test "unsafe write to capture-derived data rejected" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                ~captures:[ { cap_var = "cache"; mode = By_ref } ]
                [ Unsafe_write (Lderef "cache", Var "x") ])
             (function Analysis.Unsafe_mutation _ -> true | _ -> false)));
    test "loop fixpoint: taint introduced on a later iteration is seen" (fun () ->
        (* First iteration calls fs_write(a) with a untainted; a becomes
           tainted at the end of the body, so only a second dataflow pass
           over the loop sees the leak. *)
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                [
                  Let ("a", Int_lit 0);
                  Let ("go", Bool_lit true);
                  While
                    ( Var "go",
                      [
                        Expr_stmt (Call (Static "fs_write", [ Var "a" ]));
                        Assign (Lvar "a", Var "x");
                        Assign (Lvar "go", Bool_lit false);
                      ] );
                ])
             (function Analysis.Tainted_native_call _ -> true | _ -> false)));
    test "taint flows through references and Deref" (fun () ->
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                [
                  Let ("r", Ref "x");
                  Let ("y", Deref (Var "r"));
                  Expr_stmt (Call (Static "fs_write", [ Var "y" ]));
                ])
             (function Analysis.Tainted_native_call _ -> true | _ -> false)));
    test "by-ref arg is tainted when the callee's summary says it writes" (fun () ->
        (* write_through stores its tainted second argument through its
           first; the summary's write-back effect must taint out. *)
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                [
                  Let ("out", Str_lit "");
                  Expr_stmt (Call (Static "write_through", [ Ref_mut "out"; Var "x" ]));
                  Expr_stmt (Call (Static "fs_write", [ Var "out" ]));
                ])
             (function Analysis.Tainted_native_call _ -> true | _ -> false)));
    test "by-ref arg of a call into an unseen body is conservatively tainted" (fun () ->
        (* For bodies the analyzer cannot see there is no summary, so the
           blanket write-back assumption must remain. *)
        let allow = Allowlist.add Allowlist.default "mystery_fill" in
        check_bool "rej" true
          (List.exists
             (fun (r : Analysis.rejection) ->
               match r.Analysis.reason with
               | Analysis.Tainted_native_call _ -> true
               | _ -> false)
             (Analysis.check ~allowlist:allow (fixture ())
                (spec "r" [ "x" ]
                   [
                     Let ("out", Str_lit "");
                     Expr_stmt (Call (Static "mystery_fill", [ Ref_mut "out"; Var "x" ]));
                     Expr_stmt (Call (Static "fs_write", [ Var "out" ]));
                   ]))
               .Analysis.rejections));
    test "multiple rejection reasons all reported" (fun () ->
        let v =
          verdict (fixture ())
            (spec "r" [ "x" ]
               ~captures:[ { cap_var = "log"; mode = By_mut_ref } ]
               [
                 Assign (Lglobal "SINK", Var "x");
                 Expr_stmt (Call (Static "fs_write", [ Var "x" ]));
               ])
        in
        check_bool "several" true (List.length v.Analysis.rejections >= 3));
  ]

let allowlist_tests =
  [
    test "allow-listed functions are trusted leaves" (fun () ->
        (* fs_write allow-listed: the call no longer rejects. *)
        let allow = Allowlist.add Allowlist.default "fs_write" in
        check_bool "ok" true
          (accepted ~allowlist:allow (fixture ())
             (spec "r" [ "x" ] [ Expr_stmt (Call (Static "fs_write", [ Var "x" ])) ])));
    test "default allowlist contains Vec::push" (fun () ->
        check_bool "mem" true (Allowlist.mem Allowlist.default "Vec::push"));
    test "remove takes effect" (fun () ->
        let a = Allowlist.remove Allowlist.default "Vec::push" in
        check_bool "gone" false (Allowlist.mem a "Vec::push"));
    test "allow-listed call results are tainted by their args" (fun () ->
        (* format(x) result flows to native -> still rejected. *)
        check_bool "rej" true
          (has_rejection (fixture ())
             (spec "r" [ "x" ]
                [
                  Let ("s", Call (Static "core::fmt::format", [ Var "x" ]));
                  Expr_stmt (Call (Static "fs_write", [ Var "s" ]));
                ])
             (function Analysis.Tainted_native_call _ -> true | _ -> false)));
  ]

let callgraph_tests =
  [
    test "collection finds transitive callees once" (fun () ->
        let program = fixture () in
        let s =
          spec "r" [ "x" ]
            [
              Let ("a", Call (Static "pure_via_helper", [ Var "x" ]));
              Let ("b", Call (Static "pure_via_helper", [ Var "a" ]));
              Return (Some (Var "b"));
            ]
        in
        let g = Callgraph.collect program ~allowlist:Allowlist.default s in
        check_int "entry + 2" 3 (Callgraph.functions_analyzed g);
        check_bool "reaches helper" true (Callgraph.reaches g "pure_concat"));
    test "collection records dispatch candidates" (fun () ->
        let program = fixture () in
        let s =
          spec "r" [ "x" ]
            [
              Expr_stmt
                (Call (Dynamic { method_name = "Show::show"; receiver_hint = None }, [ Var "x" ]));
            ]
        in
        let g = Callgraph.collect program ~allowlist:Allowlist.default s in
        check_bool "pretty" true (Callgraph.reaches g "Pretty::show");
        check_bool "logging" true (Callgraph.reaches g "Logging::show"));
    test "collection failures recorded, not raised" (fun () ->
        let program = fixture () in
        let s = spec "r" [ "x" ] [ Expr_stmt (Call (Fn_ptr None, [ Var "x" ])) ] in
        let g = Callgraph.collect program ~allowlist:Allowlist.default s in
        check_int "one failure" 1 (List.length (Callgraph.failures g)));
    test "in_crate_sources lists entry first, externals excluded" (fun () ->
        let program = fixture () in
        Program.define program
          (external_fn ~package:"extlib" ~name:"ext::helper" ~params:[ "x" ]
             [ Return (Some (Var "x")) ]);
        let s =
          spec "r" [ "x" ]
            [
              Let ("a", Call (Static "pure_concat", [ Var "x"; Var "x" ]));
              Return (Some (Call (Static "ext::helper", [ Var "a" ])));
            ]
        in
        let g = Callgraph.collect program ~allowlist:Allowlist.default s in
        let sources = Callgraph.in_crate_sources g s in
        check_bool "entry first" true (fst (List.hd sources) = "r");
        check_bool "in-crate included" true (List.mem_assoc "pure_concat" sources);
        check_bool "external excluded" false (List.mem_assoc "ext::helper" sources);
        Alcotest.(check (list string)) "packages" [ "extlib" ] (Callgraph.external_packages g));
    test "synthetic tree size matches the formula" (fun () ->
        let program = Program.create () in
        let root =
          Sesame_corpus.Synthetic.define_tree program ~package:"p" ~prefix:"lib" ~depth:4
        in
        check_int "size" (Sesame_corpus.Synthetic.tree_size ~depth:4) (Program.size program);
        let s = spec "r" [ "x" ] [ Return (Some (Call (Static root, [ Var "x" ]))) ] in
        let g = Callgraph.collect program ~allowlist:Allowlist.default s in
        check_int "all + entry" (Sesame_corpus.Synthetic.tree_size ~depth:4 + 1)
          (Callgraph.functions_analyzed g));
  ]

let ir_tests =
  [
    test "program rejects duplicate definitions" (fun () ->
        let p = Program.create () in
        Program.define p (func ~name:"f" ~params:[] []);
        check_bool "dup" true
          (try
             Program.define p (func ~name:"f" ~params:[] []);
             false
           with Invalid_argument _ -> true));
    test "resolve_dynamic with hint requires the qualified impl" (fun () ->
        let p = fixture () in
        check_bool "hit" true
          (Program.resolve_dynamic p ~method_name:"show" ~receiver_hint:(Some "Pretty")
          = Some [ "Pretty::show" ]);
        check_bool "miss" true
          (Program.resolve_dynamic p ~method_name:"show" ~receiver_hint:(Some "Ghost") = None));
    test "func_source renders deterministically" (fun () ->
        let f = func ~name:"f" ~params:[ "x" ] [ Return (Some (Var "x")) ] in
        Alcotest.(check string) "stable" (func_source f) (func_source f);
        check_bool "has name" true (String.length (func_source f) > 0));
    test "func_loc counts non-empty lines" (fun () ->
        let f =
          func ~name:"f" ~params:[ "x" ]
            [ Let ("y", Var "x"); Return (Some (Var "y")) ]
        in
        check_bool "positive" true (func_loc f >= 3));
    test "spec source and loc" (fun () ->
        let s = spec "r" [ "x" ] [ Return (Some (Var "x")) ] in
        check_int "one stmt" 1 (Spec.loc s);
        check_bool "closure syntax" true (String.length (Spec.source s) > 5));
    test "verdict timing and counts populated" (fun () ->
        let v =
          verdict (fixture ()) (spec "r" [ "x" ] [ Return (Some (Var "x")) ])
        in
        check_bool "fns" true (v.Analysis.stats.functions_analyzed >= 1);
        check_bool "time" true (v.Analysis.stats.duration_s >= 0.0));
  ]

let encapsulation_tests =
  [
    test "contained unsafe classified as such" (fun () ->
        let p = Program.create () in
        Program.define p
          (external_fn ~package:"vec" ~name:"Vec::push_impl" ~params:[ "self"; "v" ]
             [ Unsafe_write (Lfield ("self", "buf"), Var "v") ]);
        match Encapsulation.audit p with
        | [ f ] ->
            check_bool "contained" true (f.Encapsulation.severity = Encapsulation.Contained);
            check_bool "clean package" true
              (Encapsulation.audit_package p ~package:"vec" = Encapsulation.Clean)
        | other -> Alcotest.failf "expected one finding, got %d" (List.length other));
    test "opaque unsafe breaks encapsulation" (fun () ->
        let p = Program.create () in
        Program.define p
          (external_fn ~package:"fastcrypto" ~name:"crypt" ~params:[ "data" ]
             [ Opaque_unsafe [ Var "data" ] ]);
        Alcotest.(check (list string)) "breaking" [ "fastcrypto" ]
          (Encapsulation.breaking_packages p);
        check_bool "needs review" true
          (match Encapsulation.audit_package p ~package:"fastcrypto" with
          | Encapsulation.Needs_review (_ :: _) -> true
          | _ -> false));
    test "function-pointer calls are breaking; safe code is clean" (fun () ->
        let p = Program.create () in
        Program.define p
          (external_fn ~package:"hooks" ~name:"run_hook" ~params:[ "cb"; "x" ]
             [ Expr_stmt (Call (Fn_ptr (Some "cb"), [ Var "x" ])) ]);
        Program.define p
          (external_fn ~package:"pure" ~name:"add" ~params:[ "a"; "b" ]
             [ Return (Some (Binop (Add, Var "a", Var "b"))) ]);
        Alcotest.(check (list string)) "only hooks" [ "hooks" ]
          (Encapsulation.breaking_packages p);
        check_bool "pure clean" true
          (Encapsulation.audit_package p ~package:"pure" = Encapsulation.Clean));
    test "audit over the corpus flags exactly the eight raw-pointer crates" (fun () ->
        let p = Sesame_corpus.App_corpus.program Sesame_corpus.App_corpus.Small in
        Alcotest.(check (list string)) "packages"
          [ "csv"; "lopdf"; "regex"; "ring"; "serde"; "sha2"; "zstd" ]
          (Encapsulation.breaking_packages p));
    test "native bodies are out of the audit's scope" (fun () ->
        let p = Program.create () in
        Program.define p (native ~package:"libc" ~name:"memcpy" ~params:[ "d"; "s" ] ());
        check_int "no findings" 0 (List.length (Encapsulation.audit p)));
  ]

(* Regression cases for the two seed-engine fixpoint bugs and the missing
   write-back summaries. Each is checked against both engines: the frozen
   seed engine ([Legacy_analysis]) must wrongly accept, the reworked engine
   must reject — proving these are real soundness fixes, not behavior
   drift. *)
let fixpoint_regression_tests =
  let legacy_accepts program s =
    (Legacy_analysis.check program s).Legacy_analysis.accepted
  in
  [
    test "loop rejection appearing only on the second iteration is seen" (fun () ->
        (* p aliases a local on iteration 1 and the capture from iteration
           2 on; only the second dataflow pass sees the capture mutation.
           The written value is untainted, so no per-variable taint bit
           changes either: the seed engine reads the rejection count after
           running the body and summarizes root sets by size, so it
           converges after one pass. *)
        let s =
          spec "r" [ "x" ]
            ~captures:[ { cap_var = "cap"; mode = By_ref } ]
            [
              Let ("a", Int_lit 0);
              Let ("p", Ref "a");
              Let ("go", Bool_lit true);
              While
                ( Var "go",
                  [
                    Assign (Lderef "p", Int_lit 0);
                    Assign (Lvar "p", Ref "cap");
                    Assign (Lvar "go", Bool_lit false);
                  ] );
            ]
        in
        check_bool "legacy wrongly accepts" true (legacy_accepts (fixture ()) s);
        check_bool "fixed engine rejects" true
          (has_rejection (fixture ()) s (function
            | Analysis.Capture_mutation { var; _ } -> var = "cap"
            | _ -> false)));
    test "root set changing membership but not cardinality converges late" (fun () ->
        (* The unsafe write's target set swaps {a} for {cap}: same size,
           same taint, different membership — invisible to the seed
           engine's cardinality snapshot. *)
        let s =
          spec "r" [ "x" ]
            ~captures:[ { cap_var = "cap"; mode = By_ref } ]
            [
              Let ("a", Int_lit 0);
              Let ("p", Ref "a");
              Let ("go", Bool_lit true);
              While
                ( Var "go",
                  [
                    Unsafe_write (Lderef "p", Int_lit 0);
                    Assign (Lvar "p", Ref "cap");
                    Assign (Lvar "go", Bool_lit false);
                  ] );
            ]
        in
        check_bool "legacy wrongly accepts" true (legacy_accepts (fixture ()) s);
        check_bool "fixed engine rejects" true
          (has_rejection (fixture ()) s (function
            | Analysis.Unsafe_mutation _ -> true
            | _ -> false)));
    test "recursive callee's by-ref write-back reaches a projected argument" (fun () ->
        (* store_rec writes its tainted second argument through its first;
           the argument here is s.slot — not a bare variable, so the seed
           engine's Var/Ref-only blanket never taints s. *)
        let s =
          spec "r" [ "x" ]
            [
              Let ("s", Vec []);
              Expr_stmt
                (Call (Static "store_rec", [ Field (Var "s", "slot"); Var "x"; Int_lit 3 ]));
              Expr_stmt (Call (Static "fs_write", [ Var "s" ]));
            ]
        in
        check_bool "legacy wrongly accepts" true (legacy_accepts (fixture ()) s);
        check_bool "fixed engine rejects" true
          (has_rejection (fixture ()) s (function
            | Analysis.Tainted_native_call _ -> true
            | _ -> false)));
    test "pure callee's by-ref arguments stay untainted (precision)" (fun () ->
        (* The flip side of per-parameter write-backs: pure_concat never
           writes through its arguments, so out stays clean and the seed
           engine's blanket false positive disappears. *)
        check_bool "ok" true
          (accepted (fixture ())
             (spec "r" [ "x" ]
                [
                  Let ("out", Str_lit "");
                  Expr_stmt (Call (Static "pure_concat", [ Ref_mut "out"; Var "x" ]));
                  Expr_stmt (Call (Static "fs_write", [ Var "out" ]));
                ])));
    test "loop fixpoint terminates on the iteration backstop" (fun () ->
        (* Monotone joins cannot cycle, but the backstop must still leave
           the analysis sound and terminating on a self-extending alias
           loop. *)
        let v =
          verdict (fixture ())
            (spec "r" [ "x" ]
               [
                 Let ("p", Ref "x");
                 While (Bool_lit true, [ Let ("q", Deref (Var "p")); Let ("p", Ref "q") ]);
                 Return (Some (Int_lit 0));
               ])
        in
        check_bool "terminates" true (v.Analysis.stats.duration_s < 60.0));
  ]

let cache_tests =
  let heavy_spec =
    spec "r" [ "x" ]
      [
        Let ("y", Call (Static "launders", [ Var "x" ]));
        Expr_stmt (Call (Static "leak_after_laundering", [ Var "y" ]));
        Return (Some (Call (Static "recursive", [ Var "x" ])));
      ]
  in
  let same_verdict (a : Analysis.verdict) (b : Analysis.verdict) =
    a.Analysis.accepted = b.Analysis.accepted
    && a.Analysis.rejections = b.Analysis.rejections
  in
  [
    test "second check of the same spec hits instead of re-analyzing" (fun () ->
        let program = fixture () in
        let cache = Analysis.Summary_cache.create () in
        let v1 = Analysis.check ~cache program heavy_spec in
        check_bool "first pass misses" true (v1.Analysis.stats.summary_cache_misses > 0);
        check_int "first pass has no hits" 0 v1.Analysis.stats.summary_cache_hits;
        let v2 = Analysis.check ~cache program heavy_spec in
        check_bool "second pass hits" true (v2.Analysis.stats.summary_cache_hits > 0);
        check_int "second pass misses nothing" 0 v2.Analysis.stats.summary_cache_misses;
        check_bool "entries published" true (Analysis.Summary_cache.entries cache > 0));
    test "cached and uncached verdicts agree, including replayed rejections" (fun () ->
        let program = fixture () in
        let cache = Analysis.Summary_cache.create () in
        let uncached = Analysis.check program heavy_spec in
        let _warmup = Analysis.check ~cache program heavy_spec in
        let cached = Analysis.check ~cache program heavy_spec in
        check_bool "not accepted" false uncached.Analysis.accepted;
        check_bool "verdicts agree" true (same_verdict uncached cached));
    test "summaries are shared across different specs of one program" (fun () ->
        let program = fixture () in
        let cache = Analysis.Summary_cache.create () in
        let s1 =
          spec "r1" [ "x" ] [ Return (Some (Call (Static "launders", [ Var "x" ]))) ]
        in
        let s2 =
          spec "r2" [ "secret" ]
            [ Let ("d", Call (Static "launders", [ Var "secret" ])); Return (Some (Var "d")) ]
        in
        ignore (Analysis.check ~cache program s1);
        let v2 = Analysis.check ~cache program s2 in
        check_bool "cross-spec hit" true (v2.Analysis.stats.summary_cache_hits > 0));
    test "defining a new function invalidates the program fingerprint" (fun () ->
        let program = fixture () in
        let fp1 = Program.fingerprint program in
        let cache = Analysis.Summary_cache.create () in
        ignore (Analysis.check ~cache program heavy_spec);
        Program.define program (func ~name:"late_addition" ~params:[ "x" ] []);
        let fp2 = Program.fingerprint program in
        check_bool "fingerprint changed" false
          (Sesame_signing.Sha256.to_hex fp1 = Sesame_signing.Sha256.to_hex fp2);
        (* Old entries are keyed under fp1 and must not be reused — the
           check must miss, not hit, and still produce the right verdict. *)
        let v = Analysis.check ~cache program heavy_spec in
        check_int "no stale hits" 0 v.Analysis.stats.summary_cache_hits;
        check_bool "still rejected" false v.Analysis.accepted);
    test "hit rate accounting is consistent" (fun () ->
        let cache = Analysis.Summary_cache.create () in
        Alcotest.(check (float 0.0)) "unused cache rate" 0.0
          (Analysis.Summary_cache.hit_rate cache);
        let program = fixture () in
        ignore (Analysis.check ~cache program heavy_spec);
        ignore (Analysis.check ~cache program heavy_spec);
        let total =
          Analysis.Summary_cache.hits cache + Analysis.Summary_cache.misses cache
        in
        check_bool "counters populated" true (total > 0);
        let rate = Analysis.Summary_cache.hit_rate cache in
        check_bool "rate in range" true (rate > 0.0 && rate <= 1.0));
  ]

(* Place sensitivity, witness provenance, and the seed-engine bug fixes:
   dynamic-dispatch candidate sets and recursive cycles checked
   differentially against [Legacy_analysis] and with the cache on/off,
   surplus-argument taint joining, and Lindex index-expression
   evaluation. *)
let place_provenance_tests =
  let legacy_accepted program s = (Legacy_analysis.check program s).Legacy_analysis.accepted in
  let cache_agrees program s =
    let cache = Analysis.Summary_cache.create () in
    let plain = Analysis.check program s in
    let cold = Analysis.check ~cache program s in
    let warm = Analysis.check ~cache program s in
    check_bool "cold cache verdict" plain.Analysis.accepted cold.Analysis.accepted;
    check_bool "warm cache verdict" plain.Analysis.accepted warm.Analysis.accepted;
    check_bool "cold rejections + traces identical" true
      (plain.Analysis.rejections = cold.Analysis.rejections);
    check_bool "warm rejections + traces identical" true
      (plain.Analysis.rejections = warm.Analysis.rejections);
    plain
  in
  [
    test "dispatch: hintless call tries every candidate, leaky impl rejects" (fun () ->
        let program = fixture () in
        let s =
          spec "r" [ "x" ]
            [
              Expr_stmt
                (Call (Dynamic { method_name = "Show::show"; receiver_hint = None }, [ Var "x" ]));
            ]
        in
        let v = cache_agrees program s in
        check_bool "rejected (Logging::show leaks)" false v.Analysis.accepted;
        check_bool "legacy agrees" false (legacy_accepted program s);
        List.iter
          (fun (r : Analysis.rejection) ->
            check_bool "witness trace" true (r.Analysis.trace <> []))
          v.Analysis.rejections);
    test "dispatch: candidate set of clean impls accepted, hint narrows to one" (fun () ->
        let program = Program.create () in
        Program.define_all program
          [
            native ~package:"libc" ~name:"fs_write" ~params:[ "data" ] ();
            func ~name:"Upper::render" ~params:[ "x" ] [ Return (Some (Var "x")) ];
            func ~name:"Lower::render" ~params:[ "x" ]
              [ Return (Some (Binop (Concat, Var "x", Str_lit "."))) ];
            func ~name:"Loud::render" ~params:[ "x" ]
              [ Expr_stmt (Call (Static "fs_write", [ Var "x" ])) ];
          ];
        Program.register_impl program ~method_name:"Render::render" ~impl:"Upper::render";
        Program.register_impl program ~method_name:"Render::render" ~impl:"Lower::render";
        let clean =
          spec "r" [ "x" ]
            [
              Let
                ( "y",
                  Call (Dynamic { method_name = "Render::render"; receiver_hint = None }, [ Var "x" ])
                );
            ]
        in
        check_bool "all candidates clean: accepted" true (cache_agrees program clean).Analysis.accepted;
        (* Register the leaky impl: the hintless candidate set now rejects,
           but a receiver hint that excludes it still verifies. *)
        Program.register_impl program ~method_name:"Render::render" ~impl:"Loud::render";
        let hinted =
          spec "r" [ "x" ]
            [
              Let
                ( "y",
                  Call
                    ( Dynamic { method_name = "render"; receiver_hint = Some "Upper" },
                      [ Var "x" ] ) );
            ]
        in
        check_bool "widened candidate set: rejected" false (cache_agrees program clean).Analysis.accepted;
        check_bool "legacy agrees on the widened set" false (legacy_accepted program clean);
        check_bool "hint excludes the leaky impl: accepted" true
          (cache_agrees program hinted).Analysis.accepted);
    test "recursion: pure cycle accepted where the seed engine gives up" (fun () ->
        let program = fixture () in
        let s = spec "r" [ "x" ] [ Let ("y", Call (Static "recursive", [ Var "x" ])) ] in
        check_bool "place-sensitive accepts" true (cache_agrees program s).Analysis.accepted);
    test "recursion: leak at the bottom of the cycle rejected with a trace" (fun () ->
        let program = fixture () in
        Program.define program
          (func ~name:"leak_rec" ~params:[ "x"; "n" ]
             [
               If
                 ( Binop (Gt, Var "n", Int_lit 0),
                   [
                     Expr_stmt
                       (Call
                          (Static "leak_rec", [ Var "x"; Binop (Sub, Var "n", Int_lit 1) ]));
                   ],
                   [ Expr_stmt (Call (Static "fs_write", [ Var "x" ])) ] );
             ]);
        let s =
          spec "r" [ "x" ] [ Expr_stmt (Call (Static "leak_rec", [ Var "x"; Int_lit 3 ])) ]
        in
        let v = cache_agrees program s in
        check_bool "rejected" false v.Analysis.accepted;
        check_bool "legacy agrees" false (legacy_accepted program s);
        check_bool "trace spans the recursive call" true
          (List.exists
             (fun (r : Analysis.rejection) ->
               List.exists (fun st -> st.Analysis.step_kind = Analysis.Call) r.Analysis.trace)
             v.Analysis.rejections));
    test "recursion: by-ref write-back cycle still propagates to the caller" (fun () ->
        let program = fixture () in
        let s =
          spec "r" [ "x" ]
            [
              Let ("slot", Str_lit "");
              Expr_stmt (Call (Static "store_rec", [ Ref_mut "slot"; Var "x"; Int_lit 2 ]));
              Expr_stmt (Call (Static "fs_write", [ Var "slot" ]));
            ]
        in
        let v = cache_agrees program s in
        check_bool "rejected" false v.Analysis.accepted;
        check_bool "legacy agrees" false (legacy_accepted program s));
    test "surplus arguments: extra tainted arg joins into the summary key" (fun () ->
        (* The callee declares one parameter but the site passes two; the
           seed engine dropped the surplus taint on the floor and accepted
           this leak. *)
        let program = Program.create () in
        Program.define_all program
          [
            native ~package:"libc" ~name:"fs_write" ~params:[ "data" ] ();
            func ~name:"one_param" ~params:[ "a" ]
              [ Expr_stmt (Call (Static "fs_write", [ Var "a" ])) ];
          ];
        let s =
          spec "r" [ "x" ]
            [ Expr_stmt (Call (Static "one_param", [ Str_lit "ok"; Var "x" ])) ]
        in
        check_bool "surplus taint rejects" false (cache_agrees program s).Analysis.accepted);
    test "Lindex: the index expression is evaluated, not ignored" (fun () ->
        (* a[leaky(x)] = 0 — the store is clean but computing the index
           leaks; the seed engine never evaluated index expressions. *)
        let program = Program.create () in
        Program.define_all program
          [
            native ~package:"libc" ~name:"fs_write" ~params:[ "data" ] ();
            func ~name:"leaky_len" ~params:[ "v" ]
              [
                Expr_stmt (Call (Static "fs_write", [ Var "v" ]));
                Return (Some (Int_lit 0));
              ];
          ];
        let s =
          spec "r" [ "x" ]
            [
              Let ("a", Vec []);
              Assign (Lindex ("a", Call (Static "leaky_len", [ Var "x" ])), Int_lit 0);
            ]
        in
        let v = cache_agrees program s in
        check_bool "index leak rejected" false v.Analysis.accepted;
        check_bool "seed engine missed it" true (legacy_accepted program s));
    test "witness traces span call boundaries source-to-sink" (fun () ->
        let program = fixture () in
        let s =
          spec "r" [ "x" ]
            [ Expr_stmt (Call (Static "leak_after_laundering", [ Var "x" ])) ]
        in
        let v = cache_agrees program s in
        check_bool "rejected" false v.Analysis.accepted;
        List.iter
          (fun (r : Analysis.rejection) ->
            let kinds = List.map (fun st -> st.Analysis.step_kind) r.Analysis.trace in
            check_bool "starts at the source" true (List.hd kinds = Analysis.Source);
            check_bool "crosses the call" true (List.mem Analysis.Call kinds);
            check_bool "ends at the sink" true
              (List.nth kinds (List.length kinds - 1) = Analysis.Sink))
          v.Analysis.rejections);
  ]

let () =
  Alcotest.run "scrutinizer"
    [
      ("acceptance", acceptance_tests);
      ("rejection", rejection_tests);
      ("fixpoint-regression", fixpoint_regression_tests);
      ("summary-cache", cache_tests);
      ("allowlist", allowlist_tests);
      ("callgraph", callgraph_tests);
      ("ir", ir_tests);
      ("encapsulation", encapsulation_tests);
      ("place-provenance", place_provenance_tests);
    ]
