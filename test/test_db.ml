open Sesame_db

let test name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Values *)

let value_tests =
  [
    test "int/float compare numerically" (fun () ->
        check_bool "eq" true (Value.equal (Value.Int 2) (Value.Float 2.0));
        check_bool "lt" true (Value.compare (Value.Int 1) (Value.Float 1.5) < 0));
    test "null equals null, nothing else" (fun () ->
        check_bool "null=null" true (Value.equal Value.Null Value.Null);
        check_bool "null<>0" false (Value.equal Value.Null (Value.Int 0)));
    test "cross-type ordering is total" (fun () ->
        let vs = [ Value.Text "a"; Value.Null; Value.Bool true; Value.Int 1 ] in
        let sorted = List.sort Value.compare vs in
        check_int "length" 4 (List.length sorted);
        check_bool "null first" true (List.hd sorted = Value.Null));
    test "has_type treats Null as universal" (fun () ->
        check_bool "null:int" true (Value.has_type Value.Null Value.Tint);
        check_bool "text:int" false (Value.has_type (Value.Text "x") Value.Tint));
    test "to_float accepts ints" (fun () ->
        Alcotest.(check (float 0.0)) "coerce" 3.0 (Value.to_float (Value.Int 3)));
    test "to_int rejects text" (fun () ->
        check_bool "raises" true
          (try
             ignore (Value.to_int (Value.Text "3"));
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Schema and rows *)

let people =
  Schema.make_exn ~name:"people" ~primary_key:"id"
    [
      { name = "id"; ty = Value.Tint; nullable = false };
      { name = "name"; ty = Value.Ttext; nullable = false };
      { name = "age"; ty = Value.Tint; nullable = true };
    ]

let schema_tests =
  [
    test "duplicate column rejected" (fun () ->
        check_bool "dup" true
          (Result.is_error
             (Schema.make ~name:"t"
                [
                  { name = "a"; ty = Value.Tint; nullable = false };
                  { name = "a"; ty = Value.Ttext; nullable = false };
                ])));
    test "empty schema rejected" (fun () ->
        check_bool "empty" true (Result.is_error (Schema.make ~name:"t" [])));
    test "primary key must name a column" (fun () ->
        check_bool "pk" true
          (Result.is_error
             (Schema.make ~name:"t" ~primary_key:"zzz"
                [ { name = "a"; ty = Value.Tint; nullable = false } ])));
    test "nullable primary key rejected" (fun () ->
        check_bool "pk null" true
          (Result.is_error
             (Schema.make ~name:"t" ~primary_key:"a"
                [ { name = "a"; ty = Value.Tint; nullable = true } ])));
    test "validate_row checks arity" (fun () ->
        check_bool "arity" true (Result.is_error (Schema.validate_row people [| Value.Int 1 |])));
    test "validate_row checks types" (fun () ->
        check_bool "type" true
          (Result.is_error (Schema.validate_row people [| Value.Int 1; Value.Int 2; Value.Null |])));
    test "validate_row checks nullability" (fun () ->
        check_bool "null" true
          (Result.is_error
             (Schema.validate_row people [| Value.Int 1; Value.Null; Value.Null |])));
    test "valid row accepted" (fun () ->
        check_bool "ok" true
          (Schema.validate_row people [| Value.Int 1; Value.Text "Ada"; Value.Null |] = Ok ()));
    test "row accessors" (fun () ->
        let row = [| Value.Int 7; Value.Text "Ada"; Value.Int 36 |] in
        check_bool "get" true (Row.get people row "name" = Value.Text "Ada");
        check_bool "get_opt unknown" true (Row.get_opt people row "zzz" = None);
        let row' = Row.set people row "age" (Value.Int 37) in
        check_bool "set fresh" true (Row.get people row "age" = Value.Int 36);
        check_bool "set new" true (Row.get people row' "age" = Value.Int 37));
    test "of_assoc fills nullable columns with Null" (fun () ->
        match Row.of_assoc people [ ("id", Value.Int 1); ("name", Value.Text "Ada") ] with
        | Ok row -> check_bool "age null" true (Row.get people row "age" = Value.Null)
        | Error m -> Alcotest.fail m);
    test "of_assoc rejects unknown columns" (fun () ->
        check_bool "unknown" true (Result.is_error (Row.of_assoc people [ ("ghost", Value.Int 1) ])));
  ]

(* ------------------------------------------------------------------ *)
(* Expressions *)

let row = [| Value.Int 7; Value.Text "Ada"; Value.Int 36 |]

let expr_tests =
  [
    test "comparison operators" (fun () ->
        let holds e = Expr.eval_exn people row e in
        check_bool "eq" true (holds (Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Lit (Value.Int 7))));
        check_bool "ne" true (holds (Expr.Cmp (Expr.Ne, Expr.Col "id", Expr.Lit (Value.Int 8))));
        check_bool "lt" true (holds (Expr.Cmp (Expr.Lt, Expr.Col "age", Expr.Lit (Value.Int 40))));
        check_bool "ge" false (holds (Expr.Cmp (Expr.Ge, Expr.Col "age", Expr.Lit (Value.Int 40)))));
    test "boolean connectives" (fun () ->
        let t = Expr.True and f = Expr.Not Expr.True in
        let holds e = Expr.eval_exn people row e in
        check_bool "and" false (holds (Expr.And (t, f)));
        check_bool "or" true (holds (Expr.Or (f, t)));
        check_bool "not" true (holds (Expr.Not f)));
    test "null comparisons are false" (fun () ->
        let null_row = [| Value.Int 1; Value.Text "x"; Value.Null |] in
        check_bool "null cmp" false
          (Expr.eval_exn people null_row
             (Expr.Cmp (Expr.Eq, Expr.Col "age", Expr.Lit Value.Null)));
        check_bool "is_null" true (Expr.eval_exn people null_row (Expr.Is_null (Expr.Col "age"))));
    test "IN membership" (fun () ->
        check_bool "in" true
          (Expr.eval_exn people row (Expr.In (Expr.Col "id", [ Value.Int 1; Value.Int 7 ])));
        check_bool "not in" false
          (Expr.eval_exn people row (Expr.In (Expr.Col "id", [ Value.Int 2 ]))));
    test "LIKE wildcard matching" (fun () ->
        check_bool "pct" true (Expr.like_matches ~pattern:"A%" "Ada");
        check_bool "underscore" true (Expr.like_matches ~pattern:"_da" "Ada");
        check_bool "middle" true (Expr.like_matches ~pattern:"%d%" "Ada");
        check_bool "no match" false (Expr.like_matches ~pattern:"B%" "Ada");
        check_bool "empty pattern" false (Expr.like_matches ~pattern:"" "Ada");
        check_bool "empty both" true (Expr.like_matches ~pattern:"" "");
        check_bool "pct only" true (Expr.like_matches ~pattern:"%" ""));
    test "LIKE backtracking" (fun () ->
        check_bool "backtrack" true (Expr.like_matches ~pattern:"%ab%ab" "abxabab"));
    test "unknown column is an error" (fun () ->
        check_bool "err" true
          (Result.is_error
             (Expr.eval people row (Expr.Cmp (Expr.Eq, Expr.Col "zzz", Expr.Lit Value.Null)))));
    test "columns collects references without duplicates" (fun () ->
        let e =
          Expr.And
            (Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Col "age"), Expr.Is_null (Expr.Col "id"))
        in
        Alcotest.(check (list string)) "cols" [ "id"; "age" ] (Expr.columns e));
    test "equality_on finds pinned PK" (fun () ->
        let e =
          Expr.And
            ( Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Lit (Value.Int 7)),
              Expr.Cmp (Expr.Gt, Expr.Col "age", Expr.Lit (Value.Int 1)) )
        in
        check_bool "found" true (Expr.equality_on e "id" = Some (Value.Int 7));
        check_bool "absent under OR" true (Expr.equality_on (Expr.Or (e, Expr.True)) "id" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Tables *)

let fresh_table () = Table.create people
let add tbl id name age = Table.insert_exn tbl [| Value.Int id; Value.Text name; age |]

let table_tests =
  [
    test "insert and select by primary key" (fun () ->
        let tbl = fresh_table () in
        add tbl 1 "Ada" (Value.Int 36);
        add tbl 2 "Grace" (Value.Int 45);
        let rows =
          Table.select tbl ~where:(Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Lit (Value.Int 2)))
        in
        check_int "one" 1 (List.length rows);
        check_bool "grace" true (Row.get people (List.hd rows) "name" = Value.Text "Grace"));
    test "duplicate primary key rejected" (fun () ->
        let tbl = fresh_table () in
        add tbl 1 "Ada" Value.Null;
        check_bool "dup" true
          (Result.is_error (Table.insert tbl [| Value.Int 1; Value.Text "Eve"; Value.Null |])));
    test "select full scan with predicate" (fun () ->
        let tbl = fresh_table () in
        add tbl 1 "Ada" (Value.Int 36);
        add tbl 2 "Grace" (Value.Int 45);
        add tbl 3 "Edsger" (Value.Int 72);
        check_int "older than 40" 2
          (List.length
             (Table.select tbl
                ~where:(Expr.Cmp (Expr.Gt, Expr.Col "age", Expr.Lit (Value.Int 40))))));
    test "update changes matching rows only" (fun () ->
        let tbl = fresh_table () in
        add tbl 1 "Ada" (Value.Int 36);
        add tbl 2 "Grace" (Value.Int 45);
        (match
           Table.update tbl
             ~where:(Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Lit (Value.Int 1)))
             ~set:[ ("age", Value.Int 37) ]
         with
        | Ok n -> check_int "updated" 1 n
        | Error m -> Alcotest.fail m);
        let ada =
          List.hd
            (Table.select tbl ~where:(Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Lit (Value.Int 1))))
        in
        check_bool "new age" true (Row.get people ada "age" = Value.Int 37));
    test "update to duplicate PK is refused atomically" (fun () ->
        let tbl = fresh_table () in
        add tbl 1 "Ada" Value.Null;
        add tbl 2 "Grace" Value.Null;
        check_bool "refused" true
          (Result.is_error
             (Table.update tbl
                ~where:(Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Lit (Value.Int 2)))
                ~set:[ ("id", Value.Int 1) ]));
        check_int "unchanged" 2 (Table.length tbl));
    test "pk update moves the index" (fun () ->
        let tbl = fresh_table () in
        add tbl 1 "Ada" Value.Null;
        ignore
          (Result.get_ok
             (Table.update tbl
                ~where:(Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Lit (Value.Int 1)))
                ~set:[ ("id", Value.Int 9) ]));
        check_int "found at 9" 1
          (List.length
             (Table.select tbl ~where:(Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Lit (Value.Int 9)))));
        check_int "gone at 1" 0
          (List.length
             (Table.select tbl ~where:(Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Lit (Value.Int 1))))));
    test "delete removes and frees the key" (fun () ->
        let tbl = fresh_table () in
        add tbl 1 "Ada" Value.Null;
        check_int "deleted" 1
          (Table.delete tbl ~where:(Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Lit (Value.Int 1))));
        check_int "empty" 0 (Table.length tbl);
        add tbl 1 "Ada again" Value.Null;
        check_int "reinserted" 1 (Table.length tbl));
    test "insert copies the row (no aliasing)" (fun () ->
        let tbl = fresh_table () in
        let row = [| Value.Int 1; Value.Text "Ada"; Value.Null |] in
        Table.insert_exn tbl row;
        row.(1) <- Value.Text "mutated";
        let stored = List.hd (Table.to_list tbl) in
        check_bool "copied" true (Row.get people stored "name" = Value.Text "Ada"));
    test "grows past initial capacity" (fun () ->
        let tbl = fresh_table () in
        for i = 1 to 100 do
          add tbl i ("p" ^ string_of_int i) Value.Null
        done;
        check_int "all inserted" 100 (Table.length tbl));
    test "clear resets" (fun () ->
        let tbl = fresh_table () in
        add tbl 1 "Ada" Value.Null;
        Table.clear tbl;
        check_int "empty" 0 (Table.length tbl);
        add tbl 1 "Ada" Value.Null;
        check_int "reusable" 1 (Table.length tbl));
  ]

(* ------------------------------------------------------------------ *)
(* SQL + database *)

let fresh_db () =
  let db = Database.create () in
  (match Database.create_table db people with Ok () -> () | Error m -> failwith m);
  List.iter
    (fun (id, name, age) ->
      match
        Database.exec db "INSERT INTO people (id, name, age) VALUES (?, ?, ?)"
          ~params:[ Value.Int id; Value.Text name; age ]
      with
      | Ok _ -> ()
      | Error m -> failwith m)
    [ (1, "Ada", Value.Int 36); (2, "Grace", Value.Int 45); (3, "Edsger", Value.Null) ];
  db

let rows_of db sql params =
  match Database.exec db sql ~params with
  | Ok (Database.Rows { rows; _ }) -> rows
  | Ok (Database.Affected _) -> failwith "expected rows"
  | Error m -> failwith m

let sql_tests =
  [
    test "select star with parameter" (fun () ->
        let db = fresh_db () in
        let rows = rows_of db "SELECT * FROM people WHERE id = ?" [ Value.Int 2 ] in
        check_int "one" 1 (List.length rows));
    test "projection keeps requested order" (fun () ->
        let db = fresh_db () in
        match Database.exec db "SELECT name, id FROM people WHERE id = 1" ~params:[] with
        | Ok (Database.Rows { columns; rows = [ row ] }) ->
            Alcotest.(check (list string)) "cols" [ "name"; "id" ] columns;
            check_bool "order" true (row.(0) = Value.Text "Ada" && row.(1) = Value.Int 1)
        | _ -> Alcotest.fail "unexpected result");
    test "order by desc and limit" (fun () ->
        let db = fresh_db () in
        let rows = rows_of db "SELECT name FROM people ORDER BY age DESC LIMIT 1" [] in
        check_bool "grace first" true (List.hd rows = [| Value.Text "Grace" |]));
    test "keywords are case-insensitive" (fun () ->
        let db = fresh_db () in
        check_int "rows" 3 (List.length (rows_of db "select * from people" [])));
    test "string literal with escaped quote" (fun () ->
        let db = fresh_db () in
        ignore
          (Result.get_ok
             (Database.exec db "INSERT INTO people (id, name) VALUES (4, 'O''Brien')" ~params:[]));
        let rows = rows_of db "SELECT name FROM people WHERE id = 4" [] in
        check_bool "escaped" true (List.hd rows = [| Value.Text "O'Brien" |]));
    test "IS NOT NULL" (fun () ->
        let db = fresh_db () in
        check_int "two aged" 2
          (List.length (rows_of db "SELECT id FROM people WHERE age IS NOT NULL" [])));
    test "LIKE in SQL" (fun () ->
        let db = fresh_db () in
        check_int "G%" 1
          (List.length (rows_of db "SELECT id FROM people WHERE name LIKE 'G%'" [])));
    test "parenthesized boolean precedence" (fun () ->
        let db = fresh_db () in
        check_int "and/or" 2
          (List.length
             (rows_of db "SELECT id FROM people WHERE (id = 1 OR id = 2) AND age IS NOT NULL" [])));
    test "update and delete report affected counts" (fun () ->
        let db = fresh_db () in
        (match
           Database.exec db "UPDATE people SET age = ? WHERE id = ?"
             ~params:[ Value.Int 99; Value.Int 1 ]
         with
        | Ok (Database.Affected n) -> check_int "updated" 1 n
        | _ -> Alcotest.fail "update failed");
        match Database.exec db "DELETE FROM people WHERE age = 99" ~params:[] with
        | Ok (Database.Affected n) -> check_int "deleted" 1 n
        | _ -> Alcotest.fail "delete failed");
    test "aggregates without grouping" (fun () ->
        let db = fresh_db () in
        match
          Database.exec db "SELECT COUNT(*), AVG(age), MIN(age), MAX(age) FROM people" ~params:[]
        with
        | Ok (Database.Rows { rows = [ agg_row ]; _ }) ->
            check_bool "count" true (agg_row.(0) = Value.Int 3);
            check_bool "avg ignores nulls" true
              (match agg_row.(1) with
              | Value.Float f -> abs_float (f -. 40.5) < 1e-9
              | _ -> false);
            check_bool "min" true (Value.equal agg_row.(2) (Value.Int 36));
            check_bool "max" true (Value.equal agg_row.(3) (Value.Int 45))
        | _ -> Alcotest.fail "agg failed");
    test "aggregates over empty sets yield NULL (and COUNT 0)" (fun () ->
        let db = fresh_db () in
        match
          Database.exec db "SELECT COUNT(age), SUM(age) FROM people WHERE id = 99" ~params:[]
        with
        | Ok (Database.Rows { rows = [ agg_row ]; _ }) ->
            check_bool "count 0" true (agg_row.(0) = Value.Int 0);
            check_bool "sum null" true (agg_row.(1) = Value.Null)
        | _ -> Alcotest.fail "agg failed");
    test "group by preserves first-seen group order" (fun () ->
        let db = fresh_db () in
        ignore
          (Result.get_ok
             (Database.exec db "INSERT INTO people (id, name, age) VALUES (5, 'Ada', 20)"
                ~params:[]));
        match Database.exec db "SELECT COUNT(*) FROM people GROUP BY name" ~params:[] with
        | Ok (Database.Rows { columns; rows }) ->
            Alcotest.(check (list string)) "cols" [ "name"; "COUNT(*)" ] columns;
            check_int "groups" 3 (List.length rows);
            check_bool "first group is Ada x2" true
              (List.hd rows = [| Value.Text "Ada"; Value.Int 2 |])
        | _ -> Alcotest.fail "group failed");
    test "parameter count mismatch is an error" (fun () ->
        let db = fresh_db () in
        check_bool "too many" true
          (Result.is_error (Database.exec db "SELECT * FROM people" ~params:[ Value.Int 1 ]));
        check_bool "too few" true
          (Result.is_error (Database.exec db "SELECT * FROM people WHERE id = ?" ~params:[])));
    test "unknown table and column are errors" (fun () ->
        let db = fresh_db () in
        check_bool "table" true
          (Result.is_error (Database.exec db "SELECT * FROM ghosts" ~params:[]));
        check_bool "column" true
          (Result.is_error (Database.exec db "SELECT ghost FROM people" ~params:[])));
    test "syntax errors are reported, not raised" (fun () ->
        let db = fresh_db () in
        check_bool "parse" true (Result.is_error (Database.exec db "SELEKT * FROM people" ~params:[])));
    test "select_rows rejects non-star selects" (fun () ->
        let db = fresh_db () in
        check_bool "star only" true
          (Result.is_error (Database.select_rows db "SELECT id FROM people" ~params:[])));
    test "query_count tracks statements" (fun () ->
        let db = fresh_db () in
        Database.reset_query_count db;
        ignore (rows_of db "SELECT * FROM people" []);
        ignore (rows_of db "SELECT * FROM people" []);
        check_int "two" 2 (Database.query_count db));
    test "insert without column list requires full arity" (fun () ->
        let db = fresh_db () in
        check_bool "short" true
          (Result.is_error (Database.exec db "INSERT INTO people VALUES (9, 'X')" ~params:[]));
        check_bool "full" true
          (Result.is_ok (Database.exec db "INSERT INTO people VALUES (9, 'X', NULL)" ~params:[])));
    test "drop_table then recreate" (fun () ->
        let db = fresh_db () in
        check_bool "drop" true (Database.drop_table db "people" = Ok ());
        check_bool "gone" true
          (Result.is_error (Database.exec db "SELECT * FROM people" ~params:[]));
        check_bool "recreate" true (Database.create_table db people = Ok ()));
  ]

(* ------------------------------------------------------------------ *)
(* Secondary indexes and limit pushdown *)

let grp_schema =
  Schema.make_exn ~name:"items" ~primary_key:"id"
    [
      { Schema.name = "id"; ty = Value.Tint; nullable = false };
      { Schema.name = "grp"; ty = Value.Tint; nullable = false };
      { Schema.name = "label"; ty = Value.Ttext; nullable = true };
    ]

let items_db ?(n = 40) () =
  let db = Database.create () in
  (match Database.create_table db grp_schema with Ok () -> () | Error m -> failwith m);
  for i = 0 to n - 1 do
    match
      Database.exec db "INSERT INTO items VALUES (?, ?, ?)"
        ~params:[ Value.Int i; Value.Int (i mod 7); Value.Text (Printf.sprintf "row%d" i) ]
    with
    | Ok _ -> ()
    | Error m -> failwith m
  done;
  db

let items_rows db sql params =
  match Database.exec db sql ~params with
  | Ok (Database.Rows { rows; _ }) -> rows
  | Ok _ -> failwith "expected rows"
  | Error m -> failwith m

let items_exec db sql params =
  match Database.exec db sql ~params with Ok _ -> () | Error m -> failwith m

let index_tests =
  [
    test "indexed select equals full scan, in insertion order" (fun () ->
        let scan_db = items_db () and idx_db = items_db () in
        (match Database.ensure_index idx_db ~table:"items" ~column:"grp" with
        | Ok () -> ()
        | Error m -> failwith m);
        let q db = items_rows db "SELECT * FROM items WHERE grp = ?" [ Value.Int 3 ] in
        check_bool "same rows same order" true (q scan_db = q idx_db);
        check_int "count" 6 (List.length (q idx_db)));
    test "ensure_index rejects unknown columns" (fun () ->
        let db = items_db () in
        check_bool "error" true
          (Result.is_error (Database.ensure_index db ~table:"items" ~column:"ghost")));
    test "index stays exact across update and delete" (fun () ->
        let db = items_db () in
        (match Database.ensure_index db ~table:"items" ~column:"grp" with
        | Ok () -> ()
        | Error m -> failwith m);
        (* Move a row into group 3, move one out, delete one. *)
        items_exec db "UPDATE items SET grp = 3 WHERE id = 0" [];
        items_exec db "UPDATE items SET grp = 5 WHERE id = 3" [];
        items_exec db "DELETE FROM items WHERE id = 10" [];
        let got = items_rows db "SELECT * FROM items WHERE grp = ?" [ Value.Int 3 ] in
        let ids =
          List.map (function [| Value.Int id; _; _ |] -> id | _ -> -1) got
        in
        check_bool "membership" true (ids = [ 0; 17; 24; 31; 38 ]);
        (* The probe must agree with a scan on an index-free copy. *)
        let fresh = items_db () in
        items_exec fresh "UPDATE items SET grp = 3 WHERE id = 0" [];
        items_exec fresh "UPDATE items SET grp = 5 WHERE id = 3" [];
        items_exec fresh "DELETE FROM items WHERE id = 10" [];
        check_bool "vs scan" true
          (got = items_rows fresh "SELECT * FROM items WHERE grp = ?" [ Value.Int 3 ]));
    test "repeated equality scans build an index adaptively" (fun () ->
        let db = items_db ~n:300 () in
        let tbl = Option.get (Database.table db "items") in
        check_bool "not yet" false (Table.has_index tbl "grp");
        for _ = 1 to 8 do
          ignore (items_rows db "SELECT * FROM items WHERE grp = ?" [ Value.Int 2 ])
        done;
        check_bool "built" true (Table.has_index tbl "grp");
        let fresh = items_db ~n:300 () in
        check_bool "still correct" true
          (items_rows db "SELECT * FROM items WHERE grp = ?" [ Value.Int 2 ]
          = items_rows fresh "SELECT * FROM items WHERE grp = ?" [ Value.Int 2 ]));
    test "limit returns the first k matches of the unlimited query" (fun () ->
        let db = items_db () in
        let all = items_rows db "SELECT * FROM items WHERE grp = ?" [ Value.Int 1 ] in
        let limited =
          items_rows db "SELECT * FROM items WHERE grp = ? LIMIT 3" [ Value.Int 1 ]
        in
        check_int "k" 3 (List.length limited);
        check_bool "prefix" true (limited = [ List.nth all 0; List.nth all 1; List.nth all 2 ]);
        (* Early termination must not bypass ORDER BY: sort first, then cut. *)
        let ordered =
          items_rows db "SELECT * FROM items WHERE grp = ? ORDER BY id DESC LIMIT 2"
            [ Value.Int 1 ]
        in
        let ids = List.map (function [| Value.Int id; _; _ |] -> id | _ -> -1) ordered in
        check_bool "sorted then cut" true (ids = [ 36; 29 ]));
    test "limit also applies on the indexed path" (fun () ->
        let db = items_db () in
        (match Database.ensure_index db ~table:"items" ~column:"grp" with
        | Ok () -> ()
        | Error m -> failwith m);
        let all = items_rows db "SELECT * FROM items WHERE grp = ?" [ Value.Int 1 ] in
        let limited =
          items_rows db "SELECT * FROM items WHERE grp = ? LIMIT 2" [ Value.Int 1 ]
        in
        check_bool "prefix" true (limited = [ List.nth all 0; List.nth all 1 ]));
    test "mutations bump the process-wide table generation" (fun () ->
        let db = items_db () in
        let g0 = Table.generation () in
        items_exec db "UPDATE items SET grp = 6 WHERE id = 1" [];
        let g1 = Table.generation () in
        check_bool "update bumps" true (g1 > g0);
        (* A miss (no rows matched) must not invalidate caches. *)
        items_exec db "UPDATE items SET grp = 6 WHERE id = 99999" [];
        check_int "no-op update" g1 (Table.generation ());
        ignore (items_rows db "SELECT * FROM items" []);
        check_int "select does not bump" g1 (Table.generation ()));
  ]

let () =
  Alcotest.run "db"
    [
      ("value", value_tests);
      ("schema-row", schema_tests);
      ("expr", expr_tests);
      ("table", table_tests);
      ("sql", sql_tests);
      ("index", index_tests);
    ]
