open Sesame_http

let test name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let meth_status_tests =
  [
    test "method round-trip" (fun () ->
        List.iter
          (fun m -> check_bool "rt" true (Meth.of_string (Meth.to_string m) = Some m))
          [ Meth.GET; Meth.POST; Meth.PUT; Meth.DELETE; Meth.PATCH; Meth.HEAD; Meth.OPTIONS ]);
    test "method parse is case-insensitive" (fun () ->
        check_bool "get" true (Meth.of_string "get" = Some Meth.GET);
        check_bool "junk" true (Meth.of_string "YEET" = None));
    test "status codes round-trip" (fun () ->
        List.iter
          (fun s -> check_bool "rt" true (Status.equal (Status.of_int (Status.to_int s)) s))
          [ Status.Ok; Status.Created; Status.Forbidden; Status.Not_found; Status.Internal_error ]);
    test "is_success covers the 2xx range only" (fun () ->
        check_bool "200" true (Status.is_success Status.Ok);
        check_bool "204" true (Status.is_success Status.No_content);
        check_bool "303" false (Status.is_success Status.See_other);
        check_bool "403" false (Status.is_success Status.Forbidden));
  ]

let headers_tests =
  [
    test "lookup is case-insensitive" (fun () ->
        let h = Headers.of_list [ ("Content-Type", "text/html") ] in
        check_bool "lower" true (Headers.get h "content-type" = Some "text/html");
        check_bool "upper" true (Headers.mem h "CONTENT-TYPE"));
    test "add keeps multiple values, replace collapses" (fun () ->
        let h = Headers.add (Headers.add Headers.empty "Set-Cookie" "a=1") "Set-Cookie" "b=2" in
        check_int "two" 2 (List.length (Headers.get_all h "set-cookie"));
        let h = Headers.replace h "Set-Cookie" "c=3" in
        Alcotest.(check (list string)) "one" [ "c=3" ] (Headers.get_all h "set-cookie"));
    test "remove deletes all spellings" (fun () ->
        let h = Headers.of_list [ ("X-A", "1"); ("x-a", "2"); ("X-B", "3") ] in
        let h = Headers.remove h "X-A" in
        check_bool "gone" false (Headers.mem h "x-a");
        check_bool "kept" true (Headers.mem h "x-b"));
    test "CR/LF and control characters rejected at construction" (fun () ->
        let rejects f = try f (); false with Invalid_argument _ -> true in
        check_bool "crlf value" true
          (rejects (fun () -> ignore (Headers.add Headers.empty "X-A" "a\r\nSet-Cookie: evil=1")));
        check_bool "lf value" true
          (rejects (fun () -> ignore (Headers.add Headers.empty "X-A" "a\nb")));
        check_bool "nul value" true
          (rejects (fun () -> ignore (Headers.replace Headers.empty "X-A" "a\x00b")));
        check_bool "bad name" true
          (rejects (fun () -> ignore (Headers.add Headers.empty "X A" "v")));
        check_bool "crlf name" true
          (rejects (fun () -> ignore (Headers.of_list [ ("X\r\nY", "v") ])));
        check_bool "empty name" true
          (rejects (fun () -> ignore (Headers.add Headers.empty "" "v")));
        (* Horizontal tab is the one control byte a field value may hold. *)
        check_bool "tab ok" true
          (Headers.get (Headers.add Headers.empty "X-A" "a\tb") "X-A" = Some "a\tb"));
    test "add is linear, not quadratic" (fun () ->
        let n = 20_000 in
        let h = ref Headers.empty in
        for i = 1 to n do
          h := Headers.add !h "X-N" (string_of_int i)
        done;
        check_int "count" n (Headers.length !h);
        (* First-added wins for single-valued lookup... *)
        check_bool "first" true (Headers.get !h "X-N" = Some "1");
        (* ...and get_all preserves insertion order. *)
        check_bool "order" true
          (match Headers.get_all !h "x-n" with
          | "1" :: "2" :: _ -> true
          | _ -> false));
  ]

let cookie_tests =
  [
    test "parse cookie header" (fun () ->
        Alcotest.(check (list (pair string string)))
          "pairs"
          [ ("user", "ada"); ("theme", "dark") ]
          (Cookie.parse_header "user=ada; theme=dark"));
    test "parse skips malformed fragments" (fun () ->
        Alcotest.(check (list (pair string string)))
          "pairs" [ ("ok", "1") ]
          (Cookie.parse_header "garbage; =empty; ok=1"));
    test "render attributes" (fun () ->
        let rendered =
          Cookie.render_set_cookie
            ~attributes:{ Cookie.path = Some "/"; max_age = Some 60; http_only = true; secure = false }
            ~name:"sid" "abc"
        in
        check_str "rendered" "sid=abc; Path=/; Max-Age=60; HttpOnly" rendered);
    test "expire emits Max-Age=0" (fun () ->
        check_bool "max-age 0" true (contains (Cookie.expire ~name:"sid") "Max-Age=0"));
    test "render rejects splitting characters" (fun () ->
        let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
        check_bool "crlf value" true
          (rejects (fun () -> Cookie.render_set_cookie ~name:"sid" "a\r\nSet-Cookie: evil=1"));
        check_bool "semicolon value" true
          (rejects (fun () -> Cookie.render_set_cookie ~name:"sid" "a;Path=/admin"));
        check_bool "crlf name" true
          (rejects (fun () -> Cookie.render_set_cookie ~name:"s\r\nX" "v"));
        check_bool "eq in name" true
          (rejects (fun () -> Cookie.render_set_cookie ~name:"a=b" "v"));
        check_bool "bad path attr" true
          (rejects (fun () ->
               Cookie.render_set_cookie
                 ~attributes:
                   { Cookie.path = Some "/\r\nX: y"; max_age = None; http_only = false; secure = false }
                 ~name:"sid" "v")));
  ]

let request_tests =
  [
    test "query string parsed and decoded" (fun () ->
        let r = Request.make Meth.GET "/search?q=hello+world&lang=en%2Dus" in
        check_str "path" "/search" r.Request.path;
        check_bool "decoded" true (Request.query_param r "q" = Some "hello world");
        check_bool "pct" true (Request.query_param r "lang" = Some "en-us"));
    test "percent_decode handles malformed escapes" (fun () ->
        check_str "trailing" "100%" (Request.percent_decode "100%");
        check_str "bad hex" "%zz" (Request.percent_decode "%zz"));
    test "percent encode/decode round-trip" (fun () ->
        let s = "a b/c?&=%~" in
        check_str "rt" s (Request.percent_decode (Request.percent_encode s)));
    test "percent_decode_path keeps '+' literal" (fun () ->
        check_str "plus" "a+b" (Request.percent_decode_path "a+b");
        check_str "escape" "a b" (Request.percent_decode_path "a%20b");
        (* Form decoding still maps '+' to space. *)
        check_str "form" "a b" (Request.percent_decode "a+b"));
    test "form params require urlencoded content type" (fun () ->
        let headers = Headers.of_list [ ("Content-Type", "application/x-www-form-urlencoded") ] in
        let r = Request.make ~headers ~body:"a=1&b=two+2" Meth.POST "/f" in
        check_bool "a" true (Request.form_param r "a" = Some "1");
        check_bool "b" true (Request.form_param r "b" = Some "two 2");
        let r2 = Request.make ~body:"a=1" Meth.POST "/f" in
        check_bool "no ct" true (Request.form_param r2 "a" = None));
    test "content type with charset suffix accepted" (fun () ->
        let headers =
          Headers.of_list [ ("Content-Type", "application/x-www-form-urlencoded; charset=utf-8") ]
        in
        let r = Request.make ~headers ~body:"a=1" Meth.POST "/f" in
        check_bool "a" true (Request.form_param r "a" = Some "1"));
    test "cookies from header" (fun () ->
        let headers = Headers.of_list [ ("Cookie", "user=ada; k=v") ] in
        let r = Request.make ~headers Meth.GET "/" in
        check_bool "user" true (Request.cookie r "user" = Some "ada");
        check_bool "missing" true (Request.cookie r "nope" = None));
  ]

let route_tests =
  [
    test "literal route matches exactly" (fun () ->
        let r = Route.parse_exn "/a/b" in
        check_bool "match" true (Route.matches r "/a/b" = Some []);
        check_bool "no match" true (Route.matches r "/a/b/c" = None);
        check_bool "no prefix" true (Route.matches r "/a" = None));
    test "parameters capture and decode" (fun () ->
        let r = Route.parse_exn "/view/<answer_id>" in
        check_bool "capture" true (Route.matches r "/view/42" = Some [ ("answer_id", "42") ]);
        check_bool "decode" true
          (Route.matches r "/view/a%20b" = Some [ ("answer_id", "a b") ]));
    test "rest parameter swallows the tail" (fun () ->
        let r = Route.parse_exn "/static/<path..>" in
        check_bool "tail" true (Route.matches r "/static/css/site.css" = Some [ ("path", "css/site.css") ]));
    test "rest must be last" (fun () ->
        check_bool "reject" true (Result.is_error (Route.parse "/a/<x..>/b")));
    test "duplicate parameter names rejected" (fun () ->
        check_bool "dup" true (Result.is_error (Route.parse "/a/<x>/<x>")));
    test "must start with slash" (fun () ->
        check_bool "rooted" true (Result.is_error (Route.parse "a/b")));
    test "specificity counts literals" (fun () ->
        check_int "2" 2 (Route.specificity (Route.parse_exn "/a/b/<x>"));
        check_int "0" 0 (Route.specificity (Route.parse_exn "/<x>")));
    test "encoded literals match their decoded spelling" (fun () ->
        let r = Route.parse_exn "/caf\xc3\xa9" in
        check_bool "encoded path" true (Route.matches r "/caf%C3%A9" = Some []));
    test "path decoding is not form decoding" (fun () ->
        (* '+' in a path segment is a literal plus, not a space. *)
        let r = Route.parse_exn "/tag/<t>" in
        check_bool "plus kept" true (Route.matches r "/tag/c%2B%2B" = Some [ ("t", "c++") ]);
        check_bool "raw plus kept" true (Route.matches r "/tag/a+b" = Some [ ("t", "a+b") ]));
    test "encoded slash stays inside its segment" (fun () ->
        let r = Route.parse_exn "/f/<name>" in
        check_bool "%2F" true (Route.matches r "/f/a%2Fb" = Some [ ("name", "a/b") ]);
        check_bool "not a separator" true (Route.matches r "/f/a/b" = None));
    test "truncated escapes pass through undecoded" (fun () ->
        let r = Route.parse_exn "/x/<v>" in
        check_bool "%4" true (Route.matches r "/x/a%4" = Some [ ("v", "a%4") ]);
        check_bool "bare %" true (Route.matches r "/x/100%" = Some [ ("v", "100%") ]);
        check_bool "bad hex" true (Route.matches r "/x/%zz" = Some [ ("v", "%zz") ]));
    test "percent_encode round-trips through segment decoding" (fun () ->
        List.iter
          (fun s ->
            let r = Route.parse_exn "/v/<x>" in
            check_bool s true
              (Route.matches r ("/v/" ^ Request.percent_encode s) = Some [ ("x", s) ]))
          [ "alice@example.com"; "a/b"; "a+b c"; "50%"; "caf\xc3\xa9" ]);
  ]

let router_tests =
  [
    test "dispatch routes by method and path" (fun () ->
        let r = Router.create () in
        Router.get r "/hi" (fun _ -> Response.text "hello");
        Router.post r "/hi" (fun _ -> Response.text "posted");
        let get = Router.dispatch r (Request.make Meth.GET "/hi") in
        let post = Router.dispatch r (Request.make Meth.POST "/hi") in
        check_str "get" "hello" get.Response.body;
        check_str "post" "posted" post.Response.body);
    test "404 vs 405" (fun () ->
        let r = Router.create () in
        Router.get r "/only-get" (fun _ -> Response.text "ok");
        check_int "404" 404
          (Status.to_int (Router.dispatch r (Request.make Meth.GET "/none")).Response.status);
        check_int "405" 405
          (Status.to_int (Router.dispatch r (Request.make Meth.POST "/only-get")).Response.status));
    test "more specific route wins" (fun () ->
        let r = Router.create () in
        Router.get r "/a/<x>" (fun _ -> Response.text "param");
        Router.get r "/a/b" (fun _ -> Response.text "literal");
        check_str "literal" "literal"
          (Router.dispatch r (Request.make Meth.GET "/a/b")).Response.body;
        check_str "param" "param"
          (Router.dispatch r (Request.make Meth.GET "/a/zzz")).Response.body);
    test "path params reach the handler" (fun () ->
        let r = Router.create () in
        Router.get r "/u/<name>" (fun req -> Response.text (Request.path_param_exn req "name"));
        check_str "name" "ada" (Router.dispatch r (Request.make Meth.GET "/u/ada")).Response.body);
    test "handler exceptions become 500s" (fun () ->
        let r = Router.create () in
        Router.on_error r (fun _ -> ());
        Router.get r "/boom" (fun _ -> failwith "kaboom");
        check_int "500" 500
          (Status.to_int (Router.dispatch r (Request.make Meth.GET "/boom")).Response.status));
    test "500 bodies never leak exception text" (fun () ->
        let r = Router.create () in
        let logged = ref "" in
        Router.on_error r (fun msg -> logged := msg);
        Router.get r "/boom" (fun _ -> failwith "secret-/etc/passwd-path");
        let resp = Router.dispatch r (Request.make Meth.GET "/boom") in
        check_int "500" 500 (Status.to_int resp.Response.status);
        check_str "redacted" "internal error" resp.Response.body;
        check_bool "no leak" false (contains resp.Response.body "secret");
        (* The operator still gets the details, server-side. *)
        check_bool "logged" true (contains !logged "secret-/etc/passwd-path");
        check_bool "logged route" true (contains !logged "GET /boom"));
    test "specificity wins regardless of registration order" (fun () ->
        (* Entries are pre-sorted at registration, so every order must
           dispatch identically when specificities differ. *)
        List.iter
          (fun routes ->
            let r = Router.create () in
            List.iter (fun (pat, name) -> Router.get r pat (fun _ -> Response.text name)) routes;
            let body path =
              (Router.dispatch r (Request.make Meth.GET path)).Response.body
            in
            check_str "literal" "literal" (body "/a/b");
            check_str "rest" "rest" (body "/a/x/y"))
          [
            [ ("/a/<x>", "param"); ("/a/b", "literal"); ("/a/<p..>", "rest") ];
            [ ("/a/<p..>", "rest"); ("/a/b", "literal"); ("/a/<x>", "param") ];
            [ ("/a/b", "literal"); ("/a/<p..>", "rest"); ("/a/<x>", "param") ];
          ]);
    test "equal specificity ties break by registration order" (fun () ->
        let r = Router.create () in
        Router.get r "/a/<p..>" (fun _ -> Response.text "rest");
        Router.get r "/a/<x>" (fun _ -> Response.text "param");
        check_str "first registered" "rest"
          (Router.dispatch r (Request.make Meth.GET "/a/zzz")).Response.body;
        let r = Router.create () in
        Router.get r "/a/<x>" (fun _ -> Response.text "param");
        Router.get r "/a/<p..>" (fun _ -> Response.text "rest");
        check_str "first registered" "param"
          (Router.dispatch r (Request.make Meth.GET "/a/zzz")).Response.body);
    test "routes reports registration order" (fun () ->
        let r = Router.create () in
        Router.get r "/<x>" (fun _ -> Response.text "1");
        Router.get r "/a/b" (fun _ -> Response.text "2");
        Alcotest.(check (list string))
          "order" [ "/<x>"; "/a/b" ]
          (List.map snd (Router.routes r)));
    test "duplicate route registration rejected" (fun () ->
        let r = Router.create () in
        Router.get r "/a" (fun _ -> Response.text "1");
        check_bool "dup" true
          (try
             Router.get r "/a" (fun _ -> Response.text "2");
             false
           with Invalid_argument _ -> true));
    test "middleware wraps handlers, earliest outermost" (fun () ->
        let r = Router.create () in
        Router.get r "/m" (fun _ -> Response.text "core");
        Router.use r (fun next req ->
            let resp = next req in
            { resp with Response.body = "[" ^ resp.Response.body ^ "]" });
        Router.use r (fun next req ->
            let resp = next req in
            { resp with Response.body = "<" ^ resp.Response.body ^ ">" });
        check_str "wrapped" "[<core>]"
          (Router.dispatch r (Request.make Meth.GET "/m")).Response.body);
  ]

let template_tests =
  [
    test "variable substitution escapes HTML" (fun () ->
        let t = Template.compile_exn "<p>{{x}}</p>" in
        check_str "escaped" "<p>&lt;b&gt;&amp;</p>"
          (Template.render t [ ("x", Template.Str "<b>&") ]));
    test "triple braces render raw" (fun () ->
        let t = Template.compile_exn "{{{x}}}" in
        check_str "raw" "<b>" (Template.render t [ ("x", Template.Str "<b>") ]));
    test "missing variables render empty" (fun () ->
        let t = Template.compile_exn "a{{ghost}}b" in
        check_str "empty" "ab" (Template.render t []));
    test "sections iterate lists with scoping" (fun () ->
        let t = Template.compile_exn "{{#xs}}({{n}}){{/xs}}" in
        check_str "loop" "(1)(2)"
          (Template.render t
             [ ("xs", Template.List [ [ ("n", Template.Str "1") ]; [ ("n", Template.Str "2") ] ]) ]));
    test "inner scope shadows outer" (fun () ->
        let t = Template.compile_exn "{{#xs}}{{n}}{{/xs}}" in
        check_str "shadow" "inner"
          (Template.render t
             [ ("n", Template.Str "outer");
               ("xs", Template.List [ [ ("n", Template.Str "inner") ] ]) ]));
    test "bool sections and inverted sections" (fun () ->
        let t = Template.compile_exn "{{#on}}yes{{/on}}{{^on}}no{{/on}}" in
        check_str "true" "yes" (Template.render t [ ("on", Template.Bool true) ]);
        check_str "false" "no" (Template.render t [ ("on", Template.Bool false) ]);
        check_str "missing is falsy" "no" (Template.render t []));
    test "string section binds dot" (fun () ->
        let t = Template.compile_exn "{{#name}}hi {{.}}{{/name}}" in
        check_str "dot" "hi ada" (Template.render t [ ("name", Template.Str "ada") ]));
    test "unbalanced sections rejected" (fun () ->
        check_bool "open" true (Result.is_error (Template.compile "{{#a}}x"));
        check_bool "mismatch" true (Result.is_error (Template.compile "{{#a}}x{{/b}}"));
        check_bool "stray close" true (Result.is_error (Template.compile "x{{/a}}")));
    test "unterminated tag rejected" (fun () ->
        check_bool "open brace" true (Result.is_error (Template.compile "{{x")));
    test "html_escape covers the five characters" (fun () ->
        check_str "all" "&amp;&lt;&gt;&quot;&#39;" (Template.html_escape "&<>\"'"));
  ]

let response_tests =
  [
    test "text and html set content types" (fun () ->
        check_bool "text" true
          (Response.header (Response.text "x") "content-type" = Some "text/plain; charset=utf-8");
        check_bool "html" true
          (Response.header (Response.html "x") "content-type" = Some "text/html; charset=utf-8"));
    test "redirect sets location and 303" (fun () ->
        let r = Response.redirect "/next" in
        check_int "303" 303 (Status.to_int r.Response.status);
        check_bool "location" true (Response.header r "location" = Some "/next"));
    test "with_cookie appends Set-Cookie" (fun () ->
        let r = Response.with_cookie (Response.text "x") ~name:"sid" ~value:"1" in
        check_bool "set" true (Option.is_some (Response.header r "set-cookie")));
  ]

let () =
  Alcotest.run "http"
    [
      ("meth-status", meth_status_tests);
      ("headers", headers_tests);
      ("cookie", cookie_tests);
      ("request", request_tests);
      ("route", route_tests);
      ("router", router_tests);
      ("template", template_tests);
      ("response", response_tests);
    ]
