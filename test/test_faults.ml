(* The fail-closed matrix: every fault the injector can produce, at every
   seam, must surface as a structured deny/error — never as leaked
   sensitive data in a response and never as an exception escaping the
   handler. Plus unit tests for the injector itself and for the
   connector's retry/backoff and circuit-breaker machinery. *)

open Sesame_core
module F = Sesame_faults
module Http = Sesame_http
module Apps = Sesame_apps
module Db = Sesame_db

let test name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

(* Every test must leave the injector disarmed, even on failure: the
   suites share one process. *)
let with_plans ?seed plans f =
  F.arm ?seed plans;
  Fun.protect ~finally:F.disarm f

(* ------------------------------------------------------------------ *)
(* Injector unit tests *)

let injector_tests =
  [
    test "point and action names round-trip" (fun () ->
        List.iter
          (fun p ->
            check_bool (F.point_name p) true (F.point_of_string (F.point_name p) = Some p))
          F.all_points;
        List.iter
          (fun a -> check_bool (F.action_name a) true (F.action_of_string (F.action_name a) = Some a))
          [ F.Raise; F.Corrupt; F.Exhaust ];
        check_bool "delay" true (F.action_of_string "delay:5000" = Some (F.Delay 5000)));
    test "disarmed hits are no-ops" (fun () ->
        F.disarm ();
        F.hit F.Db_query;
        check_bool "armed" false (F.armed ()));
    test "nth plan fires exactly on the nth traversal" (fun () ->
        with_plans [ F.plan ~nth:3 F.Db_query F.Raise ] (fun () ->
            F.hit F.Db_query;
            F.hit F.Db_query;
            check_bool "third raises" true
              (try
                 F.hit F.Db_query;
                 false
               with F.Injected { point = F.Db_query; _ } -> true);
            F.hit F.Db_query;
            check_int "counted" 4 (F.hits F.Db_query)));
    test "nth=0 fires on every traversal" (fun () ->
        with_plans [ F.plan ~nth:0 F.Guest_body F.Raise ] (fun () ->
            for _ = 1 to 3 do
              check_bool "raises" true
                (try
                   F.hit F.Guest_body;
                   false
                 with F.Injected _ -> true)
            done));
    test "corruption is deterministic under a seed" (fun () ->
        let corrupt () =
          with_plans ~seed:7 [ F.plan ~nth:0 F.Copier_decode F.Corrupt ] (fun () ->
              F.hit ~corruptible:true F.Copier_decode;
              check_bool "corrupting" true (F.corrupting F.Copier_decode);
              F.corrupt_string F.Copier_decode "hello sandbox")
        in
        let c1 = corrupt () and c2 = corrupt () in
        check_str "same seed, same corruption" c1 c2;
        check_bool "actually corrupted" true (c1 <> "hello sandbox");
        check_int "length preserved" (String.length "hello sandbox") (String.length c1));
    test "corrupt escalates to raise on non-corruptible seams" (fun () ->
        with_plans [ F.plan ~nth:0 F.Policy_check F.Corrupt ] (fun () ->
            check_bool "raises" true
              (try
                 F.hit F.Policy_check;
                 false
               with F.Injected { action = F.Corrupt; _ } -> true)));
    test "exhaust is transient and classifiable from its message" (fun () ->
        with_plans [ F.plan F.Db_query F.Exhaust ] (fun () ->
            match F.hit F.Db_query with
            | () -> Alcotest.fail "should raise"
            | exception F.Injected { transient; point; action } ->
                check_bool "transient" true transient;
                let msg = F.injected_message point action ~transient in
                check_bool "prefixed" true (contains msg "transient: ");
                check_bool "classified" true (Sesame_conn.is_transient_db_message msg)));
    test "raise is permanent" (fun () ->
        with_plans [ F.plan F.Db_query F.Raise ] (fun () ->
            match F.hit F.Db_query with
            | () -> Alcotest.fail "should raise"
            | exception F.Injected { transient; point; action } ->
                check_bool "permanent" false transient;
                check_bool "not transient msg" false
                  (Sesame_conn.is_transient_db_message
                     (F.injected_message point action ~transient))));
  ]

(* ------------------------------------------------------------------ *)
(* The end-to-end matrix over WebSubmit *)

let req ?(cookies = "") ?(body = "") meth target =
  Http.Request.make
    ~headers:
      (Http.Headers.of_list
         [ ("Cookie", cookies); ("Content-Type", "application/x-www-form-urlencoded") ])
    ~body meth target

let status r = Http.Status.to_int r.Http.Response.status
let body r = r.Http.Response.body

let websubmit () =
  (* Build and seed with the injector disarmed: the plans must hit the
     request under test, not the fixture setup. *)
  F.disarm ();
  let app = Result.get_ok (Apps.Websubmit.create ()) in
  (match Apps.Websubmit.seed app ~students:4 ~questions:2 with
  | Ok () -> ()
  | Error m -> failwith m);
  Apps.Email.clear_outbox ();
  app

(* Markers of seeded sensitive data: answers render as "answer <n> from
   <email>" and every seeded principal is @school.edu. A faulted response
   must contain neither. *)
let leak_markers = [ "answer"; "school.edu" ]

let register_counter = ref 0

(* One endpoint per seam: /register crosses the sandbox seams (the API
   key is hashed in a sandboxed region); /view crosses the DB, policy
   and render seams. The durable-store seams are never traversed by this
   in-memory fixture; they get their own matrix below, because their
   failure semantics (poison, quarantine, reopen-through-recovery)
   differ from in-process seams. *)
let in_memory_points =
  [
    F.Arena_alloc;
    F.Copier_encode;
    F.Copier_decode;
    F.Guest_body;
    F.Db_query;
    F.Policy_check;
    F.Template_render;
  ]

let drive_seam app point =
  match point with
  | F.Arena_alloc | F.Copier_encode | F.Copier_decode | F.Guest_body ->
      incr register_counter;
      let body =
        Printf.sprintf "email=matrix%d%%40example.org&apikey=k-%d" !register_counter
          !register_counter
      in
      Apps.Websubmit.handle app (req ~body Http.Meth.POST "/register")
  | F.Db_query | F.Policy_check | F.Template_render ->
      Apps.Websubmit.handle app (req ~cookies:"user=student0@school.edu" Http.Meth.GET "/view/1")
  | F.Db_wal_append | F.Db_wal_fsync | F.Db_checkpoint_write | F.Db_checkpoint_rename ->
      invalid_arg "durable seams are driven by the wal matrix"
  | F.Preflight_trap_miss | F.Quota_account | F.Attest_append | F.Attest_fsync ->
      invalid_arg "hardening seams are driven by the hardening matrix below"
  | F.Db_scan_cancel | F.Wal_commit_deadline | F.Brownout_enter | F.Brownout_exit ->
      invalid_arg "deadline/brownout seams are driven by the overload matrix below"

let matrix_case app (point, action) =
  let name = Printf.sprintf "%s × %s" (F.point_name point) (F.action_name action) in
  test name (fun () ->
      let response, traversals =
        with_plans [ F.plan ~nth:0 point action ] (fun () ->
            let r =
              try drive_seam app point
              with exn ->
                Alcotest.failf "%s: exception escaped the handler: %s" name
                  (Printexc.to_string exn)
            in
            (r, F.hits point))
      in
      check_bool "seam traversed" true (traversals > 0);
      check_bool
        (Printf.sprintf "fails closed (got %d)" (status response))
        true
        (status response >= 400);
      List.iter
        (fun marker ->
          check_bool (Printf.sprintf "no %S in faulted response" marker) false
            (contains (body response) marker))
        leak_markers;
      (* Recovery: with the fault cleared, the same seam serves a healthy
         request again — quarantined arenas were replaced, no breaker is
         stuck open, no state was corrupted. *)
      let after = drive_seam app point in
      check_bool
        (Printf.sprintf "recovers after disarm (got %d)" (status after))
        true
        (status after < 400))

let matrix_tests =
  let app = websubmit () in
  let cases =
    List.concat_map
      (fun point -> List.map (fun action -> (point, action)) [ F.Raise; F.Corrupt; F.Exhaust ])
      in_memory_points
  in
  List.map (matrix_case app) cases
  @ [
      test "delay stalls but does not fail" (fun () ->
          let app = websubmit () in
          let r =
            with_plans [ F.plan ~nth:0 F.Db_query (F.Delay 10_000) ] (fun () ->
                drive_seam app F.Db_query)
          in
          check_int "still serves" 200 (status r);
          check_bool "still renders the answer" true (contains (body r) "answer"));
    ]

(* ------------------------------------------------------------------ *)
(* The durable-store seams. WAL append/fsync faults must fail the
   statement — never acknowledge — and poison the store so even reads
   fail closed (without leaking) until a reopen through recovery, which
   must serve every acknowledged row under its original policy.
   Checkpoint faults are recoverable: traffic continues, and the old
   checkpoint + WAL stay authoritative. *)

module Wal = Sesame_wal

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "sesame-faults-wal-%d" !counter)
    in
    rm_rf dir;
    dir

let durable_websubmit dir =
  F.disarm ();
  match Apps.Websubmit.create_durable ~data_dir:dir () with
  | Error m -> failwith m
  | Ok (app, store) ->
      if Apps.Websubmit.answer_count app = 0 then (
        match Apps.Websubmit.seed app ~students:4 ~questions:2 with
        | Ok () -> ()
        | Error m -> failwith m);
      Apps.Email.clear_outbox ();
      (app, store)

let submit app n =
  Apps.Websubmit.handle app
    (req ~cookies:"user=student0@school.edu"
       ~body:(Printf.sprintf "answer=wal%d" n)
       Http.Meth.POST
       (Printf.sprintf "/submit/1/%d" (100 + n)))

let view app ~user id =
  Apps.Websubmit.handle app
    (req ~cookies:("user=" ^ user) Http.Meth.GET (Printf.sprintf "/view/%d" id))

let wal_write_case (point, action) =
  let name = Printf.sprintf "%s × %s" (F.point_name point) (F.action_name action) in
  test name (fun () ->
      let dir = fresh_dir () in
      let app, store = durable_websubmit dir in
      let before = Apps.Websubmit.answer_count app in
      let response, traversals =
        with_plans [ F.plan ~nth:0 point action ] (fun () ->
            let r =
              try submit app 1
              with exn ->
                Alcotest.failf "%s: exception escaped the handler: %s" name
                  (Printexc.to_string exn)
            in
            (r, F.hits point))
      in
      check_bool "seam traversed" true (traversals > 0);
      check_bool
        (Printf.sprintf "statement not acknowledged (got %d)" (status response))
        true
        (status response >= 400);
      List.iter
        (fun marker ->
          check_bool (Printf.sprintf "no %S in faulted response" marker) false
            (contains (body response) marker))
        leak_markers;
      (* Memory and log have diverged: the store is poisoned, and even
         reads fail closed — still without leaking. *)
      check_bool "poison reason recorded" true
        (Db.Database.poisoned (Apps.Websubmit.database app) <> None);
      let read = view app ~user:"student0@school.edu" 1 in
      check_bool "reads fail while quarantined" true (status read >= 400);
      List.iter
        (fun marker ->
          check_bool (Printf.sprintf "no %S while quarantined" marker) false
            (contains (body read) marker))
        leak_markers;
      ignore (Wal.Durable.close store);
      (* Reopen through recovery. An append fault strikes before the frame
         is buffered, so the failed insert is gone; an fsync fault strikes
         after the write, so the frame may be on disk — durable but never
         acknowledged, which recovery is allowed to surface. Either way
         every recovered row is under its original policy. *)
      let app', store' = durable_websubmit dir in
      let recovered = Apps.Websubmit.answer_count app' in
      let expected = if point = F.Db_wal_append then before else before + 1 in
      check_int "acknowledged rows recovered" expected recovered;
      check_int "author reads a recovered answer" 200
        (status (view app' ~user:"student0@school.edu" 1));
      check_bool "another student is still denied" true
        (status (view app' ~user:"student1@school.edu" 1) >= 400);
      if recovered > before then begin
        (* The unacknowledged-but-durable row is also policy-governed. *)
        check_int "author reads the surfaced row" 200
          (status (view app' ~user:"student0@school.edu" 9));
        check_bool "others denied on the surfaced row" true
          (status (view app' ~user:"student1@school.edu" 9) >= 400)
      end;
      ignore (Wal.Durable.close store'))

let wal_checkpoint_case (point, action) =
  let name = Printf.sprintf "%s × %s" (F.point_name point) (F.action_name action) in
  test name (fun () ->
      let dir = fresh_dir () in
      let app, store = durable_websubmit dir in
      let before = Apps.Websubmit.answer_count app in
      let result, traversals =
        with_plans [ F.plan ~nth:0 point action ] (fun () ->
            let r = Wal.Durable.checkpoint store in
            (r, F.hits point))
      in
      check_bool "seam traversed" true (traversals > 0);
      check_bool "checkpoint reports failure" true (Result.is_error result);
      check_bool "failure recorded" true (Wal.Durable.last_checkpoint_error store <> None);
      (* Recoverable: no poison, reads serve, writes acknowledge. *)
      check_bool "no poison" true
        (Db.Database.poisoned (Apps.Websubmit.database app) = None);
      check_int "reads still serve" 200 (status (view app ~user:"student0@school.edu" 1));
      check_int "writes still acknowledge" 201 (status (submit app 2));
      (* Fault cleared: checkpointing works again, and a reopen recovers
         everything — acknowledged writes included. *)
      (match Wal.Durable.checkpoint store with
      | Ok () -> ()
      | Error m -> Alcotest.failf "checkpoint after disarm failed: %s" m);
      ignore (Wal.Durable.close store);
      let app', store' = durable_websubmit dir in
      check_int "all acknowledged rows recovered" (before + 1)
        (Apps.Websubmit.answer_count app');
      check_int "author still reads" 200 (status (view app' ~user:"student0@school.edu" 1));
      check_bool "policy still enforced" true
        (status (view app' ~user:"student1@school.edu" 1) >= 400);
      ignore (Wal.Durable.close store'))

let wal_matrix_tests =
  let actions = [ F.Raise; F.Corrupt; F.Exhaust ] in
  List.map wal_write_case
    (List.concat_map
       (fun point -> List.map (fun action -> (point, action)) actions)
       [ F.Db_wal_append; F.Db_wal_fsync ])
  @ List.map wal_checkpoint_case
      (List.concat_map
         (fun point -> List.map (fun action -> (point, action)) actions)
         [ F.Db_checkpoint_write; F.Db_checkpoint_rename ])

(* ------------------------------------------------------------------ *)
(* The overload seams: scan cancellation, write admission, and the two
   brownout transitions. Their failure semantics differ from the WAL
   seams above — a cancelled scan or refused write admission must leave
   the store healthy (no poison), and a faulted brownout transition must
   leave the connector in its previous degraded-or-healthy state rather
   than half-switched. *)

(* The scan-cancel seam only fires once a single scan has walked 256
   slots, so this fixture needs a table bigger than one checkpoint
   interval. 130 students x 2 questions = 260 answers. *)
let big_websubmit () =
  F.disarm ();
  let app = Result.get_ok (Apps.Websubmit.create ()) in
  (match Apps.Websubmit.seed app ~students:130 ~questions:2 with
  | Ok () -> ()
  | Error m -> failwith m);
  Apps.Email.clear_outbox ();
  app

let aggregates app =
  Apps.Websubmit.handle app (req ~cookies:"user=admin@school.edu" Http.Meth.GET "/aggregates")

let scan_cancel_case action =
  let name = Printf.sprintf "db-scan-cancel × %s" (F.action_name action) in
  test name (fun () ->
      let app = big_websubmit () in
      let response, traversals =
        with_plans [ F.plan ~nth:0 F.Db_scan_cancel action ] (fun () ->
            let r =
              try aggregates app
              with exn ->
                Alcotest.failf "%s: exception escaped the handler: %s" name
                  (Printexc.to_string exn)
            in
            (r, F.hits F.Db_scan_cancel))
      in
      check_bool "seam traversed" true (traversals > 0);
      check_bool
        (Printf.sprintf "scan abandoned, fails closed (got %d)" (status response))
        true
        (status response >= 400);
      List.iter
        (fun marker ->
          check_bool (Printf.sprintf "no %S in cancelled scan" marker) false
            (contains (body response) marker))
        leak_markers;
      (* A cancelled scan read nothing into the response and wrote
         nothing: the store is healthy and the same scan completes. *)
      check_bool "no poison" true
        (Db.Database.poisoned (Apps.Websubmit.database app) = None);
      check_int "recovers after disarm" 200 (status (aggregates app)))

let wal_commit_deadline_case action =
  let name = Printf.sprintf "wal-commit-deadline × %s" (F.action_name action) in
  test name (fun () ->
      let dir = fresh_dir () in
      let app, store = durable_websubmit dir in
      let before = Apps.Websubmit.answer_count app in
      let response, traversals =
        with_plans [ F.plan ~nth:0 F.Wal_commit_deadline action ] (fun () ->
            let r =
              try submit app 1
              with exn ->
                Alcotest.failf "%s: exception escaped the handler: %s" name
                  (Printexc.to_string exn)
            in
            (r, F.hits F.Wal_commit_deadline))
      in
      check_bool "seam traversed" true (traversals > 0);
      check_bool
        (Printf.sprintf "write refused at admission (got %d)" (status response))
        true
        (status response >= 400);
      List.iter
        (fun marker ->
          check_bool (Printf.sprintf "no %S in refused write" marker) false
            (contains (body response) marker))
        leak_markers;
      (* Admission strikes before the engine applies anything: unlike a
         mid-journal fault, memory and log never diverged, so the store
         is NOT poisoned — reads serve and the retried write lands. *)
      check_bool "store not poisoned" true
        (Db.Database.poisoned (Apps.Websubmit.database app) = None);
      check_int "reads still serve" 200 (status (view app ~user:"student0@school.edu" 1));
      check_int "retried write acknowledges" 201 (status (submit app 2));
      check_int "no row from the refused write" (before + 1) (Apps.Websubmit.answer_count app);
      ignore (Wal.Durable.close store))

(* Poison the store through a WAL append fault, as the brownout tests'
   common entry condition. *)
let poison app =
  let r = with_plans [ F.plan ~nth:0 F.Db_wal_append F.Raise ] (fun () -> submit app 1) in
  check_bool "poisoning write refused" true (status r >= 400);
  check_bool "store poisoned" true
    (Db.Database.poisoned (Apps.Websubmit.database app) <> None)

(* While the live store is poisoned, session lookup (a direct-db path)
   cannot resolve students; only the admin fallback authenticates. The
   brownout cases therefore probe as admin — which the view and submit
   policies both admit — so they observe the connector's degraded
   serving, not a 401 from the auth shim. *)
let admin = "admin@school.edu"

let submit_as app ~user n =
  Apps.Websubmit.handle app
    (req ~cookies:("user=" ^ user)
       ~body:(Printf.sprintf "answer=wal%d" n)
       Http.Meth.POST
       (Printf.sprintf "/submit/1/%d" (100 + n)))

(* Read through the handler with the per-request serving state reset, so
   the degraded marker observed is this request's own. The probe is
   [/aggregates]: unlike [/view/<id>] (whose SQL filters on the caller's
   own email, so the admin fallback legitimately sees no rows) it serves
   any admin, and its aggregation always re-scans the store, so the
   snapshot fallback is exercised on every request. *)
let aggregates_tracking_degraded app =
  Http.Serving.reset ();
  let r = aggregates app in
  (r, Http.Serving.degraded_reason ())

let brownout_enter_case action =
  let name = Printf.sprintf "brownout-enter × %s" (F.action_name action) in
  test name (fun () ->
      let dir = fresh_dir () in
      let app, store = durable_websubmit dir in
      poison app;
      (* Snapshot recovery itself fails: reads keep failing closed,
         exactly as they did before brownout existed — never a
         half-loaded snapshot presented as data. *)
      let (response, degraded), traversals =
        with_plans [ F.plan ~nth:0 F.Brownout_enter action ] (fun () ->
            let r =
              try aggregates_tracking_degraded app
              with exn ->
                Alcotest.failf "%s: exception escaped the handler: %s" name
                  (Printexc.to_string exn)
            in
            (r, F.hits F.Brownout_enter))
      in
      check_bool "seam traversed" true (traversals > 0);
      check_bool
        (Printf.sprintf "read fails closed (got %d)" (status response))
        true
        (status response >= 400);
      check_bool "not marked degraded" true (degraded = None);
      List.iter
        (fun marker ->
          check_bool (Printf.sprintf "no %S while quarantined" marker) false
            (contains (body response) marker))
        leak_markers;
      check_bool "did not enter brownout" false
        (Sesame_conn.in_brownout (Apps.Websubmit.conn app));
      (* Fault cleared: the next read enters brownout and serves the
         snapshot, marked degraded. *)
      let after, degraded = aggregates_tracking_degraded app in
      check_int "snapshot read serves after disarm" 200 (status after);
      check_str "marked degraded" "snapshot" (Option.value ~default:"" degraded);
      check_bool "now in brownout" true (Sesame_conn.in_brownout (Apps.Websubmit.conn app));
      ignore (Wal.Durable.close store))

let brownout_exit_case action =
  let name = Printf.sprintf "brownout-exit × %s" (F.action_name action) in
  test name (fun () ->
      let dir = fresh_dir () in
      let app, store = durable_websubmit dir in
      poison app;
      (* Enter brownout cleanly first. *)
      let entered, degraded = aggregates_tracking_degraded app in
      check_int "brownout read serves" 200 (status entered);
      check_str "marked degraded" "snapshot" (Option.value ~default:"" degraded);
      (* Recovery fails mid-exit: the connector STAYS degraded — snapshot
         reads keep serving, writes stay refused — rather than resuming
         on a half-recovered store. *)
      let result, traversals =
        with_plans [ F.plan ~nth:0 F.Brownout_exit action ] (fun () ->
            let r = Apps.Websubmit.recover app in
            (r, F.hits F.Brownout_exit))
      in
      check_bool "seam traversed" true (traversals > 0);
      check_bool "recovery reports failure" true (Result.is_error result);
      check_bool "still in brownout" true (Sesame_conn.in_brownout (Apps.Websubmit.conn app));
      let still, degraded = aggregates_tracking_degraded app in
      check_int "degraded reads still serve" 200 (status still);
      check_str "still marked degraded" "snapshot" (Option.value ~default:"" degraded);
      check_bool "writes still refused" true (status (submit_as app ~user:admin 2) >= 400);
      (* Fault cleared: recovery completes, writes acknowledge again and
         reads are fresh (no degraded marker). *)
      (match Apps.Websubmit.recover app with
      | Error m -> Alcotest.failf "recovery after disarm failed: %s" m
      | Ok store' ->
          check_bool "left brownout" false (Sesame_conn.in_brownout (Apps.Websubmit.conn app));
          let fresh, degraded = aggregates_tracking_degraded app in
          check_int "fresh read serves" 200 (status fresh);
          check_bool "no degraded marker" true (degraded = None);
          check_int "writes acknowledge again" 201 (status (submit app 3));
          ignore (Wal.Durable.close store'));
      ignore (Wal.Durable.close store))

let overload_matrix_tests =
  let actions = [ F.Raise; F.Corrupt; F.Exhaust ] in
  List.map scan_cancel_case actions
  @ List.map wal_commit_deadline_case actions
  @ List.map brownout_enter_case actions
  @ List.map brownout_exit_case [ F.Raise; F.Exhaust ]

(* ------------------------------------------------------------------ *)
(* Connector resilience: retry/backoff and the circuit breaker *)

module Only_family = struct
  type s = { who : string }

  let name = "test::only"
  let check s ctx = Context.user ctx = Some s.who
  let join = None
  let no_folding = false
  let describe s = "Only(" ^ s.who ^ ")"
end

module Only = Policy.Make (Only_family)

let ada = Mock.context ~user:"ada" ()

let conn_fixture () =
  F.disarm ();
  let db = Db.Database.create () in
  let schema =
    Db.Schema.make_exn ~name:"notes" ~primary_key:"id"
      [
        { name = "id"; ty = Db.Value.Tint; nullable = false };
        { name = "owner"; ty = Db.Value.Ttext; nullable = false };
        { name = "note"; ty = Db.Value.Ttext; nullable = false };
      ]
  in
  Result.get_ok (Db.Database.create_table db schema);
  ignore
    (Result.get_ok
       (Db.Database.exec db "INSERT INTO notes VALUES (?, ?, ?)"
          ~params:[ Db.Value.Int 1; Db.Value.Text "ada"; Db.Value.Text "ada's note" ]));
  Sesame_conn.create db

let retry : Sesame_conn.retry_policy =
  { max_attempts = 3; base_delay_s = 0.001; max_delay_s = 0.05; jitter = 0.2 }

let select conn = Sesame_conn.query conn ~context:ada "SELECT * FROM notes" ~params:[]

let retry_tests =
  [
    test "transient failures retry and then fail closed" (fun () ->
        let conn = conn_fixture () in
        let sleeps = ref [] in
        Sesame_conn.configure_resilience conn ~retry ~seed:42
          ~sleep:(fun d -> sleeps := d :: !sleeps)
          ~now:(fun () -> 0.0)
          ();
        let r = with_plans [ F.plan ~nth:0 F.Db_query F.Exhaust ] (fun () -> select conn) in
        (match r with
        | Error (Sesame_conn.Db_error { transient = true; _ }) -> ()
        | _ -> Alcotest.fail "expected a transient Db_error");
        let s = Sesame_conn.sink_stats conn "db::query" in
        check_int "attempts" 3 s.Sesame_conn.attempts;
        check_int "retries" 2 s.Sesame_conn.retries;
        check_int "two backoff sleeps" 2 (List.length !sleeps);
        List.iter (fun d -> check_bool "positive delay" true (d > 0.0)) !sleeps);
    test "backoff sequence is a pure function of the seed" (fun () ->
        let run () =
          let conn = conn_fixture () in
          let sleeps = ref [] in
          Sesame_conn.configure_resilience conn ~retry ~seed:42
            ~sleep:(fun d -> sleeps := d :: !sleeps)
            ~now:(fun () -> 0.0)
            ();
          ignore (with_plans [ F.plan ~nth:0 F.Db_query F.Exhaust ] (fun () -> select conn));
          List.rev !sleeps
        in
        let a = run () and b = run () in
        check_bool "identical delays" true (a = b);
        (* Capped exponential: each delay respects base·2^k scaled by
           ±jitter, and never exceeds the cap. *)
        List.iteri
          (fun i d ->
            let nominal = retry.Sesame_conn.base_delay_s *. (2.0 ** float_of_int i) in
            check_bool "within jitter band" true
              (d >= nominal *. (1.0 -. retry.Sesame_conn.jitter) -. 1e-9
              && d <= nominal *. (1.0 +. retry.Sesame_conn.jitter) +. 1e-9);
            check_bool "capped" true (d <= retry.Sesame_conn.max_delay_s +. 1e-9))
          a);
    test "a one-shot transient fault succeeds on retry" (fun () ->
        let conn = conn_fixture () in
        Sesame_conn.configure_resilience conn ~retry ~sleep:(fun _ -> ()) ~now:(fun () -> 0.0) ();
        let r = with_plans [ F.plan ~nth:1 F.Db_query F.Exhaust ] (fun () -> select conn) in
        check_bool "recovered" true (Result.is_ok r);
        let s = Sesame_conn.sink_stats conn "db::query" in
        check_int "one retry" 1 s.Sesame_conn.retries;
        check_int "breaker reset" 0 s.Sesame_conn.consecutive_failures;
        check_bool "closed" true (s.Sesame_conn.state = Sesame_conn.Closed));
    test "permanent failures are not retried" (fun () ->
        let conn = conn_fixture () in
        let sleeps = ref 0 in
        Sesame_conn.configure_resilience conn ~retry ~sleep:(fun _ -> incr sleeps)
          ~now:(fun () -> 0.0)
          ();
        let r = with_plans [ F.plan ~nth:0 F.Db_query F.Raise ] (fun () -> select conn) in
        (match r with
        | Error (Sesame_conn.Db_error { transient = false; _ }) -> ()
        | _ -> Alcotest.fail "expected a permanent Db_error");
        let s = Sesame_conn.sink_stats conn "db::query" in
        check_int "single attempt" 1 s.Sesame_conn.attempts;
        check_int "no retries" 0 s.Sesame_conn.retries;
        check_int "no sleeps" 0 !sleeps);
  ]

let breaker_tests =
  let scripted ?(threshold = 2) () =
    let conn = conn_fixture () in
    let clock = ref 0.0 in
    Sesame_conn.configure_resilience conn
      ~retry:{ retry with Sesame_conn.max_attempts = 1 }
      ~breaker:{ failure_threshold = threshold; cooldown_s = 10.0 }
      ~sleep:(fun _ -> ())
      ~now:(fun () -> !clock)
      ();
    (conn, clock)
  in
  [
    test "closed → open → half-open → closed" (fun () ->
        let conn, clock = scripted () in
        with_plans [ F.plan ~nth:0 F.Db_query F.Exhaust ] (fun () ->
            ignore (select conn);
            check_bool "still closed" true
              (Sesame_conn.breaker_state conn ~sink:"db::query" = Sesame_conn.Closed);
            ignore (select conn));
        let s = Sesame_conn.sink_stats conn "db::query" in
        check_bool "open" true (s.Sesame_conn.state = Sesame_conn.Open);
        check_int "tripped once" 1 s.Sesame_conn.opens;
        (* While open: short-circuited without touching the database. *)
        let before = with_plans [] (fun () -> F.hits F.Db_query) in
        ignore before;
        (match select conn with
        | Error (Sesame_conn.Breaker_open { sink }) -> check_str "sink" "db::query" sink
        | _ -> Alcotest.fail "expected Breaker_open");
        check_int "short-circuited" 1
          (Sesame_conn.sink_stats conn "db::query").Sesame_conn.short_circuited;
        (* Cooldown elapses: half-open, and a healthy probe closes it. *)
        clock := 11.0;
        check_bool "half-open" true
          (Sesame_conn.breaker_state conn ~sink:"db::query" = Sesame_conn.Half_open);
        check_bool "probe succeeds" true (Result.is_ok (select conn));
        let s = Sesame_conn.sink_stats conn "db::query" in
        check_bool "closed again" true (s.Sesame_conn.state = Sesame_conn.Closed);
        check_int "failures reset" 0 s.Sesame_conn.consecutive_failures);
    test "a failed half-open probe reopens the breaker" (fun () ->
        let conn, clock = scripted () in
        with_plans [ F.plan ~nth:0 F.Db_query F.Exhaust ] (fun () ->
            ignore (select conn);
            ignore (select conn);
            clock := 11.0;
            check_bool "half-open" true
              (Sesame_conn.breaker_state conn ~sink:"db::query" = Sesame_conn.Half_open);
            ignore (select conn));
        let s = Sesame_conn.sink_stats conn "db::query" in
        check_bool "reopened" true (s.Sesame_conn.state = Sesame_conn.Open);
        check_int "tripped twice" 2 s.Sesame_conn.opens;
        (* And it recovers once the fault clears and cooldown passes. *)
        clock := 22.0;
        check_bool "recovers" true (Result.is_ok (select conn));
        check_bool "closed" true
          (Sesame_conn.breaker_state conn ~sink:"db::query" = Sesame_conn.Closed));
    test "sinks have independent breakers" (fun () ->
        let conn, _clock = scripted () in
        with_plans [ F.plan ~nth:0 F.Db_query F.Exhaust ] (fun () ->
            ignore (select conn);
            ignore (select conn));
        check_bool "query open" true
          (Sesame_conn.breaker_state conn ~sink:"db::query" = Sesame_conn.Open);
        check_bool "execute unaffected" true
          (Sesame_conn.breaker_state conn ~sink:"db::execute" = Sesame_conn.Closed);
        match
          Sesame_conn.execute conn ~context:ada "UPDATE notes SET note = ? WHERE id = ?"
            ~params:
              [
                Pcon.wrap_no_policy (Db.Value.Text "updated");
                Pcon.wrap_no_policy (Db.Value.Int 1);
              ]
        with
        | Ok 1 -> ()
        | Ok n -> Alcotest.failf "updated %d rows" n
        | Error e -> Alcotest.failf "%a" Sesame_conn.pp_error e);
    test "policy denials neither retry nor feed the breaker" (fun () ->
        let conn, _clock = scripted ~threshold:1 () in
        let secret = Pcon.Internal.make (Only.make { who = "eve" }) (Db.Value.Int 1) in
        for _ = 1 to 3 do
          match
            Sesame_conn.query conn ~context:ada "SELECT * FROM notes WHERE id = ?"
              ~params:[ secret ]
          with
          | Error (Sesame_conn.Policy_denied _) -> ()
          | _ -> Alcotest.fail "expected denial"
        done;
        let s = Sesame_conn.sink_stats conn "db::query" in
        check_bool "closed" true (s.Sesame_conn.state = Sesame_conn.Closed);
        check_int "no failures recorded" 0 s.Sesame_conn.consecutive_failures;
        check_int "db never attempted" 0 s.Sesame_conn.attempts);
  ]

(* ------------------------------------------------------------------ *)
(* Fail-closed policy checks and denial metadata *)

let failclosed_tests =
  [
    test "denials carry the sink and the first denied parameter index" (fun () ->
        let conn = conn_fixture () in
        let ok = Pcon.wrap_no_policy (Db.Value.Int 1) in
        let denied who = Pcon.Internal.make (Only.make { who }) (Db.Value.Int 1) in
        match
          Sesame_conn.query conn ~context:ada "SELECT * FROM notes WHERE id = ? OR id = ? OR id = ?"
            ~params:[ ok; denied "eve"; denied "mallory" ]
        with
        | Error (Sesame_conn.Policy_denied { sink; param_index; _ }) ->
            check_str "sink" "db::query" sink;
            check_bool "first denied param, in order" true (param_index = Some 1)
        | _ -> Alcotest.fail "expected denial");
    test "an injected fault inside the policy check denies" (fun () ->
        let conn = conn_fixture () in
        let r =
          with_plans [ F.plan ~nth:0 F.Policy_check F.Raise ] (fun () ->
              Sesame_conn.query conn ~context:ada "SELECT * FROM notes WHERE id = ?"
                ~params:[ Pcon.wrap_no_policy (Db.Value.Int 1) ])
        in
        match r with
        | Error (Sesame_conn.Policy_denied { policy; param_index; _ }) ->
            check_bool "names the fault" true (contains policy "injected fault");
            check_bool "index" true (param_index = Some 0)
        | _ -> Alcotest.fail "expected denial");
    test "error_response never echoes render detail" (fun () ->
        let r =
          Sesame_web.error_response (Sesame_web.Render_error "SECRET-INTERNAL-DETAIL")
        in
        check_int "500" 500 (Http.Status.to_int r.Http.Response.status);
        check_str "generic body" "internal error" r.Http.Response.body;
        check_bool "no detail" false (contains r.Http.Response.body "SECRET"));
    test "web policy-check faults deny, not crash" (fun () ->
        let context = Mock.context ~user:"ada" () in
        let pcon = Pcon.Internal.make (Only.make { who = "ada" }) "payload" in
        let r =
          with_plans [ F.plan ~nth:0 F.Policy_check F.Raise ] (fun () ->
              Sesame_web.respond_text ~context pcon)
        in
        match r with
        | Error (Sesame_web.Policy_denied { policy; _ }) ->
            check_bool "names the fault" true (contains policy "injected fault")
        | _ -> Alcotest.fail "expected denial");
  ]

(* ------------------------------------------------------------------ *)
(* The hardening seams. Unlike the in-memory matrix these are not driven
   through an endpoint: each seam's contract is local and fail-closed —
   a missed preflight confirmation refuses the pool, a faulted
   accounting call leaves the books untouched, a faulted attestation
   append returns an error the region must turn into a denial. Every
   action (corrupt escalates to raise at payload-free seams) must behave
   identically, and every seam must recover the moment it is disarmed. *)

module Sbx = Sesame_sandbox
module Sign = Sesame_signing

let attest_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "sesame-faults-attest-%d-%d.log" (Unix.getpid ()) !counter)
    in
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ path; path ^ ".lock" ];
    path

let hardening_actions = [ F.Raise; F.Corrupt; F.Exhaust ]

(* [check] returns the seam's traversal count — it must read [F.hits]
   itself, before anything (including its own recovery step) disarms the
   injector and clears the counters. *)
let hardening_case point action check =
  let name = Printf.sprintf "%s × %s" (F.point_name point) (F.action_name action) in
  test name (fun () ->
      let traversals = with_plans [ F.plan ~nth:0 point action ] check in
      check_bool "seam traversed" true (traversals > 0))

let preflight_seam_cases =
  List.map
    (fun action ->
      hardening_case F.Preflight_trap_miss action (fun () ->
          (match Sbx.Sfi.create_pool () with
          | Ok _ -> Alcotest.fail "pool constructed despite missed trap confirmations"
          | Error report -> check_bool "fails closed" false (Sbx.Preflight.passed report));
          F.hits F.Preflight_trap_miss))
    hardening_actions
  @ [
      test "preflight recovers once disarmed" (fun () ->
          match Sbx.Sfi.create_pool () with
          | Ok (_, report) -> check_bool "passes" true (Sbx.Preflight.passed report)
          | Error report -> Alcotest.fail (Sbx.Preflight.summary report));
    ]

let quota_seam_cases =
  List.map
    (fun action ->
      hardening_case F.Quota_account action (fun () ->
          let q = Sbx.Quota.create () in
          match Sbx.Quota.account q ~key:"r" ~trapped:false ~fuel:7 ~wall_s:0.1 ~mem_bytes:64 with
          | () -> Alcotest.fail "account succeeded under an injected fault"
          | exception F.Injected _ ->
              (* The seam fires before any counter moves: the books must
                 be untouched, so the caller's denial is the only trace. *)
              check_bool "books untouched" true (Sbx.Quota.counters_for q ~key:"r" = None);
              F.hits F.Quota_account))
    hardening_actions
  @ [
      test "accounting recovers once disarmed" (fun () ->
          let q = Sbx.Quota.create () in
          Sbx.Quota.account q ~key:"r" ~trapped:false ~fuel:7 ~wall_s:0.1 ~mem_bytes:64;
          match Sbx.Quota.counters_for q ~key:"r" with
          | Some c -> check_int "charged" 7 c.Sbx.Quota.fuel
          | None -> Alcotest.fail "no books after a clean account");
    ]

(* [attest-append] fires before anything is written, so the refused
   frame never reaches the log; [attest-fsync] fires between write and
   flush — the bytes are in the file (a real crash would lose them with
   the page cache), but the caller still gets the error and must deny.
   [expect_frames] pins both behaviours down. *)
let attest_seam_case ~fsync ~expect_frames point action =
  hardening_case point action (fun () ->
      let path = attest_path () in
      (* The recorder is created before the plan can fire: nth:0 plans
         are armed by [hardening_case], and creation appends nothing. *)
      match Sign.Attest.create_recorder ~fsync path with
      | Error m -> Alcotest.fail m
      | Ok r ->
          let traversals =
            Fun.protect
              ~finally:(fun () -> Sign.Attest.close_recorder r)
              (fun () ->
                let hash = Sign.Sha256.digest_string "body" in
                (match
                   Sign.Attest.append_approval r ~kind:"sandboxed" ~body_hash:hash ~verdict:"v"
                 with
                | Ok () -> Alcotest.fail "append acknowledged under an injected fault"
                | Error _ -> ());
                let traversals = F.hits point in
                F.disarm ();
                (match
                   Sign.Attest.append_approval r ~kind:"sandboxed" ~body_hash:hash ~verdict:"v"
                 with
                | Ok () -> ()
                | Error m -> Alcotest.fail ("append after disarm: " ^ m));
                traversals)
          in
          let s =
            match Sign.Attest.verify path with Ok s -> s | Error m -> Alcotest.fail m
          in
          check_int "log holds exactly the expected frames" expect_frames
            s.Sign.Attest.approvals;
          traversals)

let attest_seam_cases =
  List.map (attest_seam_case ~fsync:false ~expect_frames:1 F.Attest_append) hardening_actions
  @ List.map (attest_seam_case ~fsync:true ~expect_frames:2 F.Attest_fsync) hardening_actions

let hardening_matrix_tests =
  preflight_seam_cases @ quota_seam_cases @ attest_seam_cases

let () =
  Alcotest.run "faults"
    [
      ("injector", injector_tests);
      ("matrix", matrix_tests);
      ("wal-matrix", wal_matrix_tests);
      ("overload-matrix", overload_matrix_tests);
      ("hardening-matrix", hardening_matrix_tests);
      ("retry", retry_tests);
      ("breaker", breaker_tests);
      ("fail-closed", failclosed_tests);
    ]
