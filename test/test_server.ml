(* The serving layer: wire-parser torture tests (split reads, pipelining,
   size caps, malformed input) driven from strings, and end-to-end socket
   tests against a live Sesame_server (keep-alive, shedding, timeouts,
   redacted 500s). *)

open Sesame_http
module Server = Sesame_server

let test name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let explode s = List.init (String.length s) (fun i -> String.make 1 s.[i])

let expect_request = function
  | `Request (incoming : Wire.incoming) -> incoming
  | `Eof -> Alcotest.fail "unexpected EOF"
  | `Error e -> Alcotest.fail ("unexpected parse error: " ^ Wire.error_message e)

let expect_error = function
  | `Request _ -> Alcotest.fail "expected a parse error, got a request"
  | `Eof -> Alcotest.fail "expected a parse error, got EOF"
  | `Error e -> e

let simple_get = "GET /a/b?x=1&y=two HTTP/1.1\r\nHost: localhost\r\n\r\n"

let post_with_body =
  "POST /submit HTTP/1.1\r\nHost: localhost\r\nContent-Type: "
  ^ "application/x-www-form-urlencoded\r\nContent-Length: 9\r\n\r\nanswer=42"

(* ------------------------------------------------------------------ *)
(* Wire parser torture. *)

let wire_parse_tests =
  [
    test "simple GET parses" (fun () ->
        let inc = expect_request (Wire.read_request (Wire.source_of_string simple_get)) in
        check_bool "meth" true (Meth.equal inc.Wire.request.Request.meth Meth.GET);
        check_str "path" "/a/b" inc.Wire.request.Request.path;
        check_bool "query" true (Request.query_param inc.Wire.request "y" = Some "two");
        check_bool "keep-alive" true inc.Wire.keep_alive);
    test "split reads: one byte per read()" (fun () ->
        let inc =
          expect_request (Wire.read_request (Wire.source_of_strings (explode post_with_body)))
        in
        check_str "body" "answer=42" inc.Wire.request.Request.body;
        check_bool "form" true (Request.form_param inc.Wire.request "answer" = Some "42"));
    test "split reads: every two-chunk split point" (fun () ->
        let n = String.length post_with_body in
        for i = 1 to n - 1 do
          let chunks = [ String.sub post_with_body 0 i; String.sub post_with_body i (n - i) ] in
          let inc = expect_request (Wire.read_request (Wire.source_of_strings chunks)) in
          check_str "body" "answer=42" inc.Wire.request.Request.body
        done);
    test "pipelined requests parse back-to-back from one buffer" (fun () ->
        let src = Wire.source_of_string (simple_get ^ post_with_body ^ simple_get) in
        let a = expect_request (Wire.read_request src) in
        let b = expect_request (Wire.read_request src) in
        let c = expect_request (Wire.read_request src) in
        check_str "a" "/a/b" a.Wire.request.Request.path;
        check_str "b" "/submit" b.Wire.request.Request.path;
        check_str "b body" "answer=42" b.Wire.request.Request.body;
        check_str "c" "/a/b" c.Wire.request.Request.path;
        check_bool "then eof" true (Wire.read_request src = `Eof));
    test "bare LF line endings tolerated" (fun () ->
        let inc =
          expect_request
            (Wire.read_request (Wire.source_of_string "GET /x HTTP/1.1\nHost: h\n\n"))
        in
        check_str "path" "/x" inc.Wire.request.Request.path);
    test "keep-alive defaults per version" (fun () ->
        let ka s = (expect_request (Wire.read_request (Wire.source_of_string s))).Wire.keep_alive in
        check_bool "1.1 default" true (ka "GET / HTTP/1.1\r\nHost: h\r\n\r\n");
        check_bool "1.1 close" false
          (ka "GET / HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n");
        check_bool "1.0 default" false (ka "GET / HTTP/1.0\r\n\r\n");
        check_bool "1.0 keep-alive" true
          (ka "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
    test "malformed request lines are 400s" (fun () ->
        List.iter
          (fun s ->
            let e = expect_error (Wire.read_request (Wire.source_of_string s)) in
            check_bool "malformed" true
              (match e with Wire.Malformed _ -> true | _ -> false);
            check_int "status" 400 (Status.to_int (Wire.error_status e)))
          [
            "GET /x\r\n\r\n" (* missing version *);
            "GET  /x HTTP/1.1\r\n\r\n" (* double space *);
            "FROB /x HTTP/1.1\r\nHost: h\r\n\r\n" (* unknown method *);
            "GET x HTTP/1.1\r\nHost: h\r\n\r\n" (* not origin-form *);
            "GET /x HTTP/2.0\r\nHost: h\r\n\r\n" (* unsupported version *);
            "GET /x HTTP/1.1\r\nHost h\r\n\r\n" (* header without colon *);
            "GET /x HTTP/1.1\r\nHost: h\r\n bad fold\r\n\r\n" (* obs-fold *);
          ]);
    test "missing Host on HTTP/1.1 rejected; fine on 1.0" (fun () ->
        let e = expect_error (Wire.read_request (Wire.source_of_string "GET / HTTP/1.1\r\n\r\n")) in
        check_bool "1.1" true (match e with Wire.Malformed _ -> true | _ -> false);
        ignore (expect_request (Wire.read_request (Wire.source_of_string "GET / HTTP/1.0\r\n\r\n"))));
    test "Transfer-Encoding rejected instead of desyncing" (fun () ->
        let e =
          expect_error
            (Wire.read_request
               (Wire.source_of_string
                  "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n"))
        in
        check_bool "te" true (match e with Wire.Malformed _ -> true | _ -> false));
    test "invalid and conflicting Content-Length rejected" (fun () ->
        List.iter
          (fun cl ->
            let s = "POST / HTTP/1.1\r\nHost: h\r\n" ^ cl ^ "\r\nx" in
            let e = expect_error (Wire.read_request (Wire.source_of_string s)) in
            check_bool "cl" true (match e with Wire.Malformed _ -> true | _ -> false))
          [
            "Content-Length: nope\r\n";
            "Content-Length: -3\r\n";
            "Content-Length: 1\r\nContent-Length: 2\r\n";
          ]);
    test "request line over the cap is 431" (fun () ->
        let limits = { Wire.default_limits with Wire.max_request_line = 64 } in
        let s = "GET /" ^ String.make 200 'a' ^ " HTTP/1.1\r\nHost: h\r\n\r\n" in
        let e = expect_error (Wire.read_request ~limits (Wire.source_of_string s)) in
        check_bool "431" true (e = Wire.Request_line_too_long);
        check_int "status" 431 (Status.to_int (Wire.error_status e)));
    test "header section over the caps is 431" (fun () ->
        let limits = { Wire.default_limits with Wire.max_header_bytes = 128 } in
        let s =
          "GET / HTTP/1.1\r\nHost: h\r\nX-Pad: " ^ String.make 300 'b' ^ "\r\n\r\n"
        in
        check_bool "bytes" true
          (expect_error (Wire.read_request ~limits (Wire.source_of_string s))
          = Wire.Headers_too_large);
        let limits = { Wire.default_limits with Wire.max_headers = 4 } in
        let many =
          String.concat "" (List.init 8 (fun i -> Printf.sprintf "X-H%d: v\r\n" i))
        in
        check_bool "count" true
          (expect_error
             (Wire.read_request ~limits
                (Wire.source_of_string ("GET / HTTP/1.1\r\nHost: h\r\n" ^ many ^ "\r\n")))
          = Wire.Headers_too_large));
    test "body over the cap is 413 and is not read" (fun () ->
        let limits = { Wire.default_limits with Wire.max_body = 16 } in
        let s = "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 1000\r\n\r\n" in
        let e = expect_error (Wire.read_request ~limits (Wire.source_of_string s)) in
        check_bool "413" true (e = Wire.Body_too_large);
        check_int "status" 413 (Status.to_int (Wire.error_status e)));
    test "clean EOF between requests vs truncation mid-request" (fun () ->
        check_bool "eof" true (Wire.read_request (Wire.source_of_string "") = `Eof);
        let truncated = String.sub simple_get 0 (String.length simple_get - 4) in
        check_bool "truncated" true
          (match Wire.read_request (Wire.source_of_string truncated) with
          | `Error (Wire.Malformed _) -> true
          | _ -> false);
        let body_cut = String.sub post_with_body 0 (String.length post_with_body - 2) in
        check_bool "body cut" true
          (match Wire.read_request (Wire.source_of_string body_cut) with
          | `Error (Wire.Malformed _) -> true
          | _ -> false));
  ]

let wire_serialize_tests =
  [
    test "response serialization frames status, length, connection" (fun () ->
        let s = Wire.write_response ~keep_alive:true (Response.text "hello") in
        check_bool "status line" true (contains s "HTTP/1.1 200 OK\r\n");
        check_bool "cl" true (contains s "Content-Length: 5\r\n");
        check_bool "ka" true (contains s "Connection: keep-alive\r\n");
        check_bool "body" true (contains s "\r\n\r\nhello");
        let s = Wire.write_response ~keep_alive:false (Response.text "hello") in
        check_bool "close" true (contains s "Connection: close\r\n"));
    test "head_only keeps Content-Length, drops the body" (fun () ->
        let s = Wire.write_response ~head_only:true ~keep_alive:true (Response.text "hello") in
        check_bool "cl" true (contains s "Content-Length: 5\r\n");
        check_bool "no body" true
          (String.length s >= 4 && String.sub s (String.length s - 4) 4 = "\r\n\r\n"));
    test "a smuggled Content-Length cannot survive serialization" (fun () ->
        let forged =
          Response.make ~headers:(Headers.of_list [ ("Content-Length", "9999") ]) ~body:"hi"
            Status.Ok
        in
        let s = Wire.write_response ~keep_alive:false forged in
        check_bool "authoritative" true (contains s "Content-Length: 2\r\n");
        check_bool "forged gone" false (contains s "9999"));
    test "response round-trips through the client reader" (fun () ->
        let response =
          Response.with_cookie (Response.html "<p>ok</p>") ~name:"sid" ~value:"abc"
        in
        let bytes = Wire.write_response ~keep_alive:true response in
        match Wire.read_response (Wire.source_of_string bytes) with
        | `Response (status, headers, body) ->
            check_int "status" 200 status;
            check_str "body" "<p>ok</p>" body;
            check_bool "cookie" true (Option.is_some (Headers.get headers "Set-Cookie"))
        | _ -> Alcotest.fail "client reader failed");
    test "request serializer round-trips through the request parser" (fun () ->
        let bytes =
          Wire.write_request ~host:"127.0.0.1"
            ~headers:(Headers.of_list [ ("Cookie", "user=ada") ])
            ~body:"a=1" Meth.POST "/submit/3"
        in
        let inc = expect_request (Wire.read_request (Wire.source_of_string bytes)) in
        check_str "path" "/submit/3" inc.Wire.request.Request.path;
        check_str "body" "a=1" inc.Wire.request.Request.body;
        check_bool "cookie" true (Request.cookie inc.Wire.request "user" = Some "ada"));
  ]

(* ------------------------------------------------------------------ *)
(* Socket tests against a live server. *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

let source_of_fd fd =
  let buf = Bytes.create 4096 in
  Wire.source_of_fun (fun () ->
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ""
      | n -> Bytes.sub_string buf 0 n)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  fd

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let get_target target = Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" target

let read_resp src =
  match Wire.read_response src with
  | `Response (status, headers, body) -> (status, headers, body)
  | `Eof -> Alcotest.fail "connection closed before a response arrived"
  | `Error e -> Alcotest.fail ("client parse error: " ^ Wire.error_message e)

let test_router () =
  let r = Router.create () in
  Router.on_error r (fun _ -> ());
  Router.get r "/hi" (fun _ -> Response.text "hello");
  Router.get r "/echo/<x>" (fun req -> Response.text (Request.path_param_exn req "x"));
  Router.get r "/boom" (fun _ -> failwith "kaboom-secret-internal");
  Router.post r "/sum" (fun req ->
      match Request.form_param req "n" with
      | Some n -> Response.text n
      | None -> Response.error Status.Bad_request "missing n");
  r

let with_server ?(config = { Server.default_config with Server.domains = 3 }) ?router f =
  let router = match router with Some r -> r | None -> test_router () in
  match
    Server.start ~config ~on_error:(fun _ -> ()) ~handler:(Router.dispatch router) ()
  with
  | Error m -> Alcotest.fail ("server start: " ^ m)
  | Ok t -> Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t)

let server_tests =
  [
    test "GET over a real socket" (fun () ->
        with_server (fun t ->
            let fd = connect (Server.port t) in
            write_all fd (get_target "/hi");
            let status, _, body = read_resp (source_of_fd fd) in
            close_quietly fd;
            check_int "status" 200 status;
            check_str "body" "hello" body));
    test "keep-alive serves several requests on one connection" (fun () ->
        with_server (fun t ->
            let fd = connect (Server.port t) in
            let src = source_of_fd fd in
            for i = 1 to 3 do
              write_all fd (get_target "/hi");
              let status, headers, body = read_resp src in
              check_int (Printf.sprintf "status %d" i) 200 status;
              check_str (Printf.sprintf "body %d" i) "hello" body;
              check_bool "keep-alive" true
                (Headers.get headers "Connection" = Some "keep-alive")
            done;
            close_quietly fd;
            check_bool "served >= 3" true ((Server.stats t).Server.served >= 3)));
    test "pipelined requests are answered in order" (fun () ->
        with_server (fun t ->
            let fd = connect (Server.port t) in
            write_all fd (get_target "/echo/first" ^ get_target "/echo/second");
            let src = source_of_fd fd in
            let _, _, a = read_resp src in
            let _, _, b = read_resp src in
            close_quietly fd;
            check_str "first" "first" a;
            check_str "second" "second" b));
    test "encoded path segments route and decode over the wire" (fun () ->
        with_server (fun t ->
            let fd = connect (Server.port t) in
            write_all fd (get_target "/echo/alice%40example.com");
            let status, _, body = read_resp (source_of_fd fd) in
            close_quietly fd;
            check_int "status" 200 status;
            check_str "decoded" "alice@example.com" body));
    test "a raising handler is a redacted 500 on the wire" (fun () ->
        with_server (fun t ->
            let fd = connect (Server.port t) in
            write_all fd (get_target "/boom");
            let status, _, body = read_resp (source_of_fd fd) in
            close_quietly fd;
            check_int "status" 500 status;
            check_str "redacted" "internal error" body;
            check_bool "no exception text" false (contains body "kaboom");
            check_bool "no Failure" false (contains body "Failure")));
    test "malformed request line gets 400 and a close" (fun () ->
        with_server (fun t ->
            let fd = connect (Server.port t) in
            write_all fd "NOT-HTTP\r\n\r\n";
            let src = source_of_fd fd in
            let status, headers, _ = read_resp src in
            check_int "status" 400 status;
            check_bool "close" true (Headers.get headers "Connection" = Some "close");
            check_bool "eof after" true (Wire.read_response src = `Eof);
            close_quietly fd;
            check_bool "counted" true ((Server.stats t).Server.parse_errors >= 1)));
    test "oversized header section gets 431" (fun () ->
        let config =
          {
            Server.default_config with
            Server.domains = 2;
            limits = { Wire.default_limits with Wire.max_header_bytes = 256 };
          }
        in
        with_server ~config (fun t ->
            let fd = connect (Server.port t) in
            write_all fd
              ("GET /hi HTTP/1.1\r\nHost: t\r\nX-Pad: " ^ String.make 1000 'p' ^ "\r\n\r\n");
            let status, _, _ = read_resp (source_of_fd fd) in
            close_quietly fd;
            check_int "status" 431 status));
    test "oversized body gets 413" (fun () ->
        let config =
          {
            Server.default_config with
            Server.domains = 2;
            limits = { Wire.default_limits with Wire.max_body = 32 };
          }
        in
        with_server ~config (fun t ->
            let fd = connect (Server.port t) in
            write_all fd
              "POST /sum HTTP/1.1\r\nHost: t\r\nContent-Length: 4096\r\n\r\n";
            let status, _, _ = read_resp (source_of_fd fd) in
            close_quietly fd;
            check_int "status" 413 status));
    test "connections beyond capacity shed with 503" (fun () ->
        let config =
          {
            Server.default_config with
            Server.domains = 2;
            max_connections = 1;
            idle_timeout_s = 5.0;
          }
        in
        with_server ~config (fun t ->
            (* First connection parks itself in a worker (it never sends a
               byte); once it is accepted, the next arrival is over
               capacity and must be refused immediately with 503. *)
            let holder = connect (Server.port t) in
            let deadline = Unix.gettimeofday () +. 5.0 in
            while (Server.stats t).Server.active < 1 && Unix.gettimeofday () < deadline do
              ignore (Unix.select [] [] [] 0.01)
            done;
            let fd = connect (Server.port t) in
            write_all fd (get_target "/hi");
            let status, headers, _ = read_resp (source_of_fd fd) in
            close_quietly fd;
            close_quietly holder;
            check_int "shed status" 503 status;
            check_bool "close" true (Headers.get headers "Connection" = Some "close");
            check_bool "counted" true ((Server.stats t).Server.shed >= 1)));
    test "idle connections are reaped by the deadline" (fun () ->
        let config =
          { Server.default_config with Server.domains = 2; idle_timeout_s = 0.2 }
        in
        with_server ~config (fun t ->
            let fd = connect (Server.port t) in
            (* Send nothing: the read on our side blocks until the server
               times the connection out and closes it. *)
            let closed =
              match Wire.read_response (source_of_fd fd) with `Eof -> true | _ -> false
            in
            close_quietly fd;
            check_bool "closed" true closed;
            check_bool "counted" true ((Server.stats t).Server.timeouts >= 1)));
    test "max requests per connection forces a close" (fun () ->
        let config =
          { Server.default_config with Server.domains = 2; max_requests_per_connection = 2 }
        in
        with_server ~config (fun t ->
            let fd = connect (Server.port t) in
            let src = source_of_fd fd in
            write_all fd (get_target "/hi");
            let _, h1, _ = read_resp src in
            check_bool "first keep-alive" true
              (Headers.get h1 "Connection" = Some "keep-alive");
            write_all fd (get_target "/hi");
            let _, h2, _ = read_resp src in
            check_bool "second closes" true (Headers.get h2 "Connection" = Some "close");
            check_bool "then eof" true (Wire.read_response src = `Eof);
            close_quietly fd));
    test "HEAD answers headers only" (fun () ->
        with_server (fun t ->
            let fd = connect (Server.port t) in
            write_all fd "HEAD /hi HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
            let buf = Buffer.create 256 in
            let bytes = Bytes.create 1024 in
            let rec slurp () =
              match Unix.read fd bytes 0 1024 with
              | 0 -> ()
              | n ->
                  Buffer.add_subbytes buf bytes 0 n;
                  slurp ()
            in
            slurp ();
            close_quietly fd;
            let raw = Buffer.contents buf in
            check_bool "content-length kept" true (contains raw "Content-Length: 5\r\n");
            check_bool "no body" true
              (String.length raw >= 4
              && String.sub raw (String.length raw - 4) 4 = "\r\n\r\n")));
    test "concurrent clients are all served" (fun () ->
        with_server (fun t ->
            let port = Server.port t in
            let per_client = 20 in
            let client () =
              let fd = connect port in
              let src = source_of_fd fd in
              let ok = ref 0 in
              for _ = 1 to per_client do
                write_all fd (get_target "/hi");
                let status, _, body = read_resp src in
                if status = 200 && body = "hello" then incr ok
              done;
              close_quietly fd;
              !ok
            in
            let domains = List.init 4 (fun _ -> Domain.spawn client) in
            let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
            check_int "all answered" (4 * per_client) total;
            check_bool "stat" true ((Server.stats t).Server.served >= 4 * per_client)));
  ]

let () =
  Alcotest.run "server"
    [
      ("wire-parse", wire_parse_tests);
      ("wire-serialize", wire_serialize_tests);
      ("server", server_tests);
    ]
